"""Physical unit helpers and shared constants.

The simulator works internally in SI units (volts, amperes, ohms, henries,
farads, seconds, hertz, watts).  These helpers exist so that netlists and
configuration tables can be written with the same notation the paper uses
(``mOhm``, ``nH``, ``uF``, ``MHz`` ...) without sprinkling powers of ten
through the code.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Metric prefixes
# ---------------------------------------------------------------------------
PICO = 1e-12
NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3
KILO = 1e3
MEGA = 1e6
GIGA = 1e9


def m_ohm(value: float) -> float:
    """Convert milliohms to ohms."""
    return value * MILLI


def n_henry(value: float) -> float:
    """Convert nanohenries to henries."""
    return value * NANO


def p_henry(value: float) -> float:
    """Convert picohenries to henries."""
    return value * PICO


def u_farad(value: float) -> float:
    """Convert microfarads to farads."""
    return value * MICRO


def n_farad(value: float) -> float:
    """Convert nanofarads to farads."""
    return value * NANO


def p_farad(value: float) -> float:
    """Convert picofarads to farads."""
    return value * PICO


def mega_hertz(value: float) -> float:
    """Convert megahertz to hertz."""
    return value * MEGA


def nano_second(value: float) -> float:
    """Convert nanoseconds to seconds."""
    return value * NANO


def micro_second(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * MICRO


def mm2(value: float) -> float:
    """Identity helper marking a die area expressed in square millimetres."""
    return value


def cycles_to_seconds(cycles: float, frequency_hz: float) -> float:
    """Duration of ``cycles`` clock cycles at ``frequency_hz``."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return cycles / frequency_hz


def seconds_to_cycles(seconds: float, frequency_hz: float) -> float:
    """Number of clock cycles spanning ``seconds`` at ``frequency_hz``."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return seconds * frequency_hz
