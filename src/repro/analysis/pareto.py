"""Pareto dominance over design-space exploration results.

The paper's headline design-space claim is a trade-off surface: how
much CR-IVR die area buys how much power delivery efficiency at what
guardband risk.  No single scalar ranks that; the honest artifact is
the Pareto frontier — the set of evaluated points no other point beats
on *every* objective.  This module computes it.

Objectives are declared with a direction (:data:`MIN`/:data:`MAX`), and
the default triple mirrors the paper's axes: CR-IVR area (smaller is
cheaper), PDE (higher is the point of the whole exercise), and
guardband violation depth (how far the worst SM sank below the 0.8 V
guardband; 0 for a compliant run).

The frontier of a fixed point set is *set-unique* — independent of the
order points were evaluated or fed in — and :func:`pareto_front`
guarantees a deterministic output order on top (sorted by the
objective tuple, then the row's ``benchmark``/``index`` identity), so
two explorations of the same grid emit byte-identical artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

#: Objective directions.
MIN, MAX = "min", "max"


@dataclass(frozen=True)
class Objective:
    """One Pareto axis: a row key and whether smaller or larger wins."""

    name: str
    sense: str = MIN

    def __post_init__(self) -> None:
        if self.sense not in (MIN, MAX):
            raise ValueError(
                f"sense must be {MIN!r} or {MAX!r}, got {self.sense!r}"
            )

    def ascending(self, value: float) -> float:
        """Map the value so *smaller is always better*."""
        return float(value) if self.sense == MIN else -float(value)


#: The paper's design-space axes (see module docstring).
DEFAULT_OBJECTIVES: Tuple[Objective, ...] = (
    Objective("cr_ivr_area_mm2", MIN),
    Objective("pde", MAX),
    Objective("guardband_violation_v", MIN),
)


def _vector(
    row: Mapping[str, object], objectives: Sequence[Objective]
) -> Tuple[float, ...]:
    try:
        return tuple(obj.ascending(row[obj.name]) for obj in objectives)
    except KeyError as exc:
        raise ValueError(
            f"row is missing objective {exc.args[0]!r}: "
            f"has {sorted(row)}"
        ) from None


def dominates(
    a: Mapping[str, object],
    b: Mapping[str, object],
    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
) -> bool:
    """Whether ``a`` is at least as good as ``b`` everywhere and
    strictly better somewhere."""
    va, vb = _vector(a, objectives), _vector(b, objectives)
    return all(x <= y for x, y in zip(va, vb)) and va != vb


def pareto_front(
    rows: Sequence[Mapping[str, object]],
    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
) -> List[Dict[str, object]]:
    """The non-dominated subset of ``rows``, deterministically ordered.

    Rows with identical objective vectors are *both* kept (neither
    strictly dominates the other): distinct designs that tie on every
    objective are distinct frontier answers.  The result is invariant
    to the input order of ``rows``.
    """
    vectors = [_vector(row, objectives) for row in rows]
    front: List[Dict[str, object]] = []
    keys: List[Tuple] = []
    for row, vec in zip(rows, vectors):
        if any(
            all(x <= y for x, y in zip(other, vec)) and other != vec
            for other in vectors
        ):
            continue
        front.append(dict(row))
        keys.append((vec, str(row.get("benchmark", "")), row.get("index", 0)))
    order = sorted(range(len(front)), key=lambda i: keys[i])
    return [front[i] for i in order]


def pareto_ranks(
    rows: Sequence[Mapping[str, object]],
    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
) -> List[int]:
    """Non-dominated rank of every row (0 = frontier).

    Successive-halving promotion uses these: strip the frontier, rank
    the remainder, repeat.  Aligned with ``rows``; order-invariant in
    the same sense as :func:`pareto_front`.
    """
    vectors = [_vector(row, objectives) for row in rows]
    ranks = [-1] * len(rows)
    remaining = list(range(len(rows)))
    rank = 0
    while remaining:
        layer = [
            i for i in remaining
            if not any(
                all(x <= y for x, y in zip(vectors[j], vectors[i]))
                and vectors[j] != vectors[i]
                for j in remaining
            )
        ]
        for i in layer:
            ranks[i] = rank
        remaining = [i for i in remaining if ranks[i] < 0]
        rank += 1
    return ranks


def render_pareto(
    front: Sequence[Mapping[str, object]],
    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
    title: str = "Pareto frontier",
) -> str:
    """Human-readable frontier table (``repro explore`` output)."""
    from repro.analysis.report import format_table

    headers = ["benchmark"] + [
        f"{obj.name} ({obj.sense})" for obj in objectives
    ] + ["knobs"]
    rows = []
    for row in front:
        knobs = ", ".join(
            f"{k}={v}" for k, v in sorted(dict(row.get("overrides") or {}).items())
        )
        rows.append(
            [str(row.get("benchmark", "?"))]
            + [f"{float(row[obj.name]):.6g}" for obj in objectives]
            + [knobs or "-"]
        )
    return format_table(headers, rows, title=f"{title} ({len(front)} points)")
