"""Evaluation metrics behind Figs. 11-17.

* :func:`noise_box_stats` — the box-plot statistics of Fig. 11;
* :func:`performance_penalty` / :func:`net_energy_saving` — the Fig. 14
  accounting (throttling extends execution, which costs leakage energy,
  offset by the PDE gain);
* :func:`imbalance_distribution` — the Fig. 17 histogram of per-cycle
  current imbalance between vertically stacked SMs, normalized to peak
  SM current.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.config import StackConfig


@dataclass(frozen=True)
class BoxStats:
    """Box-and-whisker summary of a voltage (or any) distribution."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    def as_tuple(self) -> Tuple[float, float, float, float, float]:
        return (self.minimum, self.q1, self.median, self.q3, self.maximum)


def noise_box_stats(samples: np.ndarray) -> BoxStats:
    """Fig. 11 box statistics over all SMs and cycles."""
    flat = np.asarray(samples, dtype=float).ravel()
    if flat.size == 0:
        raise ValueError("no samples")
    q1, median, q3 = np.percentile(flat, [25, 50, 75])
    return BoxStats(
        minimum=float(flat.min()),
        q1=float(q1),
        median=float(median),
        q3=float(q3),
        maximum=float(flat.max()),
    )


def performance_penalty(
    baseline_throughput: float, throttled_throughput: float
) -> float:
    """Relative slowdown from voltage smoothing (Fig. 12 / 14 y-axis).

    Throughputs are real instructions per cycle for the same workload;
    the penalty is the fractional increase in execution time.
    """
    if baseline_throughput <= 0:
        raise ValueError("baseline throughput must be positive")
    if throttled_throughput <= 0:
        raise ValueError("throttled throughput must be positive")
    if throttled_throughput > baseline_throughput:
        return 0.0  # measurement noise: no penalty
    return baseline_throughput / throttled_throughput - 1.0


def net_energy_saving(
    pde_baseline: float,
    pde_stacked: float,
    penalty: float,
    leakage_fraction: float = 0.15,
    extra_dynamic_fraction: float = 0.0,
) -> float:
    """Fig. 14's net energy saving of a voltage-stacked GPU.

    For the same work, the cross-layer GPU takes ``1 + penalty`` times
    as long: dynamic energy is unchanged (plus ``extra_dynamic_fraction``
    for fake instructions / DCC), but leakage accrues over the longer
    runtime.  Both systems' chip energy is then divided by their PDE to
    get board-input energy; the saving is the relative reduction.
    """
    if not 0 < pde_baseline <= 1 or not 0 < pde_stacked <= 1:
        raise ValueError("PDEs must be in (0, 1]")
    if penalty < 0:
        raise ValueError("penalty cannot be negative")
    if not 0 <= leakage_fraction < 1:
        raise ValueError("leakage fraction must be in [0, 1)")
    dynamic = 1.0 - leakage_fraction
    chip_baseline = 1.0  # normalized chip energy for the work
    chip_stacked = (
        dynamic * (1.0 + extra_dynamic_fraction)
        + leakage_fraction * (1.0 + penalty)
    )
    input_baseline = chip_baseline / pde_baseline
    input_stacked = chip_stacked / pde_stacked
    return 1.0 - input_stacked / input_baseline


IMBALANCE_BUCKETS = ((0.0, 0.1), (0.1, 0.2), (0.2, 0.4), (0.4, np.inf))
IMBALANCE_BUCKET_LABELS = (
    "0-10% imbalance",
    "10-20% imbalance",
    "20-40% imbalance",
    ">40% imbalance",
)


def imbalance_distribution(
    per_sm_power: np.ndarray,
    stack: StackConfig = StackConfig(),
    peak_sm_power_w: float = 8.0,
) -> Dict[str, float]:
    """Fig. 17: distribution of vertical SM current imbalance.

    For every cycle and every vertically adjacent SM pair in each stack
    column, compute ``|I_a - I_b| / I_peak`` and bucket it into the
    paper's 0-10 / 10-20 / 20-40 / >40 % bins.  Returns bucket -> share.
    """
    per_sm_power = np.atleast_2d(np.asarray(per_sm_power, dtype=float))
    if per_sm_power.shape[1] != stack.num_sms:
        raise ValueError(
            f"expected {stack.num_sms} SM columns, got {per_sm_power.shape[1]}"
        )
    if peak_sm_power_w <= 0:
        raise ValueError("peak power must be positive")
    grid = per_sm_power.reshape(
        per_sm_power.shape[0], stack.num_layers, stack.num_columns
    )
    # Adjacent layers within each column (currents at ~1 V = power).
    diffs = np.abs(np.diff(grid, axis=1)) / peak_sm_power_w
    flat = diffs.ravel()
    shares = {}
    for (lo, hi), label in zip(IMBALANCE_BUCKETS, IMBALANCE_BUCKET_LABELS):
        shares[label] = float(np.mean((flat >= lo) & (flat < hi)))
    return shares


def cumulative_within(
    distribution: Dict[str, float], buckets: Sequence[str]
) -> float:
    """Sum of the given buckets' shares (e.g. 'within 40 %' checks)."""
    return sum(distribution[b] for b in buckets)
