"""Manifest-to-manifest regression comparison (``repro compare``).

Two telemetry manifests of the same scenario should agree on their
physics: headline metrics (min voltage, PDE, IPC) and the observatory's
noise KPIs (droop events, band RMS, ledger closure).  This module diffs
them under explicit per-metric thresholds and says which differences
are regressions — the exit-code gate CI runs against the committed
baselines under ``benchmarks/baselines/``.

A threshold states which direction is *better* and how much drift is
tolerated (``max(abs_tol, rel_tol * |base|)``).  Metrics without a
threshold are reported but never gate; a gated metric that disappears
from the candidate *is* a regression (losing observability silently is
exactly what the gate exists to catch).
"""

from __future__ import annotations

import json
import math
import numbers
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Mapping, Optional

#: Directions a threshold can prefer.
HIGHER, LOWER, STABLE = "higher", "lower", "stable"


@dataclass(frozen=True)
class Threshold:
    """Gate for one metric: preferred direction and tolerated drift."""

    better: str = HIGHER
    abs_tol: float = 0.0
    rel_tol: float = 0.0

    def __post_init__(self) -> None:
        if self.better not in (HIGHER, LOWER, STABLE):
            raise ValueError(
                f"better must be one of {HIGHER}/{LOWER}/{STABLE}, "
                f"got {self.better!r}"
            )
        if self.abs_tol < 0 or self.rel_tol < 0:
            raise ValueError("tolerances cannot be negative")

    def tolerance(self, base: float) -> float:
        return max(self.abs_tol, self.rel_tol * abs(base))


#: Default gates.  Headline metrics come from ``manifest["metrics"]``;
#: ``noise.*`` keys from the observatory's ``noise["summary"]``.
#: Absolute tolerances absorb cross-platform last-ulp solver drift.
DEFAULT_THRESHOLDS: Dict[str, Threshold] = {
    "min_voltage_v": Threshold(HIGHER, abs_tol=0.005),
    "max_voltage_v": Threshold(LOWER, abs_tol=0.010),
    "pde": Threshold(HIGHER, abs_tol=0.002),
    "throughput_ipc": Threshold(HIGHER, rel_tol=0.02),
    "mean_power_w": Threshold(STABLE, rel_tol=0.05),
    "mean_dcc_power_w": Threshold(STABLE, abs_tol=0.05, rel_tol=0.25),
    "noise.pde": Threshold(HIGHER, abs_tol=0.002),
    "noise.droop_event_count": Threshold(LOWER, abs_tol=0.0),
    "noise.droop_cycles": Threshold(LOWER, abs_tol=2.0),
    "noise.worst_droop_depth_v": Threshold(LOWER, abs_tol=0.005),
    "noise.ledger_closure_rel_error": Threshold(LOWER, abs_tol=0.01),
    "noise.band_control_vrms": Threshold(LOWER, abs_tol=1e-4, rel_tol=0.25),
    "noise.band_mid_vrms": Threshold(LOWER, abs_tol=1e-4, rel_tol=0.25),
    "noise.band_resonance_vrms": Threshold(LOWER, abs_tol=1e-4, rel_tol=0.25),
    "noise.residual_imbalance_w_rms": Threshold(
        LOWER, abs_tol=0.05, rel_tol=0.25
    ),
    "noise.max_layer_excess_w": Threshold(LOWER, abs_tol=0.1, rel_tol=0.25),
    # Fault-scenario gates (manifest ``faults["summary"]``): the verdict
    # code orders survived(0) < safe_state(1) < violated(2), so LOWER
    # with zero tolerance means "a scenario that used to survive must
    # keep surviving".
    "faults.verdict_code": Threshold(LOWER, abs_tol=0.0),
    "faults.min_voltage_v": Threshold(HIGHER, abs_tol=0.005),
    "faults.tail_min_voltage_v": Threshold(HIGHER, abs_tol=0.005),
    "faults.guardband_violation_cycles": Threshold(LOWER, abs_tol=2.0),
    "faults.watchdog_engagements": Threshold(LOWER, abs_tol=0.0),
    "faults.nan_samples_seen": Threshold(STABLE, rel_tol=0.10),
    # Stage-timing gate (manifest ``timings_s``, prefixed ``timing.``):
    # the GPU model must stay off the critical path now that the
    # vectorized engine carries it.  The absolute floor absorbs shared
    # CI-core noise; a slide back toward the per-object reference
    # (which is ~20x this budget on the baseline scenario) still trips.
    "timing.gpu_model": Threshold(LOWER, abs_tol=0.15, rel_tol=1.0),
    # Solver-health gates: zero tolerance.  A baseline scenario that
    # completed cleanly must keep doing so — any structured divergence
    # verdict or guard recovery (refactorize / dt-halving redo) on the
    # regression workload is a numerical regression, not noise.
    "diverged": Threshold(LOWER, abs_tol=0.0),
    "guard_recoveries": Threshold(LOWER, abs_tol=0.0),
}

# Row outcomes.
REGRESSED = "REGRESSED"
MISSING = "MISSING"
IMPROVED = "improved"
OK = "ok"
NEW = "new"
UNTRACKED = "untracked"


@dataclass(frozen=True)
class MetricDelta:
    """One compared metric and its verdict."""

    name: str
    base: Optional[float]
    candidate: Optional[float]
    tolerance: Optional[float]  # None for untracked metrics
    status: str

    @property
    def delta(self) -> Optional[float]:
        if self.base is None or self.candidate is None:
            return None
        return self.candidate - self.base

    @property
    def is_regression(self) -> bool:
        return self.status in (REGRESSED, MISSING)


@dataclass(frozen=True)
class CompareReport:
    """All compared metrics of one base/candidate manifest pair."""

    base_id: str
    candidate_id: str
    rows: List[MetricDelta]

    @property
    def regressions(self) -> List[MetricDelta]:
        return [row for row in self.rows if row.is_regression]

    @property
    def ok(self) -> bool:
        return not self.regressions


def metric_values(manifest: Mapping[str, object]) -> Dict[str, float]:
    """Flatten a manifest's comparable numbers.

    Headline metrics keep their names; the observatory's flat summary
    KPIs are prefixed ``noise.``, the fault report's ``faults.``, and
    the per-stage wall-clock split (``timings_s``) ``timing.``.
    Non-numeric metrics (benchmark name, ...) are skipped.
    """
    out: Dict[str, float] = {}
    for name, value in dict(manifest.get("metrics") or {}).items():
        if isinstance(value, numbers.Real) and not isinstance(value, bool):
            out[name] = float(value)
    for name, value in dict(manifest.get("timings_s") or {}).items():
        if isinstance(value, numbers.Real) and not isinstance(value, bool):
            out[f"timing.{name}"] = float(value)
    for section, prefix in (("noise", "noise."), ("faults", "faults.")):
        block = manifest.get(section) or {}
        summary = (
            dict(block.get("summary") or {})
            if isinstance(block, Mapping)
            else {}
        )
        for name, value in summary.items():
            if isinstance(value, numbers.Real) and not isinstance(value, bool):
                out[f"{prefix}{name}"] = float(value)
    return out


def _judge(
    name: str,
    base: Optional[float],
    candidate: Optional[float],
    threshold: Optional[Threshold],
) -> MetricDelta:
    if base is None:
        return MetricDelta(name, base, candidate, None, NEW)
    if threshold is None:
        return MetricDelta(name, base, candidate, None, UNTRACKED)
    tol = threshold.tolerance(base)
    if candidate is None:
        return MetricDelta(name, base, candidate, tol, MISSING)
    # A NaN (or infinite) gated value makes every `<`/`>` comparison
    # below False, which used to fall through to ``ok`` — a run whose
    # physics produced NaN would sail through the CI gate.  Losing a
    # finite value is exactly what the gate exists to catch.
    if not (math.isfinite(base) and math.isfinite(candidate)):
        return MetricDelta(name, base, candidate, tol, REGRESSED)
    delta = candidate - base
    if threshold.better == HIGHER:
        worse, better = delta < -tol, delta > tol
    elif threshold.better == LOWER:
        worse, better = delta > tol, delta < -tol
    else:  # STABLE: drift in either direction beyond tolerance is suspect
        worse, better = abs(delta) > tol, False
    status = REGRESSED if worse else IMPROVED if better else OK
    return MetricDelta(name, base, candidate, tol, status)


def compare_manifests(
    base: Mapping[str, object],
    candidate: Mapping[str, object],
    thresholds: Optional[Mapping[str, Threshold]] = None,
) -> CompareReport:
    """Diff two manifests' metrics under per-metric thresholds."""
    gates = dict(DEFAULT_THRESHOLDS if thresholds is None else thresholds)
    base_values = metric_values(base)
    cand_values = metric_values(candidate)
    names = sorted(set(base_values) | set(cand_values))
    rows = [
        _judge(name, base_values.get(name), cand_values.get(name),
               gates.get(name))
        for name in names
    ]
    return CompareReport(
        base_id=str(base.get("run_id", "?")),
        candidate_id=str(candidate.get("run_id", "?")),
        rows=rows,
    )


def load_thresholds(path) -> Dict[str, Threshold]:
    """Merge a JSON threshold file over :data:`DEFAULT_THRESHOLDS`.

    The file maps metric name to ``{"better": ..., "abs_tol": ...,
    "rel_tol": ...}`` (all fields optional; omitted fields keep the
    default gate's values, or :class:`Threshold` defaults for metrics
    without one).  Mapping a name to ``null`` removes its gate; keys
    starting with ``_`` are comments and ignored.
    """
    with open(Path(path)) as handle:
        raw = json.load(handle)
    if not isinstance(raw, dict):
        raise ValueError(f"thresholds file {path} must hold a JSON object")
    merged = dict(DEFAULT_THRESHOLDS)
    for name, spec in raw.items():
        if name.startswith("_"):
            continue
        if spec is None:
            merged.pop(name, None)
            continue
        if not isinstance(spec, dict):
            raise ValueError(
                f"threshold for {name!r} must be an object or null"
            )
        unknown = set(spec) - {"better", "abs_tol", "rel_tol"}
        if unknown:
            raise ValueError(
                f"threshold for {name!r} has unknown keys: {sorted(unknown)}"
            )
        merged[name] = replace(
            merged.get(name, Threshold()),
            **{k: v for k, v in spec.items()},
        )
    return merged


def render_compare(report: CompareReport) -> str:
    """Human-readable comparison table plus the verdict line."""
    from repro.analysis.report import format_table

    def fmt(value: Optional[float]) -> str:
        return "-" if value is None else f"{value:.6g}"

    rows = [
        [row.name, fmt(row.base), fmt(row.candidate), fmt(row.delta),
         fmt(row.tolerance), row.status]
        for row in report.rows
    ]
    table = format_table(
        ["metric", "base", "candidate", "delta", "tol", "status"],
        rows,
        title=f"Compare: {report.base_id} (base) vs "
        f"{report.candidate_id} (candidate)",
    )
    regressions = report.regressions
    verdict = (
        f"{len(regressions)} regression(s): "
        + ", ".join(r.name for r in regressions)
        if regressions
        else "0 regressions"
    )
    return f"{table}\n{verdict}"
