"""The noise observatory — physics-level observability for one run.

A co-simulation's scalar endpoints (``min_voltage_v``, ``pde``) say
*whether* a run drooped or lost efficiency; this module says *why*:

* :func:`band_decomposition` — RMS content of the worst-SM voltage
  trace split into the paper's three frequency regimes (below the
  controller bandwidth / the mid band / around the PDN resonance),
  with each band attributed to the global / stack / residual
  imbalance components via :func:`repro.analysis.spectral.imbalance_series`;
* :func:`droop_event_log` — contiguous excursions below the guardband
  as an event stream (start, duration, depth, worst SM and layer)
  instead of a single minimum;
* :func:`pde_loss_ledger` — board input power reconciled to delivered
  power term by term (VRM conversion / PDN IR / CR-IVR shuffle /
  level shifters / quiescent bias / controller), with a closure check
  that the terms account for the whole input;
* :func:`layer_imbalance_summary` — per-layer power shares, excess
  over the layer mean, and worst voltages.

:func:`compute_noise_report` bundles all four into a
:class:`NoiseReport` whose :meth:`NoiseReport.to_dict` form is embedded
as the ``noise`` section of a telemetry manifest (and rendered back by
``repro observe`` through :func:`render_noise_report`).  The flat
``summary`` sub-dict is what ``repro compare`` gates regressions on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.spectral import band_power, imbalance_series
from repro.config import StackConfig
from repro.pdn.efficiency import layer_shuffle_power, pde_voltage_stacked
from repro.pdn.parameters import DEFAULT_PDN, PDNParameters

#: Package-inductance / on-chip-decap resonance of the stacked PDN
#: (the ~70 MHz peak of the Fig. 3 global impedance curve).
PDN_RESONANCE_HZ = 70e6


# ---------------------------------------------------------------------------
# Frequency bands
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Band:
    """One closed frequency band ``[low_hz, high_hz]``."""

    name: str
    low_hz: float
    high_hz: float

    def __post_init__(self) -> None:
        if not 0 <= self.low_hz < self.high_hz:
            raise ValueError(
                f"band {self.name!r} needs 0 <= low < high, "
                f"got [{self.low_hz}, {self.high_hz}]"
            )


def default_bands(
    sample_rate_hz: float,
    latency_cycles: Optional[int] = None,
    resonance_hz: float = PDN_RESONANCE_HZ,
) -> Tuple[Band, ...]:
    """The paper's frequency division of labor as three bands.

    * ``control`` — DC up to the controller bandwidth (one loop
      turnaround of ``latency_cycles``; the paper's 60-cycle design
      point by default): the regime Algorithm 1 is responsible for.
    * ``mid`` — between the controller bandwidth and the lower skirt of
      the PDN resonance: neither actor owns it outright; energy here is
      the hand-off region of Fig. 5.
    * ``resonance`` — around the package/decap resonance peak (half to
      twice ``resonance_hz``, clipped to Nyquist): the CR-IVRs' job.
    """
    if sample_rate_hz <= 0:
        raise ValueError("sample rate must be positive")
    if latency_cycles is None:
        from repro.core.overheads import control_latency_cycles

        latency_cycles = control_latency_cycles()
    nyquist = sample_rate_hz / 2.0
    control_edge = sample_rate_hz / float(latency_cycles)
    mid_edge = resonance_hz / 2.0
    top_edge = min(2.0 * resonance_hz, nyquist)
    if not control_edge < mid_edge < top_edge:
        raise ValueError(
            f"degenerate band layout at sample rate {sample_rate_hz:g} Hz: "
            f"edges {control_edge:g} / {mid_edge:g} / {top_edge:g} Hz must "
            "increase — pass explicit bands instead"
        )
    return (
        Band("control", 0.0, control_edge),
        Band("mid", control_edge, mid_edge),
        Band("resonance", mid_edge, top_edge),
    )


def band_decomposition(
    sm_voltages: np.ndarray,
    per_sm_power: np.ndarray,
    sample_rate_hz: float,
    bands: Sequence[Band],
    stack: StackConfig = StackConfig(),
) -> List[Dict[str, object]]:
    """Per-band RMS of the worst-SM voltage, attributed to components.

    For each band: the RMS voltage noise of the worst-SM trace inside
    it, the RMS of each imbalance-component series (watts) inside it,
    and each component's *share* of the three components' band energy —
    i.e. which kind of imbalance is exciting that band.
    """
    worst_trace = np.asarray(sm_voltages, dtype=float).min(axis=1)
    series = imbalance_series(per_sm_power, stack)
    rows: List[Dict[str, object]] = []
    for band in bands:
        v_rms = band_power(worst_trace, sample_rate_hz, band.low_hz, band.high_hz)
        comp_rms = {
            name: band_power(values, sample_rate_hz, band.low_hz, band.high_hz)
            for name, values in series.items()
        }
        energy = sum(r**2 for r in comp_rms.values())
        shares = {
            name: (r**2 / energy if energy > 0 else 0.0)
            for name, r in comp_rms.items()
        }
        rows.append({
            "band": band.name,
            "low_hz": band.low_hz,
            "high_hz": band.high_hz,
            "voltage_rms_v": float(v_rms),
            "component_rms_w": {k: float(v) for k, v in comp_rms.items()},
            "component_share": {k: float(v) for k, v in shares.items()},
        })
    return rows


# ---------------------------------------------------------------------------
# Droop events
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DroopEvent:
    """One contiguous excursion of the worst SM below the guardband."""

    start_cycle: int
    duration_cycles: int
    min_voltage_v: float
    depth_v: float  # guardband minus the event minimum (positive)
    worst_sm: int
    layer: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "start_cycle": self.start_cycle,
            "duration_cycles": self.duration_cycles,
            "min_voltage_v": self.min_voltage_v,
            "depth_v": self.depth_v,
            "worst_sm": self.worst_sm,
            "layer": self.layer,
        }


def droop_event_log(
    sm_voltages: np.ndarray,
    guardband_v: float,
    stack: StackConfig = StackConfig(),
) -> List[DroopEvent]:
    """Contiguous below-guardband excursions as an event stream.

    ``sm_voltages`` is the recorded ``(cycles, num_sms)`` waveform; an
    event spans every consecutive cycle whose *worst* SM sits below
    ``guardband_v``.  Each event reports its depth and the SM (and
    layer) that reached the event minimum.
    """
    sm_voltages = np.asarray(sm_voltages, dtype=float)
    if sm_voltages.ndim != 2 or sm_voltages.shape[1] != stack.num_sms:
        raise ValueError(
            f"expected (cycles, {stack.num_sms}) voltages, "
            f"got shape {sm_voltages.shape}"
        )
    below = np.flatnonzero(sm_voltages.min(axis=1) < guardband_v)
    if below.size == 0:
        return []
    breaks = np.flatnonzero(np.diff(below) > 1)
    starts = np.concatenate(([below[0]], below[breaks + 1]))
    ends = np.concatenate((below[breaks], [below[-1]]))  # inclusive
    events: List[DroopEvent] = []
    for start, end in zip(starts, ends):
        window = sm_voltages[start : end + 1]
        cycle_off, worst_sm = np.unravel_index(np.argmin(window), window.shape)
        minimum = float(window[cycle_off, worst_sm])
        layer, _ = stack.layer_column(int(worst_sm))
        events.append(
            DroopEvent(
                start_cycle=int(start),
                duration_cycles=int(end - start + 1),
                min_voltage_v=minimum,
                depth_v=float(guardband_v - minimum),
                worst_sm=int(worst_sm),
                layer=int(layer),
            )
        )
    return events


# ---------------------------------------------------------------------------
# PDE loss ledger
# ---------------------------------------------------------------------------
#: Ledger term order as rendered (board input downward to the load).
LEDGER_TERMS = (
    "vrm_conversion_w",
    "pdn_ir_w",
    "cr_ivr_shuffle_w",
    "level_shifter_w",
    "cr_quiescent_w",
    "controller_w",
)


@dataclass(frozen=True)
class LossLedger:
    """Board input power reconciled to delivered power, term by term."""

    input_power_w: float
    delivered_power_w: float
    terms: Dict[str, float]

    @property
    def total_loss_w(self) -> float:
        return float(sum(self.terms.values()))

    @property
    def closure_rel_error(self) -> float:
        """|input - losses - delivered| / input — 0 when the ledger closes."""
        gap = self.input_power_w - self.total_loss_w - self.delivered_power_w
        return abs(gap) / self.input_power_w

    def closes(self, tolerance: float = 0.01) -> bool:
        return self.closure_rel_error <= tolerance

    @property
    def pde(self) -> float:
        return self.delivered_power_w / self.input_power_w

    def to_dict(self) -> Dict[str, object]:
        return {
            "input_power_w": self.input_power_w,
            "delivered_power_w": self.delivered_power_w,
            "terms_w": dict(self.terms),
            "total_loss_w": self.total_loss_w,
            "closure_rel_error": self.closure_rel_error,
            "pde": self.pde,
        }


def pde_loss_ledger(
    result,
    params: PDNParameters = DEFAULT_PDN,
) -> LossLedger:
    """Reconcile a run's board input power against its loss terms.

    The *input* side comes from the efficiency model the headline PDE
    uses (:func:`repro.pdn.efficiency.pde_voltage_stacked`); the loss
    *terms* are re-derived here from the run's measured trace, so a
    closure failure means the accounting paths disagree — exactly the
    regression the observatory exists to catch.
    """
    stack: StackConfig = result.stack
    load = result.power_trace.mean_power_w
    shuffle = layer_shuffle_power(result.power_trace.data, stack)
    eta = params.cr_shuffle_efficiency
    terms = {
        "vrm_conversion_w": 0.0,  # stacking has no conversion stage
        "pdn_ir_w": (load / stack.board_voltage) ** 2
        * params.series_resistance,
        "cr_ivr_shuffle_w": shuffle * (1.0 - eta) / eta,
        "level_shifter_w": params.level_shifter_overhead * load,
        "cr_quiescent_w": params.cr_quiescent_power,
        "controller_w": result.controller_power_w,
    }
    breakdown = pde_voltage_stacked(
        load, shuffle, stack, params,
        controller_power_w=result.controller_power_w,
    )
    return LossLedger(
        input_power_w=breakdown.input_power,
        delivered_power_w=load,
        terms=terms,
    )


# ---------------------------------------------------------------------------
# Per-layer imbalance
# ---------------------------------------------------------------------------
def layer_imbalance_summary(
    sm_voltages: np.ndarray,
    per_sm_power: np.ndarray,
    stack: StackConfig = StackConfig(),
) -> List[Dict[str, float]]:
    """Per-layer power share, mean excess over the layer mean, min voltage."""
    per_sm_power = np.atleast_2d(np.asarray(per_sm_power, dtype=float))
    sm_voltages = np.atleast_2d(np.asarray(sm_voltages, dtype=float))
    layer_powers = per_sm_power.reshape(
        per_sm_power.shape[0], stack.num_layers, stack.num_columns
    ).sum(axis=2)  # (cycles, layers)
    mean_layer = layer_powers.mean(axis=1, keepdims=True)
    excess = np.clip(layer_powers - mean_layer, 0.0, None)
    total = float(layer_powers.sum())
    rows = []
    for layer in range(stack.num_layers):
        sms = stack.sms_in_layer(layer)
        rows.append({
            "layer": layer,
            "mean_power_w": float(layer_powers[:, layer].mean()),
            "power_share": (
                float(layer_powers[:, layer].sum()) / total if total > 0 else 0.0
            ),
            "mean_excess_w": float(excess[:, layer].mean()),
            "min_voltage_v": float(sm_voltages[:, sms].min()),
        })
    return rows


# ---------------------------------------------------------------------------
# The report
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class NoiseReport:
    """Everything the observatory computed for one run."""

    benchmark: str
    sample_rate_hz: float
    guardband_v: float
    bands: List[Dict[str, object]]
    droop_events: List[DroopEvent]
    ledger: LossLedger
    layers: List[Dict[str, float]]

    def summary(self) -> Dict[str, float]:
        """Flat scalar KPIs — the metrics ``repro compare`` gates on."""
        out: Dict[str, float] = {
            "droop_event_count": float(len(self.droop_events)),
            "droop_cycles": float(
                sum(e.duration_cycles for e in self.droop_events)
            ),
            "worst_droop_depth_v": (
                max(e.depth_v for e in self.droop_events)
                if self.droop_events
                else 0.0
            ),
            "ledger_closure_rel_error": self.ledger.closure_rel_error,
            "pde": self.ledger.pde,
            "max_layer_excess_w": max(
                row["mean_excess_w"] for row in self.layers
            ),
        }
        for row in self.bands:
            out[f"band_{row['band']}_vrms"] = float(row["voltage_rms_v"])
        residual_low = next(
            (
                row["component_rms_w"]["residual"]
                for row in self.bands
                if row["band"] == "control"
            ),
            None,
        )
        if residual_low is not None:
            out["residual_imbalance_w_rms"] = float(residual_low)
        return out

    def to_dict(self) -> Dict[str, object]:
        """Manifest-ready (JSON-clean) form — the ``noise`` section."""
        return {
            "benchmark": self.benchmark,
            "sample_rate_hz": self.sample_rate_hz,
            "guardband_v": self.guardband_v,
            "summary": self.summary(),
            "bands": self.bands,
            "droop_events": [e.to_dict() for e in self.droop_events],
            "ledger": self.ledger.to_dict(),
            "layers": self.layers,
        }


def compute_noise_report(
    result,
    params: PDNParameters = DEFAULT_PDN,
    bands: Optional[Sequence[Band]] = None,
    guardband_v: Optional[float] = None,
) -> NoiseReport:
    """Build the full :class:`NoiseReport` for a ``CosimResult``.

    ``result`` is duck-typed: it needs ``sm_voltages``, ``power_trace``
    (with ``data`` / ``mean_power_w`` / ``frequency_hz``), ``stack``,
    ``controller_power_w`` and ``benchmark``.  Needs at least 8
    recorded cycles for the spectral split to mean anything.
    """
    stack: StackConfig = result.stack
    if result.sm_voltages.shape[0] < 8:
        raise ValueError(
            f"need >= 8 recorded cycles for a noise report, "
            f"got {result.sm_voltages.shape[0]}"
        )
    sample_rate = float(result.power_trace.frequency_hz)
    if bands is None:
        bands = default_bands(sample_rate)
    if guardband_v is None:
        guardband_v = stack.min_safe_voltage
    return NoiseReport(
        benchmark=result.benchmark,
        sample_rate_hz=sample_rate,
        guardband_v=float(guardband_v),
        bands=band_decomposition(
            result.sm_voltages, result.power_trace.data,
            sample_rate, bands, stack,
        ),
        droop_events=droop_event_log(result.sm_voltages, guardband_v, stack),
        ledger=pde_loss_ledger(result, params),
        layers=layer_imbalance_summary(
            result.sm_voltages, result.power_trace.data, stack
        ),
    )


# ---------------------------------------------------------------------------
# Rendering (operates on the dict form so it works straight off a manifest)
# ---------------------------------------------------------------------------
MAX_RENDERED_EVENTS = 10


def render_noise_report(noise: Mapping[str, object]) -> str:
    """Human-readable tables for a manifest's ``noise`` section."""
    from repro.analysis.report import format_percent, format_table

    lines: List[str] = []
    lines.append(
        f"noise observatory: {noise.get('benchmark', '?')} | "
        f"guardband {float(noise.get('guardband_v', 0.0)):.3f} V | "
        f"sample rate {float(noise.get('sample_rate_hz', 0.0)) / 1e6:.0f} MHz"
    )

    bands = list(noise.get("bands") or [])
    if bands:
        rows = []
        for row in bands:
            comp = dict(row.get("component_share") or {})
            rows.append([
                row["band"],
                f"{float(row['low_hz']) / 1e6:.1f}-"
                f"{float(row['high_hz']) / 1e6:.1f} MHz",
                f"{float(row['voltage_rms_v']) * 1e3:.2f} mV",
                format_percent(float(comp.get("global", 0.0))),
                format_percent(float(comp.get("stack", 0.0))),
                format_percent(float(comp.get("residual", 0.0))),
            ])
        lines.append("")
        lines.append(
            format_table(
                ["band", "range", "V(rms)", "global", "stack", "residual"],
                rows,
                title="Band decomposition of the worst-SM voltage "
                "(component shares of imbalance energy)",
            )
        )

    events = list(noise.get("droop_events") or [])
    lines.append("")
    if events:
        rows = [
            [
                e["start_cycle"],
                e["duration_cycles"],
                f"{float(e['min_voltage_v']):.3f}",
                f"{float(e['depth_v']) * 1e3:.1f} mV",
                f"SM{int(e['worst_sm'])}",
                int(e["layer"]),
            ]
            for e in events[:MAX_RENDERED_EVENTS]
        ]
        title = f"Droop events ({len(events)} below guardband)"
        if len(events) > MAX_RENDERED_EVENTS:
            title += f", first {MAX_RENDERED_EVENTS} shown"
        lines.append(
            format_table(
                ["start", "cycles", "V(min)", "depth", "worst", "layer"],
                rows, title=title,
            )
        )
    else:
        lines.append("Droop events: none (no excursion below the guardband)")

    ledger = dict(noise.get("ledger") or {})
    if ledger:
        input_w = float(ledger.get("input_power_w", 0.0))
        rows = [["board input", f"{input_w:.3f} W", ""]]
        for term in LEDGER_TERMS:
            watts = float((ledger.get("terms_w") or {}).get(term, 0.0))
            rows.append([
                f"- {term[:-2]}", f"{watts:.4f} W",
                format_percent(watts / input_w) if input_w > 0 else "",
            ])
        rows.append([
            "= delivered",
            f"{float(ledger.get('delivered_power_w', 0.0)):.3f} W",
            format_percent(float(ledger.get("pde", 0.0))),
        ])
        lines.append("")
        lines.append(
            format_table(
                ["ledger", "power", "of input"], rows,
                title=(
                    "PDE loss ledger (closure error "
                    f"{float(ledger.get('closure_rel_error', 0.0)):.2%})"
                ),
            )
        )

    layers = list(noise.get("layers") or [])
    if layers:
        rows = [
            [
                int(row["layer"]),
                f"{float(row['mean_power_w']):.2f}",
                format_percent(float(row["power_share"])),
                f"{float(row['mean_excess_w']):.3f}",
                f"{float(row['min_voltage_v']):.3f}",
            ]
            for row in layers
        ]
        lines.append("")
        lines.append(
            format_table(
                ["layer", "P(mean) W", "share", "excess W", "V(min)"],
                rows, title="Per-layer current imbalance",
            )
        )
    return "\n".join(lines)
