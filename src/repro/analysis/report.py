"""Plain-text table and series formatting for experiment outputs.

The benchmark harness prints every reproduced table/figure as an ASCII
table in the same orientation as the paper, so a diff against the
paper's numbers is a visual exercise.  No plotting dependencies: the
"figures" are emitted as their underlying data series.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Union

Number = Union[int, float]


def _render(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
) -> str:
    """Render rows as a fixed-width ASCII table."""
    rendered = [[_render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    series: Dict[str, Sequence[Number]],
    x_label: str,
    title: str = "",
    max_points: int = 0,
) -> str:
    """Render one or more named y-series against a shared x column.

    ``series`` must contain ``x_label`` as the x values; every other key
    is a y-series of the same length.  ``max_points`` decimates long
    sweeps for readability (0 = print everything).
    """
    if x_label not in series:
        raise ValueError(f"series is missing its x column {x_label!r}")
    x = list(series[x_label])
    columns = [k for k in series if k != x_label]
    for name in columns:
        if len(series[name]) != len(x):
            raise ValueError(f"series {name!r} length mismatch")
    indices = range(len(x))
    if max_points and len(x) > max_points:
        stride = max(1, len(x) // max_points)
        indices = range(0, len(x), stride)
    rows = [[x[i]] + [series[name][i] for name in columns] for i in indices]
    return format_table([x_label] + columns, rows, title=title)


def format_percent(value: float) -> str:
    """Uniform percentage rendering for report rows."""
    return f"{100 * value:.1f}%"


def format_seconds(value: float) -> str:
    """Duration rendering that stays readable from µs to minutes."""
    if value < 1e-3:
        return f"{value * 1e6:.1f} us"
    if value < 1.0:
        return f"{value * 1e3:.1f} ms"
    if value < 120.0:
        return f"{value:.2f} s"
    return f"{value / 60.0:.1f} min"
