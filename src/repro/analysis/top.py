"""``repro top`` — a live terminal dashboard for a run directory.

Renders, from the files the live plane maintains (``status.json``,
``heartbeats/worker-*.json``, ``events.jsonl``, ``flight/``), a
point-in-time view of a sweep or exploration *while it is running*:
aggregate progress, one row per worker (with stale-worker detection),
the most recent structured events, and the flight-recorder dump count.

Everything is pure rendering over an injected ``now_unix`` — the
string for a given directory state and clock is deterministic, which
is what makes the dashboard testable (and what ``--once`` prints).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.report import format_seconds, format_table
from repro.telemetry.flight import FLIGHT_DIR
from repro.telemetry.live import read_heartbeats, read_status
from repro.telemetry.manifest import resolve_events_path, tail_events

DEFAULT_STALE_AFTER_S = 15.0
DEFAULT_EVENTS_TAIL = 6


def _age(now_unix: float, then: Optional[float]) -> Optional[float]:
    if then is None:
        return None
    return max(0.0, now_unix - float(then))


def _fmt_age(age: Optional[float]) -> str:
    return "?" if age is None else f"{age:.0f}s ago"


def _fmt_eta(eta: Optional[float]) -> str:
    return "-" if eta is None else format_seconds(float(eta))


def _progress_bar(done: int, total: int, width: int = 30) -> str:
    if total <= 0:
        return f"{done} done"
    filled = min(width, round(width * done / total))
    bar = "#" * filled + "-" * (width - filled)
    return f"[{bar}] {done}/{total} ({done / total:.0%})"


def _status_lines(
    status: Optional[Dict[str, object]], now_unix: float
) -> List[str]:
    if status is None:
        return ["no status.json yet (run not started, or live plane off)"]
    counters = dict(status.get("counters") or {})
    gauges = dict(status.get("gauges") or {})
    command = str(status.get("command") or "run")
    age = _age(now_unix, status.get("updated_unix"))
    lines = [f"{command} | status updated {_fmt_age(age)}"]

    done = int(counters.get("sweep_points_done", 0))
    failed = int(counters.get("sweep_points_failed", 0))
    retried = int(counters.get("sweep_points_retried", 0))
    total = int(gauges.get("sweep_points_total", 0))
    if total or done or failed:
        bits = [_progress_bar(done + failed, total)]
        if failed:
            bits.append(f"{failed} failed")
        if retried:
            bits.append(f"{retried} retried")
        eta = gauges.get("sweep_eta_s")
        if eta is not None:
            bits.append(f"eta {_fmt_eta(eta)}")
        wave = int(gauges.get("sweep_wave", 0))
        if wave > 1:
            bits.append(f"retry wave {wave}")
        lines.append("points " + ", ".join(bits))

    if "explore_round" in gauges:
        lines.append(
            f"explore round {int(gauges.get('explore_round', 0))}"
            f"/{int(gauges.get('explore_rounds_total', 0))}, "
            f"{int(gauges.get('explore_candidates', 0))} candidate(s), "
            f"cache hit rate "
            f"{float(gauges.get('explore_cache_hit_rate', 0.0)):.0%}, "
            f"frontier {int(gauges.get('explore_frontier_size', 0))}"
        )

    checkpoint = status.get("last_checkpoint")
    if checkpoint:
        lines.append(f"checkpoint: {checkpoint}")
    return lines


def _worker_table(
    beats: List[Dict[str, object]], now_unix: float, stale_after_s: float
) -> Optional[str]:
    if not beats:
        return None
    rows = []
    for beat in beats:
        age = _age(now_unix, beat.get("updated_unix"))
        stale = age is not None and age > stale_after_s
        current = list(beat.get("current") or [])
        doing = current[0] if current else "idle"
        if len(current) > 1:
            doing += f" (+{len(current) - 1} more)"
        rate = float(beat.get("lane_cycles_per_s") or 0.0)
        backend = str(beat.get("solver_backend") or "")
        if backend:
            # "c/3" = compiled kernel, 3 shared-LU shards; a fleet-wide
            # "numpy/..." column means the C build silently failed.
            solver = f"{backend}/{int(beat.get('solver_shards') or 0)}"
        else:
            solver = "-"
        rows.append([
            str(beat.get("worker", "?")) + (" [STALE]" if stale else ""),
            int(beat.get("points_done", 0)),
            int(beat.get("points_failed", 0)),
            int(beat.get("points_retried", 0)),
            f"{rate:,.0f}",
            solver,
            _fmt_eta(beat.get("eta_s")),
            _fmt_age(age),
            doing,
        ])
    return format_table(
        ["worker", "done", "fail", "retry", "cyc/s", "solver", "eta", "beat",
         "doing"],
        rows,
        title=f"Workers ({len(beats)})",
    )


def _events_lines(directory: Path, tail: int) -> List[str]:
    events_path = resolve_events_path(directory)
    events, _offset = tail_events(events_path)
    if not events:
        return []
    lines = [f"Recent events (last {min(tail, len(events))} of {len(events)}):"]
    for event in events[-tail:]:
        event = dict(event)
        t = event.pop("t_s", None)
        kind = event.pop("kind", "?")
        detail = ", ".join(f"{k}={v}" for k, v in event.items())
        stamp = f"{float(t):8.2f}s" if t is not None else "       ?"
        lines.append(f"  {stamp}  {kind}  {detail}")
    return lines


def _flight_line(directory: Path) -> Optional[str]:
    flight_dir = directory / FLIGHT_DIR
    if not flight_dir.is_dir():
        return None
    dumps = sorted(flight_dir.glob("*.json"))
    if not dumps:
        return "flight recorder: armed, no dumps"
    return (
        f"flight recorder: {len(dumps)} dump(s), latest {dumps[-1].name}"
    )


def render_top(
    directory,
    now_unix: float,
    stale_after_s: float = DEFAULT_STALE_AFTER_S,
    events_tail: int = DEFAULT_EVENTS_TAIL,
) -> str:
    """One deterministic frame of the live dashboard for ``directory``.

    A worker whose heartbeat is older than ``stale_after_s`` is marked
    ``[STALE]`` — on a healthy run heartbeats refresh at least per
    task, so a stale one usually means a hung or killed worker.
    """
    directory = Path(directory)
    sections: List[str] = [f"== {directory} =="]
    sections.extend(_status_lines(read_status(directory), now_unix))

    table = _worker_table(
        read_heartbeats(directory), now_unix, stale_after_s
    )
    if table is not None:
        sections.append("")
        sections.append(table)

    flight = _flight_line(directory)
    if flight is not None:
        sections.append("")
        sections.append(flight)

    events = _events_lines(directory, events_tail)
    if events:
        sections.append("")
        sections.extend(events)
    return "\n".join(sections)
