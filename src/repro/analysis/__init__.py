"""Metrics, report formatting and run observability (noise observatory)."""

from repro.analysis.compare import (
    CompareReport,
    MetricDelta,
    Threshold,
    compare_manifests,
    load_thresholds,
    render_compare,
)
from repro.analysis.metrics import (
    BoxStats,
    imbalance_distribution,
    net_energy_saving,
    noise_box_stats,
    performance_penalty,
)
from repro.analysis.observatory import (
    Band,
    DroopEvent,
    LossLedger,
    NoiseReport,
    band_decomposition,
    compute_noise_report,
    default_bands,
    droop_event_log,
    layer_imbalance_summary,
    pde_loss_ledger,
    render_noise_report,
)
from repro.analysis.report import format_series, format_table
from repro.analysis.spectral import (
    band_power,
    dominant_frequency,
    imbalance_series,
    imbalance_spectrum,
    low_frequency_fraction,
    power_spectrum,
)

__all__ = [
    "Band",
    "BoxStats",
    "CompareReport",
    "DroopEvent",
    "LossLedger",
    "MetricDelta",
    "NoiseReport",
    "Threshold",
    "band_decomposition",
    "band_power",
    "compare_manifests",
    "compute_noise_report",
    "default_bands",
    "dominant_frequency",
    "droop_event_log",
    "format_series",
    "format_table",
    "imbalance_distribution",
    "imbalance_series",
    "imbalance_spectrum",
    "layer_imbalance_summary",
    "load_thresholds",
    "low_frequency_fraction",
    "net_energy_saving",
    "noise_box_stats",
    "pde_loss_ledger",
    "performance_penalty",
    "power_spectrum",
    "render_compare",
    "render_noise_report",
]
