"""Metrics and report formatting for the paper's tables and figures."""

from repro.analysis.metrics import (
    BoxStats,
    imbalance_distribution,
    net_energy_saving,
    noise_box_stats,
    performance_penalty,
)
from repro.analysis.report import format_series, format_table
from repro.analysis.spectral import (
    band_power,
    dominant_frequency,
    imbalance_spectrum,
    low_frequency_fraction,
    power_spectrum,
)

__all__ = [
    "BoxStats",
    "band_power",
    "dominant_frequency",
    "format_series",
    "format_table",
    "imbalance_distribution",
    "imbalance_spectrum",
    "low_frequency_fraction",
    "net_energy_saving",
    "noise_box_stats",
    "performance_penalty",
    "power_spectrum",
]
