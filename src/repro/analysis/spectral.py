"""Spectral analysis of power traces and supply noise.

The paper's whole design rests on a frequency division of labor: the
CR-IVRs suppress high-frequency noise, the architectural controller the
low-to-middle band, and the effective impedance profile says which is
which.  This module provides the measurement side of that argument:

* :func:`power_spectrum` — one-sided amplitude spectrum of a signal;
* :func:`band_power` — RMS content of a signal inside a frequency band;
* :func:`imbalance_spectrum` — the spectrum of the *residual* current
  component specifically (the one with the dangerous impedance);
* :func:`dominant_frequency` — where a workload concentrates its
  current activity (used to cross-check against the impedance peaks).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.config import StackConfig
from repro.pdn.impedance import decompose_currents


def power_spectrum(
    signal: np.ndarray, sample_rate_hz: float
) -> Tuple[np.ndarray, np.ndarray]:
    """One-sided amplitude spectrum (frequencies, amplitudes).

    The DC term is removed; amplitudes are per-component sinusoid
    amplitudes (2 |X_k| / N).
    """
    signal = np.asarray(signal, dtype=float)
    if signal.ndim != 1:
        raise ValueError("signal must be 1-D")
    if signal.size < 4:
        raise ValueError("need at least 4 samples")
    if sample_rate_hz <= 0:
        raise ValueError("sample rate must be positive")
    centred = signal - signal.mean()
    spectrum = np.fft.rfft(centred)
    freqs = np.fft.rfftfreq(signal.size, 1.0 / sample_rate_hz)
    amplitudes = 2.0 * np.abs(spectrum) / signal.size
    return freqs[1:], amplitudes[1:]


def band_power(
    signal: np.ndarray,
    sample_rate_hz: float,
    low_hz: float,
    high_hz: float,
) -> float:
    """RMS amplitude of the signal's content within [low, high] Hz."""
    if not 0 <= low_hz < high_hz:
        raise ValueError("need 0 <= low < high")
    freqs, amplitudes = power_spectrum(signal, sample_rate_hz)
    mask = (freqs >= low_hz) & (freqs <= high_hz)
    if not np.any(mask):
        return 0.0
    return float(np.sqrt(0.5 * np.sum(amplitudes[mask] ** 2)))


def dominant_frequency(signal: np.ndarray, sample_rate_hz: float) -> float:
    """Frequency of the largest non-DC spectral component."""
    freqs, amplitudes = power_spectrum(signal, sample_rate_hz)
    return float(freqs[int(np.argmax(amplitudes))])


def imbalance_series(
    per_sm_power: np.ndarray,
    stack: StackConfig = StackConfig(),
) -> Dict[str, np.ndarray]:
    """Representative per-cycle series of each imbalance component.

    Decomposes every cycle's per-SM power into the three orthogonal
    components of Section III-B and takes a representative scalar for
    each: the global mean; the first column's stack deviation; the
    first SM's residual.  Vectorized over cycles, but each scalar is
    produced by the same reduction (order and operand count) that
    :func:`repro.pdn.impedance.decompose_currents` applies per frame,
    so the output matches the retained per-cycle reference loop
    (:func:`_imbalance_series_reference`) bit for bit.
    """
    per_sm_power = np.atleast_2d(np.asarray(per_sm_power, dtype=float))
    if per_sm_power.shape[1] != stack.num_sms:
        raise ValueError(
            f"expected {stack.num_sms} SM columns, got {per_sm_power.shape[1]}"
        )
    grid = per_sm_power.reshape(
        per_sm_power.shape[0], stack.num_layers, stack.num_columns
    )
    # g[0]: the all-SM mean (flat contiguous reduction per cycle).
    global_series = per_sm_power.mean(axis=1)
    # st[0]: column-0 mean minus the global mean.
    column0_mean = grid[:, :, 0].mean(axis=1)
    stack_series = column0_mean - global_series
    # r[0] in decompose_currents is (grid - global_part) - stack_part;
    # mirror that two-subtraction order for exact agreement.
    residual_series = (grid[:, 0, 0] - global_series) - stack_series
    return {
        "global": global_series,
        "stack": stack_series,
        "residual": residual_series,
    }


def _imbalance_series_reference(
    per_sm_power: np.ndarray,
    stack: StackConfig = StackConfig(),
) -> Dict[str, np.ndarray]:
    """Per-cycle reference loop behind :func:`imbalance_series`.

    Calls :func:`decompose_currents` once per cycle.  Retained as the
    ground truth the vectorized path is locked against in tests and the
    perf harness (``benchmarks/test_perf_spectral.py``).
    """
    per_sm_power = np.atleast_2d(np.asarray(per_sm_power, dtype=float))
    if per_sm_power.shape[1] != stack.num_sms:
        raise ValueError(
            f"expected {stack.num_sms} SM columns, got {per_sm_power.shape[1]}"
        )
    cycles = per_sm_power.shape[0]
    global_series = np.empty(cycles)
    stack_series = np.empty(cycles)
    residual_series = np.empty(cycles)
    for k in range(cycles):
        g, st, r = decompose_currents(
            per_sm_power[k], stack.num_layers, stack.num_columns
        )
        global_series[k] = g[0]
        stack_series[k] = st[0]
        residual_series[k] = r[0]
    return {
        "global": global_series,
        "stack": stack_series,
        "residual": residual_series,
    }


def imbalance_spectrum(
    per_sm_power: np.ndarray,
    sample_rate_hz: float,
    stack: StackConfig = StackConfig(),
) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """Spectra of the global / stack / residual current components.

    The :func:`imbalance_series` scalars of every cycle, spectrum-ized —
    showing *where in frequency* each kind of imbalance lives for a
    workload.
    """
    series = imbalance_series(per_sm_power, stack)
    return {
        name: power_spectrum(values, sample_rate_hz)
        for name, values in series.items()
    }


def low_frequency_fraction(
    signal: np.ndarray,
    sample_rate_hz: float,
    cutoff_hz: float,
) -> float:
    """Share of the signal's AC energy below ``cutoff_hz``.

    The paper's architectural opportunity in one number: the residual
    imbalance component concentrates its energy at low frequency, where
    a hundreds-of-cycles controller can reach it.
    """
    if cutoff_hz <= 0:
        raise ValueError("cutoff must be positive")
    freqs, amplitudes = power_spectrum(signal, sample_rate_hz)
    total = float(np.sum(amplitudes**2))
    if total == 0.0:
        return 0.0
    low = float(np.sum(amplitudes[freqs <= cutoff_hz] ** 2))
    return low / total
