"""Runtime fault injection for the co-simulation loop.

:class:`FaultInjector` turns a declarative
:class:`~repro.faults.events.FaultSchedule` into per-cycle mutations at
the points ``run_cosim`` exposes:

* **circuit** — element values (CR-IVR conductance stamps, parasitic
  resistances) are mutated on activation edges and the transient
  solver re-factorizes once per edge (not per cycle), so a fault costs
  one LU decomposition, not a per-step penalty; process variation
  scales the per-SM power draw right after the GPU model emits it, so
  the PDE ledger stays closed;
* **architecture** — sensor corruption rewrites the voltage vector the
  detectors see (never the physical node voltages), actuator faults
  rewrite the commanded actuation after the controller, and loop
  jitter drops observations / delays command readout;
* **system** — layer shutoff and power gating contribute halted SM
  sets; DFS transients drive the GPU's frequency-scale hook.

Stochastic faults draw from the schedule's own seeded generator, so a
scenario is reproducible independently of the workload RNG.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.config import StackConfig
from repro.faults.events import (
    ActuatorStuck,
    ControlLoopJitter,
    CRIVRPhaseLoss,
    DFSTransient,
    FaultEvent,
    FaultSchedule,
    LayerShutoff,
    PDNDrift,
    PowerGateTransient,
    ProcessVariation,
    SensorDropout,
    SensorNoise,
    SensorQuantization,
    SensorStuck,
)


class FaultInjector:
    """Applies a :class:`FaultSchedule` to one co-simulation's objects.

    Built once per run from the schedule plus handles to the live PDN
    and solver; ``run_cosim`` calls the per-cycle hooks with *recorded*
    cycle numbers (0 = end of warmup).  All hooks are cheap no-ops when
    no event of their category is scheduled.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        stack: StackConfig,
        pdn=None,
        solver=None,
    ) -> None:
        self.schedule = schedule
        self.stack = stack
        self.pdn = pdn
        self.solver = solver
        self.rng = np.random.default_rng(schedule.seed)
        num = stack.num_sms

        ev = schedule.events
        self._netlist_events: List[FaultEvent] = [
            e for e in ev if isinstance(e, (CRIVRPhaseLoss, PDNDrift))
        ]
        self._pv_events: List[ProcessVariation] = [
            e for e in ev if isinstance(e, ProcessVariation)
        ]
        self._sensor_events: List[FaultEvent] = [
            e for e in ev
            if isinstance(e, (SensorNoise, SensorQuantization, SensorStuck,
                              SensorDropout))
        ]
        self._jitter_events: List[ControlLoopJitter] = [
            e for e in ev if isinstance(e, ControlLoopJitter)
        ]
        self._actuator_events: List[ActuatorStuck] = [
            e for e in ev if isinstance(e, ActuatorStuck)
        ]
        self._halt_events: List[FaultEvent] = [
            e for e in ev if isinstance(e, (LayerShutoff, PowerGateTransient))
        ]
        self._dfs_events: List[DFSTransient] = [
            e for e in ev if isinstance(e, DFSTransient)
        ]

        for event in ev:
            for sm in self._event_sms(event, default=()):
                if not 0 <= sm < num:
                    raise ValueError(
                        f"{event.kind} targets SM {sm}, but the stack has "
                        f"{num} SMs"
                    )
        for event in self._halt_events:
            if isinstance(event, LayerShutoff) and event.layer >= stack.num_layers:
                raise ValueError(
                    f"layer_shutoff targets layer {event.layer}, but the "
                    f"stack has {stack.num_layers} layers"
                )

        # Circuit-fault machinery: base element values snapshotted once;
        # on an activation edge everything is restored then active
        # faults re-applied (compose multiplicatively), followed by one
        # solver re-factorization.
        self._crivr_elements: List = []
        self._crivr_base: List[float] = []
        self._drift_targets: Dict[str, List[Tuple[object, float]]] = {}
        if self._netlist_events:
            if pdn is None or solver is None:
                raise ValueError(
                    "circuit faults scheduled but the injector was built "
                    "without pdn/solver handles"
                )
            circuit = pdn.circuit
            from repro.circuits.elements import DifferenceConductance, Resistor

            if any(isinstance(e, CRIVRPhaseLoss) for e in self._netlist_events):
                self._crivr_elements = [
                    e for e in circuit.elements_of_type(DifferenceConductance)
                    if e.name.startswith("crivr_")
                ]
                if not self._crivr_elements:
                    raise ValueError(
                        "crivr_phase_loss scheduled but the netlist has no "
                        "CR-IVR (cr_ivr_area_mm2 = 0?)"
                    )
                self._crivr_base = [e.conductance for e in self._crivr_elements]
            for event in self._netlist_events:
                if not isinstance(event, PDNDrift):
                    continue
                prefix = event.element_prefix
                if prefix in self._drift_targets:
                    continue
                targets = [
                    (e, e.resistance)
                    for e in circuit.elements_of_type(Resistor)
                    if e.name.startswith(prefix)
                ]
                if not targets:
                    raise ValueError(
                        f"pdn_drift prefix {prefix!r} matches no resistor "
                        "in the netlist"
                    )
                self._drift_targets[prefix] = targets
        # The no-fault signature is the starting state: the first cycle
        # only triggers a refactorization if something is already active.
        self._netlist_sig: Tuple[bool, ...] = tuple(
            False for _ in self._netlist_events
        )

        # Per-SM process-variation factors, fixed for the whole run.
        self._pv_scales: List[np.ndarray] = []
        for event in self._pv_events:
            if event.scales is not None:
                if len(event.scales) != num:
                    raise ValueError(
                        f"process_variation scales has {len(event.scales)} "
                        f"entries, expected {num}"
                    )
                scales = np.asarray(event.scales, dtype=float)
            else:
                scales = np.clip(
                    self.rng.normal(1.0, event.sigma, size=num), 0.05, None
                )
            self._pv_scales.append(scales)

        # Actuator-stuck frozen snapshots (filled at activation edges).
        self._act_frozen: List[Optional[np.ndarray]] = [
            None for _ in self._actuator_events
        ]
        self._act_was_active = [False for _ in self._actuator_events]

        self._dfs_sig: Tuple[bool, ...] = tuple(
            False for _ in self._dfs_events
        )

        self.counters: Dict[str, int] = {
            "refactorizations": 0,
            "sensor_samples_corrupted": 0,
            "sensor_samples_dropped": 0,
            "observations_dropped": 0,
            "actuation_overrides": 0,
            "halted_sm_cycles": 0,
            "latency_jitter_cycles": 0,
        }

        # Active-kind signature cache for the flight recorder: event
        # windows are fixed, so the kinds tuple only changes at edges.
        self._kinds_sig: Optional[Tuple[bool, ...]] = None
        self._kinds_active: Tuple[str, ...] = ()

    # ------------------------------------------------------------------
    def active_kinds(self, cycle: int) -> Tuple[str, ...]:
        """The kinds of every event active this recorded cycle.

        Cheap enough for per-cycle sampling (the droop flight recorder
        stores it alongside each ring row): the tuple is rebuilt only
        when the activation signature changes.
        """
        sig = tuple(e.active(cycle) for e in self.schedule.events)
        if sig != self._kinds_sig:
            self._kinds_sig = sig
            self._kinds_active = tuple(
                e.kind for e, on in zip(self.schedule.events, sig) if on
            )
        return self._kinds_active

    # ------------------------------------------------------------------
    @staticmethod
    def _event_sms(event: FaultEvent, default=None):
        sms = getattr(event, "sms", None)
        return default if sms is None else sms

    def _sm_indices(self, event: FaultEvent) -> np.ndarray:
        sms = self._event_sms(event)
        if sms is None:
            return np.arange(self.stack.num_sms)
        return np.asarray(sms, dtype=int)

    # ------------------------------------------------------------------
    # Circuit layer
    # ------------------------------------------------------------------
    def apply_circuit_faults(self, cycle: int) -> bool:
        """Mutate element values on activation edges; refactor once.

        Returns True when the matrix was re-factorized this cycle.
        """
        if not self._netlist_events:
            return False
        sig = tuple(e.active(cycle) for e in self._netlist_events)
        if sig == self._netlist_sig:
            return False
        self._netlist_sig = sig
        for element, base in zip(self._crivr_elements, self._crivr_base):
            element.conductance = base
        for targets in self._drift_targets.values():
            for element, base in targets:
                element.resistance = base
        for event, active in zip(self._netlist_events, sig):
            if not active:
                continue
            if isinstance(event, CRIVRPhaseLoss):
                for element in self._crivr_elements:
                    if event.columns is not None:
                        column = int(element.name.split("_")[1][1:])
                        if column not in event.columns:
                            continue
                    element.conductance *= event.capacity_fraction
            else:  # PDNDrift
                for element, _ in self._drift_targets[event.element_prefix]:
                    element.resistance *= event.resistance_scale
        self.solver.refactor()
        self.counters["refactorizations"] += 1
        return True

    def scale_powers(self, cycle: int, powers: np.ndarray) -> np.ndarray:
        """Apply active process-variation scaling (in place)."""
        for event, scales in zip(self._pv_events, self._pv_scales):
            if event.active(cycle):
                powers *= scales
        return powers

    # ------------------------------------------------------------------
    # Architecture layer
    # ------------------------------------------------------------------
    def corrupt_sensors(self, cycle: int, voltages: np.ndarray) -> np.ndarray:
        """The voltage vector the detectors *see* (copy when faulted).

        Events apply in schedule order, so a stuck-at listed after a
        noise fault overrides it on the shared SMs — scenario files
        control the composition.
        """
        active = [e for e in self._sensor_events if e.active(cycle)]
        if not active:
            return voltages
        seen = voltages.copy()
        for event in active:
            idx = self._sm_indices(event)
            if isinstance(event, SensorNoise):
                seen[idx] += self.rng.normal(0.0, event.sigma_v, size=len(idx))
                self.counters["sensor_samples_corrupted"] += len(idx)
            elif isinstance(event, SensorQuantization):
                seen[idx] = np.round(seen[idx] / event.step_v) * event.step_v
                self.counters["sensor_samples_corrupted"] += len(idx)
            elif isinstance(event, SensorStuck):
                seen[idx] = event.value_v
                self.counters["sensor_samples_corrupted"] += len(idx)
            else:  # SensorDropout
                dropped = idx[self.rng.random(len(idx)) < event.probability]
                if len(dropped):
                    seen[dropped] = np.nan
                    self.counters["sensor_samples_dropped"] += len(dropped)
        return seen

    def observation_allowed(self, cycle: int) -> bool:
        """False when loop jitter drops this cycle's observation."""
        for event in self._jitter_events:
            if (
                event.active(cycle)
                and event.drop_probability > 0.0
                and self.rng.random() < event.drop_probability
            ):
                self.counters["observations_dropped"] += 1
                return False
        return True

    def extra_latency(self, cycle: int) -> int:
        """Additional command-readout latency injected this cycle."""
        extra = 0
        for event in self._jitter_events:
            if event.active(cycle) and event.extra_latency_cycles > 0:
                extra += int(
                    self.rng.integers(0, event.extra_latency_cycles + 1)
                )
        if extra:
            self.counters["latency_jitter_cycles"] += extra
        return extra

    def distort_actuation(
        self,
        cycle: int,
        issue_widths: np.ndarray,
        fake_rates: np.ndarray,
        dcc_powers: np.ndarray,
    ) -> None:
        """Apply stuck/jammed actuator faults to the commanded arrays.

        The arrays must be the caller's private copies (the controller's
        internal decision state is never touched).
        """
        arrays = {
            "diws": issue_widths, "fii": fake_rates, "dcc": dcc_powers
        }
        for k, event in enumerate(self._actuator_events):
            active = event.active(cycle)
            target = arrays[event.actuator]
            idx = np.asarray(event.sms, dtype=int)
            if active and not self._act_was_active[k]:
                # Activation edge: a stuck actuator freezes at whatever
                # command is in force right now.
                self._act_frozen[k] = target[idx].copy()
            self._act_was_active[k] = active
            if not active:
                continue
            if event.value is not None:
                target[idx] = event.value
            else:
                target[idx] = self._act_frozen[k]
            self.counters["actuation_overrides"] += len(idx)

    # ------------------------------------------------------------------
    # System layer
    # ------------------------------------------------------------------
    def halted_sms(self, cycle: int) -> Set[int]:
        """SMs forced idle this cycle (layer shutoff + power gating)."""
        halted: Set[int] = set()
        for event in self._halt_events:
            if not event.active(cycle):
                continue
            if isinstance(event, LayerShutoff):
                halted.update(self.stack.sms_in_layer(event.layer))
            else:
                halted.update(event.sms)
        if halted:
            self.counters["halted_sm_cycles"] += len(halted)
        return halted

    def frequency_scales(self, cycle: int) -> Optional[np.ndarray]:
        """Per-SM frequency scales, or None when unchanged since last call."""
        if not self._dfs_events:
            return None
        sig = tuple(e.active(cycle) for e in self._dfs_events)
        if sig == self._dfs_sig:
            return None
        self._dfs_sig = sig
        scales = np.ones(self.stack.num_sms)
        for event, active in zip(self._dfs_events, sig):
            if active:
                scales[self._sm_indices(event)] *= event.frequency_scale
        return scales

    # ------------------------------------------------------------------
    @property
    def touches_circuit(self) -> bool:
        return bool(self._netlist_events or self._pv_events)

    @property
    def touches_sensors(self) -> bool:
        return bool(self._sensor_events)

    @property
    def touches_actuation(self) -> bool:
        return bool(self._actuator_events)

    @property
    def touches_timing(self) -> bool:
        return bool(self._jitter_events)

    def report(self) -> Dict[str, object]:
        """Injection summary for the manifest's ``faults`` section."""
        return {
            "schedule": self.schedule.name,
            "seed": self.schedule.seed,
            "num_events": len(self.schedule),
            "events": [
                dict(event.to_dict(), layer=event.layer_name,
                     description=event.describe())
                for event in self.schedule.events
            ],
            "counters": dict(self.counters),
        }


# Guardband verdicts, ordered from best to worst.  The numeric code
# makes the verdict gateable by ``repro compare`` (lower is better).
SURVIVED, SAFE_STATE, VIOLATED = "survived", "safe_state", "violated"
VERDICT_CODES = {SURVIVED: 0, SAFE_STATE: 1, VIOLATED: 2}


def build_fault_report(
    injector: FaultInjector, result, controller=None
) -> Dict[str, object]:
    """The manifest's ``faults`` section: injection log + guardband verdict.

    The verdict grades the run against the stack's 0.8 V guardband:

    * ``survived`` — the worst SM never dropped below the guardband;
    * ``safe_state`` — it did, but the watchdog engaged and the run
      ended protected (controller in its safe state) or recovered (the
      last tenth of the trace back above the guardband): the declared
      degraded-but-controlled outcome;
    * ``violated`` — sub-guardband operation without the safe state —
      the failure the graceful-degradation machinery exists to prevent.
    """
    import numpy as np  # local: keep module import light

    guardband = float(result.stack.min_safe_voltage)
    trace = result.worst_sm_voltage_trace()
    violations = int(np.count_nonzero(trace < guardband))
    tail = trace[-max(1, len(trace) // 10):]
    stats_fn = getattr(controller, "stats", None)
    stats = stats_fn() if callable(stats_fn) else {}
    watchdog_engagements = int(stats.get("watchdog_engagements", 0))
    in_safe_state = bool(stats.get("in_safe_state", False))
    if violations == 0:
        verdict = SURVIVED
    elif watchdog_engagements > 0 and (
        in_safe_state or float(tail.min()) >= guardband
    ):
        verdict = SAFE_STATE
    else:
        verdict = VIOLATED
    report = injector.report()
    report["verdict"] = verdict
    report["summary"] = {
        "guardband_v": guardband,
        "min_voltage_v": float(trace.min()),
        "tail_min_voltage_v": float(tail.min()),
        "guardband_violation_cycles": violations,
        "guardband_violation_fraction": violations / len(trace),
        "watchdog_engagements": watchdog_engagements,
        "safe_state_decisions": int(stats.get("safe_state_decisions", 0)),
        "sensor_fallback_samples": int(
            stats.get("sensor_fallback_samples", 0)
        ),
        "nan_samples_seen": int(stats.get("nan_samples_seen", 0)),
        "limit_cycle_events": int(stats.get("limit_cycle_events", 0)),
        "verdict_code": VERDICT_CODES[verdict],
    }
    return report
