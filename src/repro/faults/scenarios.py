"""Canned fault scenarios for ``repro faults`` and the robustness tests.

Each factory returns a named, seeded :class:`FaultSchedule`.  The
schedules are deliberately severe: :func:`guardband_breaker` is
calibrated so that the stock Algorithm 1 controller (degradation
disabled) demonstrably violates the 0.8 V guardband, while the
watchdog-enabled controller survives or lands in the declared safe
state — the acceptance pair the fault-injection layer exists to lock.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.faults.events import (
    ControlLoopJitter,
    CRIVRPhaseLoss,
    DFSTransient,
    FaultSchedule,
    LayerShutoff,
    PDNDrift,
    PowerGateTransient,
    ProcessVariation,
    SensorDropout,
    SensorNoise,
    SensorStuck,
)


def guardband_breaker(seed: int = 7) -> FaultSchedule:
    """CR-IVR phase loss + sensor dropout + layer shutoff (acceptance).

    Three simultaneous insults: most of the charge-shuffle capacity
    dies, the detectors lose a third of their samples, and the top
    layer shuts off — the Fig. 9 worst case with the recovery
    machinery itself degraded.  Without graceful degradation the
    controller's partial view cannot rebalance the crippled stack and
    the worst SM falls through the guardband; the watchdog's safe
    state (uniform minimal draw) restores series balance by
    construction.
    """
    return FaultSchedule(
        name="guardband-breaker",
        seed=seed,
        events=(
            CRIVRPhaseLoss(start_cycle=100, capacity_fraction=0.05),
            SensorDropout(start_cycle=100, probability=0.35),
            LayerShutoff(start_cycle=300, layer=3),
        ),
    )


def sensor_storm(seed: int = 11) -> FaultSchedule:
    """Every class of detector corruption at once, healthy plant.

    Noise, a stuck-at-nominal sensor on SM 0 and heavy dropout: tests
    that the controller stays *inert where it should* (no actuation
    from NaN, no false triggers from a stuck healthy reading) while
    still serving the SMs it can see.
    """
    return FaultSchedule(
        name="sensor-storm",
        seed=seed,
        events=(
            SensorNoise(start_cycle=0, sigma_v=0.015),
            SensorStuck(start_cycle=200, sms=(0,), value_v=1.0),
            SensorDropout(start_cycle=400, probability=0.5),
        ),
    )


def pdn_aging(seed: int = 13) -> FaultSchedule:
    """Electromigration-style drift plus process variation.

    Lateral-grid resistance doubles mid-run and per-SM current spread
    widens — the slow cross-layer imbalance sources; exercises the
    mid-run circuit refactorization path.
    """
    return FaultSchedule(
        name="pdn-aging",
        seed=seed,
        events=(
            ProcessVariation(start_cycle=0, sigma=0.08),
            PDNDrift(start_cycle=300, element_prefix="r_link",
                     resistance_scale=2.5),
        ),
    )


def scheduler_storm(seed: int = 17) -> FaultSchedule:
    """System-layer churn: DFS steps, power gating and loop jitter."""
    return FaultSchedule(
        name="scheduler-storm",
        seed=seed,
        events=(
            DFSTransient(start_cycle=200, end_cycle=600,
                         frequency_scale=0.6, sms=(0, 1, 2, 3)),
            PowerGateTransient(start_cycle=400, end_cycle=800,
                               sms=(12, 13)),
            ControlLoopJitter(start_cycle=0, drop_probability=0.1,
                              extra_latency_cycles=8),
        ),
    )


#: name -> schedule factory, the ``repro faults`` registry.
CANNED_SCENARIOS: Dict[str, Callable[[], FaultSchedule]] = {
    "guardband-breaker": guardband_breaker,
    "sensor-storm": sensor_storm,
    "pdn-aging": pdn_aging,
    "scheduler-storm": scheduler_storm,
}


def get_scenario(name: str) -> FaultSchedule:
    """Build a canned scenario by name (``list_scenarios`` for choices)."""
    try:
        return CANNED_SCENARIOS[name]()
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; canned scenarios: "
            f"{', '.join(sorted(CANNED_SCENARIOS))}"
        )


def list_scenarios() -> List[str]:
    return sorted(CANNED_SCENARIOS)
