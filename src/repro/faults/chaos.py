"""Deterministic process/IO chaos injection.

The physics fault injector (:mod:`repro.faults.injector`) perturbs the
*modelled* system; this layer perturbs the *runtime* that carries the
campaign: worker SIGKILLs at scheduled points, torn or short
``status.json``/checkpoint/store writes, disk-full ``OSError``s and
mid-run NaN poisoning of solver state.  Every fault is scheduled — a
:class:`ChaosPlan` names the hook site, the action and the invocation
(or co-sim cycle) at which it fires — so a chaos run is exactly
reproducible and its invariants (resume loses no completed point, store
corruption degrades to a cache miss, quarantine preserves surviving
lanes) can be asserted bit-for-bit.

Activation is either explicit (:func:`activate`, used by the pytest
fixture) or via the ``REPRO_CHAOS`` environment variable naming a plan
JSON (inherited across ``fork``/``spawn``, which is how sweeps get
their workers sabotaged).  Cross-process fire-once semantics use
``O_CREAT | O_EXCL`` token files under the plan's ``token_dir``, so an
event that killed one worker does not also kill its retry.

This module is deliberately stdlib-only: the hook sites live in hot or
low-level code (``sim/sweep.py``, ``sim/store.py``,
``telemetry/live.py``, ``sim/cosim.py``) and must be able to import it
without dragging in the simulation stack.  The inactive fast path is
one ``None`` check per hook.
"""

from __future__ import annotations

import errno
import json
import os
import signal
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, IO, List, Optional

CHAOS_ENV = "REPRO_CHAOS"

# Hook sites the runtime exposes.  Invocation-counted sites fire on the
# ``at``-th call of :func:`fire` for that site in a process; the
# ``cosim_cycle`` site instead matches ``at`` against the recorded
# co-sim cycle index (negative values address warmup cycles).
SITES = (
    "checkpoint_write",  # SweepRunner checkpoint temp-file write
    "status_write",      # live status.json publish
    "store_append",      # ResultStore JSONL append
    "worker_point",      # sweep worker, start of a point payload
    "cosim_cycle",       # inside the co-sim loop, before the solve
)
ACTIONS = (
    "kill",        # partial write (write sites), then SIGKILL the process
    "torn_write",  # leave a truncated write behind and fail the call
    "disk_full",   # raise OSError(ENOSPC)
    "nan_poison",  # overwrite solver reactive state with NaN (cosim_cycle)
)


class ChaosError(OSError):
    """An injected IO failure (subclass of OSError so retry/cleanup
    paths treat it exactly like the real thing)."""


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled runtime fault."""

    site: str
    action: str
    at: int = 0
    lane: Optional[int] = None  # batch lane targeting (cosim_cycle only)
    once: bool = True

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(f"unknown chaos site {self.site!r}; know {SITES}")
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown chaos action {self.action!r}; know {ACTIONS}"
            )

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "site": self.site,
            "action": self.action,
            "at": self.at,
        }
        if self.lane is not None:
            record["lane"] = self.lane
        if not self.once:
            record["once"] = False
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "ChaosEvent":
        return cls(
            site=str(record["site"]),
            action=str(record["action"]),
            at=int(record.get("at", 0)),
            lane=(None if record.get("lane") is None else int(record["lane"])),
            once=bool(record.get("once", True)),
        )


@dataclass
class ChaosPlan:
    """A named, JSON-round-tripping schedule of chaos events.

    ``token_dir`` holds the cross-process fire-once tokens; it defaults
    to ``<plan path> + ".state"`` when the plan is loaded from disk so
    forked workers agree on it without coordination.
    """

    name: str
    events: List[ChaosEvent] = field(default_factory=list)
    token_dir: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "name": self.name,
            "events": [event.to_dict() for event in self.events],
        }
        if self.token_dir is not None:
            record["token_dir"] = self.token_dir
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "ChaosPlan":
        return cls(
            name=str(record.get("name", "chaos")),
            events=[ChaosEvent.from_dict(e) for e in record.get("events", [])],
            token_dir=(
                None
                if record.get("token_dir") is None
                else str(record["token_dir"])
            ),
        )

    def save(self, path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = self.to_dict()
        record.setdefault("token_dir", str(path) + ".state")
        path.write_text(json.dumps(record, indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path) -> "ChaosPlan":
        path = Path(path)
        plan = cls.from_dict(json.loads(path.read_text()))
        if plan.token_dir is None:
            plan.token_dir = str(path) + ".state"
        return plan


class ChaosMonkey:
    """Runtime matcher: counts hook invocations, claims due events.

    Per-site invocation counters are per-process (a worker counts its
    own points); fire-once tokens are cross-process via the plan's
    ``token_dir``.
    """

    def __init__(self, plan: ChaosPlan) -> None:
        self.plan = plan
        self._counts: Dict[str, int] = {}
        self._fired_local: set = set()

    def invocations(self, site: str) -> int:
        """How many times ``site`` has fired in this process."""
        return self._counts.get(site, 0)

    def _claim(self, index: int) -> bool:
        event = self.plan.events[index]
        if not event.once:
            return True
        if index in self._fired_local:
            return False
        token_dir = self.plan.token_dir
        if token_dir:
            Path(token_dir).mkdir(parents=True, exist_ok=True)
            token = Path(token_dir) / f"event-{index}.fired"
            try:
                fd = os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                self._fired_local.add(index)
                return False
            os.close(fd)
        self._fired_local.add(index)
        return True

    def fire(self, site: str) -> Optional[ChaosEvent]:
        """Count one invocation of ``site``; return the due event, if any."""
        count = self._counts.get(site, 0)
        self._counts[site] = count + 1
        for index, event in enumerate(self.plan.events):
            if event.site == site and event.at == count and self._claim(index):
                return event
        return None

    def cycle_schedule(self) -> FrozenSet[int]:
        """Recorded-cycle indices at which ``cosim_cycle`` events sit.

        The co-sim loop pre-resolves this set so an inactive cycle costs
        one membership test, and only scheduled cycles pay the claim.
        """
        return frozenset(
            event.at for event in self.plan.events if event.site == "cosim_cycle"
        )

    def take_cycle(self, cycle: int) -> List[ChaosEvent]:
        """Claim and return the ``cosim_cycle`` events due at ``cycle``."""
        due = []
        for index, event in enumerate(self.plan.events):
            if (
                event.site == "cosim_cycle"
                and event.at == cycle
                and self._claim(index)
            ):
                due.append(event)
        return due


# ----------------------------------------------------------------------
# Process-wide activation
# ----------------------------------------------------------------------
_MONKEY: Optional[ChaosMonkey] = None
_ENV_CHECKED = False


def current() -> Optional[ChaosMonkey]:
    """The active monkey, resolving ``REPRO_CHAOS`` once per process."""
    global _MONKEY, _ENV_CHECKED
    if _MONKEY is None and not _ENV_CHECKED:
        _ENV_CHECKED = True
        path = os.environ.get(CHAOS_ENV)
        if path:
            _MONKEY = ChaosMonkey(ChaosPlan.load(path))
    return _MONKEY


def activate(plan: ChaosPlan) -> ChaosMonkey:
    """Install ``plan`` in this process (pytest fixture entry point)."""
    global _MONKEY, _ENV_CHECKED
    _MONKEY = ChaosMonkey(plan)
    _ENV_CHECKED = True
    return _MONKEY


def deactivate() -> None:
    """Remove the active monkey and allow env re-resolution."""
    global _MONKEY, _ENV_CHECKED
    _MONKEY = None
    _ENV_CHECKED = False


def fire(site: str) -> Optional[ChaosEvent]:
    """Hook-site entry point: one ``None`` check when chaos is off."""
    monkey = current()
    if monkey is None:
        return None
    return monkey.fire(site)


def sabotage_write(event: ChaosEvent, handle: IO[str], text: str) -> None:
    """Execute a write-site event against an open text handle.

    ``disk_full`` raises before anything lands; ``kill`` and
    ``torn_write`` flush a truncated prefix first — ``kill`` then
    SIGKILLs the process mid-write (the torn temp file is what the
    atomic-replace protocol must survive), ``torn_write`` raises
    :class:`ChaosError` so the caller's failure path runs with a short
    write actually on disk.
    """
    if event.action == "disk_full":
        raise ChaosError(errno.ENOSPC, "chaos: disk full")
    if event.action in ("kill", "torn_write"):
        handle.write(text[: max(1, len(text) // 2)])
        handle.flush()
        try:
            os.fsync(handle.fileno())
        except OSError:
            pass
        if event.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        raise ChaosError(errno.EIO, "chaos: torn write")
    raise ValueError(f"cannot sabotage a write with action {event.action!r}")
