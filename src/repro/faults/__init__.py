"""Cross-layer fault injection for the co-simulation.

Public surface:

* :class:`FaultSchedule` and the typed event classes
  (:mod:`repro.faults.events`) — declarative, JSON-round-tripping
  scenario descriptions;
* :class:`FaultInjector` / :func:`build_fault_report`
  (:mod:`repro.faults.injector`) — the runtime that ``run_cosim``
  drives, plus the manifest's ``faults`` section with the guardband
  verdict;
* :func:`get_scenario` / :data:`CANNED_SCENARIOS`
  (:mod:`repro.faults.scenarios`) — the ``repro faults`` registry;
* :class:`ChaosPlan` / :class:`ChaosMonkey`
  (:mod:`repro.faults.chaos`) — deterministic process/IO chaos
  (scheduled SIGKILLs, torn writes, disk-full errors, NaN poisoning)
  behind ``repro chaos`` and the test fixtures.

See ``docs/robustness.md`` for the fault taxonomy and scenario format.
"""

from repro.faults.events import (
    ActuatorStuck,
    ControlLoopJitter,
    CRIVRPhaseLoss,
    DFSTransient,
    EVENT_TYPES,
    FaultEvent,
    FaultSchedule,
    LayerShutoff,
    PDNDrift,
    PowerGateTransient,
    ProcessVariation,
    SensorDropout,
    SensorNoise,
    SensorQuantization,
    SensorStuck,
    event_from_dict,
)
from repro.faults.chaos import (
    ChaosError,
    ChaosEvent,
    ChaosMonkey,
    ChaosPlan,
)
from repro.faults.injector import (
    SAFE_STATE,
    SURVIVED,
    VIOLATED,
    FaultInjector,
    build_fault_report,
)
from repro.faults.scenarios import (
    CANNED_SCENARIOS,
    get_scenario,
    list_scenarios,
)

__all__ = [
    "ActuatorStuck",
    "CANNED_SCENARIOS",
    "ChaosError",
    "ChaosEvent",
    "ChaosMonkey",
    "ChaosPlan",
    "ControlLoopJitter",
    "CRIVRPhaseLoss",
    "DFSTransient",
    "EVENT_TYPES",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "LayerShutoff",
    "PDNDrift",
    "PowerGateTransient",
    "ProcessVariation",
    "SAFE_STATE",
    "SURVIVED",
    "SensorDropout",
    "SensorNoise",
    "SensorQuantization",
    "SensorStuck",
    "VIOLATED",
    "build_fault_report",
    "event_from_dict",
    "get_scenario",
    "list_scenarios",
]
