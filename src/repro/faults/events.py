"""Typed, timed fault events and the declarative :class:`FaultSchedule`.

The robustness story of the paper — the controller keeps the worst SM
above the 0.8 V guardband under the nastiest imbalance — is only
testable if the nasty scenarios can be *described*.  A schedule is a
list of typed events, each active over a half-open window of recorded
cycles (cycle 0 = end of warmup, matching
:class:`~repro.sim.cosim.LayerShutoffEvent`'s convention), spanning all
three layers of the stack:

* **circuit** — CR-IVR interleave-phase loss (reduced shuffle
  capacity), per-SM process-variation current scaling, PDN
  parasitic-resistance drift;
* **architecture** — detector corruption (noise / quantization /
  stuck-at / dropout), stuck or jammed DIWS/FII/DCC actuators,
  control-loop latency jitter and missed decisions;
* **system** — layer shutoff (the Fig. 9 worst case, generalized), SM
  power gating, mid-run DFS frequency transients.

Schedules round-trip through JSON (``FaultSchedule.from_json`` /
``to_json``) so scenarios live in version-controlled files, and carry
their own ``seed`` so stochastic faults (noise, dropout, jitter) are
reproducible independently of the workload's RNG stream.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import ClassVar, Dict, List, Optional, Tuple, Type

#: Fault layers (for reporting/grouping; the injector dispatches on kind).
CIRCUIT, ARCHITECTURE, SYSTEM = "circuit", "architecture", "system"

_FOREVER = 10**9


@dataclass(frozen=True)
class FaultEvent:
    """Base class: one fault active over ``[start_cycle, end_cycle)``.

    Cycle numbers are *recorded* cycles (0 = end of warmup); negative
    start cycles let a fault begin during warmup.
    """

    kind: ClassVar[str] = "abstract"
    layer_name: ClassVar[str] = "abstract"

    start_cycle: int = 0
    end_cycle: int = _FOREVER

    def __post_init__(self) -> None:
        if self.end_cycle <= self.start_cycle:
            raise ValueError(
                f"{type(self).__name__}: end_cycle ({self.end_cycle}) must "
                f"be after start_cycle ({self.start_cycle})"
            )

    def active(self, cycle: int) -> bool:
        return self.start_cycle <= cycle < self.end_cycle

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"kind": self.kind}
        out.update(asdict(self))
        return out

    def describe(self) -> str:
        window = (
            f"[{self.start_cycle}, "
            + ("inf" if self.end_cycle >= _FOREVER else str(self.end_cycle))
            + ")"
        )
        return f"{self.kind} {window}"


def _check_fraction(name: str, value: float, allow_zero: bool = False) -> None:
    low_ok = value >= 0.0 if allow_zero else value > 0.0
    if not (low_ok and value <= 1.0):
        bound = "[0, 1]" if allow_zero else "(0, 1]"
        raise ValueError(f"{name} must be in {bound}, got {value}")


# ---------------------------------------------------------------------------
# Circuit-layer faults
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CRIVRPhaseLoss(FaultEvent):
    """Interleave-phase / flying-leg failure in the distributed CR-IVR.

    A dead phase removes a fraction of the charge-shuffle capacity:
    every averaged conductance stamp of the affected columns is scaled
    to ``capacity_fraction`` of its designed value while the fault is
    active (``columns=None`` hits all sub-IVRs).
    """

    kind: ClassVar[str] = "crivr_phase_loss"
    layer_name: ClassVar[str] = CIRCUIT

    capacity_fraction: float = 0.5
    columns: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_fraction("capacity_fraction", self.capacity_fraction,
                        allow_zero=True)
        if self.columns is not None:
            object.__setattr__(self, "columns", tuple(self.columns))


@dataclass(frozen=True)
class PDNDrift(FaultEvent):
    """Parasitic-resistance drift (aging / thermal) on matching elements.

    Scales the resistance of every element whose name starts with
    ``element_prefix`` (e.g. ``r_link`` for the lateral grid,
    ``r_c4`` for the bump arrays) by ``resistance_scale``.
    """

    kind: ClassVar[str] = "pdn_drift"
    layer_name: ClassVar[str] = CIRCUIT

    element_prefix: str = "r_link"
    resistance_scale: float = 2.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.resistance_scale <= 0:
            raise ValueError(
                f"resistance_scale must be positive, got "
                f"{self.resistance_scale}"
            )
        if not self.element_prefix:
            raise ValueError("element_prefix cannot be empty")


@dataclass(frozen=True)
class ProcessVariation(FaultEvent):
    """Per-SM process-variation current scaling.

    Each SM's power draw is multiplied by a per-SM factor: explicit
    ``scales`` (length ``num_sms``) if given, else factors drawn once
    from ``N(1, sigma)`` with the schedule's seed (clipped to stay
    positive).  Models die-to-die / within-die leakage and drive
    spread, which skews the current balance the stack depends on.
    """

    kind: ClassVar[str] = "process_variation"
    layer_name: ClassVar[str] = CIRCUIT

    sigma: float = 0.05
    scales: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.sigma < 0:
            raise ValueError(f"sigma cannot be negative, got {self.sigma}")
        if self.scales is not None:
            object.__setattr__(self, "scales", tuple(float(s) for s in self.scales))
            if any(s <= 0 for s in self.scales):
                raise ValueError("explicit scales must all be positive")


# ---------------------------------------------------------------------------
# Architecture-layer faults
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SensorNoise(FaultEvent):
    """Additive Gaussian noise on the raw detector input voltage."""

    kind: ClassVar[str] = "sensor_noise"
    layer_name: ClassVar[str] = ARCHITECTURE

    sigma_v: float = 0.01
    sms: Optional[Tuple[int, ...]] = None  # None = every SM

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.sigma_v < 0:
            raise ValueError(f"sigma_v cannot be negative, got {self.sigma_v}")
        if self.sms is not None:
            object.__setattr__(self, "sms", tuple(self.sms))


@dataclass(frozen=True)
class SensorQuantization(FaultEvent):
    """Degraded sensor resolution: coarse re-quantization of the input."""

    kind: ClassVar[str] = "sensor_quantization"
    layer_name: ClassVar[str] = ARCHITECTURE

    step_v: float = 0.05
    sms: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.step_v <= 0:
            raise ValueError(f"step_v must be positive, got {self.step_v}")
        if self.sms is not None:
            object.__setattr__(self, "sms", tuple(self.sms))


@dataclass(frozen=True)
class SensorStuck(FaultEvent):
    """Stuck-at sensor: the affected SMs report a frozen voltage."""

    kind: ClassVar[str] = "sensor_stuck"
    layer_name: ClassVar[str] = ARCHITECTURE

    value_v: float = 1.0
    sms: Tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.sms:
            raise ValueError("sensor_stuck needs at least one SM")
        object.__setattr__(self, "sms", tuple(self.sms))


@dataclass(frozen=True)
class SensorDropout(FaultEvent):
    """Lost samples: each affected reading becomes NaN with probability p.

    NaN is the contract for "no sample" — the controller must never
    actuate on it (see the sensor-loss fallback in
    :class:`~repro.core.controller.VoltageSmoothingController`).
    """

    kind: ClassVar[str] = "sensor_dropout"
    layer_name: ClassVar[str] = ARCHITECTURE

    probability: float = 0.1
    sms: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_fraction("probability", self.probability, allow_zero=True)
        if self.sms is not None:
            object.__setattr__(self, "sms", tuple(self.sms))


@dataclass(frozen=True)
class ActuatorStuck(FaultEvent):
    """A stuck or jammed actuator on selected SMs.

    ``value=None`` freezes the actuator at whatever command was in
    force when the fault began (stuck); a number jams it there
    outright.  ``actuator`` selects the command field: ``diws`` (issue
    width), ``fii`` (fake rate) or ``dcc`` (compensation watts).
    """

    kind: ClassVar[str] = "actuator_stuck"
    layer_name: ClassVar[str] = ARCHITECTURE

    actuator: str = "diws"
    sms: Tuple[int, ...] = (0,)
    value: Optional[float] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.actuator not in ("diws", "fii", "dcc"):
            raise ValueError(
                f"actuator must be diws/fii/dcc, got {self.actuator!r}"
            )
        if not self.sms:
            raise ValueError("actuator_stuck needs at least one SM")
        object.__setattr__(self, "sms", tuple(self.sms))


@dataclass(frozen=True)
class ControlLoopJitter(FaultEvent):
    """Timing faults in the control loop.

    ``drop_probability`` makes the controller miss whole observations
    (detector samples never taken that cycle); ``extra_latency_cycles``
    adds uniform 0..N cycles of jitter to when enqueued commands are
    read out.
    """

    kind: ClassVar[str] = "control_jitter"
    layer_name: ClassVar[str] = ARCHITECTURE

    drop_probability: float = 0.0
    extra_latency_cycles: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_fraction("drop_probability", self.drop_probability,
                        allow_zero=True)
        if self.extra_latency_cycles < 0:
            raise ValueError("extra_latency_cycles cannot be negative")
        if self.drop_probability == 0.0 and self.extra_latency_cycles == 0:
            raise ValueError(
                "control_jitter with no drop probability and no extra "
                "latency is a no-op; give it at least one"
            )


# ---------------------------------------------------------------------------
# System-layer faults
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class LayerShutoff(FaultEvent):
    """A whole layer's SMs forced idle (the paper's Fig. 9 worst case)."""

    kind: ClassVar[str] = "layer_shutoff"
    layer_name: ClassVar[str] = SYSTEM

    layer: int = 3

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.layer < 0:
            raise ValueError(f"layer cannot be negative, got {self.layer}")


@dataclass(frozen=True)
class PowerGateTransient(FaultEvent):
    """Warped-Gates-style power gating of an arbitrary SM subset."""

    kind: ClassVar[str] = "power_gate"
    layer_name: ClassVar[str] = SYSTEM

    sms: Tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.sms:
            raise ValueError("power_gate needs at least one SM")
        object.__setattr__(self, "sms", tuple(self.sms))


@dataclass(frozen=True)
class DFSTransient(FaultEvent):
    """GRAPE-style DFS step: selected SMs run at a scaled frequency."""

    kind: ClassVar[str] = "dfs_transient"
    layer_name: ClassVar[str] = SYSTEM

    frequency_scale: float = 0.5
    sms: Optional[Tuple[int, ...]] = None  # None = every SM

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.frequency_scale <= 1.0:
            raise ValueError(
                f"frequency_scale must be in (0, 1], got "
                f"{self.frequency_scale}"
            )
        if self.sms is not None:
            object.__setattr__(self, "sms", tuple(self.sms))


#: kind string -> event class, for JSON deserialization.
EVENT_TYPES: Dict[str, Type[FaultEvent]] = {
    cls.kind: cls
    for cls in (
        CRIVRPhaseLoss, PDNDrift, ProcessVariation,
        SensorNoise, SensorQuantization, SensorStuck, SensorDropout,
        ActuatorStuck, ControlLoopJitter,
        LayerShutoff, PowerGateTransient, DFSTransient,
    )
}


def event_from_dict(data: Dict[str, object]) -> FaultEvent:
    """Build a typed event from its JSON dict (``kind`` selects the type)."""
    if "kind" not in data:
        raise ValueError(f"fault event needs a 'kind' field: {data!r}")
    kind = data["kind"]
    try:
        cls = EVENT_TYPES[kind]
    except KeyError:
        raise ValueError(
            f"unknown fault kind {kind!r}; known kinds: "
            f"{sorted(EVENT_TYPES)}"
        )
    known = {f.name for f in fields(cls)}
    payload = {k: v for k, v in data.items() if k != "kind"}
    unknown = set(payload) - known
    if unknown:
        raise ValueError(
            f"fault {kind!r} has unknown fields: {sorted(unknown)}; "
            f"valid fields: {sorted(known)}"
        )
    # JSON has no tuples; coerce list-valued fields.
    for key, value in payload.items():
        if isinstance(value, list):
            payload[key] = tuple(value)
    return cls(**payload)


# ---------------------------------------------------------------------------
# Schedule
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FaultSchedule:
    """An ordered set of fault events plus the stochastic-fault seed."""

    events: Tuple[FaultEvent, ...] = ()
    seed: int = 0
    name: str = "custom"

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise TypeError(
                    f"schedule events must be FaultEvent instances, got "
                    f"{type(event).__name__}"
                )

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> List[FaultEvent]:
        return [e for e in self.events if e.kind == kind]

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultSchedule":
        events = data.get("events")
        if not isinstance(events, (list, tuple)):
            raise ValueError("fault schedule needs an 'events' list")
        unknown = set(data) - {"name", "seed", "events"}
        if unknown:
            raise ValueError(
                f"fault schedule has unknown keys: {sorted(unknown)}"
            )
        return cls(
            events=tuple(event_from_dict(dict(e)) for e in events),
            seed=int(data.get("seed", 0)),
            name=str(data.get("name", "custom")),
        )

    def to_json(self, path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def from_json(cls, path) -> "FaultSchedule":
        with open(Path(path)) as handle:
            data = json.load(handle)
        if not isinstance(data, dict):
            raise ValueError(f"fault schedule {path} must hold a JSON object")
        return cls.from_dict(data)
