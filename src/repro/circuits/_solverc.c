/* Fused batched trapezoidal substep kernel for the PDN co-simulator.
 *
 * Compiled on demand by repro.circuits._solverc (plain cc, no Python
 * headers) and driven through ctypes.  Operates in place on the NumPy
 * buffers of repro.circuits.transient.BatchTransientSolver; one call
 * advances every lane `nsub` trapezoidal steps — the whole co-sim
 * cycle's worth of substeps in a single crossing of the ctypes
 * boundary.
 *
 * The contract is bit-identical equivalence with the NumPy batch step
 * (which is itself bit-identical to B serial TransientSolver runs):
 *
 *   - compile with -ffp-contract=off (no FMA contraction) and without
 *     -ffast-math, so double expressions evaluate exactly as NumPy's
 *     unfused elementwise kernels;
 *   - the RHS scatter accumulates gain*value contributions in triple
 *     order, matching np.bincount's (and np.add.at's) input-order
 *     accumulation per index;
 *   - the back-substitution calls the very LAPACK dgetrs scipy's
 *     getrs wrapper calls (function pointer extracted from
 *     scipy.linalg.cython_lapack by the Python side), one NRHS=1
 *     solve per lane on the lane's shard LU — same routine, same
 *     operands, same bits.  A hand-rolled P·L·U substitution was
 *     rejected: a blocked BLAS trsm reorders dot-product accumulation,
 *     so only the genuine dgetrs preserves the bit-identity oracle.
 *
 * Index arrays are the solver's flat-view gathers: lane-offset indices
 * into the flattened (B, ...) buffers, precomputed once in Python.
 */

#include <stdint.h>
#include <string.h>

typedef int64_t i64;

/* LAPACK dgetrs, Fortran calling convention: all arguments by
 * reference, pivots 1-based int32, matrices column-major. */
typedef void (*dgetrs_t)(char *trans, int *n, int *nrhs, double *a,
                         int *lda, int *ipiv, double *b, int *ldb,
                         int *info);

typedef struct {
    /* dimensions */
    i64 n_lanes;    /* B */
    i64 size;       /* MNA system size per lane */
    i64 n_vals;     /* per-lane value-vector length [ieq | sources] */
    i64 n_react;    /* reactive elements per lane (== cs offset) */
    i64 n_scatter;  /* total flat scatter triples (B * per-lane) */
    i64 n_cs;       /* total flat current-source gather length */
    i64 n_vs;       /* voltage-source rows per lane */
    /* LAPACK back-substitution */
    void *dgetrs;   /* dgetrs function pointer */
    void *lu_addr;  /* (B,) i64 addresses of F-ordered shard LU blocks */
    void *piv_addr; /* (B,) i64 addresses of 1-based int32 pivot vectors */
    /* reactive companion state, (B, n_react) unless noted */
    void *react_g;
    void *react_v;
    void *react_i;
    void *react_sign; /* (n_react,) */
    void *pos_mask;   /* (n_react,) */
    void *neg_mask;   /* (n_react,) */
    void *react_pos;  /* (B*n_react,) flat indices into sol */
    void *react_neg;  /* (B*n_react,) flat indices into sol */
    /* per-step value vector and its source gather */
    void *vals;     /* (B, n_vals) */
    void *base;     /* flattened shared current buffer */
    void *cs_dst;   /* (n_cs,) flat indices into vals */
    void *cs_src;   /* (n_cs,) flat indices into base */
    /* RHS scatter triples (flat across lanes) */
    void *scat_idx;  /* (n_scatter,) flat indices into rhs */
    void *scat_src;  /* (n_scatter,) flat indices into vals */
    void *scat_gain; /* (n_scatter,) */
    /* voltage-source row stamp */
    void *vs_rows;  /* (n_vs,) per-lane row indices */
    void *vs_vals;  /* (B, n_vs) */
    /* solution and RHS blocks, (B, size); rhs keeps the final
     * substep's values for guard forensics */
    void *rhs;
    void *sol;
} SolverState;

/* Advance every lane `nsub` trapezoidal steps.  Returns 0, or
 * -(lane + 1) if dgetrs reports a bad argument for that lane (a
 * wiring bug, not a numerical event — NaNs propagate silently just
 * like the NumPy path and are caught by the solver guard's health
 * proof afterwards). */
i64 solver_step_n(SolverState *st, i64 nsub) {
    const i64 B = st->n_lanes;
    const i64 SZ = st->size;
    const i64 NV = st->n_vals;
    const i64 R = st->n_react;
    const i64 NVS = st->n_vs;
    double *react_g = (double *)st->react_g;
    double *react_v = (double *)st->react_v;
    double *react_i = (double *)st->react_i;
    double *react_sign = (double *)st->react_sign;
    double *pos_mask = (double *)st->pos_mask;
    double *neg_mask = (double *)st->neg_mask;
    i64 *react_pos = (i64 *)st->react_pos;
    i64 *react_neg = (i64 *)st->react_neg;
    double *vals = (double *)st->vals;
    double *base = (double *)st->base;
    i64 *cs_dst = (i64 *)st->cs_dst;
    i64 *cs_src = (i64 *)st->cs_src;
    i64 *scat_idx = (i64 *)st->scat_idx;
    i64 *scat_src = (i64 *)st->scat_src;
    double *scat_gain = (double *)st->scat_gain;
    i64 *vs_rows = (i64 *)st->vs_rows;
    double *vs_vals = (double *)st->vs_vals;
    double *rhs = (double *)st->rhs;
    double *sol = (double *)st->sol;
    i64 *lu_addr = (i64 *)st->lu_addr;
    i64 *piv_addr = (i64 *)st->piv_addr;
    dgetrs_t dgetrs = (dgetrs_t)st->dgetrs;
    char trans = 'N';
    int n = (int)SZ;
    int one = 1;

    for (i64 sub = 0; sub < nsub; sub++) {
        /* Companion injections ieq = g*v + i land in the head of each
         * lane's value vector (the gather below only writes the
         * source tail, so the head doubles as the ieq scratch for the
         * post-solve state update). */
        for (i64 b = 0; b < B; b++) {
            double *g = react_g + b * R;
            double *v = react_v + b * R;
            double *ci = react_i + b * R;
            double *vb = vals + b * NV;
            for (i64 j = 0; j < R; j++)
                vb[j] = g[j] * v[j] + ci[j];
        }

        /* Shared-current-buffer gather (flat element copies). */
        for (i64 k = 0; k < st->n_cs; k++)
            vals[cs_dst[k]] = base[cs_src[k]];

        /* Gain-weighted scatter into the RHS block, triple order ==
         * bincount's input-order accumulation per index. */
        memset(rhs, 0, (size_t)(B * SZ) * sizeof(double));
        for (i64 k = 0; k < st->n_scatter; k++)
            rhs[scat_idx[k]] += scat_gain[k] * vals[scat_src[k]];

        /* Voltage-source row stamp (constants only on this path). */
        for (i64 b = 0; b < B; b++) {
            double *rb = rhs + b * SZ;
            double *vv = vs_vals + b * NVS;
            for (i64 m = 0; m < NVS; m++)
                rb[vs_rows[m]] = vv[m];
        }

        /* Back-substitute each lane in place on its solution row
         * against its shard's LU. */
        for (i64 b = 0; b < B; b++) {
            double *row = sol + b * SZ;
            int info = 0;
            memcpy(row, rhs + b * SZ, (size_t)SZ * sizeof(double));
            dgetrs(&trans, &n, &one, (double *)(void *)lu_addr[b], &n,
                   (int *)(void *)piv_addr[b], row, &n, &info);
            if (info != 0)
                return -(b + 1);
        }

        /* Reactive-state update: v' across every terminal pair,
         * i' = g*v' + sign*ieq. */
        for (i64 b = 0; b < B; b++) {
            i64 *rp = react_pos + b * R;
            i64 *rn = react_neg + b * R;
            double *g = react_g + b * R;
            double *v = react_v + b * R;
            double *ci = react_i + b * R;
            double *vb = vals + b * NV;
            for (i64 j = 0; j < R; j++) {
                double vn = sol[rp[j]] * pos_mask[j]
                          - sol[rn[j]] * neg_mask[j];
                ci[j] = g[j] * vn + react_sign[j] * vb[j];
                v[j] = vn;
            }
        }
    }
    return 0;
}
