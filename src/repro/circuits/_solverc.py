"""Compile-on-demand loader for the batched solver kernel (``_solverc.c``).

Shares the build/cache/loud-fallback machinery of
:class:`repro.native.cbuild.KernelBuild` with the GPU step kernel
(``repro.gpu._cbuild``).  When no compiler is available, the build
fails, or scipy's LAPACK ``dgetrs`` pointer cannot be extracted,
:class:`repro.circuits.transient.BatchTransientSolver` falls back to its
pure-NumPy batch step — same results (both are bit-identical to B
serial runs), just slower; the co-sim telemetry surfaces the count as
``solver.backend_fallback``.

Setting ``REPRO_SOLVER_CBUILD=fail`` forces the build to fail (test
hook for the fallback path); ``REPRO_SOLVER_CBUILD=quiet`` suppresses
the warning while keeping the counter.  ``REPRO_SOLVER_BACKEND=c|numpy``
(read by the batch solver, not here) selects the backend explicitly.

The kernel back-substitutes through the very LAPACK ``dgetrs`` scipy's
``getrs`` wrapper calls: the function pointer is pulled out of
``scipy.linalg.cython_lapack.__pyx_capi__`` at runtime, so the C path
runs the same routine on the same operands and stays bit-identical to
the NumPy oracle.  (A hand-rolled P·L·U substitution was rejected — a
blocked BLAS ``trsm`` reorders dot-product accumulation, which breaks
the bit-identity contract.)
"""

from __future__ import annotations

import ctypes
from pathlib import Path
from typing import Optional

from repro.native.cbuild import LOAD_FAILED as _LOAD_FAILED
from repro.native.cbuild import KernelBuild

CBUILD_ENV = "REPRO_SOLVER_CBUILD"
BACKEND_ENV = "REPRO_SOLVER_BACKEND"

_C_SOURCE = Path(__file__).with_name("_solverc.c")

_PTR = ctypes.c_void_p
_I64 = ctypes.c_longlong


class CSolverState(ctypes.Structure):
    """Mirror of ``SolverState`` in ``_solverc.c`` (field order matters)."""

    _fields_ = [
        ("n_lanes", _I64),
        ("size", _I64),
        ("n_vals", _I64),
        ("n_react", _I64),
        ("n_scatter", _I64),
        ("n_cs", _I64),
        ("n_vs", _I64),
        ("dgetrs", _PTR),
        ("lu_addr", _PTR),
        ("piv_addr", _PTR),
        ("react_g", _PTR),
        ("react_v", _PTR),
        ("react_i", _PTR),
        ("react_sign", _PTR),
        ("pos_mask", _PTR),
        ("neg_mask", _PTR),
        ("react_pos", _PTR),
        ("react_neg", _PTR),
        ("vals", _PTR),
        ("base", _PTR),
        ("cs_dst", _PTR),
        ("cs_src", _PTR),
        ("scat_idx", _PTR),
        ("scat_src", _PTR),
        ("scat_gain", _PTR),
        ("vs_rows", _PTR),
        ("vs_vals", _PTR),
        ("rhs", _PTR),
        ("sol", _PTR),
    ]


def _configure(lib: ctypes.CDLL) -> None:
    lib.solver_step_n.argtypes = [ctypes.POINTER(CSolverState), _I64]
    lib.solver_step_n.restype = _I64


_BUILD = KernelBuild(
    source=_C_SOURCE,
    env_var=CBUILD_ENV,
    what="C batch solver kernel",
    fallback="the NumPy batch-step path",
    counter="solver.backend_fallback",
    configure=_configure,
)

# Back-compat-style aliases mirroring repro.gpu._cbuild: tests
# monkeypatch _LIB_CACHE["lib"] and compare against _LOAD_FAILED.
_LIB_CACHE = _BUILD.cache
_FALLBACKS = _BUILD.fallbacks


def build_fallback_count() -> int:
    """How many times this process fell back to the NumPy batch step."""
    return _BUILD.fallback_count()


def reset_fallback_state() -> None:
    """Test hook: forget cached load failures and fallback accounting."""
    _BUILD.reset()
    _DGETRS.clear()


def note_fallback(reason: str) -> None:
    """Count (and warn once about) a fallback decided by the caller."""
    _BUILD.note_fallback(reason)


def load_solver_lib() -> Optional[ctypes.CDLL]:
    """The compiled substep kernel, or ``None`` when unavailable."""
    return _BUILD.load()


# ----------------------------------------------------------------------
# LAPACK dgetrs extraction
# ----------------------------------------------------------------------
_DGETRS: dict = {}


def dgetrs_pointer() -> Optional[int]:
    """Raw address of LAPACK ``dgetrs``, or ``None`` when unavailable.

    Extracted from scipy's cython_lapack capsule table so the C kernel
    calls the identical routine scipy's ``getrs`` wrapper dispatches
    to.  The caller passes Fortran-ordered LU blocks and *1-based*
    int32 pivot vectors (scipy's ``lu_factor`` returns 0-based pivots;
    its f2py wrapper converts internally, the raw routine does not).
    """
    if "ptr" in _DGETRS:
        return _DGETRS["ptr"]
    ptr: Optional[int] = None
    try:
        import scipy.linalg.cython_lapack as cython_lapack

        capsule = cython_lapack.__pyx_capi__["dgetrs"]
        get_name = ctypes.pythonapi.PyCapsule_GetName
        get_name.restype = ctypes.c_char_p
        get_name.argtypes = [ctypes.py_object]
        get_ptr = ctypes.pythonapi.PyCapsule_GetPointer
        get_ptr.restype = ctypes.c_void_p
        get_ptr.argtypes = [ctypes.py_object, ctypes.c_char_p]
        ptr = get_ptr(capsule, get_name(capsule))
    except Exception:
        ptr = None
    _DGETRS["ptr"] = ptr
    return ptr
