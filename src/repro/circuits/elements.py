"""Circuit element definitions.

Every element connects two named nodes.  Conventions:

* A positive element current flows from ``node_pos`` to ``node_neg``
  *through* the element.
* :class:`CurrentSource` pushes its current *out of* ``node_pos`` and
  *into* ``node_neg`` through the external circuit — i.e. a positive
  value sinks current from ``node_pos`` (a load drawing current from a
  supply rail uses ``node_pos`` = rail, ``node_neg`` = ground).
* Sources may be constant floats or callables of time ``f(t) -> float``,
  which is how the GPU power traces drive the PDN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

Waveform = Union[float, Callable[[float], float]]


def evaluate_waveform(value: Waveform, t: float) -> float:
    """Evaluate a constant or time-dependent source value at time ``t``."""
    if callable(value):
        return float(value(t))
    return float(value)


@dataclass
class Element:
    """Base class for all two-terminal elements."""

    name: str
    node_pos: str
    node_neg: str

    def __post_init__(self) -> None:
        if self.node_pos == self.node_neg:
            raise ValueError(
                f"element {self.name!r} connects node {self.node_pos!r} to itself"
            )


@dataclass
class Resistor(Element):
    """Linear resistor of ``resistance`` ohms."""

    resistance: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.resistance <= 0:
            raise ValueError(
                f"resistor {self.name!r} must have positive resistance, "
                f"got {self.resistance}"
            )

    @property
    def conductance(self) -> float:
        return 1.0 / self.resistance


@dataclass
class Capacitor(Element):
    """Linear capacitor of ``capacitance`` farads with initial voltage ``v0``."""

    capacitance: float = 1.0
    v0: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.capacitance <= 0:
            raise ValueError(
                f"capacitor {self.name!r} must have positive capacitance, "
                f"got {self.capacitance}"
            )


@dataclass
class Inductor(Element):
    """Linear inductor of ``inductance`` henries with initial current ``i0``.

    Positive ``i0`` flows from ``node_pos`` to ``node_neg`` through the
    inductor.
    """

    inductance: float = 1.0
    i0: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.inductance <= 0:
            raise ValueError(
                f"inductor {self.name!r} must have positive inductance, "
                f"got {self.inductance}"
            )


@dataclass
class VoltageSource(Element):
    """Ideal voltage source: V(node_pos) - V(node_neg) = value(t)."""

    value: Waveform = 0.0

    def voltage_at(self, t: float) -> float:
        return evaluate_waveform(self.value, t)


@dataclass
class DifferenceConductance:
    """Multi-terminal passive element drawing current from a node-voltage
    *difference pattern*: i_k = g * w_k * (sum_j w_j * v_j).

    Stamped into MNA as ``g * w w^T`` (symmetric positive semidefinite, so
    always passive).  With ``weights = [1, -2, 1]`` over three consecutive
    stack-boundary nodes this is the averaged model of a charge-recycling
    flying capacitor toggling between adjacent voltage-stack layers: it
    moves charge only in response to *layer-voltage imbalance*
    (v_top - 2 v_mid + v_bot) and carries zero current when the stack is
    balanced — unlike a plain resistor ladder, which would bleed DC.

    ``g`` equals ``f_sw * C_fly`` for a flying capacitor C_fly switched at
    f_sw (standard switched-capacitor averaging).
    """

    name: str
    nodes: List[str] = field(default_factory=list)
    weights: List[float] = field(default_factory=list)
    conductance: float = 0.0

    def __post_init__(self) -> None:
        if len(self.nodes) != len(self.weights):
            raise ValueError(
                f"element {self.name!r}: {len(self.nodes)} nodes but "
                f"{len(self.weights)} weights"
            )
        if len(self.nodes) < 2:
            raise ValueError(f"element {self.name!r} needs at least two nodes")
        if len(set(self.nodes)) != len(self.nodes):
            raise ValueError(f"element {self.name!r} has repeated nodes")
        if self.conductance < 0:
            raise ValueError(
                f"element {self.name!r} must have non-negative conductance, "
                f"got {self.conductance}"
            )

    # Attributes Circuit expects of registered elements.
    @property
    def node_pos(self) -> str:
        return self.nodes[0]

    @property
    def node_neg(self) -> str:
        return self.nodes[-1]


@dataclass
class CurrentSource(Element):
    """Ideal current source drawing ``value(t)`` amperes out of ``node_pos``.

    With ``node_pos`` on a supply rail and ``node_neg`` on ground this is a
    load: it pulls current off the rail, which is how SMs are modeled
    (time-varying ideal current sources, per the paper's convention).

    Two mutation hooks exist for drivers that change the draw every cycle:

    * ``override`` — a scalar that, when set, supersedes ``value``;
    * :meth:`bind_batch` — attaches the source to one slot of a shared
      NumPy buffer.  A bound source reads the buffer unconditionally
      (batch binding supersedes both ``override`` and ``value``), which
      lets a driver update a whole bank of sources with one vectorized
      write and lets the transient solver gather their values with one
      fancy-indexed read instead of a per-source Python loop.
    """

    value: Waveform = 0.0
    # Mutable hook used by the co-simulator: when set, overrides ``value``.
    override: Optional[float] = field(default=None, compare=False)
    # Batch binding (buffer, slot); set via bind_batch().
    batch: Optional[object] = field(default=None, compare=False, repr=False)
    batch_index: int = field(default=0, compare=False, repr=False)

    def bind_batch(self, buffer, index: int) -> None:
        """Bind this source to ``buffer[index]`` (a shared NumPy array)."""
        if index < 0 or index >= len(buffer):
            raise IndexError(
                f"source {self.name!r}: batch index {index} out of range "
                f"for buffer of length {len(buffer)}"
            )
        self.batch = buffer
        self.batch_index = int(index)

    def current_at(self, t: float) -> float:
        if self.batch is not None:
            return float(self.batch[self.batch_index])
        if self.override is not None:
            return float(self.override)
        return evaluate_waveform(self.value, t)
