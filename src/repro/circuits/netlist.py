"""Circuit container: named nodes, element registry, index assignment.

A :class:`Circuit` is a bag of elements connecting string-named nodes.
The reserved node ``"0"`` (alias ``GROUND``) is the reference; every
circuit must touch it.  Node indices (for matrix assembly) are assigned
in insertion order, ground excluded.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.circuits.elements import (
    Capacitor,
    CurrentSource,
    DifferenceConductance,
    Element,
    Inductor,
    Resistor,
    VoltageSource,
    Waveform,
)

GROUND = "0"


class Circuit:
    """A netlist of linear elements over named nodes.

    Convenience ``add_*`` methods construct and register elements in one
    call and return them, so builders can keep handles for later mutation
    (e.g. the co-simulator retains each SM's :class:`CurrentSource` to
    override its draw every cycle).
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._elements: List[Element] = []
        self._names: Dict[str, Element] = {}
        self._node_index: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add(self, element: Element) -> Element:
        """Register ``element``, enforcing unique names."""
        if element.name in self._names:
            raise ValueError(f"duplicate element name: {element.name!r}")
        self._names[element.name] = element
        self._elements.append(element)
        nodes = getattr(element, "nodes", None) or (
            element.node_pos,
            element.node_neg,
        )
        for node in nodes:
            if node != GROUND and node not in self._node_index:
                self._node_index[node] = len(self._node_index)
        return element

    def add_resistor(self, name: str, pos: str, neg: str, ohms: float) -> Resistor:
        return self.add(Resistor(name, pos, neg, ohms))  # type: ignore[return-value]

    def add_capacitor(
        self, name: str, pos: str, neg: str, farads: float, v0: float = 0.0
    ) -> Capacitor:
        return self.add(Capacitor(name, pos, neg, farads, v0))  # type: ignore[return-value]

    def add_inductor(
        self, name: str, pos: str, neg: str, henries: float, i0: float = 0.0
    ) -> Inductor:
        return self.add(Inductor(name, pos, neg, henries, i0))  # type: ignore[return-value]

    def add_voltage_source(
        self, name: str, pos: str, neg: str, value: Waveform
    ) -> VoltageSource:
        return self.add(VoltageSource(name, pos, neg, value))  # type: ignore[return-value]

    def add_current_source(
        self, name: str, pos: str, neg: str, value: Waveform
    ) -> CurrentSource:
        return self.add(CurrentSource(name, pos, neg, value))  # type: ignore[return-value]

    def add_difference_conductance(
        self, name: str, nodes: List[str], weights: List[float], siemens: float
    ) -> DifferenceConductance:
        return self.add(  # type: ignore[return-value]
            DifferenceConductance(name, list(nodes), list(weights), siemens)
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def elements(self) -> List[Element]:
        return list(self._elements)

    def element(self, name: str) -> Element:
        try:
            return self._names[name]
        except KeyError:
            raise KeyError(f"no element named {name!r} in circuit {self.name!r}")

    def __contains__(self, name: str) -> bool:
        return name in self._names

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    @property
    def nodes(self) -> List[str]:
        """Non-ground node names in index order."""
        return sorted(self._node_index, key=self._node_index.__getitem__)

    @property
    def num_nodes(self) -> int:
        return len(self._node_index)

    def node_index(self, node: str) -> Optional[int]:
        """Matrix row of ``node``; ``None`` for ground."""
        if node == GROUND:
            return None
        try:
            return self._node_index[node]
        except KeyError:
            raise KeyError(f"unknown node {node!r} in circuit {self.name!r}")

    def elements_of_type(self, kind: type) -> List[Element]:
        return [e for e in self._elements if isinstance(e, kind)]

    def validate(self) -> None:
        """Sanity-check the topology before analysis.

        Requires at least one element referencing ground (otherwise the
        MNA system is singular: all node voltages float).
        """
        if not self._elements:
            raise ValueError(f"circuit {self.name!r} is empty")
        touches_ground = any(
            GROUND in (e.node_pos, e.node_neg) for e in self._elements
        )
        if not touches_ground:
            raise ValueError(
                f"circuit {self.name!r} has no connection to ground node '0'"
            )
