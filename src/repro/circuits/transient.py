"""Fixed-step trapezoidal transient solver.

The circuit is linear and the step size is fixed, so the MNA matrix —
including the trapezoidal companion conductances ``2C/h`` and ``h/2L`` —
is constant.  It is assembled and LU-factorized once; each step only
rebuilds the right-hand side and back-substitutes, which keeps long
co-simulations (hundreds of thousands of steps) cheap.

The solver exposes two usage styles:

* :meth:`TransientSolver.run` — simulate an interval, return waveforms.
* :meth:`TransientSolver.step` — advance one step; used by the GPU/PDN
  co-simulator, which overrides SM current sources between steps.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np
from scipy.linalg import lu_factor, lu_solve

from repro.circuits.elements import Capacitor, Inductor
from repro.circuits.mna import MNAStructure
from repro.circuits.netlist import Circuit


class TransientResult:
    """Recorded waveforms from a transient run."""

    def __init__(self, times: np.ndarray, nodes: List[str], voltages: np.ndarray):
        self.times = times
        self.nodes = nodes
        self._index = {name: k for k, name in enumerate(nodes)}
        self.voltages = voltages  # shape (num_steps, num_recorded_nodes)

    def voltage(self, node: str) -> np.ndarray:
        """Waveform of ``node``; ground returns zeros."""
        if node == "0":
            return np.zeros_like(self.times)
        return self.voltages[:, self._index[node]]

    def differential(self, pos: str, neg: str) -> np.ndarray:
        """Waveform of V(pos) - V(neg)."""
        return self.voltage(pos) - self.voltage(neg)


class TransientSolver:
    """Trapezoidal integrator over a fixed-topology linear circuit."""

    # Conductance used to treat inductors as shorts in the DC solve.
    _DC_SHORT_SIEMENS = 1e9

    def __init__(self, circuit: Circuit, dt: float) -> None:
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        self.circuit = circuit
        self.dt = dt
        self.structure = MNAStructure(circuit)
        self.capacitors: List[Capacitor] = circuit.elements_of_type(Capacitor)  # type: ignore[assignment]
        self.inductors: List[Inductor] = circuit.elements_of_type(Inductor)  # type: ignore[assignment]

        self._cap_nodes = [
            (self.structure.node(c.node_pos), self.structure.node(c.node_neg))
            for c in self.capacitors
        ]
        self._ind_nodes = [
            (self.structure.node(l.node_pos), self.structure.node(l.node_neg))
            for l in self.inductors
        ]
        self._g_cap = np.array(
            [2.0 * c.capacitance / dt for c in self.capacitors], dtype=float
        )
        self._g_ind = np.array(
            [dt / (2.0 * l.inductance) for l in self.inductors], dtype=float
        )

        matrix = self.structure.assemble_resistive()
        for (p, n), g in zip(self._cap_nodes, self._g_cap):
            self.structure.stamp_conductance(matrix, p, n, g)
        for (p, n), g in zip(self._ind_nodes, self._g_ind):
            self.structure.stamp_conductance(matrix, p, n, g)
        self._lu = lu_factor(matrix)

        # Fast-path caches for per-step RHS assembly (the inner loop of
        # long co-simulations): current-source handles and index maps.
        from repro.circuits.elements import CurrentSource, VoltageSource

        self._current_sources = self.circuit.elements_of_type(CurrentSource)
        self._cs_pos = [self.structure.node(s.node_pos) for s in self._current_sources]
        self._cs_neg = [self.structure.node(s.node_neg) for s in self._current_sources]
        self._vs_rows = [
            (self.structure.branch_index[v.name], v)
            for v in self.structure.vsources
        ]

        # Dynamic state: voltage across / current through each reactive element.
        self._cap_v = np.array([c.v0 for c in self.capacitors], dtype=float)
        self._cap_i = np.zeros(len(self.capacitors), dtype=float)
        self._ind_i = np.array([l.i0 for l in self.inductors], dtype=float)
        self._ind_v = np.zeros(len(self.inductors), dtype=float)

        self.time = 0.0
        self.solution = np.zeros(self.structure.size, dtype=float)

    # ------------------------------------------------------------------
    # Initialization
    # ------------------------------------------------------------------
    def initialize_dc(self, t: float = 0.0) -> np.ndarray:
        """Start from the DC operating point with sources held at time ``t``.

        Capacitors are open, inductors are (near-)shorts.  The computed
        node voltages seed capacitor voltages, and inductor currents are
        read from the short-circuit branch currents.
        """
        size = self.structure.size
        matrix = self.structure.assemble_resistive()
        for (p, n) in self._ind_nodes:
            self.structure.stamp_conductance(matrix, p, n, self._DC_SHORT_SIEMENS)
        rhs = self.structure.rhs_sources(t)
        solution = np.linalg.solve(matrix, rhs)

        self.solution = np.zeros(size)
        self.solution[:] = solution
        self.time = t
        self._cap_v = np.array(
            [self._across(solution, p, n) for (p, n) in self._cap_nodes]
        )
        self._cap_i = np.zeros(len(self.capacitors))
        self._ind_v = np.zeros(len(self.inductors))
        self._ind_i = np.array(
            [
                self._DC_SHORT_SIEMENS * self._across(solution, p, n)
                for (p, n) in self._ind_nodes
            ]
        )
        return solution[: self.structure.num_nodes]

    @staticmethod
    def _across(solution: np.ndarray, pos, neg) -> float:
        vp = solution[pos] if pos is not None else 0.0
        vn = solution[neg] if neg is not None else 0.0
        return float(vp - vn)

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def _fast_rhs(self, t: float) -> np.ndarray:
        """RHS from independent sources using the cached index maps."""
        rhs = np.zeros(self.structure.size, dtype=float)
        for source, pos, neg in zip(self._current_sources, self._cs_pos, self._cs_neg):
            current = source.current_at(t)
            if pos is not None:
                rhs[pos] -= current
            if neg is not None:
                rhs[neg] += current
        for row, source in self._vs_rows:
            rhs[row] = source.voltage_at(t)
        return rhs

    def step(self) -> np.ndarray:
        """Advance one trapezoidal step; return node voltages at the new time."""
        t_next = self.time + self.dt
        rhs = self._fast_rhs(t_next)

        ieq_cap = self._g_cap * self._cap_v + self._cap_i
        for (p, n), ieq in zip(self._cap_nodes, ieq_cap):
            if p is not None:
                rhs[p] += ieq
            if n is not None:
                rhs[n] -= ieq

        ieq_ind = self._ind_i + self._g_ind * self._ind_v
        for (p, n), ieq in zip(self._ind_nodes, ieq_ind):
            if p is not None:
                rhs[p] -= ieq
            if n is not None:
                rhs[n] += ieq

        solution = lu_solve(self._lu, rhs)

        for k, (p, n) in enumerate(self._cap_nodes):
            v_new = self._across(solution, p, n)
            self._cap_i[k] = self._g_cap[k] * v_new - ieq_cap[k]
            self._cap_v[k] = v_new
        for k, (p, n) in enumerate(self._ind_nodes):
            v_new = self._across(solution, p, n)
            self._ind_i[k] = self._g_ind[k] * v_new + ieq_ind[k]
            self._ind_v[k] = v_new

        self.time = t_next
        self.solution = solution
        return solution[: self.structure.num_nodes]

    def node_voltage(self, node: str) -> float:
        """Voltage of ``node`` at the current solver time."""
        idx = self.structure.node(node)
        if idx is None:
            return 0.0
        return float(self.solution[idx])

    def vsource_current(self, name: str) -> float:
        """Current delivered by voltage source ``name`` into the circuit.

        Positive when the source pushes current out of its positive
        terminal — i.e. when it supplies power.  (The raw MNA branch
        variable has the opposite sign convention and is negated here.)
        """
        try:
            branch = self.structure.branch_index[name]
        except KeyError:
            raise KeyError(f"no voltage source named {name!r}")
        return -float(self.solution[branch])

    def inductor_current(self, name: str) -> float:
        """Current through inductor ``name`` at the current solver time."""
        for k, ind in enumerate(self.inductors):
            if ind.name == name:
                return float(self._ind_i[k])
        raise KeyError(f"no inductor named {name!r}")

    # ------------------------------------------------------------------
    # Whole-interval convenience runner
    # ------------------------------------------------------------------
    def run(
        self,
        duration: float,
        record: Optional[Sequence[str]] = None,
        initialize: bool = True,
    ) -> TransientResult:
        """Simulate ``duration`` seconds and record node waveforms.

        ``record`` selects node names to store (default: all non-ground
        nodes).  The initial point (t = start) is included in the result.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if initialize:
            self.initialize_dc(self.time)

        nodes = list(record) if record is not None else self.circuit.nodes
        indices = [self.structure.node(n) for n in nodes]
        num_steps = int(round(duration / self.dt))
        times = self.time + self.dt * np.arange(num_steps + 1)
        voltages = np.zeros((num_steps + 1, len(nodes)), dtype=float)
        voltages[0] = [
            self.solution[i] if i is not None else 0.0 for i in indices
        ]
        for step in range(1, num_steps + 1):
            solution = self.step()
            voltages[step] = [
                solution[i] if i is not None else 0.0 for i in indices
            ]
        return TransientResult(times, nodes, voltages)
