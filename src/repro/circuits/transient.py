"""Fixed-step trapezoidal transient solver.

The circuit is linear and the step size is fixed, so the MNA matrix —
including the trapezoidal companion conductances ``2C/h`` and ``h/2L`` —
is constant.  It is assembled and LU-factorized once; each step only
rebuilds the right-hand side and back-substitutes, which keeps long
co-simulations (hundreds of thousands of steps) cheap.

Per-step work is fully vectorized: reactive companion currents, their
scatter into the RHS, current-source gathers and companion-state updates
are all precomputed integer-index NumPy operations (``np.add.at`` over
scatter arrays, fancy-indexed gathers), so a step costs a handful of
array ops plus one back-substitution regardless of element count.  The
original per-element Python loops are retained as a reference
implementation (``vectorized=False``) and the perf benchmark asserts the
two paths agree to 1e-12.

The solver exposes two usage styles:

* :meth:`TransientSolver.run` — simulate an interval, return waveforms.
* :meth:`TransientSolver.step` — advance one step; used by the GPU/PDN
  co-simulator, which overrides SM current sources between steps.
"""

from __future__ import annotations

import ctypes
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
from scipy.linalg import get_lapack_funcs, lu_factor, lu_solve

from repro.circuits.elements import Capacitor, Inductor
from repro.circuits.mna import MNAStructure
from repro.circuits.netlist import Circuit


@dataclass
class SolverStats:
    """Cheap always-on work counters for telemetry.

    Plain integer increments on the hot path (negligible next to a
    back-substitution); wall-clock attribution of solve time is done by
    the caller's phase timers (see ``repro.telemetry``).
    """

    steps: int = 0  # trapezoidal steps taken
    factorizations: int = 0  # LU factorizations of the MNA matrix
    dc_solves: int = 0  # operating-point solves


class TransientResult:
    """Recorded waveforms from a transient run."""

    def __init__(self, times: np.ndarray, nodes: List[str], voltages: np.ndarray):
        self.times = times
        self.nodes = nodes
        self._index = {name: k for k, name in enumerate(nodes)}
        self.voltages = voltages  # shape (num_steps, num_recorded_nodes)

    def voltage(self, node: str) -> np.ndarray:
        """Waveform of ``node``; ground returns zeros."""
        if node == "0":
            return np.zeros_like(self.times)
        return self.voltages[:, self._index[node]]

    def differential(self, pos: str, neg: str) -> np.ndarray:
        """Waveform of V(pos) - V(neg)."""
        return self.voltage(pos) - self.voltage(neg)


def _terminal_gather_arrays(
    node_pairs: Sequence[Tuple[Optional[int], Optional[int]]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Safe-index + mask arrays for a vectorized ``V(pos) - V(neg)``.

    Ground terminals (index ``None``) gather index 0 and are masked out,
    so ``sol[pos]*pm - sol[neg]*nm`` equals the per-element loop exactly.
    """
    pos = np.array([p if p is not None else 0 for p, _ in node_pairs], dtype=int)
    neg = np.array([n if n is not None else 0 for _, n in node_pairs], dtype=int)
    pos_mask = np.array(
        [1.0 if p is not None else 0.0 for p, _ in node_pairs], dtype=float
    )
    neg_mask = np.array(
        [1.0 if n is not None else 0.0 for _, n in node_pairs], dtype=float
    )
    return pos, neg, pos_mask, neg_mask


class TransientSolver:
    """Trapezoidal integrator over a fixed-topology linear circuit.

    ``vectorized`` selects the scatter-index fast path (default); the
    retained loop-based reference path exists for differential testing
    and produces waveforms identical to within floating-point
    accumulation order (< 1e-12).
    """

    # Conductance used to treat inductors as shorts in the DC solve.
    _DC_SHORT_SIEMENS = 1e9

    # Rebound by BatchTransientSolver when it adopts this lane; a class
    # default keeps the ownership check a plain attribute read on the
    # (far more common) un-batched hot path.
    _batch_owner = None

    def __init__(self, circuit: Circuit, dt: float, vectorized: bool = True) -> None:
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        self.circuit = circuit
        self.dt = dt
        self.vectorized = bool(vectorized)
        self.structure = MNAStructure(circuit)
        self.capacitors: List[Capacitor] = circuit.elements_of_type(Capacitor)  # type: ignore[assignment]
        self.inductors: List[Inductor] = circuit.elements_of_type(Inductor)  # type: ignore[assignment]

        self._cap_nodes = [
            (self.structure.node(c.node_pos), self.structure.node(c.node_neg))
            for c in self.capacitors
        ]
        self._ind_nodes = [
            (self.structure.node(l.node_pos), self.structure.node(l.node_neg))
            for l in self.inductors
        ]
        num_cap = len(self.capacitors)
        num_ind = len(self.inductors)
        self._num_cap = num_cap
        self._num_ind = num_ind

        # Reactive elements share one companion form: the equivalent
        # injection is ieq = g*v + i for both, and the post-solve current
        # update is i' = g*v' + s*ieq with s = -1 (capacitor) / +1
        # (inductor).  State is therefore held in combined arrays, with
        # per-kind views kept for the naive path and external queries.
        self._react_g = np.concatenate([
            np.array([2.0 * c.capacitance / dt for c in self.capacitors], dtype=float),
            np.array([dt / (2.0 * l.inductance) for l in self.inductors], dtype=float),
        ])
        self._react_sign = np.concatenate([
            np.full(num_cap, -1.0), np.full(num_ind, 1.0)
        ])
        self._g_cap = self._react_g[:num_cap]
        self._g_ind = self._react_g[num_cap:]

        matrix = self.structure.assemble_resistive()
        for (p, n), g in zip(self._cap_nodes, self._g_cap):
            self.structure.stamp_conductance(matrix, p, n, g)
        for (p, n), g in zip(self._ind_nodes, self._g_ind):
            self.structure.stamp_conductance(matrix, p, n, g)
        self.stats = SolverStats()
        # The assembled matrix is retained so the guard rail can compute
        # a residual ``A x - b`` for forensics on detected divergence.
        self._matrix = matrix
        self._lu = lu_factor(matrix)
        self.stats.factorizations += 1
        # The vectorized step calls LAPACK ``getrs`` directly — the same
        # routine ``scipy.linalg.lu_solve`` wraps (bit-identical result),
        # minus per-call validation that would dominate small systems.
        self._getrs = get_lapack_funcs(("getrs",), (self._lu[0],))[0]

        # Fast-path caches for per-step RHS assembly (the inner loop of
        # long co-simulations): current-source handles and index maps.
        from repro.circuits.elements import CurrentSource, VoltageSource

        self._current_sources = self.circuit.elements_of_type(CurrentSource)
        self._cs_pos = [self.structure.node(s.node_pos) for s in self._current_sources]
        self._cs_neg = [self.structure.node(s.node_neg) for s in self._current_sources]
        self._vs_rows = [
            (self.structure.branch_index[v.name], v)
            for v in self.structure.vsources
        ]

        self._build_scatter_arrays()

        # Dynamic state: voltage across / current through each reactive
        # element (views into the combined arrays).
        self._react_v = np.concatenate([
            np.array([c.v0 for c in self.capacitors], dtype=float),
            np.zeros(num_ind),
        ])
        self._react_i = np.concatenate([
            np.zeros(num_cap),
            np.array([l.i0 for l in self.inductors], dtype=float),
        ])
        self._cap_v = self._react_v[:num_cap]
        self._ind_v = self._react_v[num_cap:]
        self._cap_i = self._react_i[:num_cap]
        self._ind_i = self._react_i[num_cap:]

        self.time = 0.0
        self.solution = np.zeros(self.structure.size, dtype=float)
        # Most recent step's RHS (reference, not a copy) — consumed by
        # SolverGuard to compute a residual when a step goes bad.
        self._last_rhs: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Precomputed index machinery for the vectorized path
    # ------------------------------------------------------------------
    def _build_scatter_arrays(self) -> None:
        """Integer scatter/gather indices driving the vectorized step.

        One concatenated value vector per step holds
        ``[ieq_cap | ieq_ind | i_source]``; a single ``np.add.at`` with
        precomputed ``(rhs_index, gain, value_index)`` triples scatters
        every companion/source contribution into the RHS at once.
        """
        num_cap = self._num_cap
        num_ind = self._num_ind
        num_cs = len(self._current_sources)
        self._vals = np.zeros(num_cap + num_ind + num_cs, dtype=float)
        self._cs_offset = num_cap + num_ind

        idx: List[int] = []
        gain: List[float] = []
        src: List[int] = []

        def scatter(slot: int, pos, neg, pos_gain: float) -> None:
            if pos is not None:
                idx.append(pos)
                gain.append(pos_gain)
                src.append(slot)
            if neg is not None:
                idx.append(neg)
                gain.append(-pos_gain)
                src.append(slot)

        # Capacitor Norton current flows into the positive node
        # (rhs[p] += ieq); the inductor's flows out (rhs[p] -= ieq); an
        # independent source draws current off its positive node.
        # Triples are emitted in the reference path's execution order
        # (sources, capacitors, inductors) so ``np.add.at`` accumulates
        # each node in the same sequence and the result is bit-identical.
        for k, (p, n) in enumerate(zip(self._cs_pos, self._cs_neg)):
            scatter(self._cs_offset + k, p, n, -1.0)
        for k, (p, n) in enumerate(self._cap_nodes):
            scatter(k, p, n, +1.0)
        for k, (p, n) in enumerate(self._ind_nodes):
            scatter(num_cap + k, p, n, -1.0)

        self._scatter_idx = np.array(idx, dtype=np.intp)
        self._scatter_gain = np.array(gain, dtype=float)
        self._scatter_src = np.array(src, dtype=np.intp)

        # Terminal gathers for the post-solve companion-state update.
        self._react_pos, self._react_neg, self._react_pos_mask, self._react_neg_mask = (
            _terminal_gather_arrays(self._cap_nodes + self._ind_nodes)
        )

        self._build_cs_gathers()

        # Voltage-source rows: constants preloaded, callables looped.
        self._vs_row_idx = np.array([row for row, _ in self._vs_rows], dtype=np.intp)
        self._vs_values = np.array(
            [0.0 if callable(v.value) else float(v.value) for _, v in self._vs_rows],
            dtype=float,
        )
        self._vs_callable = [
            (slot, source)
            for slot, (_, source) in enumerate(self._vs_rows)
            if callable(source.value)
        ]

    def _build_cs_gathers(self) -> None:
        """Current-source value gathers.

        Batch-bound sources (the co-sim writes their amps into a shared
        NumPy buffer) are fetched with one fancy-indexed read per
        buffer; everything else — constants, waveform callables,
        override-driven sources — goes through the per-source
        ``current_at`` loop, exactly as before.
        """
        by_buffer: Dict[int, Tuple[object, List[int], List[int]]] = {}
        plain: List[Tuple[int, object]] = []
        for k, source in enumerate(self._current_sources):
            buffer = getattr(source, "batch", None)
            if buffer is not None:
                key = id(buffer)
                if key not in by_buffer:
                    by_buffer[key] = (buffer, [], [])
                by_buffer[key][1].append(self._cs_offset + k)
                by_buffer[key][2].append(source.batch_index)
            else:
                plain.append((self._cs_offset + k, source))
        self._cs_batches = [
            (buffer, np.array(slots, dtype=np.intp), np.array(gidx, dtype=np.intp))
            for buffer, slots, gidx in by_buffer.values()
        ]
        self._cs_plain = plain

    # ------------------------------------------------------------------
    # Mid-run topology-preserving refactorization
    # ------------------------------------------------------------------
    def refactor(self) -> None:
        """Re-read element values and re-factorize the MNA matrix.

        Element *values* (resistances, difference conductances) may be
        mutated between steps — fault injection uses this to model
        CR-IVR phase loss or parasitic drift mid-run — as long as the
        topology (nodes, element set) is unchanged.  Reactive state
        (capacitor voltages, inductor currents) carries across, so the
        transient continues from the pre-fault operating point.
        """
        matrix = self.structure.assemble_resistive()
        for (p, n), g in zip(self._cap_nodes, self._g_cap):
            self.structure.stamp_conductance(matrix, p, n, g)
        for (p, n), g in zip(self._ind_nodes, self._g_ind):
            self.structure.stamp_conductance(matrix, p, n, g)
        self._matrix = matrix
        self._lu = lu_factor(matrix)
        self.stats.factorizations += 1
        self._getrs = get_lapack_funcs(("getrs",), (self._lu[0],))[0]
        owner = getattr(self, "_batch_owner", None)
        if owner is not None:
            owner._lanes_dirty = True

    def set_dt(self, dt: float) -> None:
        """Change the step size mid-run and restamp the companion matrix.

        The trapezoidal companion conductances (``2C/h``, ``h/2L``) are
        dt-dependent, so a new step size requires recomputing them and
        re-factorizing.  Gains are written *in place* so batch row views
        (:class:`BatchTransientSolver`) stay attached.  Reactive state
        carries across — this is how :class:`SolverGuard` retries a
        misbehaving interval at a finer resolution.
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        self.dt = dt
        self._g_cap[:] = [2.0 * c.capacitance / dt for c in self.capacitors]
        self._g_ind[:] = [dt / (2.0 * l.inductance) for l in self.inductors]
        self.refactor()

    def rebind_sources(self) -> None:
        """Re-scan current sources' bound batch buffers.

        Lane quarantine re-binds a surviving PDN's current sources to a
        row of a freshly compacted batch array
        (``StackedPDN.bind_current_buffer``); this refreshes the cached
        buffer handles the vectorized gather reads from.
        """
        self._build_cs_gathers()

    # ------------------------------------------------------------------
    # Initialization
    # ------------------------------------------------------------------
    def initialize_dc(self, t: float = 0.0) -> np.ndarray:
        """Start from the DC operating point with sources held at time ``t``.

        Capacitors are open, inductors are (near-)shorts.  The computed
        node voltages seed capacitor voltages, and inductor currents are
        read from the short-circuit branch currents.
        """
        size = self.structure.size
        matrix = self.structure.assemble_resistive()
        for (p, n) in self._ind_nodes:
            self.structure.stamp_conductance(matrix, p, n, self._DC_SHORT_SIEMENS)
        rhs = self.structure.rhs_sources(t)
        solution = np.linalg.solve(matrix, rhs)
        self.stats.dc_solves += 1

        self.solution = np.zeros(size)
        self.solution[:] = solution
        self.time = t
        # Vectorized V(pos)-V(neg) over all reactive terminals at once.
        across = (
            solution[self._react_pos] * self._react_pos_mask
            - solution[self._react_neg] * self._react_neg_mask
        )
        self._react_v[: self._num_cap] = across[: self._num_cap]
        self._react_v[self._num_cap :] = 0.0
        self._react_i[: self._num_cap] = 0.0
        self._react_i[self._num_cap :] = (
            self._DC_SHORT_SIEMENS * across[self._num_cap :]
        )
        return solution[: self.structure.num_nodes]

    @staticmethod
    def _across(solution: np.ndarray, pos, neg) -> float:
        vp = solution[pos] if pos is not None else 0.0
        vn = solution[neg] if neg is not None else 0.0
        return float(vp - vn)

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def _gather_source_currents(self, t: float) -> None:
        """Fill the current-source segment of the step value vector."""
        vals = self._vals
        for slot, source in self._cs_plain:
            vals[slot] = source.current_at(t)
        for buffer, slots, gidx in self._cs_batches:
            vals[slots] = np.asarray(buffer)[gidx]

    def _fast_rhs(self, t: float) -> np.ndarray:
        """RHS from independent sources using the cached index maps.

        (Reference path; the vectorized step assembles sources and
        companion currents in one scatter instead.)
        """
        rhs = np.zeros(self.structure.size, dtype=float)
        for source, pos, neg in zip(self._current_sources, self._cs_pos, self._cs_neg):
            current = source.current_at(t)
            if pos is not None:
                rhs[pos] -= current
            if neg is not None:
                rhs[neg] += current
        for row, source in self._vs_rows:
            rhs[row] = source.voltage_at(t)
        return rhs

    def step(self) -> np.ndarray:
        """Advance one trapezoidal step; return node voltages at the new time."""
        self.stats.steps += 1
        if self.vectorized:
            return self._step_vectorized()
        return self._step_naive()

    def step_n(self, n: int) -> np.ndarray:
        """Advance ``n`` trapezoidal steps; return the final node voltages.

        Bit-identical to ``n`` calls of :meth:`step` — the same NumPy
        operations run in the same order on the same operands.  The
        per-step Python overhead (method dispatch, attribute lookups)
        is hoisted out of the loop, and the RHS scatter uses one
        ``bincount`` instead of ``zeros`` + ``np.add.at`` (bincount,
        like ``add.at``, accumulates weights in input order, so the
        per-index float summation sequence is unchanged).  This is the
        guard's clean-path stepping: the fusion pays for the guard's
        snapshot/scan bookkeeping (see ``benchmarks/test_perf_guard``).

        Defers to the plain per-step loop when the solver is in naive
        mode or ``step`` has been instance-patched (fault hooks and
        tests wrap ``solver.step``; a fused path must not bypass them).
        """
        if not self.vectorized or "step" in self.__dict__:
            node_v = None
            for _ in range(n):
                node_v = self.step()
            return node_v
        stats = self.stats
        dt = self.dt
        vals = self._vals
        cs_offset = self._cs_offset
        react_g = self._react_g
        react_v = self._react_v
        react_i = self._react_i
        cs_plain = self._cs_plain
        cs_batches = self._cs_batches
        vs_callable = self._vs_callable
        vs_values = self._vs_values
        vs_row_idx = self._vs_row_idx
        scatter_idx = self._scatter_idx
        scatter_gain = self._scatter_gain
        scatter_src = self._scatter_src
        react_pos = self._react_pos
        react_neg = self._react_neg
        react_pos_mask = self._react_pos_mask
        react_neg_mask = self._react_neg_mask
        react_sign = self._react_sign
        getrs = self._getrs
        lu, piv = self._lu
        size = self.structure.size
        num_nodes = self.structure.num_nodes
        bincount = np.bincount
        asarray = np.asarray

        solution = self.solution
        for _ in range(n):
            stats.steps += 1
            t_next = self.time + dt

            ieq = react_g * react_v + react_i
            vals[:cs_offset] = ieq
            for slot, source in cs_plain:
                vals[slot] = source.current_at(t_next)
            for buffer, slots, gidx in cs_batches:
                vals[slots] = asarray(buffer)[gidx]

            rhs = bincount(
                scatter_idx,
                weights=scatter_gain * vals[scatter_src],
                minlength=size,
            )
            if vs_callable:
                for slot, source in vs_callable:
                    vs_values[slot] = source.voltage_at(t_next)
            rhs[vs_row_idx] = vs_values

            solution, _info = getrs(lu, piv, rhs)
            self._last_rhs = rhs

            v_new = (
                solution[react_pos] * react_pos_mask
                - solution[react_neg] * react_neg_mask
            )
            react_i[:] = react_g * v_new + react_sign * ieq
            react_v[:] = v_new

            self.time = t_next
            self.solution = solution
        return solution[:num_nodes]

    def _step_vectorized(self) -> np.ndarray:
        t_next = self.time + self.dt

        # Companion injections ieq = g*v + i for every reactive element,
        # then one scatter of [ieq | source currents] into the RHS.
        vals = self._vals
        ieq = self._react_g * self._react_v + self._react_i
        vals[: self._cs_offset] = ieq
        self._gather_source_currents(t_next)

        rhs = np.zeros(self.structure.size, dtype=float)
        np.add.at(rhs, self._scatter_idx, self._scatter_gain * vals[self._scatter_src])
        if self._vs_callable:
            for slot, source in self._vs_callable:
                self._vs_values[slot] = source.voltage_at(t_next)
        rhs[self._vs_row_idx] = self._vs_values

        solution, _info = self._getrs(self._lu[0], self._lu[1], rhs)
        self._last_rhs = rhs

        # Companion-state update: v' gathered across all terminals at
        # once, i' = g*v' + s*ieq (s = -1 capacitors, +1 inductors).
        v_new = (
            solution[self._react_pos] * self._react_pos_mask
            - solution[self._react_neg] * self._react_neg_mask
        )
        self._react_i[:] = self._react_g * v_new + self._react_sign * ieq
        self._react_v[:] = v_new

        self.time = t_next
        self.solution = solution
        return solution[: self.structure.num_nodes]

    def _step_naive(self) -> np.ndarray:
        """Reference per-element loop implementation (pre-vectorization)."""
        t_next = self.time + self.dt
        rhs = self._fast_rhs(t_next)

        ieq_cap = self._g_cap * self._cap_v + self._cap_i
        for (p, n), ieq in zip(self._cap_nodes, ieq_cap):
            if p is not None:
                rhs[p] += ieq
            if n is not None:
                rhs[n] -= ieq

        ieq_ind = self._ind_i + self._g_ind * self._ind_v
        for (p, n), ieq in zip(self._ind_nodes, ieq_ind):
            if p is not None:
                rhs[p] -= ieq
            if n is not None:
                rhs[n] += ieq

        solution = lu_solve(self._lu, rhs)
        self._last_rhs = rhs

        for k, (p, n) in enumerate(self._cap_nodes):
            v_new = self._across(solution, p, n)
            self._cap_i[k] = self._g_cap[k] * v_new - ieq_cap[k]
            self._cap_v[k] = v_new
        for k, (p, n) in enumerate(self._ind_nodes):
            v_new = self._across(solution, p, n)
            self._ind_i[k] = self._g_ind[k] * v_new + ieq_ind[k]
            self._ind_v[k] = v_new

        self.time = t_next
        self.solution = solution
        return solution[: self.structure.num_nodes]

    def node_voltage(self, node: str) -> float:
        """Voltage of ``node`` at the current solver time."""
        idx = self.structure.node(node)
        if idx is None:
            return 0.0
        return float(self.solution[idx])

    def vsource_current(self, name: str) -> float:
        """Current delivered by voltage source ``name`` into the circuit.

        Positive when the source pushes current out of its positive
        terminal — i.e. when it supplies power.  (The raw MNA branch
        variable has the opposite sign convention and is negated here.)
        """
        try:
            branch = self.structure.branch_index[name]
        except KeyError:
            raise KeyError(f"no voltage source named {name!r}")
        return -float(self.solution[branch])

    def inductor_current(self, name: str) -> float:
        """Current through inductor ``name`` at the current solver time."""
        for k, ind in enumerate(self.inductors):
            if ind.name == name:
                return float(self._ind_i[k])
        raise KeyError(f"no inductor named {name!r}")

    # ------------------------------------------------------------------
    # Whole-interval convenience runner
    # ------------------------------------------------------------------
    def run(
        self,
        duration: float,
        record: Optional[Sequence[str]] = None,
        initialize: bool = True,
    ) -> TransientResult:
        """Simulate ``duration`` seconds and record node waveforms.

        ``record`` selects node names to store (default: all non-ground
        nodes).  The initial point (t = start) is included in the result.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if initialize:
            self.initialize_dc(self.time)

        nodes = list(record) if record is not None else self.circuit.nodes
        indices = [self.structure.node(n) for n in nodes]
        num_steps = int(round(duration / self.dt))
        times = self.time + self.dt * np.arange(num_steps + 1)
        voltages = np.zeros((num_steps + 1, len(nodes)), dtype=float)
        voltages[0] = [
            self.solution[i] if i is not None else 0.0 for i in indices
        ]
        for step in range(1, num_steps + 1):
            solution = self.step()
            voltages[step] = [
                solution[i] if i is not None else 0.0 for i in indices
            ]
        return TransientResult(times, nodes, voltages)


class _SolverShard:
    """Lanes whose MNA matrices are value-identical, sharing one LU.

    The representative lane's factorization serves every member:
    ``lu_factor`` is deterministic, so value-identical matrices produce
    bit-identical LU blocks and solving any member against the shared
    block is bit-identical to solving against its own.  ``multi`` is
    the adaptive multi-RHS verdict — ``None`` until the first solve
    probes whether a single multi-RHS ``getrs`` over the shard's
    ``(n, B_shard)`` Fortran-ordered block reproduces the per-column
    solves bit for bit on this BLAS (see ``BatchTransientSolver.step``).
    """

    __slots__ = ("getrs", "lu", "piv", "piv1", "rows", "rows_idx",
                 "entries", "multi")

    def __init__(self, getrs, lu: np.ndarray, piv: np.ndarray) -> None:
        self.getrs = getrs
        self.lu = lu
        self.piv = piv
        self.piv1: Optional[np.ndarray] = None  # 1-based int32, C kernel
        self.rows: List[int] = []
        self.rows_idx: Optional[np.ndarray] = None
        self.entries: list = []
        self.multi: Optional[bool] = None


class BatchTransientSolver:
    """Lock-stepped trapezoidal stepping of B same-topology solvers.

    The batched co-simulator advances B independent scenarios per GPU
    cycle.  Their circuits share one topology family — identical node
    sets, element sets and step size (the MNA *structure* and scatter
    index maps are equal) — while element *values*, source waveforms and
    per-lane fault refactorizations may differ.  This class fuses the
    per-step NumPy dispatch across lanes: companion currents, the RHS
    scatter (one flat-index ``np.add.at`` over all lanes) and the
    companion-state update run on ``(B, ...)`` arrays, while the LAPACK
    back-substitution runs per shard of value-identical matrices
    (:class:`_SolverShard`): one shared ``lu_factor`` per shard, and
    a multi-RHS ``getrs`` over the shard's ``(n, B_shard)`` block
    *only when a first-step probe proves it bit-identical* to the
    per-column solves.  On BLAS builds whose blocked ``trsm`` reorders
    dot-product accumulations for NRHS > 1 (every OpenBLAS tested), the
    probe fails and the shard stays on per-lane NRHS=1 solves against
    the shared LU — bit-identity against ``run_cosim`` is this engine's
    correctness oracle and always wins over the batched solve.  A
    mid-run :meth:`TransientSolver.refactor` marks the lane map dirty,
    and the next step regroups: the refactored lane splits into its own
    shard and the surviving shard is untouched, so fault injection and
    guard recovery keep working unchanged.

    ``step_n`` additionally offers a compiled backend
    (``REPRO_SOLVER_BACKEND=c``, the default when eligible): the whole
    cycle's substeps — companion update, source gather, RHS scatter,
    voltage-source stamp, per-lane LAPACK back-substitution through the
    genuine ``dgetrs`` pointer, and the reactive-state update — run in
    one crossing into ``_solverc.c``.  The NumPy path remains the
    bit-identity oracle (``REPRO_SOLVER_BACKEND=numpy``).

    Each lane's dynamic state (``_react_v`` / ``_react_i`` / ``solution``)
    is re-homed as a row view of the batch arrays, so per-lane reads
    (``vsource_current``, ``inductor_current``, telemetry) stay coherent.
    Do not call ``lane.step()`` directly while a batch owns the lanes.

    ``shared_current_base`` is an optional ``(B, num_sources)`` array
    whose row i is lane i's bound current buffer (see
    ``StackedPDN.bind_current_buffer``); when given, all lanes' source
    currents are gathered with a single 2-D fancy-indexed read per step.
    """

    def __init__(
        self,
        solvers: Sequence[TransientSolver],
        shared_current_base: Optional[np.ndarray] = None,
    ) -> None:
        self.solvers = list(solvers)
        if not self.solvers:
            raise ValueError("need at least one lane solver")
        first = self.solvers[0]
        for s in self.solvers:
            if not s.vectorized:
                raise ValueError(
                    "batch stepping requires vectorized lane solvers"
                )
            if s.dt != first.dt:
                raise ValueError(
                    f"lanes must share dt: {s.dt} != {first.dt}"
                )
            if s.time != first.time:
                raise ValueError(
                    "lanes must be time-aligned before batching "
                    f"({s.time} != {first.time})"
                )
            if s.structure.size != first.structure.size:
                raise ValueError("lanes must share the MNA system size")
            for attr in (
                "_scatter_idx", "_scatter_gain", "_scatter_src",
                "_vs_row_idx", "_react_pos", "_react_neg",
                "_react_pos_mask", "_react_neg_mask", "_react_sign",
            ):
                if not np.array_equal(getattr(s, attr), getattr(first, attr)):
                    raise ValueError(
                        "lanes do not share a topology family "
                        f"(index map {attr} differs)"
                    )
        self.dt = first.dt
        self.num_nodes = first.structure.num_nodes
        size = first.structure.size
        n_lanes = len(self.solvers)
        self._cs_offset = first._cs_offset

        # Per-lane dynamic state re-homed as rows of batch arrays.
        # Companion gains are stacked per lane (fault refactorization
        # keeps them unchanged, but lanes may be built with different
        # element values).
        self._react_g_bt = np.stack([s._react_g for s in self.solvers])
        # Reactive v/i live in one contiguous (2, B, R) block so the
        # guard's per-cycle snapshot/rollback is a single copy.
        n_react_first = first._react_v.size
        self._react_vi_bt = np.empty((2, n_lanes, n_react_first))
        self._react_v_bt = self._react_vi_bt[0]
        self._react_i_bt = self._react_vi_bt[1]
        self._react_v_bt[:] = [s._react_v for s in self.solvers]
        self._react_i_bt[:] = [s._react_i for s in self.solvers]
        self._sol_bt = np.stack([s.solution for s in self.solvers])
        self._vs_bt = np.stack([s._vs_values for s in self.solvers])
        for i, s in enumerate(self.solvers):
            nc = s._num_cap
            s._react_g = self._react_g_bt[i]
            s._g_cap = s._react_g[:nc]
            s._g_ind = s._react_g[nc:]
            s._react_v = self._react_v_bt[i]
            s._react_i = self._react_i_bt[i]
            s._cap_v = s._react_v[:nc]
            s._ind_v = s._react_v[nc:]
            s._cap_i = s._react_i[:nc]
            s._ind_i = s._react_i[nc:]
            s.solution = self._sol_bt[i]
            s._vs_values = self._vs_bt[i]

        # Stats objects are per-solver singletons; cache the list so the
        # per-cycle step accounting reads list slots, not attributes.
        self._stats_list = [s.stats for s in self.solvers]

        self._vals_bt = np.zeros((n_lanes, first._vals.size), dtype=float)
        self._size = size
        self._n_lanes = n_lanes
        self._flat_size = n_lanes * size
        # Flat-index scatter: view the (B, size) RHS as one vector and
        # offset each lane's scatter indices by its row start, so a
        # single bincount covers every lane.  Lanes never collide and
        # within a lane the triple order is unchanged (bincount, like
        # np.add.at, accumulates in input order), so the per-index
        # accumulation order — hence every bit — matches the serial
        # scatter.
        self._flat_idx = (
            np.arange(n_lanes, dtype=np.intp)[:, None] * size
            + first._scatter_idx[None, :]
        ).ravel()
        # Flat-view gather indices: the batch buffers are C-contiguous,
        # so every per-lane fancy gather collapses to one 1-D fancy
        # read over the flattened buffer — same elements, same order,
        # far fewer dispatches than a per-axis fancy index.
        n_vals = first._vals.size
        lane_off = np.arange(n_lanes, dtype=np.intp)[:, None]
        self._vals_flat = self._vals_bt.reshape(-1)
        self._scatter_src_flat = (
            lane_off * n_vals + first._scatter_src[None, :]
        ).ravel()
        self._gain_flat = np.tile(first._scatter_gain, n_lanes)
        self._sol_flat = self._sol_bt.reshape(-1)
        self._react_pos_flat = (
            lane_off * size + first._react_pos[None, :]
        ).ravel()
        self._react_neg_flat = (
            lane_off * size + first._react_neg[None, :]
        ).ravel()
        n_react = first._react_v.size
        self._n_react = n_react
        self._ieq_buf = np.empty((n_lanes, n_react))
        # Shard map and per-lane solve cache (see _rebuild_lanes).  The
        # refactor() hook below invalidates them when a fault injector
        # re-factorizes any lane's matrix mid-run.
        self._lanes_dirty = True
        self._lane_solve: list = []
        self._shards: List[_SolverShard] = []
        self._lane_shard: List[_SolverShard] = []
        for s in self.solvers:
            s._batch_owner = self
        self._last_rhs_bt: Optional[np.ndarray] = None
        self._scatter_gain = first._scatter_gain
        self._scatter_src = first._scatter_src
        self._vs_row_idx = first._vs_row_idx
        self._react_pos = first._react_pos
        self._react_neg = first._react_neg
        self._react_pos_mask = first._react_pos_mask
        self._react_neg_mask = first._react_neg_mask
        self._react_sign = first._react_sign
        self._has_vs_callable = any(s._vs_callable for s in self.solvers)
        self._has_cs_plain = any(s._cs_plain for s in self.solvers)
        self._branch_rows: Dict[str, int] = {}

        self._shared_cs = None
        if shared_current_base is not None:
            base = np.asarray(shared_current_base)
            if base.shape[0] != n_lanes:
                raise ValueError(
                    "shared_current_base must have one row per lane"
                )
            ref_batch = first._cs_batches
            if len(ref_batch) != 1:
                raise ValueError(
                    "shared_current_base requires exactly one bound "
                    "current buffer per lane"
                )
            _, ref_slots, ref_gidx = ref_batch[0]
            for i, s in enumerate(self.solvers):
                if len(s._cs_batches) != 1:
                    raise ValueError(
                        "shared_current_base requires exactly one bound "
                        "current buffer per lane"
                    )
                buf, slots, gidx = s._cs_batches[0]
                if (
                    not np.array_equal(slots, ref_slots)
                    or not np.array_equal(gidx, ref_gidx)
                    or np.asarray(buf).shape != (base.shape[1],)
                    or not np.shares_memory(buf, base[i])
                ):
                    raise ValueError(
                        f"lane {i}'s current buffer is not row {i} of "
                        "shared_current_base"
                    )
            self._shared_cs = (base, ref_slots, ref_gidx)
            # When the shared base is C-contiguous, both sides of the
            # gather flatten to views, so one 1-D fancy read/write
            # replaces the 2-D fancy gather (same elements, same
            # per-element copy — bit-identical, just fewer dispatches).
            if base.flags["C_CONTIGUOUS"]:
                n_vals = self._vals_bt.shape[1]
                lanes_idx = np.arange(n_lanes, dtype=np.intp)[:, None]
                self._cs_flat_dst = (
                    lanes_idx * n_vals + np.asarray(ref_slots)[None, :]
                ).ravel()
                self._cs_flat_src = (
                    lanes_idx * base.shape[1]
                    + np.asarray(ref_gidx)[None, :]
                ).ravel()
                self._vals_flat = self._vals_bt.reshape(-1)
                self._base_flat = base.reshape(-1)
            else:
                self._cs_flat_dst = None
        else:
            self._cs_flat_dst = None

        # Compiled-backend state (resolved lazily on the first step_n).
        self._backend: Optional[str] = None
        self._clib = None
        self._dgetrs_ptr: Optional[int] = None
        self._c_state = None
        self._c_state_ptr = None
        self._c_refs: list = []
        self._rhs_bt: Optional[np.ndarray] = None
        # The fused C kernel handles exactly the co-sim configuration:
        # one shared C-contiguous current base, no plain (unbound)
        # current sources, no waveform-callable voltage sources.
        self._c_eligible = (
            self._cs_flat_dst is not None
            and not self._has_cs_plain
            and not self._has_vs_callable
        )

    # ------------------------------------------------------------------
    # Shard bookkeeping
    # ------------------------------------------------------------------
    def _rebuild_lanes(self) -> None:
        """Regroup lanes into shards of value-identical MNA matrices.

        Runs lazily whenever ``_lanes_dirty`` — at construction and
        after any lane's :meth:`TransientSolver.refactor` (fault
        injection, guard recovery, ``set_dt``).  A refactored lane's
        matrix bytes change, so regrouping naturally splits it out of
        its old shard without touching the other members.  Also drops
        any cached C-kernel state (the shard LU pointers it holds are
        stale).
        """
        sol = self._sol_bt
        shard_map: Dict[bytes, _SolverShard] = {}
        shards: List[_SolverShard] = []
        lane_entries: list = []
        lane_shard: List[_SolverShard] = []
        for i, s in enumerate(self.solvers):
            key = s._matrix.tobytes()
            shard = shard_map.get(key)
            if shard is None:
                lu, piv = s._lu
                shard = _SolverShard(s._getrs, lu, piv)
                shard_map[key] = shard
                shards.append(shard)
            # Per-lane solve entry against the *shard's* LU; the sixth
            # slot is the per-entry in-place verdict for the lane's
            # getrs wrapper, probed on its own first solve (a wrapper
            # that copies for one lane must never be assumed in-place
            # for another).
            entry = [shard.getrs, shard.lu, shard.piv, sol[i], s, None]
            shard.rows.append(i)
            shard.entries.append(entry)
            lane_entries.append(entry)
            lane_shard.append(shard)
        for shard in shards:
            shard.rows_idx = np.array(shard.rows, dtype=np.intp)
        self._shards = shards
        self._lane_solve = lane_entries
        self._lane_shard = lane_shard
        self._lanes_dirty = False
        self._c_state = None
        self._c_state_ptr = None
        self._c_refs = []

    @property
    def shard_count(self) -> int:
        """How many distinct LU factorizations the lane set shares."""
        if self._lanes_dirty:
            self._rebuild_lanes()
        return len(self._shards)

    # ------------------------------------------------------------------
    def step(self) -> np.ndarray:
        """Advance every lane one trapezoidal step in lock-step.

        Returns the ``(B, num_nodes)`` node voltages at the new time (a
        view into batch state — copy before mutating).
        """
        solvers = self.solvers
        t_next = solvers[0].time + self.dt

        vals = self._vals_bt
        ieq = self._ieq_buf
        np.multiply(self._react_g_bt, self._react_v_bt, out=ieq)
        ieq += self._react_i_bt
        vals[:, : self._cs_offset] = ieq
        if self._cs_flat_dst is not None:
            self._vals_flat[self._cs_flat_dst] = (
                self._base_flat[self._cs_flat_src]
            )
        elif self._shared_cs is not None:
            base, slots, gidx = self._shared_cs
            vals[:, slots] = base[:, gidx]
        else:
            for i, s in enumerate(solvers):
                for buffer, slots, gidx in s._cs_batches:
                    vals[i, slots] = np.asarray(buffer)[gidx]
        if self._has_cs_plain:
            for i, s in enumerate(solvers):
                for slot, source in s._cs_plain:
                    vals[i, slot] = source.current_at(t_next)

        upd = self._vals_flat[self._scatter_src_flat]
        upd *= self._gain_flat
        rhs = np.bincount(
            self._flat_idx, weights=upd, minlength=self._flat_size,
        ).reshape(self._n_lanes, self._size)
        if self._has_vs_callable:
            for s in solvers:
                for slot, source in s._vs_callable:
                    s._vs_values[slot] = source.voltage_at(t_next)
        rhs[:, self._vs_row_idx] = self._vs_bt
        self._last_rhs_bt = rhs

        # Back-substitute per shard: every lane solves against its
        # shard's shared LU (value-identical matrices factorize to
        # bit-identical LU blocks).  LAPACK dgetrs overwrites a
        # contiguous RHS when allowed to, skipping the copy-back; each
        # lane's first solve probes whether its wrapper really solved
        # in place (it copies when it must) and that lane alone falls
        # back to an explicit copy-back — the verdict is never assumed
        # across lanes or shards.  Multi-lane shards additionally probe
        # one multi-RHS getrs over their (n, B_shard) Fortran block on
        # the first step and keep it only if it reproduced the
        # per-column solves bit for bit (blocked BLAS trsm paths
        # usually reorder accumulation for NRHS > 1, failing the probe
        # — the per-column oracle always wins).
        sol = self._sol_bt
        sol[:] = rhs
        if self._lanes_dirty:
            self._rebuild_lanes()
        for shard in self._shards:
            entries = shard.entries
            if shard.multi and len(entries) > 1:
                block = sol[shard.rows_idx].T  # (n, B_shard), F-order
                solved, _info = shard.getrs(
                    shard.lu, shard.piv, block, overwrite_b=True
                )
                sol[shard.rows_idx] = solved.T
                for entry in entries:
                    s = entry[4]
                    s.stats.steps += 1
                    s.time = t_next
                continue
            probe_block = None
            if shard.multi is None and len(entries) > 1:
                probe_block = sol[shard.rows_idx].T  # pre-solve RHS copy
            for entry in entries:
                getrs_f, lu, piv, row, s, inplace = entry
                solution, _info = getrs_f(lu, piv, row, overwrite_b=True)
                if inplace is None:
                    inplace = bool(np.shares_memory(solution, row))
                    entry[5] = inplace
                if not inplace:
                    row[:] = solution
                s.stats.steps += 1
                s.time = t_next
            if probe_block is not None:
                solved, _info = shard.getrs(
                    shard.lu, shard.piv, probe_block, overwrite_b=True
                )
                shard.multi = bool(np.array_equal(
                    solved.T.view(np.uint64),
                    sol[shard.rows_idx].view(np.uint64),
                ))

        n_react = self._n_react
        v_new = (
            self._sol_flat[self._react_pos_flat].reshape(-1, n_react)
            * self._react_pos_mask
            - self._sol_flat[self._react_neg_flat].reshape(-1, n_react)
            * self._react_neg_mask
        )
        self._react_i_bt[:] = (
            self._react_g_bt * v_new + self._react_sign * ieq
        )
        self._react_v_bt[:] = v_new
        return sol[:, : self.num_nodes]

    # ------------------------------------------------------------------
    # Fused multi-substep stepping (compiled backend)
    # ------------------------------------------------------------------
    @property
    def active_backend(self) -> str:
        """``"c"`` or ``"numpy"`` — the backend ``step_n`` will run."""
        if self._backend is None:
            self._resolve_backend()
        return self._backend

    def _resolve_backend(self) -> None:
        """Pick the ``step_n`` backend once, loudly on degradation.

        ``REPRO_SOLVER_BACKEND=c|numpy`` overrides the default (``c``
        when the circuit configuration is eligible).  Requesting ``c``
        loads the compiled kernel and extracts the LAPACK ``dgetrs``
        pointer; either failing falls back to NumPy through the
        warn-once + ``solver.backend_fallback`` counter machinery.
        Ineligible configurations (plain current sources, callable
        voltage sources, no shared current base) stay on NumPy without
        a warning — that is a modeling choice, not a degradation.
        """
        from repro.circuits import _solverc

        env = os.environ.get(_solverc.BACKEND_ENV, "").strip().lower()
        choice = env if env in ("c", "numpy") else "c"
        if choice == "c" and self._c_eligible:
            lib = _solverc.load_solver_lib()
            if lib is not None:
                ptr = _solverc.dgetrs_pointer()
                if ptr is None:
                    _solverc.note_fallback(
                        "scipy dgetrs capsule unavailable"
                    )
                else:
                    self._clib = lib
                    self._dgetrs_ptr = ptr
                    self._backend = "c"
                    return
        self._backend = "numpy"

    def _build_c_state(self) -> None:
        """Wire the C kernel's state struct to the batch buffers.

        Rebuilt whenever the shard map changes (lane refactorization) —
        the struct holds raw addresses of each lane's shard LU block
        and 1-based pivot vector.  Every referenced array is pinned in
        ``_c_refs`` for the struct's lifetime.
        """
        from repro.circuits._solverc import CSolverState

        n_lanes = self._n_lanes
        size = self._size
        if self._rhs_bt is None:
            self._rhs_bt = np.zeros((n_lanes, size), dtype=float)
        base, _slots, _gidx = self._shared_cs

        def i64(arr: np.ndarray) -> np.ndarray:
            return np.ascontiguousarray(arr, dtype=np.int64)

        lu_addr = np.empty(n_lanes, dtype=np.int64)
        piv_addr = np.empty(n_lanes, dtype=np.int64)
        for i, shard in enumerate(self._lane_shard):
            if shard.piv1 is None:
                # scipy's lu_factor pivots are 0-based; the raw LAPACK
                # routine wants 1-based int32.
                shard.piv1 = (shard.piv + 1).astype(np.int32)
            lu_addr[i] = shard.lu.ctypes.data
            piv_addr[i] = shard.piv1.ctypes.data

        cs_dst = i64(self._cs_flat_dst)
        cs_src = i64(self._cs_flat_src)
        scat_idx = i64(self._flat_idx)
        scat_src = i64(self._scatter_src_flat)
        vs_rows = i64(self._vs_row_idx)
        react_pos = i64(self._react_pos_flat)
        react_neg = i64(self._react_neg_flat)

        def ptr(arr: np.ndarray) -> int:
            return arr.ctypes.data

        st = CSolverState(
            n_lanes=n_lanes,
            size=size,
            n_vals=self._vals_bt.shape[1],
            n_react=self._n_react,
            n_scatter=self._flat_idx.size,
            n_cs=cs_dst.size,
            n_vs=vs_rows.size,
            dgetrs=self._dgetrs_ptr,
            lu_addr=ptr(lu_addr),
            piv_addr=ptr(piv_addr),
            react_g=ptr(self._react_g_bt),
            react_v=ptr(self._react_v_bt),
            react_i=ptr(self._react_i_bt),
            react_sign=ptr(self._react_sign),
            pos_mask=ptr(self._react_pos_mask),
            neg_mask=ptr(self._react_neg_mask),
            react_pos=ptr(react_pos),
            react_neg=ptr(react_neg),
            vals=ptr(self._vals_bt),
            base=ptr(base),
            cs_dst=ptr(cs_dst),
            cs_src=ptr(cs_src),
            scat_idx=ptr(scat_idx),
            scat_src=ptr(scat_src),
            scat_gain=ptr(self._gain_flat),
            vs_rows=ptr(vs_rows),
            vs_vals=ptr(self._vs_bt),
            rhs=ptr(self._rhs_bt),
            sol=ptr(self._sol_bt),
        )
        self._c_refs = [
            lu_addr, piv_addr, cs_dst, cs_src, scat_idx, scat_src,
            vs_rows, react_pos, react_neg,
            [shard.piv1 for shard in self._shards],
        ]
        self._c_state = st
        self._c_state_ptr = ctypes.pointer(st)

    def step_n(self, n: int) -> np.ndarray:
        """Advance every lane ``n`` lock-stepped trapezoidal steps.

        Bit-identical to ``n`` calls of :meth:`step` on either backend;
        the compiled path additionally fuses all ``n`` substeps into
        one C call (see ``_solverc.c``).  Defers to the per-step loop
        when ``step`` has been instance-patched (fault hooks and tests
        wrap ``batch.step``; a fused path must not bypass them).
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if self._backend is None:
            self._resolve_backend()
        if self._backend == "c" and "step" not in self.__dict__:
            if self._lanes_dirty:
                self._rebuild_lanes()
            if self._c_state is None:
                self._build_c_state()
            rc = self._clib.solver_step_n(self._c_state_ptr, n)
            if rc < 0:
                raise RuntimeError(
                    "C solver kernel: dgetrs rejected its arguments "
                    f"on lane {-rc - 1}"
                )
            self._last_rhs_bt = self._rhs_bt
            # Times advance by the same sequential accumulation the
            # per-step path performs (t += dt, n times), keeping every
            # recovered-lane/time comparison bit-aligned.
            t = self.solvers[0].time
            dt = self.dt
            for _ in range(n):
                t = t + dt
            for s, st in zip(self.solvers, self._stats_list):
                st.steps += n
                s.time = t
            return self._sol_bt[:, : self.num_nodes]
        node_bt = None
        for _ in range(n):
            node_bt = self.step()
        return node_bt

    # ------------------------------------------------------------------
    def vsource_currents(
        self, name: str, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Per-lane current delivered by voltage source ``name`` (B,).

        ``out`` (any (B,) float view, strided ok) avoids the per-call
        temporary on the recording hot path.
        """
        row = self._branch_rows.get(name)
        if row is None:
            rows = set()
            for s in self.solvers:
                try:
                    rows.add(s.structure.branch_index[name])
                except KeyError:
                    raise KeyError(f"no voltage source named {name!r}")
            if len(rows) != 1:
                raise ValueError(
                    f"voltage source {name!r} maps to different branch "
                    "rows across lanes"
                )
            row = rows.pop()
            self._branch_rows[name] = row
        if out is not None:
            return np.negative(self._sol_bt[:, row], out=out)
        return -self._sol_bt[:, row]


class NumericalDivergence(RuntimeError):
    """A transient step diverged and every recovery stage failed.

    Carries the forensics a post-mortem needs: which cycle and lane blew
    up, the worst node and its value, the residual at first detection,
    and how many recoveries the guard had performed before giving up.
    ``run_cosim`` converts this into a structured ``diverged`` verdict
    instead of letting it crash a campaign.
    """

    def __init__(
        self,
        message: str,
        *,
        stage: str,
        time_s: float,
        cycle: Optional[int] = None,
        lane: Optional[int] = None,
        worst_node: Optional[str] = None,
        worst_node_index: Optional[int] = None,
        worst_value: Optional[float] = None,
        residual_norm: Optional[float] = None,
        recoveries: Optional[Dict[str, int]] = None,
    ) -> None:
        super().__init__(message)
        self.stage = stage
        self.time_s = float(time_s)
        self.cycle = cycle
        self.lane = lane
        self.worst_node = worst_node
        self.worst_node_index = worst_node_index
        self.worst_value = worst_value
        self.residual_norm = residual_norm
        self.recoveries = dict(recoveries or {})

    def forensics(self) -> Dict[str, object]:
        """JSON-ready divergence record (drops None-valued fields)."""
        record: Dict[str, object] = {
            "message": str(self),
            "stage": self.stage,
            "time_s": self.time_s,
            "recoveries": dict(self.recoveries),
        }
        for key in ("cycle", "lane", "worst_node", "worst_node_index"):
            value = getattr(self, key)
            if value is not None:
                record[key] = value
        for key in ("worst_value", "residual_norm"):
            value = getattr(self, key)
            if value is not None:
                record[key] = float(value)
        return record


# Exceptions a LAPACK/NumPy solve path can raise on bad numerics:
# LinAlgError from the dense DC solve, ValueError from check_finite
# guards inside scipy factorizations, FloatingPointError under strict
# np.errstate regimes.
_SOLVE_ERRORS = (np.linalg.LinAlgError, ValueError, FloatingPointError)

# Module-level binding: the guard's clean path runs every co-sim cycle
# and a global load beats an attribute chain there.
_dot = np.dot


class SolverGuard:
    """Numerical guard-rail around one lane's per-cycle substeps.

    Detection is one sum-of-squares proof per co-sim cycle:
    ``x . x < limit^2`` certifies every entry is inside the spike
    limit (NaN/Inf contaminate the dot and fail the comparison), and
    only suspicious cycles pay a per-entry extrema scan.  The clean
    hot path therefore costs two small state copies and one fused
    reduction — and it steps through :meth:`TransientSolver.step_n`,
    whose loop fusion pays for that bookkeeping (gated at 2% by
    ``benchmarks/test_perf_guard``).  On a bad cycle the guard
    restores the cycle-start snapshot and escalates:

    1. re-factorize the MNA matrix and redo the cycle;
    2. halve the step size (bounded, companion matrix restamped) and
       redo the cycle at finer resolution;
    3. raise :class:`NumericalDivergence` with forensics.

    Recovered cycles land back on the nominal time grid (the end time
    is recomputed with the clean path's exact accumulation sequence),
    so a recovery never skews later source-waveform evaluation.
    """

    DEFAULT_SPIKE_LIMIT_V = 1.0e3

    def __init__(
        self,
        solver: TransientSolver,
        spike_limit_v: float = DEFAULT_SPIKE_LIMIT_V,
        max_dt_halvings: int = 3,
        lane: Optional[int] = None,
    ) -> None:
        if spike_limit_v <= 0:
            raise ValueError(f"spike_limit_v must be positive, got {spike_limit_v}")
        if max_dt_halvings < 0:
            raise ValueError(f"max_dt_halvings must be >= 0, got {max_dt_halvings}")
        self.solver = solver
        self.spike_limit_v = float(spike_limit_v)
        self.max_dt_halvings = int(max_dt_halvings)
        self.lane = lane
        self.refactor_recoveries = 0
        self.dt_halving_recoveries = 0
        self.divergences = 0
        self._node_names: Optional[Dict[int, str]] = None
        # Preallocated cycle-start snapshot buffers: the clean path
        # runs every cycle of every default co-sim, so it must not
        # allocate.
        self._snap_v = np.empty_like(solver._react_v)
        self._snap_i = np.empty_like(solver._react_i)
        # ``x . x < limit^2`` proves ``max|x| < limit`` in one BLAS
        # call; the precise per-entry scan only runs when the cheap
        # proof fails (see ``step_cycle``).
        self._limit_sq = self.spike_limit_v * self.spike_limit_v

    def counters(self) -> Dict[str, int]:
        return {
            "refactor_recoveries": self.refactor_recoveries,
            "dt_halving_recoveries": self.dt_halving_recoveries,
            "divergences": self.divergences,
        }

    @property
    def recoveries(self) -> int:
        return self.refactor_recoveries + self.dt_halving_recoveries

    # -- detection -----------------------------------------------------
    def _healthy(self, solution: np.ndarray) -> bool:
        # Two temp-free reductions instead of ``abs(x).max()``; a
        # NaN-contaminated extremum compares False against the limit,
        # so the two comparisons cover non-finite values and runaway
        # spikes in either direction.
        limit = self.spike_limit_v
        return bool(solution.max() < limit) and bool(
            solution.min() > -limit
        )

    def _worst(self, solution: np.ndarray) -> Tuple[int, float]:
        bad = np.flatnonzero(~np.isfinite(solution))
        if bad.size:
            idx = int(bad[0])
        else:
            idx = int(np.argmax(np.abs(solution)))
        return idx, float(solution[idx])

    def _node_name(self, index: int) -> str:
        if self._node_names is None:
            structure = self.solver.structure
            names = {}
            for node in self.solver.circuit.nodes:
                pos = structure.node(node)
                if pos is not None:
                    names[pos] = node
            for vs_name, row in structure.branch_index.items():
                names[row] = f"branch:{vs_name}"
            self._node_names = names
        return self._node_names.get(index, f"unknown:{index}")

    def _residual_norm(self, rhs: Optional[np.ndarray]) -> Optional[float]:
        matrix = getattr(self.solver, "_matrix", None)
        if rhs is None or matrix is None:
            return None
        residual = matrix @ self.solver.solution - rhs
        return float(np.abs(residual).max())

    # -- recovery machinery --------------------------------------------
    def _restore(self, v0: np.ndarray, i0: np.ndarray, t0: float) -> None:
        solver = self.solver
        solver._react_v[:] = v0
        solver._react_i[:] = i0
        solver.time = t0

    def _reattach(self) -> None:
        """Re-home the solution row after serial redo under a batch owner.

        The serial step rebinds ``solver.solution`` to a fresh array;
        when a :class:`BatchTransientSolver` owns the lane, the batch's
        ``(B, size)`` block must get the values and the lane must go
        back to viewing its row.
        """
        solver = self.solver
        owner = getattr(solver, "_batch_owner", None)
        if owner is None:
            return
        if not np.shares_memory(solver.solution, owner._sol_bt):
            row = owner.solvers.index(solver)
            owner._sol_bt[row, :] = solver.solution
            solver.solution = owner._sol_bt[row]

    def _try_steps(self, count: int) -> Tuple[Optional[np.ndarray], Optional[BaseException]]:
        solver = self.solver
        node_v = None
        try:
            for _ in range(count):
                node_v = solver.step()
        except _SOLVE_ERRORS as exc:
            return node_v, exc
        return node_v, None

    # -- the guarded cycle ---------------------------------------------
    def step_cycle(
        self, substeps: int, cycle: Optional[int] = None
    ) -> np.ndarray:
        """Run one co-sim cycle (``substeps`` solver steps) under guard."""
        solver = self.solver
        self._snap_v[:] = solver._react_v
        self._snap_i[:] = solver._react_i
        t0 = solver.time
        try:
            node_v = solver.step_n(substeps)
        except _SOLVE_ERRORS as exc:
            return self._recover(substeps, cycle, t0, None, exc)
        # Cheap sufficient health proof: ``max(x)^2 <= x . x``, so a
        # sum of squares under ``limit^2`` certifies every entry is
        # inside the spike limit in one fused reduction (NaN/Inf
        # contaminate the dot and fail the comparison).  Only
        # suspicious cycles pay the per-entry extrema scan.
        solution = solver.solution
        if _dot(solution, solution) < self._limit_sq or self._healthy(solution):
            if solver._batch_owner is not None:
                self._reattach()
            return node_v
        return self._recover(substeps, cycle, t0, node_v, None)

    def _recover(
        self,
        substeps: int,
        cycle: Optional[int],
        t0: float,
        node_v: Optional[np.ndarray],
        err: Optional[BaseException],
    ) -> np.ndarray:
        """Escalating recovery for a cycle the fast path flagged."""
        solver = self.solver
        v0, i0 = self._snap_v, self._snap_i

        # Forensics at first detection, before any recovery clobbers
        # the diverged state.
        worst_idx, worst_val = self._worst(solver.solution)
        residual = self._residual_norm(getattr(solver, "_last_rhs", None))
        detect_error = err

        # Stage 1: refactorize (stale/poisoned LU, drifted element
        # values) and redo the cycle from the snapshot.
        self._restore(v0, i0, t0)
        try:
            solver.refactor()
        except _SOLVE_ERRORS:
            pass
        else:
            node_v, err = self._try_steps(substeps)
            if err is None and self._healthy(solver.solution):
                self.refactor_recoveries += 1
                self._reattach()
                return node_v

        # Stage 2: bounded substep halving.  The end time is rebuilt
        # with the clean path's exact accumulation (t += dt, substeps
        # times) so recovered lanes stay bit-aligned with the grid.
        dt0 = solver.dt
        t_end = t0
        for _ in range(substeps):
            t_end = t_end + dt0
        for halving in range(1, self.max_dt_halvings + 1):
            self._restore(v0, i0, t0)
            recovered = False
            try:
                solver.set_dt(dt0 / (2.0 ** halving))
                node_v, err = self._try_steps(substeps * (2 ** halving))
                recovered = err is None and self._healthy(solver.solution)
            except _SOLVE_ERRORS:
                recovered = False
            if solver.dt != dt0:
                try:
                    solver.set_dt(dt0)
                except _SOLVE_ERRORS:
                    break
            if recovered:
                solver.time = t_end
                self.dt_halving_recoveries += 1
                self._reattach()
                return node_v

        # Exhausted: leave the lane restored at the cycle boundary and
        # raise with the first-detection forensics.
        self._restore(v0, i0, t0)
        self.divergences += 1
        self._reattach()
        reason = (
            f"solve raised {type(detect_error).__name__}"
            if detect_error is not None
            else f"|V| at {self._node_name(worst_idx)} hit {worst_val!r}"
        )
        raise NumericalDivergence(
            f"transient step diverged at t={t0:.3e}s and survived no "
            f"recovery stage ({reason})",
            stage="exhausted",
            time_s=t0,
            cycle=cycle,
            lane=self.lane,
            worst_node=self._node_name(worst_idx),
            worst_node_index=worst_idx,
            worst_value=worst_val,
            residual_norm=residual,
            recoveries=self.counters(),
        )


class BatchSolverGuard:
    """Guard-rail over a :class:`BatchTransientSolver`'s fused cycle.

    The clean path is the fused batch step plus one per-lane peak scan.
    When lanes misbehave, only the offenders are rolled back to the
    cycle-start snapshot and re-run serially through their per-lane
    :class:`SolverGuard` (the serial step is bit-identical to the fused
    one, so healthy lanes are untouched and recovered lanes land on
    exactly the state a serial recovery would produce).  Lanes whose
    recovery ladder is exhausted are reported per-row so the co-sim can
    quarantine them and keep the survivors lock-stepped.
    """

    def __init__(
        self,
        batch: BatchTransientSolver,
        guards: Optional[Sequence[SolverGuard]] = None,
        spike_limit_v: float = SolverGuard.DEFAULT_SPIKE_LIMIT_V,
        max_dt_halvings: int = 3,
    ) -> None:
        self.batch = batch
        if guards is None:
            guards = [
                SolverGuard(
                    s,
                    spike_limit_v=spike_limit_v,
                    max_dt_halvings=max_dt_halvings,
                    lane=i,
                )
                for i, s in enumerate(batch.solvers)
            ]
        guards = list(guards)
        if len(guards) != len(batch.solvers):
            raise ValueError("need exactly one guard per lane")
        for guard, solver in zip(guards, batch.solvers):
            if guard.solver is not solver:
                raise ValueError("guard/lane pairing is misaligned")
        self.guards = guards
        self._limits = np.array([g.spike_limit_v for g in guards])
        # Preallocated buffers for the per-cycle snapshot and health
        # scan: the clean path must not allocate (B, size) temporaries.
        self._snap_vi = np.empty_like(batch._react_vi_bt)
        self._mx = np.empty(len(guards))
        self._mn = np.empty(len(guards))
        # Per-row sum-of-squares buffer for the cheap health proof
        # (see SolverGuard: ``x . x < limit^2`` implies no spike).
        self._sq = np.empty(len(guards))
        self._limit_sq = self._limits * self._limits
        self._ok = np.empty(len(guards), dtype=bool)

    def counters(self) -> Dict[str, int]:
        total = {
            "refactor_recoveries": 0,
            "dt_halving_recoveries": 0,
            "divergences": 0,
        }
        for guard in self.guards:
            for key, value in guard.counters().items():
                total[key] += value
        return total

    def step_cycle(
        self, substeps: int, cycle: Optional[int] = None
    ) -> Tuple[np.ndarray, Dict[int, NumericalDivergence]]:
        """Advance every lane one cycle; recover or report bad lanes.

        Returns ``(node_voltages, failures)`` where ``node_voltages``
        is the ``(B, num_nodes)`` block (recovered lanes included) and
        ``failures`` maps batch row -> :class:`NumericalDivergence` for
        lanes whose recovery ladder was exhausted.
        """
        batch = self.batch
        solvers = batch.solvers
        # One contiguous copy snapshots both reactive planes (the batch
        # keeps v/i stacked in a single (2, B, R) block for this).
        snap = self._snap_vi
        np.copyto(snap, batch._react_vi_bt)
        v0, i0 = snap[0], snap[1]
        t0 = solvers[0].time

        blown = False
        try:
            batch.step_n(substeps)
        except _SOLVE_ERRORS:
            blown = True

        if blown:
            # The fused step died partway through a substep, so every
            # lane's state is suspect: roll them all back and redo each
            # serially (bit-identical to the fused path for lanes that
            # behave).
            bad_rows = np.arange(len(solvers))
            batch._react_vi_bt[:] = snap
            for s in solvers:
                s.time = t0
        else:
            # Cheap sufficient health proof per row: a sum of squares
            # under ``limit^2`` certifies every entry is inside the
            # spike limit in one fused reduction (NaN/Inf contaminate
            # the row's dot and fail the comparison).
            sol = batch._sol_bt
            np.einsum("ij,ij->i", sol, sol, out=self._sq)
            np.less(self._sq, self._limit_sq, out=self._ok)
            if self._ok.all():
                return sol[:, : batch.num_nodes], {}
            # Suspicious batch: precise temp-free per-row extrema
            # (NaN rows fail both compares).
            sol.max(axis=1, out=self._mx)
            sol.min(axis=1, out=self._mn)
            healthy = (self._mx < self._limits) & (self._mn > -self._limits)
            if healthy.all():
                return sol[:, : batch.num_nodes], {}
            bad_rows = np.flatnonzero(~healthy)

        failures: Dict[int, NumericalDivergence] = {}
        for row in bad_rows:
            row = int(row)
            solver = solvers[row]
            solver._react_v[:] = v0[row]
            solver._react_i[:] = i0[row]
            solver.time = t0
            try:
                self.guards[row].step_cycle(substeps, cycle=cycle)
            except NumericalDivergence as exc:
                failures[row] = exc
        return batch._sol_bt[:, : batch.num_nodes], failures
