"""Modified nodal analysis (MNA) matrix assembly.

Unknown vector layout: the first ``num_nodes`` entries are node voltages
(in :class:`~repro.circuits.netlist.Circuit` index order), followed by one
branch current per ideal voltage source.

Inductors never get branch rows here: the transient solver replaces them
with Norton companion models and the AC solver stamps their admittance
``1/(j*omega*L)``.  This keeps the system small and — because AC sweeps in
this library start well above DC — never singular.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.circuits.elements import (
    Capacitor,
    CurrentSource,
    DifferenceConductance,
    Inductor,
    Resistor,
    VoltageSource,
)
from repro.circuits.netlist import Circuit


class MNAStructure:
    """Index bookkeeping for a circuit's MNA system."""

    def __init__(self, circuit: Circuit) -> None:
        circuit.validate()
        self.circuit = circuit
        self.num_nodes = circuit.num_nodes
        self.vsources: List[VoltageSource] = circuit.elements_of_type(VoltageSource)  # type: ignore[assignment]
        self.branch_index: Dict[str, int] = {
            vs.name: self.num_nodes + k for k, vs in enumerate(self.vsources)
        }
        self.size = self.num_nodes + len(self.vsources)

    # ------------------------------------------------------------------
    def node(self, name: str):
        """Matrix index of node ``name`` (``None`` for ground)."""
        return self.circuit.node_index(name)

    def stamp_conductance(
        self, matrix: np.ndarray, pos, neg, g: complex
    ) -> None:
        """Stamp a conductance ``g`` between node indices ``pos``/``neg``.

        Either index may be ``None`` (ground).
        """
        if pos is not None:
            matrix[pos, pos] += g
        if neg is not None:
            matrix[neg, neg] += g
        if pos is not None and neg is not None:
            matrix[pos, neg] -= g
            matrix[neg, pos] -= g

    def stamp_difference_conductance(
        self, matrix: np.ndarray, element: DifferenceConductance
    ) -> None:
        """Stamp ``g * w w^T`` over the element's node indices.

        Ground entries (index ``None``) are skipped — their row/column is
        eliminated by the reference-node convention.
        """
        indices = [self.node(n) for n in element.nodes]
        g = element.conductance
        for i, wi in zip(indices, element.weights):
            if i is None:
                continue
            for j, wj in zip(indices, element.weights):
                if j is None:
                    continue
                matrix[i, j] += g * wi * wj

    def stamp_vsource_rows(self, matrix: np.ndarray) -> None:
        """Stamp the +-1 incidence pattern for every ideal voltage source."""
        for vs in self.vsources:
            b = self.branch_index[vs.name]
            p = self.node(vs.node_pos)
            n = self.node(vs.node_neg)
            if p is not None:
                matrix[p, b] += 1.0
                matrix[b, p] += 1.0
            if n is not None:
                matrix[n, b] -= 1.0
                matrix[b, n] -= 1.0

    # ------------------------------------------------------------------
    def assemble_resistive(self) -> np.ndarray:
        """Real MNA matrix with resistors and voltage-source rows only.

        Capacitor/inductor companion terms are added on top of a copy of
        this matrix by the transient solver.
        """
        matrix = np.zeros((self.size, self.size), dtype=float)
        for r in self.circuit.elements_of_type(Resistor):
            self.stamp_conductance(
                matrix, self.node(r.node_pos), self.node(r.node_neg), r.conductance  # type: ignore[union-attr]
            )
        for d in self.circuit.elements_of_type(DifferenceConductance):
            self.stamp_difference_conductance(matrix, d)  # type: ignore[arg-type]
        self.stamp_vsource_rows(matrix)
        return matrix

    def assemble_complex(self, omega: float) -> np.ndarray:
        """Complex MNA matrix at angular frequency ``omega`` (rad/s)."""
        if omega <= 0:
            raise ValueError(f"omega must be positive, got {omega}")
        matrix = np.zeros((self.size, self.size), dtype=complex)
        for r in self.circuit.elements_of_type(Resistor):
            self.stamp_conductance(
                matrix, self.node(r.node_pos), self.node(r.node_neg), r.conductance  # type: ignore[union-attr]
            )
        for c in self.circuit.elements_of_type(Capacitor):
            self.stamp_conductance(
                matrix,
                self.node(c.node_pos),
                self.node(c.node_neg),
                1j * omega * c.capacitance,  # type: ignore[union-attr]
            )
        for ind in self.circuit.elements_of_type(Inductor):
            self.stamp_conductance(
                matrix,
                self.node(ind.node_pos),
                self.node(ind.node_neg),
                1.0 / (1j * omega * ind.inductance),  # type: ignore[union-attr]
            )
        for d in self.circuit.elements_of_type(DifferenceConductance):
            self.stamp_difference_conductance(matrix, d)  # type: ignore[arg-type]
        self.stamp_vsource_rows(matrix.view())
        return matrix

    # ------------------------------------------------------------------
    def rhs_sources(self, t: float) -> np.ndarray:
        """Real RHS from independent sources evaluated at time ``t``."""
        rhs = np.zeros(self.size, dtype=float)
        for cs in self.circuit.elements_of_type(CurrentSource):
            current = cs.current_at(t)  # type: ignore[union-attr]
            p = self.node(cs.node_pos)
            n = self.node(cs.node_neg)
            if p is not None:
                rhs[p] -= current
            if n is not None:
                rhs[n] += current
        for vs in self.vsources:
            rhs[self.branch_index[vs.name]] = vs.voltage_at(t)
        return rhs

    def rhs_phasor(self, injections: Dict[str, complex]) -> np.ndarray:
        """Complex RHS for AC analysis.

        ``injections`` maps node name -> phasor current *injected into*
        that node (the usual driving-point convention).  Voltage-source
        phasors are zero: supplies are AC ground, exactly how SPICE treats
        a DC source during ``.AC``.
        """
        rhs = np.zeros(self.size, dtype=complex)
        for node, amps in injections.items():
            idx = self.node(node)
            if idx is None:
                raise ValueError("cannot inject AC current into ground")
            rhs[idx] += amps
        return rhs
