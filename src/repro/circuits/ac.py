"""AC (frequency-domain) analysis: driving-point and transfer impedances.

This is the engine behind the paper's effective-impedance methodology
(Section III-B): inject a unit sinusoidal current pattern into a set of
nodes, solve the complex MNA system at each frequency, and read the
resulting voltage phasors.  Ideal voltage sources are AC grounds, exactly
as in SPICE ``.AC`` analysis.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.circuits.mna import MNAStructure
from repro.circuits.netlist import Circuit


class ACAnalysis:
    """Frequency sweeps over a fixed linear circuit."""

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self.structure = MNAStructure(circuit)

    # ------------------------------------------------------------------
    def solve(self, frequency_hz: float, injections: Dict[str, complex]) -> Dict[str, complex]:
        """Node voltage phasors for current ``injections`` at one frequency.

        ``injections`` maps node name -> injected current phasor (amps,
        positive into the node).  Returns a map of every non-ground node
        to its voltage phasor.
        """
        if frequency_hz <= 0:
            raise ValueError(f"frequency must be positive, got {frequency_hz}")
        omega = 2.0 * math.pi * frequency_hz
        matrix = self.structure.assemble_complex(omega)
        rhs = self.structure.rhs_phasor(injections)
        solution = np.linalg.solve(matrix, rhs)
        return {
            node: complex(solution[self.structure.node(node)])
            for node in self.circuit.nodes
        }

    def transfer_impedance(
        self,
        frequency_hz: float,
        injections: Dict[str, complex],
        observe_pos: str,
        observe_neg: str = "0",
    ) -> complex:
        """V(observe_pos) - V(observe_neg) per unit of the injection pattern.

        With a unit-magnitude injection pattern this *is* the effective
        impedance seen by that pattern at the observation port.
        """
        phasors = self.solve(frequency_hz, injections)
        vp = phasors.get(observe_pos, 0.0) if observe_pos != "0" else 0.0
        vn = phasors.get(observe_neg, 0.0) if observe_neg != "0" else 0.0
        return complex(vp) - complex(vn)

    def impedance_sweep(
        self,
        frequencies_hz: Sequence[float],
        injections: Dict[str, complex],
        observe_pos: str,
        observe_neg: str = "0",
    ) -> np.ndarray:
        """Magnitude of the transfer impedance across ``frequencies_hz``."""
        return np.array(
            [
                abs(
                    self.transfer_impedance(
                        f, injections, observe_pos, observe_neg
                    )
                )
                for f in frequencies_hz
            ]
        )


def log_frequency_grid(
    start_hz: float, stop_hz: float, points_per_decade: int = 20
) -> np.ndarray:
    """Logarithmically spaced frequency grid, inclusive of both endpoints."""
    if start_hz <= 0 or stop_hz <= start_hz:
        raise ValueError(
            f"need 0 < start < stop, got start={start_hz}, stop={stop_hz}"
        )
    decades = math.log10(stop_hz / start_hz)
    num = max(2, int(round(decades * points_per_decade)) + 1)
    return np.logspace(math.log10(start_hz), math.log10(stop_hz), num)
