"""Linear circuit simulation engine (the SPICE 3 substitute).

The power delivery networks studied by the paper are linear RLC networks
driven by ideal sources, so a modified-nodal-analysis (MNA) engine with a
fixed-step trapezoidal transient integrator and a complex-valued AC solver
reproduces exactly what SPICE computes for them.

Public surface:

* :class:`~repro.circuits.netlist.Circuit` — build circuits from named nodes.
* :class:`~repro.circuits.transient.TransientSolver` — time-domain waveforms.
* :class:`~repro.circuits.ac.ACAnalysis` — frequency-domain impedances.
"""

from repro.circuits.elements import (
    Capacitor,
    CurrentSource,
    DifferenceConductance,
    Element,
    Inductor,
    Resistor,
    VoltageSource,
)
from repro.circuits.netlist import Circuit, GROUND
from repro.circuits.transient import (
    BatchSolverGuard,
    BatchTransientSolver,
    NumericalDivergence,
    SolverGuard,
    SolverStats,
    TransientResult,
    TransientSolver,
)
from repro.circuits.ac import ACAnalysis

__all__ = [
    "ACAnalysis",
    "BatchSolverGuard",
    "BatchTransientSolver",
    "Capacitor",
    "Circuit",
    "CurrentSource",
    "DifferenceConductance",
    "Element",
    "GROUND",
    "Inductor",
    "NumericalDivergence",
    "Resistor",
    "SolverGuard",
    "SolverStats",
    "TransientResult",
    "TransientSolver",
    "VoltageSource",
]
