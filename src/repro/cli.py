"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the library's main workflows:

* ``cosim``     — run the cross-layer co-simulation of one benchmark
  (alias: ``run``; ``--telemetry DIR`` writes a run manifest);
* ``faults``    — run a fault-injection scenario (canned name or JSON
  file) and print the guardband verdict (exit 1 unless ``--expect``
  matches);
* ``chaos``     — run a deterministic runtime-chaos scenario (NaN
  poisoning, lane quarantine, worker/checkpoint SIGKILL + resume, torn
  store append, forced C-backend failure) and assert the self-healing
  invariants hold (exit 1 on any violated check; ``--output DIR``
  writes forensics JSON for CI artifact upload);
* ``sweep``     — parallel co-simulation grid (area x benchmark x ...)
  with per-point timeouts, bounded retries and checkpoint/resume;
* ``explore``   — design-space exploration service: successive-halving
  search over the grid with a persistent config-hash result cache,
  emitting the PDE-vs-area-vs-guardband Pareto frontier
  (``pareto.json``);
* ``trace``     — summarize a telemetry manifest written by the above;
* ``observe``   — render a run's noise-observatory report (band
  decomposition, droop events, PDE loss ledger, layer imbalance);
* ``compare``   — diff two run manifests under regression thresholds
  (exit 1 on regression — the CI physics gate);
* ``impedance`` — print the Fig. 3 effective-impedance curves;
* ``size``      — CR-IVR die-area sizing for both VS configurations;
* ``pde``       — PDE breakdown of a benchmark under each PDS;
* ``benchmarks``— list the available workloads.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np


def _cmd_benchmarks(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.workloads.benchmarks import list_benchmarks

    rows = [
        [spec.name, spec.suite, f"{spec.miss_ratio:.2f}",
         f"{spec.jitter:.2f}", spec.description]
        for spec in list_benchmarks(args.suite)
    ]
    print(
        format_table(
            ["name", "suite", "miss", "jitter", "description"], rows,
            title="Available benchmarks",
        )
    )
    return 0


def _write_flight(result, telemetry_dir) -> None:
    """Persist a run's flight-recorder dumps under ``<dir>/flight/``."""
    from pathlib import Path

    from repro.telemetry.flight import FLIGHT_DIR

    flight = getattr(result, "flight", None)
    if flight is None:
        return
    paths = flight.write(Path(telemetry_dir) / FLIGHT_DIR)
    summary = flight.summary()
    print(
        f"flight recorder: {summary['onsets']} guardband onset(s), "
        f"{summary['safe_state_edges']} safe-state edge(s), "
        f"{len(paths)} dump(s) in {Path(telemetry_dir) / FLIGHT_DIR}"
    )


def _cmd_cosim(args: argparse.Namespace) -> int:
    from repro.analysis.metrics import noise_box_stats
    from repro.sim.cosim import CosimConfig, run_cosim

    config = CosimConfig(
        cycles=args.cycles,
        warmup_cycles=args.warmup,
        cr_ivr_area_mm2=args.area,
        use_controller=not args.no_controller,
        seed=args.seed,
    )
    telemetry = None
    if args.telemetry:
        from repro.telemetry import Telemetry

        telemetry = Telemetry(run_id=f"cosim-{args.benchmark}")
    result = run_cosim(args.benchmark, config, telemetry=telemetry)
    if telemetry is not None:
        from repro.telemetry import write_run

        manifest = write_run(
            telemetry, args.telemetry, config=config,
            extra={"command": "cosim", "benchmark": args.benchmark},
        )
        print(f"telemetry written to {manifest}")
        _write_flight(result, args.telemetry)
    print(result.summary())
    box = noise_box_stats(result.sm_voltages)
    print(
        f"noise: min {box.minimum:.3f} | q1 {box.q1:.3f} | "
        f"median {box.median:.3f} | q3 {box.q3:.3f} | max {box.maximum:.3f} V"
    )
    breakdown = result.efficiency()
    for component, fraction in breakdown.fractions().items():
        print(f"  {component:<11s} {fraction:7.2%}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.core.controller import ControllerConfig
    from repro.faults import (
        FaultSchedule,
        get_scenario,
        list_scenarios,
    )
    from repro.sim.cosim import CosimConfig, run_cosim

    if args.list:
        for name in list_scenarios():
            schedule = get_scenario(name)
            kinds = ", ".join(e.kind for e in schedule.events)
            print(f"{name:<20s} {len(schedule)} events: {kinds}")
        return 0
    if not args.scenario:
        print("need a scenario name or JSON file (or --list)",
              file=sys.stderr)
        return 2
    path = Path(args.scenario)
    if path.suffix == ".json" or path.exists():
        try:
            schedule = FaultSchedule.from_json(path)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"bad scenario file {path}: {exc}", file=sys.stderr)
            return 2
    else:
        try:
            schedule = get_scenario(args.scenario)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2

    controller = ControllerConfig(
        watchdog_enabled=not args.no_degradation,
        sensor_fallback_enabled=not args.no_degradation,
    )
    config = CosimConfig(
        cycles=args.cycles,
        warmup_cycles=args.warmup,
        seed=args.seed,
        faults=schedule,
        controller=controller,
    )
    telemetry = None
    if args.telemetry:
        from repro.telemetry import Telemetry

        telemetry = Telemetry(run_id=f"faults-{schedule.name}")
    result = run_cosim(args.benchmark, config, telemetry=telemetry)
    if telemetry is not None:
        from repro.telemetry import write_run

        manifest = write_run(
            telemetry, args.telemetry, config=config,
            extra={
                "command": "faults",
                "benchmark": args.benchmark,
                "scenario": schedule.name,
            },
        )
        print(f"telemetry written to {manifest}")
        _write_flight(result, args.telemetry)
    report = result.fault_report
    assert report is not None  # faults were scheduled
    summary = report["summary"]
    print(f"scenario: {schedule.name} ({len(schedule)} events, "
          f"seed {schedule.seed})")
    for event in report["events"]:
        print(f"  [{event['layer']:<12s}] {event['description']}")
    print(f"degradation: {'off' if args.no_degradation else 'on'} "
          "(watchdog + sensor fallback)")
    print(
        f"min voltage {summary['min_voltage_v']:.3f} V "
        f"(tail {summary['tail_min_voltage_v']:.3f} V, guardband "
        f"{summary['guardband_v']:.2f} V); "
        f"{summary['guardband_violation_cycles']} violation cycles "
        f"({summary['guardband_violation_fraction']:.1%})"
    )
    print(
        f"watchdog engagements {summary['watchdog_engagements']}, "
        f"safe-state decisions {summary['safe_state_decisions']}, "
        f"sensor fallback samples {summary['sensor_fallback_samples']}, "
        f"NaN samples {summary['nan_samples_seen']}, "
        f"limit-cycle events {summary['limit_cycle_events']}"
    )
    print(f"verdict: {report['verdict']}")
    if args.expect:
        if report["verdict"] != args.expect:
            print(f"FAIL: expected verdict {args.expect!r}, got "
                  f"{report['verdict']!r}", file=sys.stderr)
            return 1
        print(f"verdict matches --expect {args.expect}")
    return 0


# ---------------------------------------------------------------------------
# Deterministic chaos scenarios (``repro chaos``)
# ---------------------------------------------------------------------------
# Each runner returns ``(checks, forensics)``: named boolean invariants
# (all must hold) plus a JSON-able forensics payload written under
# ``--output`` for CI artifact upload.  The runners live here — not in
# repro.faults.chaos — because they drive the full simulation stack and
# the chaos module must stay stdlib-only (hook sites import it).

def _chaos_nan_poison(seed: int):
    """Mid-run NaN poisoning yields a structured ``diverged`` verdict —
    never an unhandled exception or a silent NaN waveform."""
    import numpy as np

    from repro.faults import chaos
    from repro.sim.cosim import CosimConfig, run_cosim

    plan = chaos.ChaosPlan("nan-poison", [
        chaos.ChaosEvent("cosim_cycle", "nan_poison", at=40, once=False),
    ])
    chaos.activate(plan)
    try:
        result = run_cosim(
            "hotspot", CosimConfig(cycles=120, warmup_cycles=40, seed=seed)
        )
    finally:
        chaos.deactivate()
    info = result.divergence or {}
    checks = {
        "structured_verdict": result.diverged and bool(info.get("stage")),
        "truncated_at_poison_cycle": result.num_cycles == 40,
        "no_nan_in_waveform": bool(np.isfinite(result.sm_voltages).all()),
    }
    return checks, {"divergence": info,
                    "recorded_cycles": result.num_cycles}


def _chaos_lane_quarantine(seed: int):
    """A poisoned batch lane is evicted; survivors stay bit-identical
    to their serial runs and the dead lane keeps its clean prefix."""
    import numpy as np

    from repro.faults import chaos
    from repro.sim.cosim import (
        CosimConfig, CosimLane, run_cosim, run_cosim_batch,
    )

    def cfg(s: int) -> CosimConfig:
        return CosimConfig(cycles=100, warmup_cycles=30, seed=s)

    lanes = [
        CosimLane("hotspot", cfg(seed)),
        CosimLane("bfs", cfg(seed + 2)),
        CosimLane("srad", cfg(seed + 4)),
    ]
    serial = [run_cosim(lane.benchmark, lane.config) for lane in lanes]
    plan = chaos.ChaosPlan("lane-quarantine", [
        chaos.ChaosEvent(
            "cosim_cycle", "nan_poison", at=25, lane=1, once=False
        ),
    ])
    chaos.activate(plan)
    try:
        batch = run_cosim_batch(lanes)
    finally:
        chaos.deactivate()
    checks = {
        "poisoned_lane_quarantined": batch[1].diverged,
        "survivor_0_bit_identical": bool(
            np.array_equal(batch[0].sm_voltages, serial[0].sm_voltages)
        ),
        "survivor_2_bit_identical": bool(
            np.array_equal(batch[2].sm_voltages, serial[2].sm_voltages)
        ),
        "dead_lane_prefix_identical": bool(
            np.array_equal(batch[1].sm_voltages, serial[1].sm_voltages[:25])
        ),
    }
    return checks, {"divergence": batch[1].divergence}


# Child body for the kill-resume scenario: runs a checkpointed sweep
# under a REPRO_CHAOS plan (argv: checkpoint path); the plan SIGKILLs a
# worker at a point boundary (retried in-run) and then the parent
# mid-checkpoint (the process dies — that is the point).
_KILL_RESUME_CHILD = """\
import sys
from repro.sim.cosim import CosimConfig
from repro.sim.sweep import SweepRunner, expand_grid

points = expand_grid(
    ["hotspot", "bfs"], {"cr_ivr_area_mm2": [52.9, 105.8, 211.6]}
)
base = CosimConfig(cycles=40, warmup_cycles=10)
runner = SweepRunner(
    points, base, max_workers=2, max_attempts=3,
    checkpoint_path=sys.argv[1], checkpoint_every=1,
)
runner.run()
"""


def _chaos_kill_resume(seed: int):
    """SIGKILL a sweep worker and then the sweep itself mid-checkpoint;
    resume must recover every completed point and finish with metrics
    identical to an uninterrupted run."""
    import json as json_mod
    import os
    import subprocess
    import tempfile

    from repro.faults import chaos
    from repro.sim.cosim import CosimConfig
    from repro.sim.sweep import SweepRunner, expand_grid

    points = expand_grid(
        ["hotspot", "bfs"], {"cr_ivr_area_mm2": [52.9, 105.8, 211.6]}
    )
    base = CosimConfig(cycles=40, warmup_cycles=10)
    reference = SweepRunner(points, base, max_workers=1).run()

    tmp = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    checkpoint = tmp / "checkpoint.json"
    plan = chaos.ChaosPlan("kill-resume", [
        chaos.ChaosEvent("worker_point", "kill", at=1),
        chaos.ChaosEvent("checkpoint_write", "kill", at=3),
    ])
    plan_path = plan.save(tmp / "plan.json")
    import repro

    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env[chaos.CHAOS_ENV] = str(plan_path)
    env["PYTHONPATH"] = src_dir + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-c", _KILL_RESUME_CHILD, str(checkpoint)],
        env=env, capture_output=True, text=True, timeout=600,
    )
    with open(checkpoint) as handle:
        recovered = len(json_mod.load(handle).get("completed", []))
    # Same attempt budget as the killed run: the checkpointed
    # WorkerCrash failure carries its spent attempts and must still
    # have headroom to retry.
    resumed = SweepRunner.resume(
        checkpoint, points, base, max_workers=1, max_attempts=3
    ).run()

    ref_metrics = [r.metrics for r in reference.points]
    res_metrics = [r.metrics for r in resumed.points]
    checks = {
        "child_was_killed": proc.returncode != 0,
        "checkpoint_recovered_points": 0 < recovered < len(points),
        "all_points_completed": resumed.num_failed == 0,
        "metrics_identical_to_uninterrupted": ref_metrics == res_metrics,
        "attempt_budgets_intact": all(
            r.attempts <= 3 for r in resumed.points
        ),
    }
    return checks, {
        "child_returncode": proc.returncode,
        "recovered_points": recovered,
        "total_points": len(points),
        "child_stderr_tail": proc.stderr[-2000:],
    }


def _chaos_torn_store(seed: int):
    """A torn store append degrades to a cache miss on reload — never a
    crash — and later appends land cleanly after the torn tail."""
    import tempfile

    from repro.faults import chaos
    from repro.sim.cosim import CosimConfig
    from repro.sim.store import ResultStore, point_key
    from repro.sim.sweep import SweepPointResult, expand_grid

    tmp = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    path = tmp / "store.jsonl"
    base = CosimConfig(cycles=40, warmup_cycles=10)
    points = expand_grid(["hotspot", "bfs"], base_seed=seed)
    results = [
        SweepPointResult(point=p, ok=True, metrics={"pde": 0.9 + i})
        for i, p in enumerate(points)
    ]

    store = ResultStore(path)
    chaos.activate(chaos.ChaosPlan("torn-store", [
        chaos.ChaosEvent("store_append", "torn_write", at=0),
    ]))
    try:
        torn_ok = store.put(point_key(points[0], base), results[0])
    finally:
        chaos.deactivate()
    clean_ok = store.put(point_key(points[1], base), results[1])

    reloaded = ResultStore(path)
    checks = {
        "torn_put_reported_failure": torn_ok is False,
        "clean_put_after_torn": clean_ok is True,
        "torn_line_is_cache_miss": reloaded.get(
            point_key(points[0], base)
        ) is None,
        "clean_entry_survives": reloaded.serve(
            point_key(points[1], base), points[1]
        ) is not None,
        "corruption_counted_not_raised": reloaded.corrupt_lines >= 1,
    }
    return checks, {"store_stats": dict(reloaded.stats())}


def _chaos_cbuild_fail(seed: int):
    """A forced C-kernel build failure falls back to NumPy loudly: one
    RuntimeWarning and a ``gpu.backend_fallback`` telemetry counter."""
    import os
    import warnings

    from repro.gpu import _cbuild
    from repro.sim.cosim import CosimConfig, run_cosim
    from repro.telemetry import Telemetry

    _cbuild.reset_fallback_state()
    os.environ[_cbuild.CBUILD_ENV] = "fail"
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            lib = _cbuild.load_engine_lib()
            tele = Telemetry(run_id="chaos-cbuild")
            run_cosim(
                "hotspot",
                CosimConfig(cycles=60, warmup_cycles=20, seed=seed),
                telemetry=tele,
            )
    finally:
        del os.environ[_cbuild.CBUILD_ENV]
        _cbuild.reset_fallback_state()
    fallback_warnings = [
        w for w in caught if issubclass(w.category, RuntimeWarning)
        and "falling back" in str(w.message)
    ]
    checks = {
        "build_forced_to_fail": lib is None,
        "fallback_warned_once": len(fallback_warnings) == 1,
        "telemetry_counter_present": (
            tele.counters.get("gpu.backend_fallback", 0) > 0
        ),
    }
    return checks, {
        "fallback_count": _cbuild.build_fallback_count(),
        "counters": {
            k: v for k, v in tele.counters.items() if "fallback" in k
        },
    }


CHAOS_SCENARIOS = {
    "nan-poison": _chaos_nan_poison,
    "lane-quarantine": _chaos_lane_quarantine,
    "kill-resume": _chaos_kill_resume,
    "torn-store": _chaos_torn_store,
    "cbuild-fail": _chaos_cbuild_fail,
}


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json as json_mod

    if args.list:
        for name, runner in CHAOS_SCENARIOS.items():
            doc = (runner.__doc__ or "").split("\n")[0].strip()
            print(f"{name:<18s} {doc}")
        return 0
    if not args.scenario:
        print("need a scenario name (or --list)", file=sys.stderr)
        return 2
    if args.scenario == "all":
        names = list(CHAOS_SCENARIOS)
    elif args.scenario in CHAOS_SCENARIOS:
        names = [args.scenario]
    else:
        print(
            f"unknown chaos scenario {args.scenario!r}; "
            f"know {', '.join(CHAOS_SCENARIOS)} (or 'all')",
            file=sys.stderr,
        )
        return 2

    out_dir = Path(args.output) if args.output else None
    failed = False
    for name in names:
        checks, forensics = CHAOS_SCENARIOS[name](args.seed)
        ok = all(checks.values())
        failed = failed or not ok
        print(f"chaos scenario {name}: {'PASS' if ok else 'FAIL'}")
        for check, held in checks.items():
            print(f"  [{'ok' if held else 'FAIL'}] {check}")
        if out_dir is not None:
            out_dir.mkdir(parents=True, exist_ok=True)
            artifact = out_dir / f"{name}.json"
            with open(artifact, "w") as handle:
                json_mod.dump(
                    {"scenario": name, "ok": ok, "checks": checks,
                     "forensics": forensics},
                    handle, indent=2, default=str,
                )
                handle.write("\n")
            print(f"  forensics -> {artifact}")
    return 1 if failed else 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.sim.cosim import CosimConfig
    from repro.sim.sweep import SweepRunner, expand_grid
    from repro.workloads.benchmarks import BENCHMARK_NAMES

    if args.benchmarks.strip().lower() == "all":
        benchmarks = list(BENCHMARK_NAMES)
    else:
        benchmarks = [b.strip() for b in args.benchmarks.split(",") if b.strip()]
    areas = [float(a) for a in args.areas.split(",") if a.strip()]
    base = CosimConfig(
        cycles=args.cycles,
        warmup_cycles=args.warmup,
        use_controller=not args.no_controller,
    )

    def progress(result) -> None:
        status = "ok" if result.ok else "FAILED"
        if result.timed_out:
            status = "TIMEOUT"
        retry = f" attempt {result.attempts}" if result.attempts > 1 else ""
        print(f"  {result.point.describe():<48s} {status} "
              f"({result.elapsed_s:.1f}s{retry})", flush=True)

    telemetry = None
    live = None
    if args.telemetry:
        from repro.telemetry import LiveRun, Telemetry

        telemetry = Telemetry(run_id="sweep")
        # The live plane shares the telemetry directory: status.json +
        # heartbeats/ appear as the sweep runs (watch with `repro top`),
        # and events stream into events.jsonl before write_run rewrites
        # the final, identical log.
        live = LiveRun(args.telemetry)
        live.attach(telemetry)
    points = expand_grid(
        benchmarks, axes={"cr_ivr_area_mm2": areas}, base_seed=args.seed
    )
    runner_kwargs = dict(
        max_workers=args.workers,
        chunksize=args.chunksize,
        batch_size=args.batch_size,
        point_timeout_s=args.timeout or None,
        max_attempts=args.retries + 1,
        retry_backoff_s=args.backoff,
        checkpoint_path=args.checkpoint or None,
    )
    if args.resume:
        if not args.checkpoint:
            print("--resume needs --checkpoint FILE", file=sys.stderr)
            return 2
        try:
            runner = SweepRunner.resume(
                args.checkpoint, points, base,
                **{k: v for k, v in runner_kwargs.items()
                   if k != "checkpoint_path"},
            )
        except (OSError, ValueError) as exc:
            print(f"cannot resume from {args.checkpoint}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"resuming: {len(runner._preloaded)}/{len(points)} points "
              "already complete")
    else:
        runner = SweepRunner(points, base, **runner_kwargs)
    sweep = runner.run(progress=progress, telemetry=telemetry, live=live)
    if telemetry is not None:
        from repro.telemetry import write_run

        if live is not None:
            live.close()
        manifest = write_run(
            telemetry, args.telemetry, config=base,
            extra={
                "command": "sweep",
                "benchmarks": benchmarks,
                "areas_mm2": areas,
            },
        )
        print(f"telemetry written to {manifest}")

    rows = []
    for r in sweep.successes():
        m = r.metrics
        cpk = m["cycles_per_kernel"]
        rows.append([
            r.point.benchmark,
            f"{dict(r.point.overrides)['cr_ivr_area_mm2']:.1f}",
            f"{m['min_voltage_v']:.3f}",
            f"{m['pde']:.1%}",
            f"{m['throughput_ipc']:.1f}",
            f"{cpk:.0f}" if cpk is not None else "n/a",
            str(m["fake_instructions"]),
        ])
    print(
        format_table(
            ["benchmark", "area_mm2", "V(min)", "PDE", "IPC",
             "cyc/kernel", "fakes"],
            rows,
            title=(
                f"Sweep: {len(sweep.points)} points, "
                f"{sweep.num_failed} failed, {sweep.elapsed_s:.1f}s"
            ),
        )
    )
    for r in sweep.failures():
        first_line = (r.error or "").splitlines()[0]
        print(f"FAILED {r.point.describe()}: {first_line}")
    for r in sweep.successes():
        if r.note:
            print(f"note {r.point.describe()}: {r.note}")
    if args.output:
        path = sweep.write_json(args.output)
        print(f"results written to {path}")
    # Failed points are reported, not fatal; only a fully-failed sweep
    # (or a crash before this line) is an error exit.
    return 0 if sweep.successes() else 1


def _parse_axis_value(text: str):
    """One axis value: JSON scalar when it parses, bare string otherwise."""
    import json

    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _cmd_explore(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.sim.cosim import CosimConfig
    from repro.sim.explore import run_exploration
    from repro.workloads.benchmarks import BENCHMARK_NAMES

    if args.benchmarks.strip().lower() == "all":
        benchmarks = list(BENCHMARK_NAMES)
    else:
        benchmarks = [b.strip() for b in args.benchmarks.split(",") if b.strip()]
    axes = {}
    if args.areas.strip():
        axes["cr_ivr_area_mm2"] = [
            float(a) for a in args.areas.split(",") if a.strip()
        ]
    for spec in args.axis:
        name, sep, values = spec.partition("=")
        if not sep or not name.strip() or not values.strip():
            print(f"bad --axis {spec!r}: expected FIELD=V1,V2,...",
                  file=sys.stderr)
            return 2
        axes[name.strip()] = [
            _parse_axis_value(v.strip()) for v in values.split(",") if v.strip()
        ]
    base = CosimConfig(
        cycles=args.cycles,
        warmup_cycles=args.warmup,
        use_controller=not args.no_controller,
    )

    def progress(result) -> None:
        status = "cached" if result.cached else ("ok" if result.ok else "FAILED")
        print(f"  {result.point.describe():<48s} {status} "
              f"({result.elapsed_s:.1f}s)", flush=True)

    telemetry = None
    live = None
    if args.telemetry:
        from repro.telemetry import LiveRun, Telemetry

        telemetry = Telemetry(run_id="explore")
        live = LiveRun(args.telemetry)
        live.attach(telemetry)
    try:
        result = run_exploration(
            benchmarks,
            axes,
            base,
            store_path=args.store,
            rounds=args.rounds,
            eta=args.eta,
            screen_cycles=args.screen_cycles or None,
            guardband_v=args.guardband,
            base_seed=args.seed,
            max_workers=args.workers,
            batch_size=args.batch_size,
            point_timeout_s=args.timeout or None,
            max_attempts=args.retries + 1,
            progress=progress if args.verbose else None,
            telemetry=telemetry,
            live=live,
        )
    except (ValueError, RuntimeError) as exc:
        print(f"exploration failed: {exc}", file=sys.stderr)
        return 2
    if telemetry is not None:
        from repro.telemetry import write_run

        if live is not None:
            live.close()
        manifest = write_run(
            telemetry, args.telemetry, config=base,
            extra={
                "command": "explore",
                "benchmarks": benchmarks,
                "axes": {k: list(v) for k, v in axes.items()},
            },
        )
        print(f"telemetry written to {manifest}")
    print(result.render())
    if args.output:
        path = result.write_json(Path(args.output))
        print(f"pareto artifact written to {path}")
    return 0 if result.front else 1


def _cmd_impedance(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_series
    from repro.circuits.ac import log_frequency_grid
    from repro.pdn.builder import build_stacked_pdn
    from repro.pdn.impedance import ImpedanceAnalyzer

    pdn = build_stacked_pdn(cr_ivr_area_mm2=args.area)
    analyzer = ImpedanceAnalyzer(pdn)
    freqs = log_frequency_grid(1e6, 5e8, points_per_decade=args.points)
    curves = analyzer.figure3_curves(freqs)
    print(
        format_series(
            {
                "frequency_mhz": list(np.round(curves["frequency"] / 1e6, 2)),
                "Z_G": list(np.round(curves["z_global"], 5)),
                "Z_ST": list(np.round(curves["z_stack"], 5)),
                "Z_R_same": list(
                    np.round(curves["z_residual_same_layer"], 5)
                ),
                "Z_R_diff": list(
                    np.round(curves["z_residual_diff_layer"], 5)
                ),
            },
            x_label="frequency_mhz",
            title=(
                f"Effective impedance (ohm), CR-IVR area {args.area} mm^2"
            ),
        )
    )
    return 0


def _cmd_size(args: argparse.Namespace) -> int:
    from repro.pdn.area import AreaModel

    model = AreaModel()
    gpu_die = model.gpu_die_area_mm2
    circuit = model.required_area_mm2(None, droop_target_v=args.guardband)
    cross = model.required_area_mm2(
        args.latency, droop_target_v=args.guardband
    )
    print(f"guardband: {args.guardband} V, control latency: {args.latency} "
          "cycles")
    print(f"circuit-only CR-IVR: {circuit:7.1f} mm^2 "
          f"({circuit / gpu_die:.2f}x GPU die)")
    print(f"cross-layer CR-IVR:  {cross:7.1f} mm^2 "
          f"({cross / gpu_die:.2f}x GPU die)")
    print(f"area reduction:      {1 - cross / circuit:.1%}")
    return 0


def _cmd_pde(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.config import StackConfig, SystemConfig
    from repro.gpu.gpu import GPU
    from repro.pdn.efficiency import (
        layer_shuffle_power,
        pde_conventional,
        pde_single_ivr,
        pde_voltage_stacked,
    )
    from repro.workloads.benchmarks import get_benchmark
    from repro.workloads.traces import capture_trace

    spec = get_benchmark(args.benchmark)
    gpu = GPU(
        spec.kernel, config=SystemConfig(), seed=args.seed,
        miss_ratio=spec.miss_ratio, jitter=spec.jitter,
    )
    trace = capture_trace(gpu, args.cycles, warmup_cycles=300)
    load = trace.mean_power_w
    shuffle = layer_shuffle_power(trace.data, StackConfig())
    rows = []
    for label, breakdown in [
        ("single layer VRM", pde_conventional(load)),
        ("single layer IVR", pde_single_ivr(load)),
        ("VS circuit only", pde_voltage_stacked(load, shuffle)),
        (
            "VS cross-layer",
            pde_voltage_stacked(load, shuffle, controller_power_w=1.634e-3),
        ),
    ]:
        rows.append([label, f"{breakdown.pde:.1%}",
                     f"{breakdown.total_loss:.2f} W"])
    print(
        format_table(
            ["PDS", "PDE", "loss"], rows,
            title=(
                f"{spec.name}: load {load:.1f} W, layer imbalance "
                f"{shuffle / load:.1%}"
            ),
        )
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.telemetry import load_manifest, read_events, render_manifest

    try:
        manifest = load_manifest(args.manifest)
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return 1
    print(render_manifest(manifest))
    # A missing or mid-line-truncated events.jsonl (run killed while
    # writing, partial copy, ...) must not block the manifest summary:
    # surface it as a note instead.
    events, note = read_events(args.manifest)
    if note:
        print(f"note: {note}")
    # Per-point degradations a sweep recorded (timeouts, metrics that
    # could not be computed) — failures are loud, these should not be
    # silent either.
    for event in events:
        if event.get("kind") != "sweep_point":
            continue
        tags = []
        if event.get("timed_out"):
            tags.append("timed out")
        if event.get("note"):
            tags.append(str(event["note"]))
        if not event.get("ok") and event.get("error"):
            tags.append(str(event["error"]))
        if tags:
            print(f"point #{event.get('index')} "
                  f"{event.get('benchmark', '?')}: {'; '.join(tags)}")
    return 0


def _cmd_observe(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.observatory import render_noise_report
    from repro.telemetry import load_manifest, read_flight_dir, render_flight

    try:
        manifest = load_manifest(args.manifest)
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return 1
    run_dir = Path(args.manifest)
    if not run_dir.is_dir():
        run_dir = run_dir.parent
    flight_dumps = read_flight_dir(run_dir)
    noise = manifest.get("noise")
    if not noise:
        print(
            f"manifest {manifest.get('run_id', '?')} has no noise section "
            "(run was too short, or predates the observatory — re-run "
            "with --telemetry)",
            file=sys.stderr,
        )
        if not flight_dumps:
            return 1
        # The flight recorder may still have caught something the
        # aggregate observatory could not summarize — show it.
        print(f"run {manifest.get('run_id', '?')}")
        print(render_flight(flight_dumps, _flight_guardband(manifest)))
        return 0
    print(f"run {manifest.get('run_id', '?')}")
    print(render_noise_report(noise))
    if flight_dumps:
        print()
        print(render_flight(flight_dumps, _flight_guardband(manifest)))
    return 0


def _flight_guardband(manifest) -> Optional[float]:
    flight = manifest.get("flight")
    if isinstance(flight, dict) and flight.get("guardband_v") is not None:
        return float(flight["guardband_v"])
    return None


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    from repro.analysis.top import render_top

    now_fn = (lambda: args.now) if args.now is not None else time.time
    frame = render_top(
        args.directory, now_unix=now_fn(), stale_after_s=args.stale_after
    )
    print(frame)
    if args.once:
        return 0
    try:
        while True:
            time.sleep(args.interval)
            frame = render_top(
                args.directory, now_unix=now_fn(),
                stale_after_s=args.stale_after,
            )
            # Clear + home keeps the dashboard in place without pulling
            # in curses; plain reprint when stdout is not a terminal.
            if sys.stdout.isatty():
                print("\033[2J\033[H", end="")
            print(frame, flush=True)
    except KeyboardInterrupt:
        return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.telemetry import read_status, render_prometheus

    status = read_status(args.directory)
    if status is None:
        print(f"no status.json under {args.directory} (is the live plane "
              "on? runs write it when --telemetry DIR is set)",
              file=sys.stderr)
        return 1
    print(render_prometheus(status), end="")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.compare import (
        compare_manifests,
        load_thresholds,
        render_compare,
    )
    from repro.telemetry import load_manifest

    try:
        base = load_manifest(args.base)
        candidate = load_manifest(args.candidate)
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return 1
    thresholds = None
    if args.thresholds:
        try:
            thresholds = load_thresholds(args.thresholds)
        except (OSError, ValueError) as exc:
            print(f"bad thresholds file: {exc}", file=sys.stderr)
            return 2
    report = compare_manifests(base, candidate, thresholds)
    print(render_compare(report))
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Voltage-stacked GPU cross-layer simulator (MICRO'18)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("benchmarks", help="list available workloads")
    p.add_argument("--suite", default="", choices=["", "rodinia", "cuda_sdk"])
    p.set_defaults(func=_cmd_benchmarks)

    p = sub.add_parser(
        "cosim", aliases=["run"], help="run the cross-layer co-simulation"
    )
    p.add_argument("benchmark", nargs="?", default="hotspot")
    p.add_argument("--cycles", type=int, default=3000)
    p.add_argument("--warmup", type=int, default=300)
    p.add_argument("--area", type=float, default=105.8,
                   help="CR-IVR area in mm^2")
    p.add_argument("--no-controller", action="store_true",
                   help="circuit-only voltage stacking")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--telemetry", default="", metavar="DIR",
                   help="write a run manifest + JSONL event log here")
    p.set_defaults(func=_cmd_cosim)

    p = sub.add_parser(
        "faults",
        help="run a fault-injection scenario and print the guardband "
             "verdict",
    )
    p.add_argument(
        "scenario", nargs="?", default="",
        help="canned scenario name (see --list) or a scenario JSON file",
    )
    p.add_argument("--benchmark", default="hotspot")
    p.add_argument("--cycles", type=int, default=1200)
    p.add_argument("--warmup", type=int, default=150)
    p.add_argument("--seed", type=int, default=3)
    p.add_argument("--list", action="store_true",
                   help="list canned scenarios and exit")
    p.add_argument(
        "--no-degradation", action="store_true",
        help="disable the guardband watchdog and sensor-loss fallback "
             "(demonstrates the unprotected failure mode)",
    )
    p.add_argument(
        "--expect", default="", metavar="VERDICT",
        choices=["", "survived", "safe_state", "violated"],
        help="exit 1 unless the verdict matches (CI smoke gate)",
    )
    p.add_argument("--telemetry", default="", metavar="DIR",
                   help="write a run manifest + JSONL event log here")
    p.set_defaults(func=_cmd_faults)

    p = sub.add_parser(
        "chaos",
        help="run a deterministic runtime-chaos scenario and assert its "
             "self-healing invariants (exit 1 on any violated check)",
    )
    p.add_argument(
        "scenario", nargs="?", default="",
        help="scenario name (see --list), or 'all'",
    )
    p.add_argument("--list", action="store_true",
                   help="list chaos scenarios and exit")
    p.add_argument("--seed", type=int, default=3)
    p.add_argument("--output", default="", metavar="DIR",
                   help="write per-scenario forensics JSON here "
                        "(CI artifact upload)")
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "sweep", help="parallel co-simulation sweep over a parameter grid"
    )
    p.add_argument("--benchmarks", default="hotspot,heartwall,fastwalsh,bfs",
                   help="comma-separated benchmark names, or 'all'")
    p.add_argument("--areas", default="52.9,105.8,211.6",
                   help="comma-separated CR-IVR areas in mm^2")
    p.add_argument("--cycles", type=int, default=1000)
    p.add_argument("--warmup", type=int, default=200)
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes (default: one per CPU; 1 = inline)")
    p.add_argument("--chunksize", type=int, default=1)
    p.add_argument("--batch-size", type=int, default=1, metavar="B",
                   help="co-simulate up to B compatible grid points per "
                        "task with the lock-stepped batched engine "
                        "(bit-identical to per-point runs; 1 = off)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--no-controller", action="store_true")
    p.add_argument("--timeout", type=float, default=0.0, metavar="S",
                   help="per-point wall-clock timeout in seconds "
                        "(0 = none; hung points are killed)")
    p.add_argument("--retries", type=int, default=0,
                   help="extra attempts for retryable failures "
                        "(timeouts, crashed workers)")
    p.add_argument("--backoff", type=float, default=0.5, metavar="S",
                   help="base delay between retry waves (doubles each wave)")
    p.add_argument("--checkpoint", default="", metavar="FILE",
                   help="append completed points to this atomic "
                        "partial-results file")
    p.add_argument("--resume", action="store_true",
                   help="skip points already completed in --checkpoint")
    p.add_argument("--output", default="sweep_results.json",
                   help="JSON results path ('' to skip writing)")
    p.add_argument("--telemetry", default="", metavar="DIR",
                   help="write a run manifest + JSONL event log here")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "explore",
        help="cached successive-halving exploration of the design space; "
             "emits the Pareto-frontier artifact (pareto.json)",
    )
    p.add_argument("--benchmarks", default="hotspot,heartwall,fastwalsh,bfs",
                   help="comma-separated benchmark names, or 'all'")
    p.add_argument("--areas", default="52.9,105.8,211.6",
                   help="CR-IVR area axis in mm^2 ('' to drop the axis)")
    p.add_argument(
        "--axis", action="append", default=[], metavar="FIELD=V1,V2",
        help="extra grid axis over a CosimConfig field; dotted names "
             "reach nested configs (e.g. controller.k2=4,8,16); values "
             "are parsed as JSON scalars when possible",
    )
    p.add_argument("--cycles", type=int, default=1000,
                   help="full-length run cycles (the final round)")
    p.add_argument("--warmup", type=int, default=200)
    p.add_argument("--rounds", type=int, default=2,
                   help="successive-halving rounds (1 = exhaustive)")
    p.add_argument("--eta", type=int, default=2,
                   help="keep ~1/eta of the candidates per round")
    p.add_argument("--screen-cycles", type=int, default=0, metavar="N",
                   help="round-1 screening run length (0 = cycles/4)")
    p.add_argument("--guardband", type=float, default=0.8, metavar="V",
                   help="guardband voltage for the violation objective")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--no-controller", action="store_true")
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes (default: one per CPU; 1 = inline)")
    p.add_argument("--batch-size", type=int, default=1, metavar="B",
                   help="batched co-sim lanes per task (1 = off)")
    p.add_argument("--timeout", type=float, default=0.0, metavar="S",
                   help="per-point wall-clock timeout (0 = none)")
    p.add_argument("--retries", type=int, default=0,
                   help="extra attempts for retryable failures")
    p.add_argument("--store", default="explore_store.jsonl", metavar="FILE",
                   help="persistent config-hash result cache (JSONL); "
                        "reused across runs, shards and refinements")
    p.add_argument("--output", default="pareto.json", metavar="FILE",
                   help="Pareto artifact path ('' to skip writing)")
    p.add_argument("--verbose", action="store_true",
                   help="print per-point progress lines")
    p.add_argument("--telemetry", default="", metavar="DIR",
                   help="write a run manifest + JSONL event log here")
    p.set_defaults(func=_cmd_explore)

    p = sub.add_parser(
        "trace", help="summarize a telemetry manifest (dir or file)"
    )
    p.add_argument("manifest", help="telemetry directory or manifest.json")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "observe",
        help="render a run's noise report (bands, droops, loss ledger)",
    )
    p.add_argument("manifest", help="telemetry directory or manifest.json")
    p.set_defaults(func=_cmd_observe)

    p = sub.add_parser(
        "top",
        help="live dashboard of a running sweep/exploration directory "
             "(status, worker heartbeats, recent events, flight dumps)",
    )
    p.add_argument("directory", help="run directory (the --telemetry DIR)")
    p.add_argument("--once", action="store_true",
                   help="print one frame and exit (scripting/CI)")
    p.add_argument("--interval", type=float, default=2.0, metavar="S",
                   help="refresh period in seconds")
    p.add_argument("--stale-after", type=float, default=15.0, metavar="S",
                   help="mark a worker [STALE] when its heartbeat is older")
    p.add_argument("--now", type=float, default=None, metavar="UNIX",
                   help="render against this clock instead of wall time "
                        "(deterministic output for tests)")
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser(
        "metrics",
        help="print a run directory's live metrics in Prometheus text "
             "exposition format",
    )
    p.add_argument("directory", help="run directory (the --telemetry DIR)")
    p.set_defaults(func=_cmd_metrics)

    p = sub.add_parser(
        "compare",
        help="diff two run manifests; exit 1 on metric regression",
    )
    p.add_argument("base", help="baseline telemetry dir or manifest.json")
    p.add_argument("candidate", help="candidate telemetry dir or manifest.json")
    p.add_argument(
        "--thresholds", default="", metavar="FILE",
        help="JSON per-metric threshold overrides (merged over defaults)",
    )
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("impedance", help="effective impedance curves (Fig 3)")
    p.add_argument("--area", type=float, default=0.0)
    p.add_argument("--points", type=int, default=8,
                   help="frequency points per decade")
    p.set_defaults(func=_cmd_impedance)

    p = sub.add_parser("size", help="CR-IVR area sizing (Table III)")
    p.add_argument("--latency", type=float, default=60.0,
                   help="control loop latency in cycles")
    p.add_argument("--guardband", type=float, default=0.2,
                   help="voltage guardband in volts")
    p.set_defaults(func=_cmd_size)

    p = sub.add_parser("pde", help="PDE breakdown of a benchmark")
    p.add_argument("benchmark", nargs="?", default="hotspot")
    p.add_argument("--cycles", type=int, default=3000)
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(func=_cmd_pde)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
