"""Higher-level power optimization techniques (Section V / VI-D).

Simplified versions of the two techniques the paper combines with
voltage stacking to demonstrate collaborative power management:

* :mod:`repro.power_mgmt.dfs` — the control-theoretic dynamic frequency
  scaling strategy of GRAPE: 50 MHz steps, 4096-cycle decision periods,
  clock masking as the actuation mechanism;
* :mod:`repro.power_mgmt.power_gating` — the Warped-Gates strategy:
  gating-aware two-level scheduling (GATES) plus the Blackout gating
  scheme with idle-detect and break-even cycle accounting.
"""

from repro.power_mgmt.dfs import DFSConfig, GrapeDFSController
from repro.power_mgmt.power_gating import (
    PowerGatingConfig,
    WarpedGatesController,
)

__all__ = [
    "DFSConfig",
    "GrapeDFSController",
    "PowerGatingConfig",
    "WarpedGatesController",
]
