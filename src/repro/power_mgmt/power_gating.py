"""Warped-Gates-style execution-unit power gating.

Implements the strategy the paper evaluates (Section V): idle execution
blocks inside an SM (ALU, SFU, LSU) are power-gated to eliminate their
leakage, using

* **idle-detect** — a unit idle for ``idle_detect_cycles`` is gated;
* **break-even** — gating only pays off if the unit then stays gated
  for ``break_even_cycles`` (the energy cost of the sleep transistors'
  switching); the controller tracks whether each gating event ended up
  net-positive;
* **Blackout** — once gated, a unit is forced to stay gated at least
  ``blackout_cycles`` before waking, preventing thrashing;

and pairs with the gating-aware two-level scheduler (GATES,
:class:`repro.gpu.scheduler.GatingAwareScheduler`), which steers issue
toward already-on units so idle windows stretch past break-even.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.gpu.isa import ExecUnit
from repro.gpu.power import LEAKAGE_SHARE
from repro.gpu.scheduler import GatingAwareScheduler
from repro.gpu.sm import StreamingMultiprocessor


@dataclass(frozen=True)
class PowerGatingConfig:
    """Warped-Gates constants."""

    idle_detect_cycles: int = 5
    break_even_cycles: int = 14
    blackout_cycles: int = 20
    # Never gate the ALU blocks: they wake too often on GPU kernels
    # (Warped Gates gates integer/FP units selectively; our lumped ALU
    # block aggregates both, so we restrict gating to SFU and LSU unless
    # the caller opts in).
    gateable_units: tuple = (ExecUnit.SFU, ExecUnit.LSU)

    def __post_init__(self) -> None:
        if self.idle_detect_cycles <= 0:
            raise ValueError("idle detect must be positive")
        if self.break_even_cycles <= 0:
            raise ValueError("break even must be positive")
        if self.blackout_cycles < 0:
            raise ValueError("blackout cannot be negative")


@dataclass
class GatingStatistics:
    """Outcome accounting for one SM."""

    gating_events: int = 0
    premature_wakes: int = 0  # woke before break-even
    gated_cycles: Dict[ExecUnit, int] = field(default_factory=dict)

    def gated_cycle_total(self) -> int:
        return sum(self.gated_cycles.values())


class WarpedGatesController:
    """Per-SM gating state machine over the gateable execution units."""

    def __init__(
        self,
        sm: StreamingMultiprocessor,
        config: PowerGatingConfig = PowerGatingConfig(),
    ) -> None:
        self.sm = sm
        self.config = config
        self.stats = GatingStatistics(
            gated_cycles={unit: 0 for unit in config.gateable_units}
        )
        self._gated_since: Dict[ExecUnit, int] = {}

    def step(self, cycle: int) -> None:
        """One gating decision per cycle, before the SM executes it."""
        cfg = self.config
        for unit in cfg.gateable_units:
            if unit in self.sm.gated_units:
                self.stats.gated_cycles[unit] += 1
                gated_for = cycle - self._gated_since[unit]
                if gated_for < cfg.blackout_cycles:
                    continue  # Blackout: hold the gate
                if self._demand_for(unit):
                    if gated_for < cfg.break_even_cycles:
                        self.stats.premature_wakes += 1
                    self.sm.ungate_unit(unit, cycle)
                    del self._gated_since[unit]
            else:
                if self.sm.unit_idle_cycles[unit] >= cfg.idle_detect_cycles:
                    self.sm.gate_unit(unit)
                    self._gated_since[unit] = cycle
                    self.stats.gating_events += 1
        self._update_scheduler()

    def _demand_for(self, unit: ExecUnit) -> bool:
        """Does any ready warp's next instruction target ``unit``?"""
        for warp in self.sm.warps:
            instruction = warp.peek()
            if instruction is not None and instruction.unit is unit:
                return True
        return False

    def _update_scheduler(self) -> None:
        if isinstance(self.sm.scheduler, GatingAwareScheduler):
            active = [u for u in ExecUnit if u not in self.sm.gated_units]
            self.sm.scheduler.set_active_units(active)

    # ------------------------------------------------------------------
    def leakage_energy_saved_j(
        self, sm_leakage_w: float, clock_hz: float = 700e6
    ) -> float:
        """Leakage energy eliminated by gating, net of wake overheads.

        Each premature wake refunds a break-even window's worth of the
        unit's leakage (the standard break-even accounting).
        """
        if sm_leakage_w <= 0 or clock_hz <= 0:
            raise ValueError("leakage and clock must be positive")
        cycle_s = 1.0 / clock_hz
        saved = 0.0
        for unit, cycles in self.stats.gated_cycles.items():
            saved += sm_leakage_w * LEAKAGE_SHARE[unit] * cycles * cycle_s
        mean_share = sum(
            LEAKAGE_SHARE[u] for u in self.config.gateable_units
        ) / len(self.config.gateable_units)
        penalty = (
            self.stats.premature_wakes
            * self.config.break_even_cycles
            * sm_leakage_w
            * mean_share
            * cycle_s
        )
        return saved - penalty
