"""GRAPE-style control-theoretic dynamic frequency scaling.

Per the paper's methodology (Section V): the frequency scaling step is
50 MHz, each decision period is 4096 cycles, and the dynamic frequency
is implemented by masking clocks.  The controller finds the lowest
per-SM frequency that still meets a performance target, re-deciding
every period from measured instruction throughput:

* below target -> step the SM's frequency up;
* comfortably above target (with hysteresis) -> step it down.

The resulting per-SM frequency requests are exactly what the VS-aware
hypervisor (Algorithm 2) intercepts before they reach a voltage-stacked
GPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


@dataclass(frozen=True)
class DFSConfig:
    """GRAPE controller constants."""

    nominal_frequency_hz: float = 700e6
    min_frequency_hz: float = 200e6
    step_hz: float = 50e6  # the paper's frequency scaling step
    decision_period_cycles: int = 4096  # the paper's decision period
    # Step down only when throughput exceeds target by this factor.
    hysteresis: float = 1.08

    def __post_init__(self) -> None:
        if not 0 < self.min_frequency_hz <= self.nominal_frequency_hz:
            raise ValueError("need 0 < min frequency <= nominal")
        if self.step_hz <= 0:
            raise ValueError("step must be positive")
        if self.decision_period_cycles <= 0:
            raise ValueError("decision period must be positive")
        if self.hysteresis < 1.0:
            raise ValueError("hysteresis must be >= 1")

    def quantize(self, frequency_hz: float) -> float:
        """Snap to the 50 MHz grid within [min, nominal]."""
        stepped = round(frequency_hz / self.step_hz) * self.step_hz
        return float(
            min(self.nominal_frequency_hz, max(self.min_frequency_hz, stepped))
        )


class GrapeDFSController:
    """Per-SM frequency selection against a performance target.

    ``performance_target`` is the desired fraction of each SM's
    full-speed throughput (the paper's Fig. 15 sweeps 70 %, 50 %, 20 %).
    """

    def __init__(
        self,
        num_sms: int = 16,
        performance_target: float = 0.7,
        config: DFSConfig = DFSConfig(),
    ) -> None:
        if not 0.0 < performance_target <= 1.0:
            raise ValueError(
                f"performance target must be in (0,1], got {performance_target}"
            )
        self.num_sms = num_sms
        self.performance_target = performance_target
        self.config = config
        self.frequencies_hz = np.full(num_sms, config.nominal_frequency_hz)
        self._baseline_throughput: np.ndarray = np.zeros(num_sms)
        self.decisions = 0

    def calibrate_baseline(self, full_speed_instructions: Sequence[float]) -> None:
        """Record each SM's full-speed instructions-per-period baseline."""
        baseline = np.asarray(full_speed_instructions, dtype=float)
        if baseline.shape != (self.num_sms,):
            raise ValueError(f"expected {self.num_sms} baselines")
        if np.any(baseline <= 0):
            raise ValueError("baselines must be positive")
        self._baseline_throughput = baseline

    def decide(self, instructions_this_period: Sequence[float]) -> np.ndarray:
        """One GRAPE decision: returns the new per-SM frequency requests."""
        if not np.any(self._baseline_throughput > 0):
            raise RuntimeError("call calibrate_baseline() before decide()")
        measured = np.asarray(instructions_this_period, dtype=float)
        if measured.shape != (self.num_sms,):
            raise ValueError(f"expected {self.num_sms} measurements")
        cfg = self.config
        targets = self.performance_target * self._baseline_throughput
        for sm in range(self.num_sms):
            if measured[sm] < targets[sm]:
                self.frequencies_hz[sm] += cfg.step_hz
            elif measured[sm] > targets[sm] * cfg.hysteresis:
                self.frequencies_hz[sm] -= cfg.step_hz
            self.frequencies_hz[sm] = cfg.quantize(self.frequencies_hz[sm])
        self.decisions += 1
        return self.frequencies_hz.copy()

    def frequency_scales(self) -> np.ndarray:
        """Current per-SM f/f_nominal (the GPU's clock-mask input)."""
        return self.frequencies_hz / self.config.nominal_frequency_hz
