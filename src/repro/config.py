"""System configuration (Table I of the paper).

The example GPU is modeled after NVIDIA Fermi: 16 streaming multiprocessors
(SMs) sharing one L2 cache and off-chip DRAM.  Voltage stacking partitions
the 16 SMs into a 4x4 array: four stack *layers* of four SMs each, with a
single 4.1 V supply at the board.  The dataclasses below carry every row of
Table I plus the handful of derived quantities (layer/column indexing, die
area, nominal power envelope) that the rest of the library needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass(frozen=True)
class GPUConfig:
    """Architectural configuration of the example Fermi-class GPU (Table I)."""

    num_sms: int = 16
    sm_clock_hz: float = 700e6
    threads_per_sm: int = 1536
    threads_per_warp: int = 32
    registers_per_sm_kb: int = 128
    shared_memory_kb: int = 48
    memory_channels: int = 6
    memory_bandwidth_gbs: float = 179.2
    memory_controller: str = "FR-FCFS"
    warp_scheduler: str = "GTO"
    shader_cores_per_sm: int = 32
    lsu_per_sm: int = 16
    sfu_per_sm: int = 4
    issue_width: int = 2
    process_technology_nm: int = 40
    die_area_mm2: float = 529.0

    @property
    def warps_per_sm_max(self) -> int:
        """Maximum resident warps per SM (1536 threads / 32 threads-per-warp)."""
        return self.threads_per_sm // self.threads_per_warp

    @property
    def cycle_time_s(self) -> float:
        """Duration of one SM clock cycle in seconds."""
        return 1.0 / self.sm_clock_hz


@dataclass(frozen=True)
class StackConfig:
    """Voltage-stacking partition of the GPU (Table I, lower half).

    ``num_layers`` voltage domains are stacked in series between the board
    supply and ground; each layer holds ``num_columns`` SMs.  SM numbering
    follows the paper: SM1-SM4 sit in the top layer (VDD .. 3/4 VDD),
    SM5-SM8 in the next (3/4 .. 2/4 VDD), and so on down to SM13-SM16 in
    the bottom layer (1/4 VDD .. GND).  Layer index 0 is the *bottom* layer
    in this library (its lower rail is ground), so the paper's SM13-16 live
    in layer 0 and SM1-4 in layer ``num_layers - 1``.
    """

    num_layers: int = 4
    num_columns: int = 4
    board_voltage: float = 4.1
    sm_voltage: float = 1.0
    voltage_guardband: float = 0.2

    @property
    def num_sms(self) -> int:
        return self.num_layers * self.num_columns

    @property
    def nominal_layer_voltage(self) -> float:
        """Per-layer share of the board supply at perfect balance."""
        return self.board_voltage / self.num_layers

    @property
    def min_safe_voltage(self) -> float:
        """Lowest acceptable SM supply: nominal minus the guardband."""
        return self.sm_voltage - self.voltage_guardband

    def sm_index(self, layer: int, column: int) -> int:
        """Flat SM index (0-based) for ``layer`` (0 = bottom) and ``column``."""
        self._check(layer, column)
        return layer * self.num_columns + column

    def layer_column(self, sm_index: int) -> Tuple[int, int]:
        """Inverse of :meth:`sm_index`."""
        if not 0 <= sm_index < self.num_sms:
            raise ValueError(f"sm_index out of range: {sm_index}")
        return divmod(sm_index, self.num_columns)[0], sm_index % self.num_columns

    def paper_sm_number(self, layer: int, column: int) -> int:
        """1-based SM number as printed in the paper (SM1 is top-layer)."""
        self._check(layer, column)
        layer_from_top = self.num_layers - 1 - layer
        return layer_from_top * self.num_columns + column + 1

    def sms_in_layer(self, layer: int) -> List[int]:
        """Flat indices of all SMs in ``layer`` (0 = bottom)."""
        if not 0 <= layer < self.num_layers:
            raise ValueError(f"layer out of range: {layer}")
        start = layer * self.num_columns
        return list(range(start, start + self.num_columns))

    def sms_in_column(self, column: int) -> List[int]:
        """Flat indices of the vertically stacked SMs in ``column``."""
        if not 0 <= column < self.num_columns:
            raise ValueError(f"column out of range: {column}")
        return [layer * self.num_columns + column for layer in range(self.num_layers)]

    def _check(self, layer: int, column: int) -> None:
        if not 0 <= layer < self.num_layers:
            raise ValueError(f"layer out of range: {layer}")
        if not 0 <= column < self.num_columns:
            raise ValueError(f"column out of range: {column}")


@dataclass(frozen=True)
class PowerConfig:
    """Power envelope of the SM grid.

    The paper notes the SM grid accounts for 80 % of peak and 93 % of
    average whole-GPU power; the Fermi-class part draws on the order of
    130 W in the SM grid at peak.  ``sm_peak_power_w`` is the per-SM peak;
    leakage is a fixed fraction of peak, the rest is activity-driven
    dynamic power.
    """

    sm_peak_power_w: float = 8.0
    leakage_fraction: float = 0.15
    sm_grid_peak_fraction: float = 0.80
    sm_grid_avg_fraction: float = 0.93

    @property
    def sm_leakage_power_w(self) -> float:
        return self.sm_peak_power_w * self.leakage_fraction

    @property
    def sm_dynamic_peak_w(self) -> float:
        return self.sm_peak_power_w - self.sm_leakage_power_w

    def grid_peak_power_w(self, num_sms: int) -> float:
        return self.sm_peak_power_w * num_sms


@dataclass(frozen=True)
class SystemConfig:
    """Bundle of all Table I configuration used throughout the library."""

    gpu: GPUConfig = field(default_factory=GPUConfig)
    stack: StackConfig = field(default_factory=StackConfig)
    power: PowerConfig = field(default_factory=PowerConfig)

    def __post_init__(self) -> None:
        if self.stack.num_sms != self.gpu.num_sms:
            raise ValueError(
                f"stack holds {self.stack.num_sms} SMs but GPU has {self.gpu.num_sms}"
            )


DEFAULT_CONFIG = SystemConfig()
