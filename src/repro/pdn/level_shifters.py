"""Level-shifted voltage-domain-crossing interfaces (Section III-A).

SMs in different stack layers live in disjoint voltage ranges, so every
signal crossing between an SM and the (separately stacked) L2/memory
interface needs a level shifter.  The paper:

* notes SMs never talk to each other directly — crossings exist only at
  the L2 / memory-controller ports;
* cites a characterization bounding the shifter overhead below 6 % of
  the memory/cache transistor count;
* picks the *switched-capacitor* topology, shown to work at 1 GHz
  signal rates with the best energy-delay trade-off among the
  candidates.

This module models the candidate topologies' energy/delay/area and
aggregates the interface overhead for a full chip, feeding the "other
loss" term of the PDE accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config import StackConfig


@dataclass(frozen=True)
class LevelShifterSpec:
    """One candidate level-shifter circuit topology."""

    name: str
    energy_per_transition_j: float
    delay_ps: float
    area_um2: float
    max_signal_rate_hz: float

    def __post_init__(self) -> None:
        if min(
            self.energy_per_transition_j,
            self.delay_ps,
            self.area_um2,
            self.max_signal_rate_hz,
        ) <= 0:
            raise ValueError(f"{self.name}: all figures must be positive")

    @property
    def energy_delay_product(self) -> float:
        return self.energy_per_transition_j * self.delay_ps * 1e-12

    def supports_rate(self, signal_rate_hz: float) -> bool:
        return signal_rate_hz <= self.max_signal_rate_hz


# Candidate topologies from the cited ISCAS'17 evaluation, normalized
# to 40 nm-class figures.
LEVEL_SHIFTER_OPTIONS: Dict[str, LevelShifterSpec] = {
    # Conventional cross-coupled shifters cannot span non-adjacent
    # stacked domains and burn static current when they try.
    "cross_coupled": LevelShifterSpec(
        name="cross-coupled",
        energy_per_transition_j=45e-15,
        delay_ps=180.0,
        area_um2=4.0,
        max_signal_rate_hz=0.4e9,
    ),
    "capacitive_coupled": LevelShifterSpec(
        name="capacitive-coupled",
        energy_per_transition_j=22e-15,
        delay_ps=120.0,
        area_um2=6.5,
        max_signal_rate_hz=0.8e9,
    ),
    # The paper's choice: works at 1 GHz with the best energy-delay.
    "switched_capacitor": LevelShifterSpec(
        name="switched-capacitor",
        energy_per_transition_j=15e-15,
        delay_ps=95.0,
        area_um2=5.2,
        max_signal_rate_hz=1.0e9,
    ),
}


@dataclass(frozen=True)
class InterfaceOverhead:
    """Chip-level cost of all domain-crossing interfaces."""

    shifter: LevelShifterSpec
    num_crossings: int
    signal_rate_hz: float
    activity: float  # fraction of cycles each crossing toggles

    def __post_init__(self) -> None:
        if self.num_crossings <= 0:
            raise ValueError("need at least one crossing")
        if not 0.0 <= self.activity <= 1.0:
            raise ValueError("activity must be in [0,1]")
        if not self.shifter.supports_rate(self.signal_rate_hz):
            raise ValueError(
                f"{self.shifter.name} cannot run at "
                f"{self.signal_rate_hz / 1e9:.2f} GHz"
            )

    @property
    def power_w(self) -> float:
        return (
            self.num_crossings
            * self.activity
            * self.signal_rate_hz
            * self.shifter.energy_per_transition_j
        )

    @property
    def area_mm2(self) -> float:
        return self.num_crossings * self.shifter.area_um2 * 1e-6


def chip_interface_overhead(
    stack: StackConfig = StackConfig(),
    bus_width_bits: int = 256,
    signal_rate_hz: float = 1.0e9,
    activity: float = 0.25,
    shifter_key: str = "switched_capacitor",
) -> InterfaceOverhead:
    """Aggregate level-shifter cost for the whole stacked GPU.

    Each SM's L2 port is a ``bus_width_bits``-wide crossing; only SMs
    outside the L2's own domain need shifting (the L2 stack is
    partitioned separately, so we conservatively shift every SM port).
    """
    shifter = LEVEL_SHIFTER_OPTIONS[shifter_key]
    crossings = stack.num_sms * bus_width_bits
    return InterfaceOverhead(
        shifter=shifter,
        num_crossings=crossings,
        signal_rate_hz=signal_rate_hz,
        activity=activity,
    )


def best_topology_for_rate(signal_rate_hz: float) -> LevelShifterSpec:
    """Lowest energy-delay topology supporting the given signal rate.

    Reproduces the paper's selection: at 1 GHz only the
    switched-capacitor topology qualifies, and it also has the best
    energy-delay product.
    """
    candidates = [
        s for s in LEVEL_SHIFTER_OPTIONS.values()
        if s.supports_rate(signal_rate_hz)
    ]
    if not candidates:
        raise ValueError(
            f"no topology supports {signal_rate_hz / 1e9:.2f} GHz"
        )
    return min(candidates, key=lambda s: s.energy_delay_product)
