"""CR-IVR die-area sizing — the 912 mm^2 vs 105.8 mm^2 story (Table III).

Sizing logic (Section III-C and Section IV):

* The guardband condition requires the worst-case voltage droop to stay
  within ``stack.voltage_guardband`` (0.2 V).
* **Circuit-only** voltage stacking must absorb the worst *sustained*
  layer-current imbalance (a whole layer's SMs dropping to leakage while
  the others run at peak) with the CR-IVR conductance alone — this is
  what blows the area up to ~1.7x the GPU die.
* **Cross-layer** voltage stacking lets the architectural controller
  remove the sustained component within its control latency; the CR-IVR
  then only bridges (a) the imbalance transient during the latency
  window and (b) the small high-frequency residue the controller cannot
  reach.  Effective worst-case imbalance shrinks to
  ``max(residual_fraction, latency / latency_horizon)`` of the sustained
  worst case — an order of magnitude less area.

The droop model is ``droop = I_eff / G_total`` with
``G_total = G_crivr(area) + G_background``, where the background
conductance is the PDN's own low-frequency residual path (measured from
the impedance model, ~1/Z_R(DC)), and droop saturates at the nominal
layer voltage (the rail cannot swing below zero).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import PowerConfig, StackConfig
from repro.pdn.parameters import DEFAULT_PDN, GPU_DIE_AREA_MM2, PDNParameters

# Fraction of the worst-case sustained imbalance the architectural
# controller cannot cancel (actuation granularity, FII availability).
RESIDUAL_IMBALANCE_FRACTION = 0.08
# Control latency (cycles) beyond which architectural smoothing no
# longer reduces the effective imbalance the CR-IVR must carry.
LATENCY_HORIZON_CYCLES = 420.0


@dataclass(frozen=True)
class AreaModel:
    """Analytic worst-case droop and CR-IVR area sizing."""

    stack: StackConfig = StackConfig()
    power: PowerConfig = PowerConfig()
    params: PDNParameters = DEFAULT_PDN
    # PDN residual path at DC: 1 / Z_R(DC) of the unregulated network
    # (the ~0.23 ohm plateau measured by the impedance analyzer).
    background_conductance: float = 4.35  # S
    # Yardstick for area ratios ("0.2x the GPU die").
    gpu_die_area_mm2: float = GPU_DIE_AREA_MM2

    # ------------------------------------------------------------------
    # Worst-case imbalance
    # ------------------------------------------------------------------
    @property
    def worst_sustained_imbalance_a(self) -> float:
        """Worst sustained layer-current imbalance (amps).

        One whole layer drops from peak activity to leakage-only while
        its stack neighbours stay at peak: the CR-IVRs must reroute the
        difference.
        """
        per_sm = self.power.sm_dynamic_peak_w / self.stack.sm_voltage
        return self.stack.num_columns * per_sm

    def effective_imbalance_a(self, control_latency_cycles: Optional[float]) -> float:
        """Worst imbalance the CR-IVR must carry.

        ``None`` means no architectural control (circuit-only).
        """
        worst = self.worst_sustained_imbalance_a
        if control_latency_cycles is None:
            return worst
        if control_latency_cycles < 0:
            raise ValueError("control latency cannot be negative")
        fraction = max(
            RESIDUAL_IMBALANCE_FRACTION,
            control_latency_cycles / LATENCY_HORIZON_CYCLES,
        )
        return worst * min(1.0, fraction)

    # ------------------------------------------------------------------
    # Droop model
    # ------------------------------------------------------------------
    def worst_droop_v(
        self,
        cr_ivr_area_mm2: float,
        control_latency_cycles: Optional[float] = None,
    ) -> float:
        """Worst-case layer voltage droop for a given CR-IVR area.

        Saturates at the nominal SM voltage — the rail cannot droop
        below ground.
        """
        g_total = (
            self.params.cr_conductance_for_area(cr_ivr_area_mm2)
            + self.background_conductance
        )
        droop = self.effective_imbalance_a(control_latency_cycles) / g_total
        return min(droop, self.stack.sm_voltage)

    def worst_voltage_v(
        self,
        cr_ivr_area_mm2: float,
        control_latency_cycles: Optional[float] = None,
    ) -> float:
        """Worst-case SM supply voltage (Fig. 10's y-axis)."""
        return self.stack.sm_voltage - self.worst_droop_v(
            cr_ivr_area_mm2, control_latency_cycles
        )

    # ------------------------------------------------------------------
    # Sizing (inverse of the droop model)
    # ------------------------------------------------------------------
    def required_area_mm2(
        self,
        control_latency_cycles: Optional[float] = None,
        droop_target_v: Optional[float] = None,
    ) -> float:
        """Minimum CR-IVR area meeting the guardband condition."""
        target = (
            droop_target_v
            if droop_target_v is not None
            else self.stack.voltage_guardband
        )
        if target <= 0:
            raise ValueError(f"droop target must be positive, got {target}")
        needed_g = self.effective_imbalance_a(control_latency_cycles) / target
        extra_g = max(0.0, needed_g - self.background_conductance)
        return self.params.cr_area_for_conductance(extra_g)

    def required_area_ratio(
        self,
        control_latency_cycles: Optional[float] = None,
        droop_target_v: Optional[float] = None,
    ) -> float:
        """:meth:`required_area_mm2` as a fraction of the GPU die."""
        return (
            self.required_area_mm2(control_latency_cycles, droop_target_v)
            / self.gpu_die_area_mm2
        )


def required_cr_ivr_area(
    cross_layer: bool,
    control_latency_cycles: float = 60.0,
    stack: StackConfig = StackConfig(),
    power: PowerConfig = PowerConfig(),
    params: PDNParameters = DEFAULT_PDN,
) -> float:
    """Convenience sizing entry point (square millimetres).

    ``cross_layer=False`` sizes the circuit-only configuration (worst
    sustained imbalance, no architectural help) — the paper's 912 mm^2.
    ``cross_layer=True`` sizes with the smoothing controller at the given
    latency — the paper's 105.8 mm^2 (0.2x the GPU die) at 60 cycles.
    """
    model = AreaModel(stack=stack, power=power, params=params)
    latency = control_latency_cycles if cross_layer else None
    return model.required_area_mm2(latency)
