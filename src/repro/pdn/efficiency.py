"""Power delivery efficiency (PDE) accounting — Fig. 8 and Table III.

Each PDS configuration turns a useful load power into a board-side input
power through a different chain of losses:

* **conventional VRM**: board VRM conversion loss (``1 - eta_vrm``) plus
  I^2 R loss at the full core current (power crosses the PDN at ~1 V);
* **single-layer IVR**: smaller PDN loss (power crosses at ~2 V) plus
  on-chip conversion loss plus a light board front-end stage;
* **voltage stacking**: *no* conversion stage, PDN loss at a quarter of
  the current, but the CR-IVRs dissipate a slice of whatever power they
  shuffle between imbalanced layers, plus quiescent bias, level-shifter
  interfaces and (cross-layer only) the smoothing controller.

The stacked configurations take the *shuffled power* from the workload's
actual layer imbalance (:func:`layer_shuffle_power`) which is what makes
PDE vary across benchmarks in Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.config import StackConfig
from repro.pdn.parameters import DEFAULT_PDN, PDNParameters


@dataclass(frozen=True)
class EfficiencyBreakdown:
    """Where the board-side input power went (all watts)."""

    useful_power: float
    conversion_loss: float
    pdn_loss: float
    regulator_loss: float  # IVR / CR-IVR internal dissipation
    other_loss: float  # controller, quiescent bias, level shifters

    def __post_init__(self) -> None:
        if self.useful_power <= 0:
            raise ValueError(
                f"useful power must be positive, got {self.useful_power}"
            )
        for label in ("conversion_loss", "pdn_loss", "regulator_loss", "other_loss"):
            if getattr(self, label) < -1e-12:
                raise ValueError(f"{label} must be non-negative")

    @property
    def input_power(self) -> float:
        return (
            self.useful_power
            + self.conversion_loss
            + self.pdn_loss
            + self.regulator_loss
            + self.other_loss
        )

    @property
    def total_loss(self) -> float:
        return self.input_power - self.useful_power

    @property
    def pde(self) -> float:
        """Power delivery efficiency: useful / board input."""
        return self.useful_power / self.input_power

    def fractions(self) -> Dict[str, float]:
        """Normalized breakdown (sums to 1), as plotted in Fig. 8."""
        total = self.input_power
        return {
            "useful": self.useful_power / total,
            "conversion": self.conversion_loss / total,
            "pdn": self.pdn_loss / total,
            "regulator": self.regulator_loss / total,
            "other": self.other_loss / total,
        }


# ---------------------------------------------------------------------------
# Per-configuration analytic models
# ---------------------------------------------------------------------------
def pde_conventional(
    load_power_w: float,
    core_voltage: float = 1.0,
    params: PDNParameters = DEFAULT_PDN,
) -> EfficiencyBreakdown:
    """Conventional single-layer PDS with a board VRM (Table III row 1)."""
    _check_load(load_power_w)
    current = load_power_w / core_voltage
    pdn_loss = current**2 * params.series_resistance
    after_vrm = load_power_w + pdn_loss
    input_power = after_vrm / params.vrm_efficiency
    return EfficiencyBreakdown(
        useful_power=load_power_w,
        conversion_loss=input_power - after_vrm,
        pdn_loss=pdn_loss,
        regulator_loss=0.0,
        other_loss=0.0,
    )


def pde_single_ivr(
    load_power_w: float,
    params: PDNParameters = DEFAULT_PDN,
) -> EfficiencyBreakdown:
    """Single-layer PDS with an on-chip SC IVR (Table III row 2).

    Power crosses the PDN at ``params.ivr_input_voltage`` and is
    converted at the point of load by the IVR.
    """
    _check_load(load_power_w)
    chip_input = load_power_w / params.ivr_efficiency
    current = chip_input / params.ivr_input_voltage
    pdn_loss = current**2 * params.series_resistance
    before_front = chip_input + pdn_loss
    input_power = before_front / params.board_front_efficiency
    return EfficiencyBreakdown(
        useful_power=load_power_w,
        conversion_loss=input_power - before_front,
        pdn_loss=pdn_loss,
        regulator_loss=chip_input - load_power_w,
        other_loss=0.0,
    )


def pde_voltage_stacked(
    load_power_w: float,
    shuffled_power_w: float,
    stack: StackConfig = StackConfig(),
    params: PDNParameters = DEFAULT_PDN,
    controller_power_w: float = 0.0,
) -> EfficiencyBreakdown:
    """Voltage-stacked PDS (Table III rows 3-4).

    ``shuffled_power_w`` is the average power the CR-IVRs move between
    layers (from :func:`layer_shuffle_power`); ``controller_power_w`` is
    zero for the circuit-only configuration and the synthesized
    controller power for the cross-layer one.
    """
    _check_load(load_power_w)
    if shuffled_power_w < 0:
        raise ValueError(f"shuffled power must be non-negative, got {shuffled_power_w}")
    current = load_power_w / stack.board_voltage
    pdn_loss = current**2 * params.series_resistance
    eta = params.cr_shuffle_efficiency
    regulator_loss = shuffled_power_w * (1.0 - eta) / eta
    other = (
        params.cr_quiescent_power
        + params.level_shifter_overhead * load_power_w
        + controller_power_w
    )
    return EfficiencyBreakdown(
        useful_power=load_power_w,
        conversion_loss=0.0,
        pdn_loss=pdn_loss,
        regulator_loss=regulator_loss,
        other_loss=other,
    )


# ---------------------------------------------------------------------------
# Workload-derived imbalance
# ---------------------------------------------------------------------------
def layer_shuffle_power(
    per_sm_power: np.ndarray, stack: StackConfig = StackConfig()
) -> float:
    """Average power the CR-IVRs must shuffle for a workload trace.

    ``per_sm_power`` has shape ``(cycles, num_sms)`` (watts, flat SM
    order).  At each instant the series stack forces one common current,
    so layers above the mean layer power must have their excess charge
    recycled downward: the shuffled power is
    ``sum_l max(0, P_l - mean_layer_power)`` averaged over time.
    """
    per_sm_power = np.atleast_2d(np.asarray(per_sm_power, dtype=float))
    if per_sm_power.shape[1] != stack.num_sms:
        raise ValueError(
            f"expected {stack.num_sms} SM columns, got {per_sm_power.shape[1]}"
        )
    layers = per_sm_power.reshape(
        per_sm_power.shape[0], stack.num_layers, stack.num_columns
    ).sum(axis=2)
    mean_layer = layers.mean(axis=1, keepdims=True)
    excess = np.clip(layers - mean_layer, 0.0, None).sum(axis=1)
    return float(excess.mean())


def imbalance_fraction(
    per_sm_power: np.ndarray, stack: StackConfig = StackConfig()
) -> float:
    """Shuffled power as a fraction of total delivered power.

    The paper observes this is "usually less than 20 % of the layer
    power" for SPMD workloads — the key reason voltage stacking wins.
    """
    per_sm_power = np.atleast_2d(np.asarray(per_sm_power, dtype=float))
    total = float(per_sm_power.sum(axis=1).mean())
    if total <= 0:
        raise ValueError("total power must be positive")
    return layer_shuffle_power(per_sm_power, stack) / total


def _check_load(load_power_w: float) -> None:
    if load_power_w <= 0:
        raise ValueError(f"load power must be positive, got {load_power_w}")
