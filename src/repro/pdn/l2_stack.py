"""L2-cache voltage stacking (Section III-A's second power grid).

The paper partitions the L2 cache and its SM interfaces into four
stacked layers on a power grid *separate* from the SM grid, following
the SRAM-stacking strategy it cites.  SRAM stacking is the easy case:
cache power is leakage-dominated and accesses interleave across banks,
so layer currents are naturally balanced and a small equalizer
suffices.  The SM grid is the hard case the paper focuses on ("our
study focuses on the SM grid since its peak and average power account
for 80 % and 93 % of the whole GPU").

This module models the L2 stack at that level of need: per-layer bank
groups with leakage plus access-proportional dynamic power, the
resulting layer imbalance, and the (small) equalizer sizing — enough to
(a) complete the whole-chip PDE picture and (b) verify the paper's
premise that the L2 grid is not the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class L2StackConfig:
    """The stacked L2: four layers of bank groups."""

    num_layers: int = 4
    banks_per_layer: int = 8
    bank_leakage_w: float = 0.08
    energy_per_access_j: float = 1.1e-9
    clock_hz: float = 700e6

    def __post_init__(self) -> None:
        if self.num_layers < 2 or self.banks_per_layer < 1:
            raise ValueError("need >=2 layers and >=1 bank per layer")
        if min(self.bank_leakage_w, self.energy_per_access_j, self.clock_hz) <= 0:
            raise ValueError("power figures must be positive")

    @property
    def layer_leakage_w(self) -> float:
        return self.banks_per_layer * self.bank_leakage_w

    def layer_powers_w(self, accesses_per_cycle: Sequence[float]) -> np.ndarray:
        """Per-layer power for a per-layer access-rate vector."""
        rates = np.asarray(accesses_per_cycle, dtype=float)
        if rates.shape != (self.num_layers,):
            raise ValueError(f"expected {self.num_layers} access rates")
        if np.any(rates < 0):
            raise ValueError("access rates cannot be negative")
        dynamic = rates * self.energy_per_access_j * self.clock_hz
        return self.layer_leakage_w + dynamic

    def imbalance_fraction(
        self, accesses_per_cycle: Sequence[float]
    ) -> float:
        """Share of L2 power the equalizer must shuffle between layers."""
        layers = self.layer_powers_w(accesses_per_cycle)
        total = float(layers.sum())
        excess = float(np.clip(layers - layers.mean(), 0.0, None).sum())
        return excess / total

    def equalizer_conductance_s(
        self,
        worst_access_skew: float = 1.0,
        guardband_v: float = 0.2,
        layer_voltage_v: float = 1.0,
    ) -> float:
        """Equalizer sizing for the worst bank-access skew.

        ``worst_access_skew`` is the worst sustained per-layer access
        rate difference (accesses/cycle).  Because address interleaving
        spreads accesses across bank groups, realistic skews are a
        fraction of one access/cycle — which is why the L2 stack's
        regulator is tiny compared to the SM grid's CR-IVR.
        """
        if worst_access_skew < 0:
            raise ValueError("skew cannot be negative")
        if guardband_v <= 0 or layer_voltage_v <= 0:
            raise ValueError("voltages must be positive")
        worst_current = (
            worst_access_skew * self.energy_per_access_j * self.clock_hz
        ) / layer_voltage_v
        return worst_current / guardband_v


def interleaved_access_rates(
    total_accesses_per_cycle: float,
    num_layers: int = 4,
    skew: float = 0.05,
) -> np.ndarray:
    """Per-layer access rates under address interleaving.

    Interleaving spreads traffic nearly evenly; ``skew`` is the residual
    fractional deviation of the most/least loaded layers.
    """
    if total_accesses_per_cycle < 0:
        raise ValueError("access rate cannot be negative")
    if not 0 <= skew < 1:
        raise ValueError("skew must be in [0,1)")
    base = total_accesses_per_cycle / num_layers
    rates = np.full(num_layers, base)
    rates[0] *= 1 + skew
    rates[-1] *= 1 - skew
    return rates
