"""Charge-recycling integrated voltage regulator (CR-IVR) model.

The paper's CR-IVR is a symmetric switched-capacitor ladder whose flying
capacitors toggle between adjacent voltage-stack layers, shuffling excess
charge from higher-voltage layers to lower-voltage layers (Fig. 2).  Four
*sub-IVRs* are distributed across the die, one per stack column, each
with outputs tied directly to the four SMs of that column.

Averaged model (used for both AC and transient analysis): a flying
capacitor ``C_fly`` at switching frequency ``f_sw`` bridging layer
boundaries ``(v_hi, v_mid, v_lo)`` carries average current
``f_sw * C_fly * (v_hi - 2 v_mid + v_lo)`` — a
:class:`~repro.circuits.elements.DifferenceConductance` with weights
``[1, -2, 1]`` and conductance ``g = f_sw * C_fly``.  It is strictly
passive and carries *zero* current when the stack is balanced, unlike a
resistor bleeder, which is why CR-IVR loss scales with the imbalanced
fraction of the load rather than the total load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.circuits import Circuit
from repro.config import StackConfig
from repro.pdn.parameters import PDNParameters


@dataclass(frozen=True)
class CRIVRDesign:
    """A sized CR-IVR: total die area and its electrical consequence."""

    area_mm2: float
    params: PDNParameters
    stack: StackConfig

    @property
    def total_conductance(self) -> float:
        """Total averaged charge-transfer conductance, all sub-IVRs."""
        return self.params.cr_conductance_for_area(self.area_mm2)

    @property
    def num_sub_ivrs(self) -> int:
        """One distributed sub-IVR per stack column (Fig. 2)."""
        return self.stack.num_columns

    @property
    def num_boundaries(self) -> int:
        """Interior layer boundaries each sub-IVR ladder spans."""
        return self.stack.num_layers - 1

    @property
    def conductance_per_stamp(self) -> float:
        """Averaged conductance of one flying-cap position.

        The total flying capacitance is divided evenly across columns and
        across the ladder's interior boundaries.
        """
        stamps = self.num_sub_ivrs * self.num_boundaries
        if stamps == 0:
            return 0.0
        return self.total_conductance / stamps

    def attach(self, circuit: Circuit, tap_nodes: Sequence[Sequence[str]]) -> List[str]:
        """Stamp the distributed CR-IVR into ``circuit``.

        ``tap_nodes[column][i]`` must name the boundary-``i`` node of
        ``column`` (i = 0 is the ground-side rail, i = num_layers is the
        supply-side rail).  Returns the names of the added elements.
        """
        if self.area_mm2 == 0:
            return []
        added: List[str] = []
        g = self.conductance_per_stamp
        for column, taps in enumerate(tap_nodes):
            if len(taps) != self.stack.num_layers + 1:
                raise ValueError(
                    f"column {column} has {len(taps)} taps, expected "
                    f"{self.stack.num_layers + 1}"
                )
            for boundary in range(1, self.stack.num_layers):
                name = f"crivr_c{column}_b{boundary}"
                circuit.add_difference_conductance(
                    name,
                    [taps[boundary + 1], taps[boundary], taps[boundary - 1]],
                    [1.0, -2.0, 1.0],
                    g,
                )
                added.append(name)
        return added


def switch_level_equalization_rate(
    c_fly: float, f_sw: float, c_layer: float
) -> float:
    """Exponential equalization rate (1/s) of a two-layer imbalance.

    Discrete-time charge sharing: each switching period moves
    ``c_fly * dV`` between the layers, so the imbalance decays with rate
    ``f_sw * c_fly / c_layer``.  Used in tests to validate that the
    averaged :class:`CRIVRDesign` model and a direct switch-level view
    agree — the correspondence that justifies the averaging.
    """
    if min(c_fly, f_sw, c_layer) <= 0:
        raise ValueError("c_fly, f_sw and c_layer must all be positive")
    return f_sw * c_fly / c_layer
