"""Effective impedance analysis of the voltage-stacked PDN (Fig. 3).

The paper characterizes supply reliability by decomposing an arbitrary
per-SM load-current vector into three orthogonal components and measuring
the network's impedance to each:

* **global** (``Z_G``) — the all-SM mean: every SM loaded identically.
  Behaves like the single-layer PDS impedance and produces the classic
  package-inductance/on-chip-decap resonance peak (~70 MHz here).
* **stack** (``Z_ST``) — per-column mean minus the global mean: one
  vertical stack loaded more than its neighbours.
* **residual** (``Z_R``) — what remains: *current imbalance between SMs
  in the same stack*.  This component sees a high impedance plateau from
  DC through the low-MHz range — the dominant worst-case noise source in
  voltage stacking, and the reason the paper adds architectural control.

Effective impedance is reported per-SM: apply the unit stimulus pattern,
observe the voltage deviation *across one SM* (its top minus bottom
rail), take the magnitude.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.circuits import ACAnalysis
from repro.circuits.ac import log_frequency_grid
from repro.pdn.builder import StackedPDN


class StimulusKind(enum.Enum):
    """Which orthogonal current component excites the network."""

    GLOBAL = "global"
    STACK = "stack"
    RESIDUAL = "residual"


def decompose_currents(
    per_sm: np.ndarray, num_layers: int, num_columns: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split a per-SM current vector into global/stack/residual components.

    ``per_sm`` is flat in layer-major order (layer 0 = bottom).  The
    three returned vectors sum to the input exactly.
    """
    per_sm = np.asarray(per_sm, dtype=float)
    if per_sm.shape != (num_layers * num_columns,):
        raise ValueError(
            f"expected {num_layers * num_columns} per-SM entries, "
            f"got shape {per_sm.shape}"
        )
    grid = per_sm.reshape(num_layers, num_columns)
    global_mean = float(grid.mean())
    global_part = np.full_like(grid, global_mean)
    column_means = grid.mean(axis=0, keepdims=True)
    stack_part = np.broadcast_to(column_means - global_mean, grid.shape)
    residual = grid - global_part - stack_part
    return (
        global_part.reshape(-1).copy(),
        np.asarray(stack_part).reshape(-1).copy(),
        residual.reshape(-1),
    )


class ImpedanceAnalyzer:
    """Frequency-domain effective impedances of a stacked PDN."""

    def __init__(self, pdn: StackedPDN) -> None:
        self.pdn = pdn
        self.stack = pdn.stack
        self.ac = ACAnalysis(pdn.circuit)

    # ------------------------------------------------------------------
    # Stimulus patterns
    # ------------------------------------------------------------------
    def pattern(
        self,
        kind: StimulusKind,
        column: int = 0,
        sm: int = 0,
    ) -> np.ndarray:
        """Unit per-SM current pattern for ``kind``.

        Patterns are normalized so the *stimulated* SM carries 1 A of its
        component, making the reported impedances directly comparable.
        """
        n = self.stack.num_sms
        if kind is StimulusKind.GLOBAL:
            return np.ones(n)
        if kind is StimulusKind.STACK:
            raw = np.zeros(n)
            for index in self.stack.sms_in_column(column):
                raw[index] = 1.0
            _, stack_part, _ = decompose_currents(
                raw, self.stack.num_layers, self.stack.num_columns
            )
            peak = np.max(np.abs(stack_part))
            return stack_part / peak
        if kind is StimulusKind.RESIDUAL:
            raw = np.zeros(n)
            raw[sm] = 1.0
            _, _, residual = decompose_currents(
                raw, self.stack.num_layers, self.stack.num_columns
            )
            return residual / residual[sm]
        raise ValueError(f"unknown stimulus kind: {kind}")

    def injections(self, per_sm_amps: np.ndarray) -> Dict[str, complex]:
        """AC injection map for a per-SM load-current pattern.

        A load of +I across an SM pulls I out of its top rail and returns
        it at its bottom rail.
        """
        injections: Dict[str, complex] = {}
        for sm, amps in enumerate(per_sm_amps):
            if amps == 0.0:
                continue
            top, bottom = self.pdn.sm_terminals(sm)
            injections[top] = injections.get(top, 0.0) - complex(amps)
            if bottom != "0":
                injections[bottom] = injections.get(bottom, 0.0) + complex(amps)
        return injections

    # ------------------------------------------------------------------
    # Effective impedances
    # ------------------------------------------------------------------
    def effective_impedance(
        self,
        frequency_hz: float,
        kind: StimulusKind,
        observe_sm: int = 0,
        column: int = 0,
        sm: int = 0,
    ) -> complex:
        """Complex effective impedance at one frequency.

        The voltage deviation is observed across ``observe_sm``; the
        stimulus is selected by ``kind`` (with ``column``/``sm`` choosing
        which stack or SM is excited).
        """
        pattern = self.pattern(kind, column=column, sm=sm)
        injections = self.injections(pattern)
        top, bottom = self.pdn.sm_terminals(observe_sm)
        return self.ac.transfer_impedance(frequency_hz, injections, top, bottom)

    def sweep(
        self,
        frequencies_hz: Sequence[float],
        kind: StimulusKind,
        observe_sm: int = 0,
        column: int = 0,
        sm: int = 0,
    ) -> np.ndarray:
        """|Z_eff| across a frequency grid."""
        return np.array(
            [
                abs(
                    self.effective_impedance(
                        f, kind, observe_sm=observe_sm, column=column, sm=sm
                    )
                )
                for f in frequencies_hz
            ]
        )

    # ------------------------------------------------------------------
    # Figure 3 bundle and worst-case summary
    # ------------------------------------------------------------------
    def figure3_curves(
        self,
        frequencies_hz: Optional[Sequence[float]] = None,
    ) -> Dict[str, np.ndarray]:
        """The four curves of Fig. 3 over ``frequencies_hz``.

        Returns ``{"frequency", "z_global", "z_stack",
        "z_residual_same_layer", "z_residual_diff_layer"}``.  The
        residual stimulus excites the bottom-layer SM of column 0;
        same-layer observes that SM itself, different-layer observes the
        SM two layers above it in the same column.
        """
        if frequencies_hz is None:
            frequencies_hz = log_frequency_grid(1e6, 5e8, points_per_decade=15)
        frequencies_hz = np.asarray(frequencies_hz, dtype=float)
        stim_sm = self.stack.sm_index(0, 0)
        diff_layer_sm = self.stack.sm_index(min(2, self.stack.num_layers - 1), 0)
        return {
            "frequency": frequencies_hz,
            "z_global": self.sweep(
                frequencies_hz, StimulusKind.GLOBAL, observe_sm=stim_sm
            ),
            "z_stack": self.sweep(
                frequencies_hz, StimulusKind.STACK, observe_sm=stim_sm, column=0
            ),
            "z_residual_same_layer": self.sweep(
                frequencies_hz, StimulusKind.RESIDUAL, observe_sm=stim_sm, sm=stim_sm
            ),
            "z_residual_diff_layer": self.sweep(
                frequencies_hz,
                StimulusKind.RESIDUAL,
                observe_sm=diff_layer_sm,
                sm=stim_sm,
            ),
        }

    def worst_case_impedance(
        self, frequencies_hz: Optional[Sequence[float]] = None
    ) -> float:
        """Maximum |Z_eff| over all stimulus kinds and frequencies.

        This is the quantity the guardband condition bounds: with worst
        current concentration ``I`` at the worst frequency, droop is
        ``I * worst_case_impedance()``, which must stay inside the
        voltage margin (Section III-C).
        """
        curves = self.figure3_curves(frequencies_hz)
        return float(
            max(
                curves["z_global"].max(),
                curves["z_stack"].max(),
                curves["z_residual_same_layer"].max(),
            )
        )
