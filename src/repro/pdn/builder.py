"""Netlist builders for the PDS configurations (Fig. 1c of the paper).

Two physical netlists are built:

* :func:`build_stacked_pdn` — the 4x4 voltage-stacked PDN: a single
  high-voltage board supply, package and C4 parasitics, four stack
  columns of four series SM layers each, horizontal on-chip grid links
  at every layer boundary, per-SM decap/ESR and small-signal load
  conductance, and (optionally) the distributed CR-IVR.
* :func:`build_conventional_pdn` — the single-layer baseline: one low
  supply rail feeding all 16 SMs in parallel through per-SM C4 branches
  and an on-chip grid.

Both return a handle object exposing the SM current sources (overridden
every cycle by the co-simulator) and node-naming helpers so analyses can
read per-SM voltages without knowing the naming scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.circuits import Circuit, CurrentSource
from repro.circuits.transient import TransientResult, TransientSolver
from repro.config import StackConfig
from repro.pdn.cr_ivr import CRIVRDesign
from repro.pdn.parameters import DEFAULT_PDN, PDNParameters

SUPPLY_SOURCE = "vdd"


def tap_node(boundary: int, column: int) -> str:
    """Name of the stacked-grid tap at ``boundary`` (0 = ground side)."""
    return f"t{boundary}_{column}"


def sm_node(sm: int) -> str:
    """Name of SM ``sm``'s local rail node in the conventional netlist."""
    return f"sm{sm}"


@dataclass
class StackedPDN:
    """Handle to a built voltage-stacked PDN."""

    circuit: Circuit
    stack: StackConfig
    params: PDNParameters
    cr_ivr: Optional[CRIVRDesign]
    sm_sources: List[CurrentSource] = field(default_factory=list)
    # Shared batch buffer the SM sources read from (bound by the
    # builder); set_sm_currents() is one vectorized write into it.
    sm_current_values: Optional[np.ndarray] = None

    def sm_terminals(self, sm: int) -> tuple:
        """(top node, bottom node) of SM ``sm`` (flat index, layer 0 bottom)."""
        layer, column = self.stack.layer_column(sm)
        return tap_node(layer + 1, column), tap_node(layer, column)

    def sm_voltage(self, solver: TransientSolver, sm: int) -> float:
        top, bottom = self.sm_terminals(sm)
        return solver.node_voltage(top) - solver.node_voltage(bottom)

    def sm_waveform(self, result: TransientResult, sm: int):
        top, bottom = self.sm_terminals(sm)
        return result.differential(top, bottom)

    def tap_columns(self) -> List[List[str]]:
        """Tap node names per column, ground side first (for CR-IVR attach)."""
        return [
            [tap_node(b, c) for b in range(self.stack.num_layers + 1)]
            for c in range(self.stack.num_columns)
        ]

    def bind_current_buffer(
        self, buffer: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Bind every SM source to a shared amps buffer.

        After binding, :meth:`set_sm_currents` is a single NumPy copy and
        the transient solver gathers all SM draws with one fancy-indexed
        read per step.  Called by the builder; safe to call again after
        appending sources.

        ``buffer`` re-binds the sources to an externally owned
        ``(num_sms,)`` array instead of allocating one — the batched
        co-simulator passes row i of its ``(B, num_sms)`` current array
        so ``sm_current_values`` gains a batch axis one level up.
        Re-binding must happen *before* a :class:`TransientSolver` is
        constructed on :attr:`circuit` (the solver caches the bound
        buffer in its gather maps).
        """
        if buffer is None:
            buffer = np.zeros(len(self.sm_sources), dtype=float)
        elif buffer.shape != (len(self.sm_sources),):
            raise ValueError(
                f"current buffer must have shape ({len(self.sm_sources)},), "
                f"got {buffer.shape}"
            )
        self.sm_current_values = buffer
        for k, source in enumerate(self.sm_sources):
            source.bind_batch(self.sm_current_values, k)
        return self.sm_current_values

    def set_sm_currents(self, currents) -> None:
        """Set every SM current source (amps, flat SM order)."""
        if self.sm_current_values is not None:
            self.sm_current_values[:] = currents
            return
        for source, amps in zip(self.sm_sources, currents):
            source.override = float(amps)

    def record_nodes(self) -> List[str]:
        """All tap nodes — the minimal set needed to read SM voltages."""
        return [
            tap_node(b, c)
            for b in range(self.stack.num_layers + 1)
            for c in range(self.stack.num_columns)
        ]


@dataclass
class ConventionalPDN:
    """Handle to a built conventional single-layer PDN."""

    circuit: Circuit
    num_sms: int
    params: PDNParameters
    sm_sources: List[CurrentSource] = field(default_factory=list)
    sm_current_values: Optional[np.ndarray] = None

    def sm_voltage(self, solver: TransientSolver, sm: int) -> float:
        return solver.node_voltage(sm_node(sm))

    def sm_waveform(self, result: TransientResult, sm: int):
        return result.voltage(sm_node(sm))

    def bind_current_buffer(
        self, buffer: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Bind every SM source to a shared amps buffer.

        ``buffer`` re-binds to an externally owned ``(num_sms,)`` array
        (e.g. one batch lane's row); see
        :meth:`StackedPDN.bind_current_buffer`.
        """
        if buffer is None:
            buffer = np.zeros(len(self.sm_sources), dtype=float)
        elif buffer.shape != (len(self.sm_sources),):
            raise ValueError(
                f"current buffer must have shape ({len(self.sm_sources)},), "
                f"got {buffer.shape}"
            )
        self.sm_current_values = buffer
        for k, source in enumerate(self.sm_sources):
            source.bind_batch(self.sm_current_values, k)
        return self.sm_current_values

    def set_sm_currents(self, currents) -> None:
        if self.sm_current_values is not None:
            self.sm_current_values[:] = currents
            return
        for source, amps in zip(self.sm_sources, currents):
            source.override = float(amps)

    def record_nodes(self) -> List[str]:
        return [sm_node(k) for k in range(self.num_sms)]


# ---------------------------------------------------------------------------
# Voltage-stacked netlist
# ---------------------------------------------------------------------------
def build_stacked_pdn(
    stack: StackConfig = StackConfig(),
    params: PDNParameters = DEFAULT_PDN,
    cr_ivr_area_mm2: float = 0.0,
    include_load_conductance: bool = True,
) -> StackedPDN:
    """Construct the 4x4 voltage-stacked PDN of Fig. 1(c).

    ``cr_ivr_area_mm2`` sizes the distributed CR-IVR (0 disables it).
    ``include_load_conductance`` stamps each SM's small-signal conductance
    (``params.sm_conductance``); disable to study the pure passive grid.
    """
    ckt = Circuit("stacked_pdn")
    ckt.add_voltage_source(SUPPLY_SOURCE, "board", "0", stack.board_voltage)
    ckt.add_resistor("r_board", "board", "pkg_in", params.board_resistance)
    ckt.add_resistor("r_pkg", "pkg_in", "pkg_l", params.package_resistance)
    ckt.add_inductor("l_pkg", "pkg_l", "chip_vdd", params.package_inductance)
    ckt.add_inductor("l_gnd", "chip_vss", "gnd_r", params.ground_return_inductance)
    ckt.add_resistor("r_gnd", "gnd_r", "0", params.ground_return_resistance)

    top = stack.num_layers
    for column in range(stack.num_columns):
        # Supply-side and ground-side C4 bump groups, one per column.
        ckt.add_resistor(
            f"r_c4t_{column}", "chip_vdd", f"c4t_{column}", params.c4_resistance
        )
        ckt.add_inductor(
            f"l_c4t_{column}", f"c4t_{column}", tap_node(top, column),
            params.c4_inductance,
        )
        ckt.add_inductor(
            f"l_c4b_{column}", tap_node(0, column), f"c4b_{column}",
            params.c4_inductance,
        )
        ckt.add_resistor(
            f"r_c4b_{column}", f"c4b_{column}", "chip_vss", params.c4_resistance
        )

    # Horizontal grid links at every boundary, including both rails.
    for boundary in range(top + 1):
        for column in range(stack.num_columns - 1):
            ckt.add_resistor(
                f"r_link_b{boundary}_c{column}",
                tap_node(boundary, column),
                tap_node(boundary, column + 1),
                params.link_resistance,
            )

    pdn = StackedPDN(ckt, stack, params, cr_ivr=None)

    # Per-SM load, decap and small-signal conductance.
    nominal_current = 0.0  # overridden by the driver before use
    for layer in range(stack.num_layers):
        for column in range(stack.num_columns):
            sm = stack.sm_index(layer, column)
            top_node = tap_node(layer + 1, column)
            bot_node = tap_node(layer, column)
            source = ckt.add_current_source(
                f"i_sm{sm}", top_node, bot_node, nominal_current
            )
            pdn.sm_sources.append(source)
            ckt.add_capacitor(
                f"c_sm{sm}", top_node, f"dcap{sm}", params.sm_decap,
                v0=stack.sm_voltage,
            )
            ckt.add_resistor(
                f"resr_sm{sm}", f"dcap{sm}", bot_node, params.sm_decap_esr
            )
            if include_load_conductance and params.sm_conductance > 0:
                ckt.add_resistor(
                    f"g_sm{sm}", top_node, bot_node, 1.0 / params.sm_conductance
                )

    if cr_ivr_area_mm2 > 0:
        design = CRIVRDesign(cr_ivr_area_mm2, params, stack)
        design.attach(ckt, pdn.tap_columns())
        pdn.cr_ivr = design

    pdn.bind_current_buffer()
    return pdn


# ---------------------------------------------------------------------------
# Conventional single-layer netlist
# ---------------------------------------------------------------------------
def build_conventional_pdn(
    num_sms: int = 16,
    supply_voltage: float = 1.0,
    params: PDNParameters = DEFAULT_PDN,
    include_load_conductance: bool = True,
    grid_columns: int = 4,
) -> ConventionalPDN:
    """Construct the conventional single-layer PDN baseline.

    All SMs hang in parallel off one rail: board source -> package ->
    per-SM C4 branch -> SM node, with the SM nodes meshed into a
    ``grid_columns``-wide grid by link resistances.
    """
    if num_sms <= 0:
        raise ValueError(f"num_sms must be positive, got {num_sms}")
    ckt = Circuit("conventional_pdn")
    ckt.add_voltage_source(SUPPLY_SOURCE, "board", "0", supply_voltage)
    ckt.add_resistor("r_board", "board", "pkg_in", params.board_resistance)
    ckt.add_resistor("r_pkg", "pkg_in", "pkg_l", params.package_resistance)
    ckt.add_inductor("l_pkg", "pkg_l", "chip_vdd", params.package_inductance)
    ckt.add_inductor("l_gnd", "chip_vss", "gnd_r", params.ground_return_inductance)
    ckt.add_resistor("r_gnd", "gnd_r", "0", params.ground_return_resistance)

    pdn = ConventionalPDN(ckt, num_sms, params)
    for sm in range(num_sms):
        node = sm_node(sm)
        ckt.add_resistor(f"r_c4_{sm}", "chip_vdd", f"c4_{sm}", params.c4_resistance)
        ckt.add_inductor(f"l_c4_{sm}", f"c4_{sm}", node, params.c4_inductance)
        source = ckt.add_current_source(f"i_sm{sm}", node, "chip_vss", 0.0)
        pdn.sm_sources.append(source)
        ckt.add_capacitor(
            f"c_sm{sm}", node, f"dcap{sm}", params.sm_decap, v0=supply_voltage
        )
        ckt.add_resistor(f"resr_sm{sm}", f"dcap{sm}", "chip_vss", params.sm_decap_esr)
        if include_load_conductance and params.sm_conductance > 0:
            ckt.add_resistor(f"g_sm{sm}", node, "chip_vss", 1.0 / params.sm_conductance)

    # Mesh the SM nodes into a grid (row-major, grid_columns wide).
    rows = (num_sms + grid_columns - 1) // grid_columns
    for row in range(rows):
        for col in range(grid_columns):
            sm = row * grid_columns + col
            if sm >= num_sms:
                continue
            right = sm + 1
            below = sm + grid_columns
            if col + 1 < grid_columns and right < num_sms:
                ckt.add_resistor(
                    f"r_link_h{sm}", sm_node(sm), sm_node(right),
                    params.link_resistance,
                )
            if below < num_sms:
                ckt.add_resistor(
                    f"r_link_v{sm}", sm_node(sm), sm_node(below),
                    params.link_resistance,
                )
    pdn.bind_current_buffer()
    return pdn
