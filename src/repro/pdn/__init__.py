"""Power delivery subsystem (PDS) models.

Implements the four PDS configurations compared by the paper:

* conventional single-layer with a board VRM (`Table III` row 1);
* single-layer with an on-chip switched-capacitor IVR (row 2);
* circuit-only voltage stacking with charge-recycling IVRs (row 3);
* cross-layer voltage stacking — CR-IVR plus architectural control (row 4);

plus the effective-impedance analysis of Section III-B (Fig. 3), the
PDE/loss accounting behind Fig. 8 and Table III, and the CR-IVR area
sizing model behind the 912 mm^2 vs 105.8 mm^2 comparison.
"""

from repro.pdn.parameters import PDNParameters, DEFAULT_PDN
from repro.pdn.builder import (
    build_conventional_pdn,
    build_stacked_pdn,
    StackedPDN,
    ConventionalPDN,
)
from repro.pdn.cr_ivr import CRIVRDesign
from repro.pdn.impedance import ImpedanceAnalyzer, StimulusKind
from repro.pdn.efficiency import (
    EfficiencyBreakdown,
    pde_conventional,
    pde_single_ivr,
    pde_voltage_stacked,
)
from repro.pdn.area import required_cr_ivr_area, AreaModel
from repro.pdn.level_shifters import (
    LEVEL_SHIFTER_OPTIONS,
    best_topology_for_rate,
    chip_interface_overhead,
)
from repro.pdn.switch_level import SwitchLevelLadder
from repro.pdn.l2_stack import L2StackConfig

__all__ = [
    "AreaModel",
    "CRIVRDesign",
    "ConventionalPDN",
    "DEFAULT_PDN",
    "EfficiencyBreakdown",
    "ImpedanceAnalyzer",
    "L2StackConfig",
    "LEVEL_SHIFTER_OPTIONS",
    "PDNParameters",
    "StackedPDN",
    "StimulusKind",
    "SwitchLevelLadder",
    "best_topology_for_rate",
    "chip_interface_overhead",
    "build_conventional_pdn",
    "build_stacked_pdn",
    "pde_conventional",
    "pde_single_ivr",
    "pde_voltage_stacked",
    "required_cr_ivr_area",
]
