"""Switch-level simulation of the charge-recycling SC ladder.

The main library models the CR-IVR by its *averaged* equivalent — a
difference conductance ``g = f_sw * C_fly`` (see
:mod:`repro.pdn.cr_ivr`).  This module simulates the same ladder at the
switch level: discrete two-phase operation of every flying capacitor,
explicit charge sharing with the layer decoupling capacitors, and the
resulting output ripple.  It exists to *validate the averaging*:

* the equalization rate of an initial layer-voltage imbalance matches
  the averaged model's ``g / C`` prediction;
* the charge-transfer (intrinsic SC) loss matches the averaged
  conductance's ``g * dV^2`` dissipation;
* the ripple amplitude scales as predicted with switching frequency —
  the quantity that sets the ``f_sw``/``C_fly`` design trade-off.

The simulator is intentionally idealized (zero switch resistance, hard
charge sharing) — the textbook slow-switching limit in which the
averaged model is exact, which is what makes the comparison a clean
validation rather than a second calibration problem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np


@dataclass
class SwitchLevelLadder:
    """A stack of ``num_layers`` layer capacitors with flying caps.

    State: per-layer voltages (across each layer's decap) and per-flying-
    capacitor voltages.  Each simulation step advances half a switching
    period: odd phases connect flying cap ``i`` across layer ``i+1``,
    even phases across layer ``i`` (the charge-recycling shuffle).

    Per-layer load/supply currents are applied between switching events
    as linear charge drain on the layer capacitors.
    """

    num_layers: int = 4
    layer_capacitance_f: float = 256e-9
    flying_capacitance_f: float = 26e-9
    switching_frequency_hz: float = 50e6
    initial_layer_voltage: float = 1.0

    def __post_init__(self) -> None:
        if self.num_layers < 2:
            raise ValueError("need at least two layers")
        if min(
            self.layer_capacitance_f,
            self.flying_capacitance_f,
            self.switching_frequency_hz,
        ) <= 0:
            raise ValueError("capacitances and frequency must be positive")
        self.layer_voltages = np.full(
            self.num_layers, float(self.initial_layer_voltage)
        )
        # One flying cap per adjacent layer pair, pre-charged to nominal.
        self.flying_voltages = np.full(
            self.num_layers - 1, float(self.initial_layer_voltage)
        )
        self.phase = 0
        self.transferred_charge_c = 0.0
        self.dissipated_energy_j = 0.0

    # ------------------------------------------------------------------
    @property
    def half_period_s(self) -> float:
        return 0.5 / self.switching_frequency_hz

    @property
    def averaged_conductance_s(self) -> float:
        """The equivalent conductance the averaged model would use."""
        return self.switching_frequency_hz * self.flying_capacitance_f

    def _share(self, layer: int, cap: int) -> None:
        """Hard charge sharing of flying cap ``cap`` with ``layer``."""
        c_layer = self.layer_capacitance_f
        c_fly = self.flying_capacitance_f
        v_layer = self.layer_voltages[layer]
        v_fly = self.flying_voltages[cap]
        v_final = (c_layer * v_layer + c_fly * v_fly) / (c_layer + c_fly)
        moved = c_fly * (v_final - v_fly)
        # Energy lost to the (implicit) switch resistance in hard sharing:
        # E = 0.5 * Cs * dV^2 with Cs the series combination.
        series_c = c_layer * c_fly / (c_layer + c_fly)
        self.dissipated_energy_j += 0.5 * series_c * (v_layer - v_fly) ** 2
        self.transferred_charge_c += abs(moved)
        self.layer_voltages[layer] = v_final
        self.flying_voltages[cap] = v_final

    def step(self, layer_currents_a: Optional[np.ndarray] = None) -> np.ndarray:
        """Advance one half switching period; return layer voltages.

        ``layer_currents_a`` drains each layer's capacitor linearly over
        the half period (positive = load draw; negative = supply).
        """
        if layer_currents_a is not None:
            currents = np.asarray(layer_currents_a, dtype=float)
            if currents.shape != (self.num_layers,):
                raise ValueError(
                    f"expected {self.num_layers} layer currents"
                )
            self.layer_voltages -= (
                currents * self.half_period_s / self.layer_capacitance_f
            )
        # Alternate flying-cap positions: phase 0 connects cap i to
        # layer i, phase 1 to layer i+1.
        for cap in range(self.num_layers - 1):
            layer = cap + (self.phase % 2)
            self._share(layer, cap)
        self.phase += 1
        return self.layer_voltages.copy()

    def run(
        self,
        num_half_periods: int,
        layer_currents_a: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Simulate; returns layer voltages per half period (T/2 grid)."""
        if num_half_periods <= 0:
            raise ValueError("need at least one half period")
        history = np.empty((num_half_periods, self.num_layers))
        for k in range(num_half_periods):
            history[k] = self.step(layer_currents_a)
        return history

    # ------------------------------------------------------------------
    def spread(self) -> float:
        """Current max-min layer-voltage imbalance."""
        return float(self.layer_voltages.max() - self.layer_voltages.min())

    def equalization_rate_prediction(self) -> float:
        """Averaged-model decay rate (1/s) of a two-layer imbalance."""
        return self.averaged_conductance_s / self.layer_capacitance_f


def ripple_amplitude(
    load_current_a: float,
    flying_capacitance_f: float,
    switching_frequency_hz: float,
) -> float:
    """First-order output ripple of the SC stage: dV = I / (f * C).

    The design trade-off behind the CR-IVR area model: for a given
    imbalance current, higher ``f * C`` (more area or faster switching)
    means proportionally less ripple.
    """
    if min(flying_capacitance_f, switching_frequency_hz) <= 0:
        raise ValueError("capacitance and frequency must be positive")
    if load_current_a < 0:
        raise ValueError("current cannot be negative")
    return load_current_a / (switching_frequency_hz * flying_capacitance_f)
