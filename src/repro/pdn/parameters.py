"""Lumped PDN element values and conversion-stage constants.

The RLC values follow the GPUvolt-style lumped manycore model the paper
cites: a board-level Thevenin source, package R+L, per-domain C4 bump R+L,
an on-chip grid of link resistances, and per-SM decoupling capacitance
with ESR.  Absolute values are *calibration constants*, chosen so the
unregulated 4x4 voltage-stacked network reproduces the two impedance
signatures that drive the paper (Fig. 3a):

* a global resonance peak near 70 MHz (package/C4 inductance against the
  series-stacked on-chip decap), peaking at a few tens of milliohms;
* a residual (current-imbalance) impedance plateau of roughly
  0.2-0.3 ohm from DC through the low-MHz range.

Conversion-stage efficiencies are anchored to Table III: board VRM PDS
~80 % total PDE, single-layer IVR PDS ~85 %, voltage stacking >92 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

# Die area of the modeled GPU (the paper's GTX 480-class part, mm^2).
# Single source of truth for every "x GPU die" area ratio quoted by the
# sizing model, the CLI and the figure drivers (Table III anchors the
# circuit-only CR-IVR at 1.72x this die).
GPU_DIE_AREA_MM2 = 529.0


@dataclass(frozen=True)
class PDNParameters:
    """Every electrical constant of the power delivery models."""

    # ------------------------------------------------------------------
    # Shared board + package parasitics (both PDS topologies)
    # ------------------------------------------------------------------
    board_resistance: float = 0.1e-3  # ohm, PCB trace + connector
    package_resistance: float = 0.2e-3  # ohm
    package_inductance: float = 60e-12  # H
    ground_return_resistance: float = 0.2e-3  # ohm
    ground_return_inductance: float = 20e-12  # H

    # ------------------------------------------------------------------
    # C4 bump arrays (per stack column for VS, per SM for conventional)
    # ------------------------------------------------------------------
    c4_resistance: float = 0.4e-3  # ohm per bump group
    c4_inductance: float = 5e-12  # H per bump group

    # ------------------------------------------------------------------
    # On-chip grid
    # ------------------------------------------------------------------
    link_resistance: float = 80e-3  # ohm between adjacent same-rail taps
    sm_decap: float = 64e-9  # F per SM
    sm_decap_esr: float = 20e-3  # ohm in series with each SM decap
    # Small-signal conductance of an active SM (partial constant-current
    # behaviour of digital logic: alpha * P / V^2 with alpha < 1).
    sm_conductance: float = 1.5  # S

    # ------------------------------------------------------------------
    # Conversion stages (Table III anchors)
    # ------------------------------------------------------------------
    vrm_efficiency: float = 0.85  # board VRM, conventional PDS
    ivr_efficiency: float = 0.90  # on-chip SC IVR, single-layer IVR PDS
    ivr_input_voltage: float = 2.0  # V delivered on-chip before the IVR
    # Light front-end conversion on the board feeding the on-chip IVR.
    board_front_efficiency: float = 0.97
    # Charge-recycling IVR: efficiency of shuffling imbalanced power
    # between layers (conduction + switching + ripple losses).
    cr_shuffle_efficiency: float = 0.60
    cr_quiescent_power: float = 0.5  # W, bias + clocking of all sub-IVRs
    # Level-shifted voltage-domain-crossing interfaces at the L2/memory
    # ports (Section III-A), as a fraction of delivered power.
    level_shifter_overhead: float = 0.01

    # ------------------------------------------------------------------
    # CR-IVR technology (area -> conductance)
    # ------------------------------------------------------------------
    cr_switching_frequency: float = 50e6  # Hz
    # Flying-capacitance density after switch/routing overhead.  With the
    # paper's 40 nm MIM process this calibrates the circuit-only sizing
    # to the 912 mm^2 anchor (1.72x the 529 mm^2 GPU die).
    cr_capacitance_density: float = 3.0e-9  # F per mm^2 usable as C_fly

    # ------------------------------------------------------------------
    # PDN resistance summaries used by the analytic efficiency models
    # ------------------------------------------------------------------
    @property
    def series_resistance(self) -> float:
        """Board-to-chip loop resistance (one-way + ground return)."""
        return (
            self.board_resistance
            + self.package_resistance
            + self.c4_resistance
            + self.ground_return_resistance
        )

    def cr_conductance_for_area(self, area_mm2: float) -> float:
        """Total charge-transfer conductance of CR-IVRs of ``area_mm2``.

        Standard switched-capacitor averaging: G = f_sw * C_fly, with
        C_fly proportional to allocated die area.
        """
        if area_mm2 < 0:
            raise ValueError(f"area must be non-negative, got {area_mm2}")
        return self.cr_switching_frequency * self.cr_capacitance_density * area_mm2

    def cr_area_for_conductance(self, siemens: float) -> float:
        """Inverse of :meth:`cr_conductance_for_area`."""
        if siemens < 0:
            raise ValueError(f"conductance must be non-negative, got {siemens}")
        return siemens / (
            self.cr_switching_frequency * self.cr_capacitance_density
        )

    def with_overrides(self, **kwargs) -> "PDNParameters":
        """Copy with selected fields replaced (frozen-dataclass helper)."""
        return replace(self, **kwargs)


DEFAULT_PDN = PDNParameters()
