"""repro — Voltage-Stacked GPUs (MICRO 2018) reproduction library.

A control-theory-driven cross-layer simulator for practical voltage
stacking in GPUs.  The package combines:

* ``repro.circuits`` — a SPICE-substitute linear circuit engine (MNA,
  trapezoidal transient, complex AC analysis);
* ``repro.pdn`` — power delivery network models: conventional VRM,
  single-layer IVR, and the 4x4 voltage-stacked configuration with
  charge-recycling IVRs, plus effective-impedance and efficiency
  analysis;
* ``repro.gpu`` — a simplified cycle-level Fermi-class GPU timing and
  power model (the GPGPU-Sim/GPUWattch substitute);
* ``repro.workloads`` — the paper's twelve benchmarks as synthetic kernel
  generators plus worst-case stimuli;
* ``repro.core`` — the paper's contribution: the state-space model of the
  stacked power grid, stability analysis, voltage detectors, the DIWS /
  FII / DCC actuators, the Algorithm 1 voltage-smoothing controller and
  the Algorithm 2 VS-aware power-management hypervisor;
* ``repro.power_mgmt`` — GRAPE-style DFS and Warped-Gates-style power
  gating, used for the collaborative power-management studies;
* ``repro.sim`` — the integrated hybrid co-simulation infrastructure;
* ``repro.analysis`` — metrics and report formatting for every table and
  figure in the paper's evaluation.

Quickstart::

    from repro import quick_cosim
    result = quick_cosim(benchmark="hotspot", cycles=2000)
    print(result.summary())
"""

__version__ = "1.0.0"

from repro.config import (
    DEFAULT_CONFIG,
    GPUConfig,
    PowerConfig,
    StackConfig,
    SystemConfig,
)

__all__ = [
    "DEFAULT_CONFIG",
    "GPUConfig",
    "PowerConfig",
    "StackConfig",
    "SystemConfig",
    "__version__",
]


def quick_cosim(benchmark: str = "hotspot", cycles: int = 2000, **kwargs):
    """Run a short cross-layer co-simulation of one benchmark.

    Convenience wrapper that builds the default voltage-stacked system,
    runs ``cycles`` GPU cycles of ``benchmark`` through the coupled
    GPU/PDN/controller loop, and returns the
    :class:`repro.sim.cosim.CosimResult`.
    """
    from repro.sim.cosim import run_crosslayer_cosim

    return run_crosslayer_cosim(benchmark=benchmark, cycles=cycles, **kwargs)
