"""Front-end voltage detectors (Table II) and the RC anti-alias filter.

A detector is placed next to every SM behind a first-order RC low-pass
(10 kOhm / 2 pF, cutoff 1/(RC) = 50 Mrad/s) that strips the
high-frequency noise the CR-IVRs already handle, then quantizes the
filtered voltage at the device's resolution after its latency.

Three implementation options from Table II are modeled: the on-die
droop detector (ODDD), the critical path monitor (CPM), and a flash ADC.
All satisfy the front-end requirements; they differ in latency, power
and resolution, which feeds the controller-latency budget of
``repro.core.overheads``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class DetectorSpec:
    """One row of Table II."""

    name: str
    latency_cycles: int  # representative latency within the Table II range
    latency_range_cycles: tuple
    power_mw: float
    power_range_mw: tuple
    resolution_v: float
    output: str

    def __post_init__(self) -> None:
        lo, hi = self.latency_range_cycles
        if not lo <= self.latency_cycles <= hi:
            raise ValueError(f"{self.name}: latency outside its own range")
        if self.resolution_v <= 0:
            raise ValueError(f"{self.name}: resolution must be positive")


DETECTOR_OPTIONS: Dict[str, DetectorSpec] = {
    "oddd": DetectorSpec(
        name="ODDD",
        latency_cycles=2,
        latency_range_cycles=(1, 2),
        power_mw=5.0,
        power_range_mw=(0.0, 10.0),
        resolution_v=0.015,
        output="detect indicator",
    ),
    "cpm": DetectorSpec(
        name="CPM",
        latency_cycles=30,
        latency_range_cycles=(10, 100),
        power_mw=45.0,
        power_range_mw=(30.0, 60.0),
        resolution_v=0.05,
        output="timing variation",
    ),
    "adc": DetectorSpec(
        name="ADC",
        latency_cycles=5,
        latency_range_cycles=(1, 10),
        power_mw=50.0,
        power_range_mw=(10.0, 100.0),
        resolution_v=1.0 / 2**8,  # 8-bit over a 1 V range
        output="N-bit digital signal",
    ),
}


class RCLowPassFilter:
    """First-order RC filter ahead of each detector (Section IV-D1).

    Default 10 kOhm and 2 pF: cutoff omega_c = 1/(RC) = 5e7 rad/s
    (the paper's 50 M(rad/s) cutoff), occupying 1120 um^2.
    """

    AREA_UM2 = 1120.0

    def __init__(
        self, r_ohm: float = 10e3, c_farad: float = 2e-12, initial_v: float = 1.0
    ) -> None:
        if r_ohm <= 0 or c_farad <= 0:
            raise ValueError("R and C must be positive")
        self.r_ohm = r_ohm
        self.c_farad = c_farad
        self.state_v = initial_v

    @property
    def cutoff_rad_s(self) -> float:
        return 1.0 / (self.r_ohm * self.c_farad)

    def step(self, input_v: float, dt_s: float) -> float:
        """Advance the filter by ``dt_s`` with the given input; return output."""
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        tau = self.r_ohm * self.c_farad
        alpha = dt_s / (tau + dt_s)
        self.state_v += alpha * (input_v - self.state_v)
        return self.state_v

    def reset(self, value_v: float) -> None:
        self.state_v = value_v


class VoltageDetector:
    """A filtered, quantized, delayed voltage sensor for one SM."""

    def __init__(
        self,
        spec: DetectorSpec = DETECTOR_OPTIONS["oddd"],
        filter_initial_v: float = 1.0,
    ) -> None:
        self.spec = spec
        self.filter = RCLowPassFilter(initial_v=filter_initial_v)

    def sample(self, true_voltage_v: float, dt_s: float) -> float:
        """Filter and quantize one voltage sample.

        Latency is *not* applied here — the controller pipelines the
        whole loop delay (detector + compute + actuate + wires) in one
        place, per the paper's lumped-latency treatment.
        """
        filtered = self.filter.step(true_voltage_v, dt_s)
        step = self.spec.resolution_v
        return round(filtered / step) * step
