"""The paper's contribution: control-theory-driven voltage smoothing.

* :mod:`repro.core.state_space` — the linear dynamic model of the
  stacked power grid (eqs. 1-5) with proportional state feedback
  (eqs. 6-7);
* :mod:`repro.core.stability` — discretization at the control latency
  (eq. 8), eigenvalue stability, and the disturbance-rejection bound
  (Section IV-B);
* :mod:`repro.core.detectors` — front-end voltage detector options
  (Table II) and the anti-aliasing RC low-pass filter;
* :mod:`repro.core.actuators` — DIWS / FII / DCC actuation mechanisms
  with their timescales (Fig. 5) and the weighted control input (eq. 9);
* :mod:`repro.core.controller` — Algorithm 1: the boundary-triggered
  per-SM proportional power controller with its latency pipeline;
* :mod:`repro.core.overheads` — synthesized power/area/latency budget
  (Section IV-D);
* :mod:`repro.core.hypervisor` — Algorithm 2: the VS-aware power
  management hypervisor that makes DFS and power gating compatible with
  voltage stacking.
"""

from repro.core.state_space import StackedGridModel
from repro.core.stability import (
    discretize,
    disturbance_rejection_bound,
    is_stable,
    select_feedback_gain,
    spectral_radius,
)
from repro.core.detectors import (
    DETECTOR_OPTIONS,
    DetectorSpec,
    RCLowPassFilter,
    VoltageDetector,
)
from repro.core.actuators import (
    ACTUATION_TIMESCALES,
    ActuationCommand,
    CurrentCompensationDAC,
    WeightedActuation,
)
from repro.core.controller import ControllerConfig, VoltageSmoothingController
from repro.core.overheads import ControllerOverheads, control_latency_cycles
from repro.core.hypervisor import HypervisorConfig, VSAwareHypervisor

__all__ = [
    "ACTUATION_TIMESCALES",
    "ActuationCommand",
    "ControllerConfig",
    "ControllerOverheads",
    "CurrentCompensationDAC",
    "DETECTOR_OPTIONS",
    "DetectorSpec",
    "HypervisorConfig",
    "RCLowPassFilter",
    "StackedGridModel",
    "VSAwareHypervisor",
    "VoltageDetector",
    "VoltageSmoothingController",
    "control_latency_cycles",
    "discretize",
    "disturbance_rejection_bound",
    "is_stable",
    "select_feedback_gain",
    "spectral_radius",
]
