"""Prior-art supply-noise mitigation baselines (Section II-C).

The paper surveys three families of conventional (single-layer)
mitigation schemes and argues none transfers to voltage stacking:

* **checkpoint-recovery** — let emergencies happen, detect, roll back
  and re-execute.  Fine for rare events; the sustained imbalance noise
  of a VS system makes emergencies frequent and the rollback cost
  explodes (:class:`CheckpointRecoveryModel` quantifies this);
* **detection-throttle** — sense a droop and throttle processor
  activity.  Conventional throttling is *global* (all cores slow
  equally), which in a stack scales balance and imbalance by the same
  factor: the droop shrinks only in proportion to the throttle depth
  and can never be closed, so the guardband stays violated
  (:class:`GlobalThrottleController` demonstrates this when swapped in
  for Algorithm 1 in the co-simulator);
* compiler/runtime code reshaping — out of scope here (needs real
  code streams), discussed in DESIGN.md.

Both baselines exist to be compared against the cross-layer controller
in the ablation benchmark (`benchmarks/test_ablation_prior_art.py`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config import StackConfig
from repro.core.controller import ControlDecision


@dataclass(frozen=True)
class CheckpointRecoveryModel:
    """Cost model of checkpoint/rollback noise tolerance.

    An *emergency* is any cycle in which some SM's supply leaves the
    guardband.  Each emergency rolls the machine back
    ``rollback_cycles`` (restore + re-execute) and consecutive
    emergencies within one rollback window collapse into one event.
    """

    emergency_threshold_v: float = 0.8
    rollback_cycles: int = 1000
    checkpoint_overhead: float = 0.02  # steady-state logging cost

    def __post_init__(self) -> None:
        if self.rollback_cycles <= 0:
            raise ValueError("rollback cost must be positive")
        if not 0 <= self.checkpoint_overhead < 1:
            raise ValueError("overhead must be in [0,1)")

    def count_emergencies(self, sm_voltages: np.ndarray) -> int:
        """Distinct emergency events in a (cycles, sms) voltage record."""
        sm_voltages = np.atleast_2d(np.asarray(sm_voltages, dtype=float))
        emergency_cycles = np.flatnonzero(
            (sm_voltages < self.emergency_threshold_v).any(axis=1)
        )
        if emergency_cycles.size == 0:
            return 0
        events = 1
        last = emergency_cycles[0]
        for cycle in emergency_cycles[1:]:
            if cycle - last >= self.rollback_cycles:
                events += 1
                last = cycle
        return events

    def effective_slowdown(self, sm_voltages: np.ndarray) -> float:
        """Execution-time inflation factor from rollbacks + logging.

        1.0 means no cost; 2.0 means the program takes twice as long.
        """
        sm_voltages = np.atleast_2d(np.asarray(sm_voltages, dtype=float))
        cycles = sm_voltages.shape[0]
        events = self.count_emergencies(sm_voltages)
        wasted = events * self.rollback_cycles
        return (1.0 + self.checkpoint_overhead) * (1.0 + wasted / cycles)


class GlobalThrottleController:
    """Conventional detection-throttle, applied chip-wide.

    Duck-type compatible with the co-simulator's controller interface
    (``observe`` / ``commands_for`` / ``throttled_cycles``): when *any*
    SM droops below the threshold, every SM's issue width is throttled
    to ``throttle_width`` for ``hold_cycles``.  This is what a
    single-layer scheme would do — and in a voltage stack it cannot
    meet the guardband, because scaling all layer currents together
    shrinks the *imbalance* (the actual noise source) only by the same
    proportion it costs in performance.
    """

    def __init__(
        self,
        stack: StackConfig = StackConfig(),
        v_threshold: float = 0.9,
        throttle_width: float = 1.0,
        hold_cycles: int = 100,
        latency_cycles: int = 60,
    ) -> None:
        if not 0 < v_threshold <= 1.2:
            raise ValueError("bad threshold")
        if not 0 <= throttle_width <= 2.0:
            raise ValueError("bad throttle width")
        self.stack = stack
        self.v_threshold = v_threshold
        self.throttle_width = throttle_width
        self.hold_cycles = hold_cycles
        self.latency_cycles = latency_cycles
        self._throttle_until = -1
        self._pending_trigger: Optional[int] = None
        self.throttled_cycles = 0
        self.triggers = 0
        self.decisions_made = 0

    def observe(self, cycle: int, sm_voltages: np.ndarray) -> None:
        sm_voltages = np.asarray(sm_voltages, dtype=float)
        if sm_voltages.shape != (self.stack.num_sms,):
            raise ValueError(
                f"expected {self.stack.num_sms} SM voltages"
            )
        self.decisions_made += 1
        if self._pending_trigger is None and float(sm_voltages.min()) < self.v_threshold:
            self._pending_trigger = cycle + self.latency_cycles
            self.triggers += 1

    def commands_for(self, cycle: int) -> ControlDecision:
        if self._pending_trigger is not None and cycle >= self._pending_trigger:
            self._throttle_until = cycle + self.hold_cycles
            self._pending_trigger = None
        n = self.stack.num_sms
        throttling = cycle < self._throttle_until
        if throttling:
            self.throttled_cycles += 1
        width = self.throttle_width if throttling else 2.0
        return ControlDecision(
            issue_widths=np.full(n, width),
            fake_rates=np.zeros(n),
            dcc_powers_w=np.zeros(n),
            triggered_sms=list(range(n)) if throttling else [],
        )

    @property
    def throttle_fraction(self) -> float:
        if self.decisions_made == 0:
            return 0.0
        return self.triggers / self.decisions_made
