"""Voltage-smoothing actuation mechanisms (Section IV-C).

Fig. 5 surveys GPU power-actuation mechanisms by response time; only
three are fast enough (<= tens of cycles) for the low-frequency noise
band the architecture layer must cover:

* **DIWS** — dynamic issue width scaling (reduce SM power);
* **FII** — fake instruction injection (increase SM power);
* **DCC** — dynamic current compensation through a binary-weighted
  current DAC (increase layer current directly, at area/leakage cost).

:class:`WeightedActuation` implements the weighted control input of
eq. (9): a desired power adjustment is split across the three mechanisms
by weights ``(w1, w2, w3)``, then each mechanism converts its share into
its native command (issue width, fakes/cycle, DAC code).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.gpu.isa import ENERGY, InstructionClass

# ---------------------------------------------------------------------------
# Fig. 5: response timescales (cycles at 700 MHz)
# ---------------------------------------------------------------------------
ACTUATION_TIMESCALES: Dict[str, tuple] = {
    # mechanism: (min_cycles, max_cycles, usable_for_smoothing)
    "dcc": (1, 4, True),
    "fii": (1, 8, True),
    "diws": (1, 10, True),
    "thread_migration": (1_000, 100_000, False),
    "power_gating": (1_000, 50_000, False),
    "dfs": (100_000, 10_000_000, False),  # DPLL re-lock ~ms
}


def smoothing_capable() -> Dict[str, tuple]:
    """Mechanisms fast enough for voltage smoothing (the paper's trio)."""
    return {k: v for k, v in ACTUATION_TIMESCALES.items() if v[2]}


@dataclass(frozen=True)
class CurrentCompensationDAC:
    """Binary-weighted current DAC for DCC (Section IV-C).

    ``n_bits`` binary-weighted current sources; code 0..2^n-1 adds
    ``code * unit_power_w`` of dummy load on the target layer within one
    cycle.  Costs die area and leakage whenever deployed.
    """

    n_bits: int = 6
    unit_power_w: float = 0.05  # LSB power Pd0
    area_um2_per_bit: float = 450.0
    leakage_w_per_bit: float = 0.004

    def __post_init__(self) -> None:
        if self.n_bits <= 0:
            raise ValueError("n_bits must be positive")
        if self.unit_power_w <= 0:
            raise ValueError("unit power must be positive")

    @property
    def max_code(self) -> int:
        return 2**self.n_bits - 1

    @property
    def max_power_w(self) -> float:
        return self.max_code * self.unit_power_w

    @property
    def area_um2(self) -> float:
        return self.n_bits * self.area_um2_per_bit

    @property
    def leakage_w(self) -> float:
        return self.n_bits * self.leakage_w_per_bit

    def code_for_power(self, power_w: float) -> int:
        """Closest DAC code delivering ``power_w`` (clamped)."""
        if power_w <= 0:
            return 0
        return min(self.max_code, int(round(power_w / self.unit_power_w)))

    def power_for_code(self, code: int) -> float:
        if not 0 <= code <= self.max_code:
            raise ValueError(f"code {code} outside 0..{self.max_code}")
        return code * self.unit_power_w


@dataclass(frozen=True)
class ActuationCommand:
    """Per-SM actuation outputs of one control decision."""

    issue_width: float = 2.0  # DIWS command for the drooping SM
    fake_rate: float = 0.0  # FII command for the neighbouring layer
    dcc_code: int = 0  # DCC command for the neighbouring layer

    def __post_init__(self) -> None:
        if not 0.0 <= self.issue_width <= 2.0:
            raise ValueError(f"issue width out of range: {self.issue_width}")
        if not 0.0 <= self.fake_rate <= 2.0:
            raise ValueError(f"fake rate out of range: {self.fake_rate}")
        if self.dcc_code < 0:
            raise ValueError("dcc code cannot be negative")


@dataclass(frozen=True)
class WeightedActuation:
    """The weighted control input of eq. (9).

    ``w1 + w2 + w3`` need not be 1; each weight scales how much of the
    proportional error its mechanism absorbs.  ``issue_width_max`` is the
    hardware width; ``instruction_power_w`` approximates ``P_dyn,ins``
    (the per-instruction dynamic power at full clock).
    """

    w1: float = 1.0  # DIWS
    w2: float = 0.0  # FII
    w3: float = 0.0  # DCC
    dac: CurrentCompensationDAC = CurrentCompensationDAC()
    issue_width_max: float = 2.0
    instruction_power_w: float = ENERGY[InstructionClass.FALU] * 700e6

    def __post_init__(self) -> None:
        if min(self.w1, self.w2, self.w3) < 0:
            raise ValueError("weights must be non-negative")
        if self.w1 + self.w2 + self.w3 <= 0:
            raise ValueError("at least one weight must be positive")

    def commands(
        self, error_v: float, k1: float, k2: float, k3: float
    ) -> ActuationCommand:
        """Map a voltage error (``V_nominal - V_sm``, volts) to commands.

        Follows Algorithm 1: DIWS throttles the drooping SM by
        ``k1 * w1 * error`` issue slots, FII raises the layer above by
        ``k2 * w2 * error`` fakes/cycle, and DCC adds
        ``k3 * w3 * error`` watts of compensation current.
        """
        if error_v <= 0:
            return ActuationCommand(self.issue_width_max, 0.0, 0)
        width = self.issue_width_max - k1 * self.w1 * error_v
        fake = k2 * self.w2 * error_v
        dcc_power = k3 * self.w3 * error_v
        return ActuationCommand(
            issue_width=min(self.issue_width_max, max(0.0, width)),
            fake_rate=min(2.0, max(0.0, fake)),
            dcc_code=self.dac.code_for_power(dcc_power),
        )

    def boost_commands(
        self, overvoltage_v: float, k2: float, k3: float
    ) -> ActuationCommand:
        """Power-adding commands for an *underdrawing* layer.

        Realizes eq. (6)'s ``P_i = k V_i`` on the high side: a layer
        whose voltage sits above nominal draws proportionally more power
        through FII / DCC, which is self-limiting (commands vanish as
        the layer returns to nominal).
        """
        if overvoltage_v <= 0:
            return ActuationCommand(self.issue_width_max, 0.0, 0)
        fake = k2 * self.w2 * overvoltage_v
        dcc_power = k3 * self.w3 * overvoltage_v
        return ActuationCommand(
            issue_width=self.issue_width_max,
            fake_rate=min(2.0, max(0.0, fake)),
            dcc_code=self.dac.code_for_power(dcc_power),
        )

    def power_effect_w(self, command: ActuationCommand) -> float:
        """Approximate eq. (9): power the command adds (+) or sheds (-)."""
        diws_drop = (
            -(self.issue_width_max - command.issue_width)
            * self.instruction_power_w
        )
        fii_add = command.fake_rate * self.instruction_power_w
        dcc_add = self.dac.power_for_code(command.dcc_code)
        return diws_drop + fii_add + dcc_add
