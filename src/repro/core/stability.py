"""Discretization and stability analysis (Section IV-B).

The control loop runs with total delay ``T`` (sensor + compute +
actuate + communication), so the continuous closed loop ``A + B K`` is
discretized with sampling period ``T`` (eq. 8):

    X(n+1) = Z(A + B K) X(n) + dF,   Z(M) = expm(M T)

Stability requires the spectral radius of ``Z`` below one; the
disturbance-rejection bound evaluates the discrete frequency response to
guarantee that any disturbance below the Nyquist rate ``1/(2T)`` keeps
voltage deviations inside the guardband — the paper's formal worst-case
noise guarantee.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np
from scipy.linalg import expm

from repro.core.state_space import StackedGridModel


def discretize(continuous: np.ndarray, period_s: float) -> np.ndarray:
    """Zero-order-hold discretization Z(M) = expm(M * T)."""
    if period_s <= 0:
        raise ValueError(f"sampling period must be positive, got {period_s}")
    continuous = np.asarray(continuous, dtype=float)
    if continuous.ndim != 2 or continuous.shape[0] != continuous.shape[1]:
        raise ValueError("matrix must be square")
    return expm(continuous * period_s)


def spectral_radius(matrix: np.ndarray) -> float:
    """Largest eigenvalue magnitude."""
    return float(np.max(np.abs(np.linalg.eigvals(np.asarray(matrix)))))


def sampled_closed_loop(
    model: StackedGridModel, k: float, period_s: float
) -> np.ndarray:
    """Discrete closed loop with zero-order-hold actuation (eq. 8).

    The control input computed from sample ``n`` is held constant over
    the next period (the loop latency), so::

        X(n+1) = Ad X(n) + Bd K X(n),
        Ad = expm(A T),  Bd = int_0^T expm(A tau) B dtau

    computed via the standard augmented-matrix exponential.  Unlike
    ``discretize(A + B K, T)`` — which would pretend feedback acts
    continuously — this captures the sampling-induced instability: on
    the bare integrator grid the per-node eigenvalue is ``1 - k T / C``,
    so gains beyond ``2 C / T`` destabilize the loop.  This is the
    paper's constraint tying the usable gain to the control latency.
    """
    if period_s <= 0:
        raise ValueError(f"sampling period must be positive, got {period_s}")
    a = model.a_matrix()
    b = model.b_matrix()
    n = a.shape[0]
    augmented = np.zeros((2 * n, 2 * n))
    augmented[:n, :n] = a
    augmented[:n, n:] = b
    phi = expm(augmented * period_s)
    ad = phi[:n, :n]
    bd = phi[:n, n:]
    return ad + bd @ model.feedback_matrix(k)


def is_stable(discrete: np.ndarray, tolerance: float = 1e-9) -> bool:
    """Discrete-time stability: spectral radius <= 1.

    The stacked grid has a pinned supply state with eigenvalue exactly 1
    (a constant, not a growing mode), so marginal unity eigenvalues are
    accepted within ``tolerance``.
    """
    return spectral_radius(discrete) <= 1.0 + tolerance


def disturbance_rejection_bound(
    model: StackedGridModel,
    k: float,
    period_s: float,
    frequencies_hz: Optional[Sequence[float]] = None,
) -> float:
    """Worst closed-loop *effective impedance* (ohms) below Nyquist.

    A sustained imbalance current ``dI`` injected at a boundary node
    enters the sampled system through its own zero-order-hold integral
    ``Ed = int_0^T expm(A tau) dtau / C``, so the deviation transfer is
    ``(zI - Acl)^{-1} Ed`` with ``Acl`` the sampled closed loop.  The
    returned bound is the worst 2-norm of that transfer over disturbance
    frequencies up to Nyquist (``1/(2T)``) — volts of deviation per
    ampere of imbalance.  Multiplying by the worst residual imbalance
    current gives the paper's formal supply-noise guarantee; the gain is
    chosen so the product stays inside the 0.2 V margin.
    """
    acl = sampled_closed_loop(model, k, period_s)
    a = model.a_matrix()
    n = a.shape[0]
    # Ed via the augmented exponential with input matrix I/C.
    augmented = np.zeros((2 * n, 2 * n))
    augmented[:n, :n] = a
    augmented[:n, n:] = np.eye(n) / model.layer_capacitance_f
    ed = expm(augmented * period_s)[:n, n:]
    nyquist = 0.5 / period_s
    if frequencies_hz is None:
        frequencies_hz = np.linspace(nyquist * 1e-3, nyquist, 60)
    worst = 0.0
    eye = np.eye(n)
    for f in frequencies_hz:
        if f <= 0 or f > nyquist + 1e-9:
            raise ValueError(f"frequency {f} outside (0, Nyquist]")
        z = np.exp(1j * 2 * np.pi * f * period_s)
        transfer = np.linalg.inv(z * eye - acl) @ ed
        # Only the controllable states matter: the pinned supply state
        # contributes a benign unity eigenvalue.
        gain = np.linalg.norm(transfer[: n - 1, : n - 1], ord=2)
        worst = max(worst, float(gain))
    return worst


def select_feedback_gain(
    model: StackedGridModel,
    period_s: float,
    candidates: Optional[Sequence[float]] = None,
) -> Tuple[float, float]:
    """Pick the proportional gain k minimizing the closed-loop radius.

    Mirrors the paper's SIMULINK gain-selection step: sweep candidate
    gains, discretize at the loop latency, and keep the stable gain with
    the fastest decay (smallest spectral radius over the controllable
    subspace).  Returns ``(k, radius)``.
    """
    if candidates is None:
        # Express candidates in units of C/T — the ZOH loop is stable
        # for k in (0, 2C/T), so this grid brackets the whole range.
        scale = model.layer_capacitance_f / period_s
        candidates = np.linspace(0.05, 1.9, 38) * scale
    best_k, best_radius = 0.0, float("inf")
    for k in candidates:
        ad = sampled_closed_loop(model, float(k), period_s)
        radius = spectral_radius(ad[:-1, :-1])  # controllable subspace
        if radius < best_radius:
            best_k, best_radius = float(k), radius
    if best_radius > 1.0:
        raise RuntimeError(
            "no stable gain among candidates; widen the candidate range"
        )
    return best_k, best_radius
