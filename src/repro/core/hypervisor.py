"""Algorithm 2: the VS-aware power management hypervisor.

Higher-level power optimizations (DFS, power gating) issue per-SM
frequency and gating commands that are oblivious to voltage stacking.
Applied raw, they can create large *sustained* layer-current imbalance —
safe (the controller still bounds the noise) but wasteful, since the
CR-IVRs burn a slice of every shuffled watt and the smoothing controller
throttles performance.

The hypervisor sits between the OS and the GPU (Fig. 7) and remaps the
commands so the power difference across any stack column stays within a
dynamically adjusted budget:

* each SM's frequency is clamped to within ``f_threshold`` of the
  slowest SM in its column (Algorithm 2's frequency rule);
* a gating request is vetoed when it would push the column's leakage
  imbalance beyond ``p_threshold``;
* both thresholds tighten when the smoothing controller reports heavy
  throttling (the feedback noted at Algorithm 2 step 4) and relax when
  smoothing is idle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.config import StackConfig
from repro.gpu.isa import ExecUnit
from repro.gpu.power import LEAKAGE_SHARE


@dataclass
class HypervisorConfig:
    """Imbalance budgets of the VS-aware hypervisor."""

    base_frequency_threshold_hz: float = 100e6  # max intra-column f spread
    base_leakage_threshold_w: float = 0.5  # max intra-column leakage spread
    # Threshold adaptation: full-throttle smoothing halves the budgets.
    adaptation_strength: float = 0.5

    def __post_init__(self) -> None:
        if self.base_frequency_threshold_hz <= 0:
            raise ValueError("frequency threshold must be positive")
        if self.base_leakage_threshold_w <= 0:
            raise ValueError("leakage threshold must be positive")
        if not 0.0 <= self.adaptation_strength < 1.0:
            raise ValueError("adaptation strength must be in [0,1)")


class VSAwareHypervisor:
    """Command-mapping layer between OS power management and the GPU."""

    def __init__(
        self,
        stack: StackConfig = StackConfig(),
        config: HypervisorConfig = HypervisorConfig(),
        sm_leakage_w: float = 1.2,
    ) -> None:
        self.stack = stack
        self.config = config
        self.sm_leakage_w = sm_leakage_w
        self._throttle_fraction = 0.0
        self.frequency_overrides = 0
        self.gating_vetoes = 0

    # ------------------------------------------------------------------
    # Threshold adaptation (Algorithm 2 step 4)
    # ------------------------------------------------------------------
    def update_performance_feedback(self, throttle_fraction: float) -> None:
        """Report the smoothing controller's throttle fraction (0..1)."""
        if not 0.0 <= throttle_fraction <= 1.0:
            raise ValueError("throttle fraction must be in [0,1]")
        self._throttle_fraction = throttle_fraction

    @property
    def frequency_threshold_hz(self) -> float:
        shrink = 1.0 - self.config.adaptation_strength * self._throttle_fraction
        return self.config.base_frequency_threshold_hz * shrink

    @property
    def leakage_threshold_w(self) -> float:
        shrink = 1.0 - self.config.adaptation_strength * self._throttle_fraction
        return self.config.base_leakage_threshold_w * shrink

    # ------------------------------------------------------------------
    # Command mapping
    # ------------------------------------------------------------------
    def map_frequencies(self, requested_hz: Sequence[float]) -> np.ndarray:
        """Clamp per-SM frequency requests to the column budget.

        Every SM is raised to at least
        ``min(column frequencies) + threshold`` distance from its column
        peers: i.e. the spread within a column is capped at the
        threshold by *raising* the slow SMs (Algorithm 2 raises
        frequency rather than lowering the fast SM, preserving the
        performance target of the optimization that asked for it).
        """
        requested = np.asarray(requested_hz, dtype=float)
        if requested.shape != (self.stack.num_sms,):
            raise ValueError(
                f"expected {self.stack.num_sms} frequencies, got {requested.shape}"
            )
        if np.any(requested <= 0):
            raise ValueError("frequencies must be positive")
        mapped = requested.copy()
        threshold = self.frequency_threshold_hz
        for column in range(self.stack.num_columns):
            sms = self.stack.sms_in_column(column)
            fastest = max(mapped[sm] for sm in sms)
            floor = fastest - threshold
            for sm in sms:
                if mapped[sm] < floor:
                    mapped[sm] = floor
                    self.frequency_overrides += 1
        return mapped

    def map_gating(
        self, requested_gates: Sequence[Set[ExecUnit]]
    ) -> List[Set[ExecUnit]]:
        """Veto gating requests that unbalance column leakage.

        ``requested_gates[sm]`` is the set of units PG wants gated in
        that SM.  Requests are granted greedily per column, most
        leakage-saving first, until the column's leakage spread would
        exceed the budget; the rest are vetoed (``gate' = 0``).
        """
        if len(requested_gates) != self.stack.num_sms:
            raise ValueError(
                f"expected {self.stack.num_sms} gate sets, got "
                f"{len(requested_gates)}"
            )
        granted: List[Set[ExecUnit]] = [set() for _ in range(self.stack.num_sms)]
        threshold = self.leakage_threshold_w
        for column in range(self.stack.num_columns):
            sms = self.stack.sms_in_column(column)
            savings = {sm: 0.0 for sm in sms}
            requests: List[Tuple[float, int, ExecUnit]] = []
            for sm in sms:
                for unit in requested_gates[sm]:
                    saving = self.sm_leakage_w * LEAKAGE_SHARE[unit]
                    requests.append((saving, sm, unit))
            # Most saving first so vetoes cost the least.
            for saving, sm, unit in sorted(requests, reverse=True):
                candidate = dict(savings)
                candidate[sm] += saving
                spread = max(candidate.values()) - min(candidate.values())
                if spread <= threshold:
                    granted[sm].add(unit)
                    savings = candidate
                else:
                    self.gating_vetoes += 1
        return granted
