"""Algorithm 1: the boundary-triggered voltage smoothing controller.

Every control period the controller reads the filtered boundary-node
voltages from the per-SM detectors, derives each SM's layer voltage
``V_sm(i,j) = V(i,j) - V(i-1,j)``, and — only when an SM droops below
``v_threshold`` — computes proportional actuation:

* the drooping SM's issue width is cut by ``k1 * w1 * (V_nom - V_sm)``;
* fake instructions at rate ``k2 * w2 * (V_nom - V_sm)`` are injected
  into the SM *above* it in the stack (raising the neighbour layer's
  current restores the series balance from the other side);
* a DCC code worth ``k3 * w3 * (V_nom - V_sm)`` watts is applied near
  the layer above.

Commands take effect after the loop latency (detector + compute +
actuate + wire delay), modeled by a delay queue.  When the SM recovers
above the threshold its commands relax back to defaults.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.config import StackConfig
from repro.core.actuators import ActuationCommand, WeightedActuation
from repro.core.detectors import DETECTOR_OPTIONS, DetectorSpec, VoltageDetector
from repro.core.overheads import control_latency_cycles


@dataclass(frozen=True)
class ControllerConfig:
    """Tunables of the Algorithm 1 controller."""

    # Gains follow the sampled-stability analysis: the per-volt power
    # response k_i * P_instr must stay below the 2C/T limit (~12 W/V at
    # the 60-cycle loop), or the loop limit-cycles.
    v_threshold: float = 0.9  # droop trigger voltage (Section VI-C default)
    # Symmetric boost trigger: a layer voltage above this marks an
    # underdrawing layer and engages FII/DCC on it directly.  Sits a bit
    # beyond the droop threshold's mirror so ordinary workload variance
    # does not burn fake-instruction power.
    v_high_threshold: float = 1.15
    v_nominal: float = 1.0
    k1: float = 1.0  # DIWS proportional factor (issue slots per volt)
    k2: float = 8.0  # FII proportional factor (fakes/cycle per volt)
    k3: float = 20.0  # DCC proportional factor (watts per volt)
    control_period_cycles: int = 4  # decision rate of the controller
    # Maximum per-decision command change (slew limiting): abrupt
    # full-swing actuation steps would ring the PDN's package resonance
    # harder than the noise being fixed, and the slew bound also caps
    # the overshoot accumulated during the loop latency
    # (ramp <= slew * latency / period), which is what keeps the high
    # FII gain stable.  Each actuator slews in its *own* natural units —
    # issue slots, fakes/cycle, and watts respectively; a single shared
    # number cannot serve all three (0.02 slots is a meaningful DIWS
    # step, but 0.02 W per decision pins the k3 = 20 W/V DCC DAC to a
    # ramp hundreds of decisions long, disabling it in practice).
    # ``slew_per_decision`` is the legacy shared knob: it still seeds
    # ``slew_issue`` and ``slew_fake`` when they are not given, so
    # existing DIWS/FII configurations behave identically.
    slew_per_decision: float = 0.02
    slew_issue: Optional[float] = None  # issue slots per decision
    slew_fake: Optional[float] = None  # fakes/cycle per decision
    slew_dcc_w: float = 0.25  # watts per decision (5 DAC LSBs)
    latency_cycles: Optional[int] = None  # None -> budget from overheads
    detector: DetectorSpec = field(
        default_factory=lambda: DETECTOR_OPTIONS["oddd"]
    )
    # Escape hatch for the sampled-stability validation below: research
    # configurations that deliberately cross the 2C/T bound (e.g. to
    # reproduce a limit cycle) must opt in explicitly.
    allow_unstable: bool = False
    # --- graceful degradation -----------------------------------------
    # The emergency guardband: ``watchdog_patience`` consecutive
    # decisions measuring the worst SM below ``guardband_v`` escalate to
    # a safe state (issue width clamped to ``safe_issue_width`` on every
    # SM, FII off, DCC clamped off) until
    # ``safe_state_release_decisions`` consecutive healthy decisions
    # release it.  Off by default: escalation deliberately trades
    # throughput for survival, so fault-scenario runs opt in.
    guardband_v: float = 0.8
    watchdog_enabled: bool = False
    watchdog_patience: int = 8
    # Max DIWS throttle: issue width 0 stops real issue everywhere, so
    # every SM draws (near-uniform) idle power and the series stack
    # re-balances by construction, whatever caused the imbalance.
    safe_issue_width: float = 0.0
    safe_state_release_decisions: int = 200
    # Sensor-loss fallback: a NaN sample (dropout) holds the last good
    # measurement and widens that SM's trigger thresholds by
    # ``fallback_widen_v`` — protective actions engage earlier on stale
    # data, power-adding ones later.  NaN itself NEVER reaches the RC
    # filter or produces actuation, fallback enabled or not.
    sensor_fallback_enabled: bool = True
    fallback_widen_v: float = 0.05
    # Limit-cycle detection (stats only): the throttle-engagement flag
    # flipping >= ``limit_cycle_min_flips`` times within the last
    # ``limit_cycle_window`` decisions marks a sustained oscillation.
    limit_cycle_window: int = 32
    limit_cycle_min_flips: int = 12

    def __post_init__(self) -> None:
        if not 0.0 < self.v_threshold <= self.v_nominal:
            raise ValueError("need 0 < v_threshold <= v_nominal")
        if self.v_high_threshold < self.v_nominal:
            raise ValueError("v_high_threshold must be >= v_nominal")
        if self.control_period_cycles <= 0:
            raise ValueError("control period must be positive")
        if min(self.k1, self.k2, self.k3) < 0:
            raise ValueError("proportional factors must be non-negative")
        if self.slew_per_decision <= 0:
            raise ValueError("slew limit must be positive")
        # Seed the per-actuator limits from the legacy shared knob.
        if self.slew_issue is None:
            object.__setattr__(self, "slew_issue", self.slew_per_decision)
        if self.slew_fake is None:
            object.__setattr__(self, "slew_fake", self.slew_per_decision)
        if min(self.slew_issue, self.slew_fake, self.slew_dcc_w) <= 0:
            raise ValueError("per-actuator slew limits must be positive")
        if not 0.0 < self.guardband_v < self.v_nominal:
            raise ValueError("need 0 < guardband_v < v_nominal")
        if self.watchdog_patience <= 0:
            raise ValueError("watchdog_patience must be positive")
        if not 0.0 <= self.safe_issue_width <= 2.0:
            raise ValueError("safe_issue_width must be within 0..2 slots")
        if self.safe_state_release_decisions <= 0:
            raise ValueError("safe_state_release_decisions must be positive")
        if self.fallback_widen_v < 0:
            raise ValueError("fallback_widen_v cannot be negative")
        if self.limit_cycle_window < 4:
            raise ValueError("limit_cycle_window must be at least 4")
        if not 0 < self.limit_cycle_min_flips < self.limit_cycle_window:
            raise ValueError(
                "limit_cycle_min_flips must be within the window"
            )
        if not self.allow_unstable:
            limit = self.stability_limit_w_per_v()
            gains = self.effective_power_gains_w_per_v()
            offenders = {
                name: gains[name]
                for name in ("diws", "fii")
                if gains[name] > limit * (1.0 + 1e-9)
            }
            if offenders:
                detail = ", ".join(
                    f"{name}={gain:.2f} W/V" for name, gain in offenders.items()
                )
                raise ValueError(
                    f"unstable controller gains ({detail}) exceed the "
                    f"sampled-stability limit 2C/T = {limit:.2f} W/V at the "
                    f"{self.total_latency_cycles}-cycle loop — such a loop "
                    "limit-cycles (gain beyond 2C/T overshoots the "
                    "boundary capacitance every period); reduce k1/k2, "
                    "tighten the slew limits, shorten the latency, or pass "
                    "allow_unstable=True to study the oscillation"
                )

    @property
    def total_latency_cycles(self) -> int:
        if self.latency_cycles is not None:
            return self.latency_cycles
        return control_latency_cycles(self.detector)

    # ------------------------------------------------------------------
    # Sampled-stability bound (the "~12 W/V" note on the gains above)
    # ------------------------------------------------------------------
    def stability_limit_w_per_v(
        self,
        cycle_time_s: Optional[float] = None,
        boundary_capacitance_f: Optional[float] = None,
    ) -> float:
        """The 2C/T gain bound of the sampled (ZOH) control loop.

        A proportional power-per-volt gain above ``2C/T`` moves more
        charge per loop latency ``T`` than the boundary capacitance
        ``C`` holds, so every correction overshoots and the loop
        limit-cycles.  ``C`` defaults to the decap hanging on one layer
        boundary of the default stack (above + below: 2 x columns x
        per-SM decap = 512 nF), ``T`` to this config's loop latency at
        the default 700 MHz clock — about 12 W/V for the 60-cycle loop.
        """
        if cycle_time_s is None:
            from repro.config import GPUConfig

            cycle_time_s = GPUConfig().cycle_time_s
        if boundary_capacitance_f is None:
            from repro.pdn.parameters import DEFAULT_PDN

            boundary_capacitance_f = (
                2 * StackConfig().num_columns * DEFAULT_PDN.sm_decap
            )
        latency_s = self.total_latency_cycles * cycle_time_s
        return 2.0 * boundary_capacitance_f / latency_s

    def effective_power_gains_w_per_v(self) -> Dict[str, float]:
        """Slew-aware closed-loop power gains, per actuator (W/V).

        The raw proportional gain is ``k_i * P_instr`` (DIWS/FII issue
        or inject instructions worth ``P_instr`` watts each; DCC's
        ``k3`` is already in W/V).  The per-decision slew limit caps how
        much actuation can actually build up within one loop latency —
        ``slew x (latency / period)`` command units — so over the
        guardband excursion (``v_nominal - guardband_v``) the realized
        gain is the *smaller* of the raw gain and that ramp bound.
        Only DIWS and FII gate construction: they always engage when
        triggered, while DCC's contribution scales with the actuation
        weight ``w3`` (zero in the reliability default) which this
        config does not know.
        """
        p_instr = WeightedActuation().instruction_power_w
        decisions = self.total_latency_cycles / self.control_period_cycles
        depth = self.v_nominal - self.guardband_v

        def slew_cap(slew: float, unit_power_w: float) -> float:
            if depth <= 0:
                return float("inf")
            return slew * decisions * unit_power_w / depth

        return {
            "diws": min(self.k1 * p_instr, slew_cap(self.slew_issue, p_instr)),
            "fii": min(self.k2 * p_instr, slew_cap(self.slew_fake, p_instr)),
            "dcc": min(self.k3, slew_cap(self.slew_dcc_w, 1.0)),
        }


@dataclass
class ControlDecision:
    """Per-GPU actuation computed by one controller invocation."""

    issue_widths: np.ndarray  # per SM
    fake_rates: np.ndarray  # per SM
    dcc_powers_w: np.ndarray  # per SM (watts of compensation current)
    triggered_sms: List[int] = field(default_factory=list)


class VoltageSmoothingController:
    """Algorithm 1 with detectors, latency pipeline and statistics."""

    def __init__(
        self,
        stack: StackConfig = StackConfig(),
        config: ControllerConfig = ControllerConfig(),
        actuation: Optional[WeightedActuation] = None,
        dt_s: float = 1.0 / 700e6,
    ) -> None:
        self.stack = stack
        self.config = config
        self.actuation = actuation or WeightedActuation()
        self.dt_s = dt_s
        self.detectors = [
            VoltageDetector(config.detector, filter_initial_v=stack.sm_voltage)
            for _ in range(stack.num_sms)
        ]
        # Vectorized sensor front-end: one array holds every SM's RC
        # filter state; observe() advances them all with three ufunc
        # calls instead of num_sms Python method calls.  The per-object
        # detectors above remain the spec source and the documented
        # front-end model; their scalar ``sample`` is what the array
        # update replicates operation-for-operation.
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        filt = self.detectors[0].filter
        tau = filt.r_ohm * filt.c_farad
        self._filter_alpha = dt_s / (tau + dt_s)
        self._filter_state = np.full(stack.num_sms, stack.sm_voltage)
        self._resolution_v = config.detector.resolution_v
        # (apply_at_cycle, decision) queue modelling the loop latency.
        self._pipeline: Deque[Tuple[int, ControlDecision]] = deque()
        self._last_decision_cycle = -config.control_period_cycles
        self._default_issue_width = float(self.actuation.issue_width_max)
        self.active_decision = self._default_decision()
        self._last_enqueued = self._default_decision()
        # Statistics for performance-penalty accounting.  throttled_cycles
        # counts *simulated* cycles (commands_for may be called more than
        # once for the same cycle without double counting).
        self.throttled_cycles = 0
        self._counted_through_cycle = -1
        self.decisions_made = 0
        self.triggers = 0
        # Per-actuator telemetry: decisions in which each actuator was
        # engaged, and decisions in which its slew clamp saturated (the
        # commanded change exceeded the per-decision limit).
        self.actuator_decisions: Dict[str, int] = {
            "diws": 0, "fii": 0, "dcc": 0
        }
        self.slew_saturations: Dict[str, int] = {
            "issue": 0, "fake": 0, "dcc": 0
        }
        self.throttle_decisions = 0
        self.boost_decisions = 0
        # Graceful-degradation state: sensor-loss fallback holds the
        # last good filtered measurement per SM; the guardband watchdog
        # tracks consecutive sub-guardband decisions and escalates to
        # the safe state; limit-cycle detection watches the throttle
        # flag flap.
        self._last_good = np.full(stack.num_sms, config.v_nominal)
        self._fallback_active = np.zeros(stack.num_sms, dtype=bool)
        self.sensor_fallback_samples = 0
        self.nan_samples_seen = 0
        self.watchdog_engagements = 0
        self.safe_state_decisions = 0
        self.in_safe_state = False
        self._subguard_streak = 0
        self._healthy_streak = 0
        self._flap_history: Deque[bool] = deque(
            maxlen=config.limit_cycle_window
        )
        self.limit_cycle_events = 0
        self._limit_cycle_flagged = False

    # ------------------------------------------------------------------
    def _default_decision(self) -> ControlDecision:
        n = self.stack.num_sms
        return ControlDecision(
            issue_widths=np.full(n, self._default_issue_width),
            fake_rates=np.zeros(n),
            dcc_powers_w=np.zeros(n),
        )

    def observe(self, cycle: int, sm_voltages: np.ndarray) -> None:
        """Feed this cycle's true SM voltages through the detectors.

        Runs the per-SM RC filters every cycle; makes a control decision
        every ``control_period_cycles`` and enqueues it to apply after
        the loop latency.

        A non-finite sample means "no reading this cycle" (sensor
        dropout): it never enters the RC filter (NaN would poison the
        filter state permanently) and never produces actuation.  With
        the sensor fallback enabled the SM's last good measurement is
        held instead, with widened trigger thresholds; otherwise the SM
        simply cannot trigger until a real sample returns.
        """
        sm_voltages = np.asarray(sm_voltages, dtype=float)
        if sm_voltages.shape != (self.stack.num_sms,):
            raise ValueError(
                f"expected {self.stack.num_sms} SM voltages, got "
                f"{sm_voltages.shape}"
            )
        cfg = self.config
        finite = np.isfinite(sm_voltages)
        # RC filter + quantization for all SMs at once.  The elementwise
        # float64 ops match RCLowPassFilter.step / VoltageDetector.sample
        # exactly (np.rint is round-half-even, like Python's round), so
        # decisions are bit-identical to the per-object path.  Non-finite
        # samples never enter the filter state.
        state = self._filter_state
        alpha = self._filter_alpha
        step = self._resolution_v
        if finite.all():
            state += alpha * (sm_voltages - state)
            measured = np.rint(state / step) * step
            self._last_good[:] = measured
            if self._fallback_active.any():
                self._fallback_active[:] = False
        else:
            bad = ~finite
            self.nan_samples_seen += int(bad.sum())
            np.copyto(state, state + alpha * (sm_voltages - state), where=finite)
            measured = np.rint(state / step) * step
            np.copyto(self._last_good, measured, where=finite)
            self._fallback_active[finite] = False
            if cfg.sensor_fallback_enabled:
                np.copyto(measured, self._last_good, where=bad)
                self._fallback_active[bad] = True
                self.sensor_fallback_samples += int(bad.sum())
            else:
                measured[bad] = np.nan
        if cycle - self._last_decision_cycle < self.config.control_period_cycles:
            return
        self._last_decision_cycle = cycle
        self._update_watchdog(measured)
        if self.in_safe_state:
            decision = self._safe_decision()
            self.safe_state_decisions += 1
        else:
            decision = self._decide(measured)
        self._apply_slew_limit(decision)
        self._last_enqueued = decision
        self.decisions_made += 1
        if decision.triggered_sms:
            self.triggers += 1
        # Per-actuator engagement accounting, on the post-slew decision
        # actually enqueued.  A throttle decision is one that cuts issue
        # width below the default — overvoltage boosts (which *inject*
        # work) are counted separately, so the Fig. 12 throttling proxy
        # is not inflated by power-adding actuation.
        throttling = bool(
            np.any(decision.issue_widths < self._default_issue_width)
        )
        self._track_limit_cycle(throttling)
        fii_active = bool(np.any(decision.fake_rates > 0.0))
        dcc_active = bool(np.any(decision.dcc_powers_w > 0.0))
        if throttling:
            self.throttle_decisions += 1
            self.actuator_decisions["diws"] += 1
        if fii_active:
            self.actuator_decisions["fii"] += 1
        if dcc_active:
            self.actuator_decisions["dcc"] += 1
        if fii_active or dcc_active:
            self.boost_decisions += 1
        self._pipeline.append(
            (cycle + self.config.total_latency_cycles, decision)
        )

    def _update_watchdog(self, measured: np.ndarray) -> None:
        """Track sub-guardband streaks; escalate / release the safe state.

        The streaks advance on *decisions* (not cycles), so
        ``watchdog_patience`` is a count of consecutive control
        decisions whose worst measured SM sits below the guardband.
        All-NaN measurements (total sensor loss without fallback) leave
        the streaks untouched: no evidence either way.
        """
        cfg = self.config
        finite = measured[np.isfinite(measured)]
        if finite.size == 0:
            return
        worst = float(finite.min())
        if worst < cfg.guardband_v:
            self._subguard_streak += 1
            self._healthy_streak = 0
        else:
            self._subguard_streak = 0
            self._healthy_streak += 1
        if (
            cfg.watchdog_enabled
            and not self.in_safe_state
            and self._subguard_streak >= cfg.watchdog_patience
        ):
            self.in_safe_state = True
            self.watchdog_engagements += 1
            self._healthy_streak = 0
        elif (
            self.in_safe_state
            and self._healthy_streak >= cfg.safe_state_release_decisions
        ):
            self.in_safe_state = False

    def _safe_decision(self) -> ControlDecision:
        """The emergency safe state: minimal, uniform, boost-free draw.

        Every SM's issue width is clamped to ``safe_issue_width`` and
        all power-adding actuation (FII, DCC) is clamped off: a small
        uniform current per layer restores the series balance no matter
        which layer caused the imbalance, at a known throughput cost.
        The decision still passes through the normal slew limiter and
        latency pipeline — the safe state must not itself ring the PDN.
        """
        n = self.stack.num_sms
        return ControlDecision(
            issue_widths=np.full(n, float(self.config.safe_issue_width)),
            fake_rates=np.zeros(n),
            dcc_powers_w=np.zeros(n),
        )

    def _track_limit_cycle(self, throttling: bool) -> None:
        """Flag sustained on/off flapping of the throttle engagement."""
        cfg = self.config
        self._flap_history.append(throttling)
        if len(self._flap_history) < cfg.limit_cycle_window:
            return
        history = list(self._flap_history)
        flips = sum(a != b for a, b in zip(history, history[1:]))
        if flips >= cfg.limit_cycle_min_flips:
            if not self._limit_cycle_flagged:
                self._limit_cycle_flagged = True
                self.limit_cycle_events += 1
        elif flips <= cfg.limit_cycle_min_flips // 2:
            self._limit_cycle_flagged = False

    def _decide(self, measured: np.ndarray) -> ControlDecision:
        """The Algorithm 1 loop body over all (layer, column) positions.

        Two symmetric boundary triggers implement eq. (6)'s
        ``P_i = k V_i`` around the deadband:

        * an SM below ``v_threshold`` is overdrawing — DIWS throttles it
          proportionally to its droop;
        * an SM above ``v_high_threshold`` is underdrawing — FII / DCC
          raise its power proportionally to its overvoltage.  (In a
          series stack the overvolted SM is exactly the ``SM(i+1, j)``
          neighbour of a drooping SM that Algorithm 1 names as the
          injection target; triggering on its own voltage keeps the
          boost engaged until balance is actually restored instead of
          releasing as soon as the drooping SM crosses back over its
          threshold.)
        """
        cfg = self.config
        decision = self._default_decision()
        for sm in range(self.stack.num_sms):
            v_sm = measured[sm]
            # Sensor-loss fallback widens this SM's thresholds: with a
            # held (stale) measurement, protective throttling engages
            # earlier and power-adding boosts engage later.  NaN (no
            # fallback) fails both comparisons — never actuates.
            widen = (
                cfg.fallback_widen_v if self._fallback_active[sm] else 0.0
            )
            if v_sm < cfg.v_threshold + widen:
                decision.triggered_sms.append(sm)
                error = cfg.v_nominal - v_sm
                command = self.actuation.commands(
                    error, cfg.k1, cfg.k2, cfg.k3
                )
                decision.issue_widths[sm] = command.issue_width
            elif v_sm > cfg.v_high_threshold + widen:
                decision.triggered_sms.append(sm)
                boost = self.actuation.boost_commands(
                    v_sm - cfg.v_nominal, cfg.k2, cfg.k3
                )
                decision.fake_rates[sm] = max(
                    decision.fake_rates[sm], boost.fake_rate
                )
                decision.dcc_powers_w[sm] = max(
                    decision.dcc_powers_w[sm],
                    self.actuation.dac.power_for_code(boost.dcc_code),
                )
        return decision

    def _apply_slew_limit(self, decision: ControlDecision) -> None:
        """Clamp each command within its actuator's per-decision slew.

        Each actuator is limited in its own natural units (issue slots,
        fakes/cycle, watts); saturation of a clamp — the proportional
        law asking for a bigger step than the slew allows — is counted
        per actuator for telemetry.
        """
        cfg = self.config
        previous = self._last_enqueued
        for key, values, prev, slew in (
            ("issue", decision.issue_widths, previous.issue_widths,
             cfg.slew_issue),
            ("fake", decision.fake_rates, previous.fake_rates,
             cfg.slew_fake),
            ("dcc", decision.dcc_powers_w, previous.dcc_powers_w,
             cfg.slew_dcc_w),
        ):
            clamped = np.clip(values, prev - slew, prev + slew)
            if np.any(clamped != values):
                self.slew_saturations[key] += 1
            values[:] = clamped

    def commands_for(self, cycle: int) -> ControlDecision:
        """The actuation in force at ``cycle`` (after loop latency)."""
        while self._pipeline and self._pipeline[0][0] <= cycle:
            _, decision = self._pipeline.popleft()
            self.active_decision = decision
        # Count each simulated cycle at most once, so callers that read
        # the same cycle's commands twice do not double-count.
        if cycle > self._counted_through_cycle:
            self._counted_through_cycle = cycle
            if np.any(
                self.active_decision.issue_widths < self._default_issue_width
            ):
                self.throttled_cycles += 1
        return self.active_decision

    # ------------------------------------------------------------------
    @property
    def throttle_fraction(self) -> float:
        """Fraction of decisions that cut issue width (for Fig. 12).

        Only work-removing decisions count; overvoltage boosts (FII/DCC
        injections, which *add* work) are reported separately as
        :attr:`boost_fraction`.
        """
        if self.decisions_made == 0:
            return 0.0
        return self.throttle_decisions / self.decisions_made

    @property
    def boost_fraction(self) -> float:
        """Fraction of decisions engaging power-adding actuation."""
        if self.decisions_made == 0:
            return 0.0
        return self.boost_decisions / self.decisions_made

    def stats(self) -> Dict[str, object]:
        """Controller statistics snapshot for telemetry manifests."""
        return {
            "decisions_made": self.decisions_made,
            "triggers": self.triggers,
            "throttle_decisions": self.throttle_decisions,
            "boost_decisions": self.boost_decisions,
            "throttled_cycles": self.throttled_cycles,
            "actuator_decisions": dict(self.actuator_decisions),
            "slew_saturations": dict(self.slew_saturations),
            "watchdog_engagements": self.watchdog_engagements,
            "safe_state_decisions": self.safe_state_decisions,
            "in_safe_state": self.in_safe_state,
            "sensor_fallback_samples": self.sensor_fallback_samples,
            "nan_samples_seen": self.nan_samples_seen,
            "limit_cycle_events": self.limit_cycle_events,
        }
