"""Algorithm 1: the boundary-triggered voltage smoothing controller.

Every control period the controller reads the filtered boundary-node
voltages from the per-SM detectors, derives each SM's layer voltage
``V_sm(i,j) = V(i,j) - V(i-1,j)``, and — only when an SM droops below
``v_threshold`` — computes proportional actuation:

* the drooping SM's issue width is cut by ``k1 * w1 * (V_nom - V_sm)``;
* fake instructions at rate ``k2 * w2 * (V_nom - V_sm)`` are injected
  into the SM *above* it in the stack (raising the neighbour layer's
  current restores the series balance from the other side);
* a DCC code worth ``k3 * w3 * (V_nom - V_sm)`` watts is applied near
  the layer above.

Commands take effect after the loop latency (detector + compute +
actuate + wire delay), modeled by a delay queue.  When the SM recovers
above the threshold its commands relax back to defaults.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.config import StackConfig
from repro.core.actuators import (
    ActuationCommand,
    CurrentCompensationDAC,
    WeightedActuation,
)
from repro.core.detectors import DETECTOR_OPTIONS, DetectorSpec, VoltageDetector
from repro.core.overheads import control_latency_cycles


@dataclass(frozen=True)
class ControllerConfig:
    """Tunables of the Algorithm 1 controller."""

    # Gains follow the sampled-stability analysis: the per-volt power
    # response k_i * P_instr must stay below the 2C/T limit (~12 W/V at
    # the 60-cycle loop), or the loop limit-cycles.
    v_threshold: float = 0.9  # droop trigger voltage (Section VI-C default)
    # Symmetric boost trigger: a layer voltage above this marks an
    # underdrawing layer and engages FII/DCC on it directly.  Sits a bit
    # beyond the droop threshold's mirror so ordinary workload variance
    # does not burn fake-instruction power.
    v_high_threshold: float = 1.15
    v_nominal: float = 1.0
    k1: float = 1.0  # DIWS proportional factor (issue slots per volt)
    k2: float = 8.0  # FII proportional factor (fakes/cycle per volt)
    k3: float = 20.0  # DCC proportional factor (watts per volt)
    control_period_cycles: int = 4  # decision rate of the controller
    # Maximum per-decision command change (slew limiting): abrupt
    # full-swing actuation steps would ring the PDN's package resonance
    # harder than the noise being fixed, and the slew bound also caps
    # the overshoot accumulated during the loop latency
    # (ramp <= slew * latency / period), which is what keeps the high
    # FII gain stable.  Each actuator slews in its *own* natural units —
    # issue slots, fakes/cycle, and watts respectively; a single shared
    # number cannot serve all three (0.02 slots is a meaningful DIWS
    # step, but 0.02 W per decision pins the k3 = 20 W/V DCC DAC to a
    # ramp hundreds of decisions long, disabling it in practice).
    # ``slew_per_decision`` is the legacy shared knob: it still seeds
    # ``slew_issue`` and ``slew_fake`` when they are not given, so
    # existing DIWS/FII configurations behave identically.
    slew_per_decision: float = 0.02
    slew_issue: Optional[float] = None  # issue slots per decision
    slew_fake: Optional[float] = None  # fakes/cycle per decision
    slew_dcc_w: float = 0.25  # watts per decision (5 DAC LSBs)
    latency_cycles: Optional[int] = None  # None -> budget from overheads
    detector: DetectorSpec = field(
        default_factory=lambda: DETECTOR_OPTIONS["oddd"]
    )
    # Escape hatch for the sampled-stability validation below: research
    # configurations that deliberately cross the 2C/T bound (e.g. to
    # reproduce a limit cycle) must opt in explicitly.
    allow_unstable: bool = False
    # --- graceful degradation -----------------------------------------
    # The emergency guardband: ``watchdog_patience`` consecutive
    # decisions measuring the worst SM below ``guardband_v`` escalate to
    # a safe state (issue width clamped to ``safe_issue_width`` on every
    # SM, FII off, DCC clamped off) until
    # ``safe_state_release_decisions`` consecutive healthy decisions
    # release it.  Off by default: escalation deliberately trades
    # throughput for survival, so fault-scenario runs opt in.
    guardband_v: float = 0.8
    watchdog_enabled: bool = False
    watchdog_patience: int = 8
    # Max DIWS throttle: issue width 0 stops real issue everywhere, so
    # every SM draws (near-uniform) idle power and the series stack
    # re-balances by construction, whatever caused the imbalance.
    safe_issue_width: float = 0.0
    safe_state_release_decisions: int = 200
    # Sensor-loss fallback: a NaN sample (dropout) holds the last good
    # measurement and widens that SM's trigger thresholds by
    # ``fallback_widen_v`` — protective actions engage earlier on stale
    # data, power-adding ones later.  NaN itself NEVER reaches the RC
    # filter or produces actuation, fallback enabled or not.
    sensor_fallback_enabled: bool = True
    fallback_widen_v: float = 0.05
    # Limit-cycle detection (stats only): the throttle-engagement flag
    # flipping >= ``limit_cycle_min_flips`` times within the last
    # ``limit_cycle_window`` decisions marks a sustained oscillation.
    limit_cycle_window: int = 32
    limit_cycle_min_flips: int = 12

    def __post_init__(self) -> None:
        if not 0.0 < self.v_threshold <= self.v_nominal:
            raise ValueError("need 0 < v_threshold <= v_nominal")
        if self.v_high_threshold < self.v_nominal:
            raise ValueError("v_high_threshold must be >= v_nominal")
        if self.control_period_cycles <= 0:
            raise ValueError("control period must be positive")
        if min(self.k1, self.k2, self.k3) < 0:
            raise ValueError("proportional factors must be non-negative")
        if self.slew_per_decision <= 0:
            raise ValueError("slew limit must be positive")
        # Seed the per-actuator limits from the legacy shared knob.
        if self.slew_issue is None:
            object.__setattr__(self, "slew_issue", self.slew_per_decision)
        if self.slew_fake is None:
            object.__setattr__(self, "slew_fake", self.slew_per_decision)
        if min(self.slew_issue, self.slew_fake, self.slew_dcc_w) <= 0:
            raise ValueError("per-actuator slew limits must be positive")
        if not 0.0 < self.guardband_v < self.v_nominal:
            raise ValueError("need 0 < guardband_v < v_nominal")
        if self.watchdog_patience <= 0:
            raise ValueError("watchdog_patience must be positive")
        if not 0.0 <= self.safe_issue_width <= 2.0:
            raise ValueError("safe_issue_width must be within 0..2 slots")
        if self.safe_state_release_decisions <= 0:
            raise ValueError("safe_state_release_decisions must be positive")
        if self.fallback_widen_v < 0:
            raise ValueError("fallback_widen_v cannot be negative")
        if self.limit_cycle_window < 4:
            raise ValueError("limit_cycle_window must be at least 4")
        if not 0 < self.limit_cycle_min_flips < self.limit_cycle_window:
            raise ValueError(
                "limit_cycle_min_flips must be within the window"
            )
        if not self.allow_unstable:
            limit = self.stability_limit_w_per_v()
            gains = self.effective_power_gains_w_per_v()
            offenders = {
                name: gains[name]
                for name in ("diws", "fii")
                if gains[name] > limit * (1.0 + 1e-9)
            }
            if offenders:
                detail = ", ".join(
                    f"{name}={gain:.2f} W/V" for name, gain in offenders.items()
                )
                raise ValueError(
                    f"unstable controller gains ({detail}) exceed the "
                    f"sampled-stability limit 2C/T = {limit:.2f} W/V at the "
                    f"{self.total_latency_cycles}-cycle loop — such a loop "
                    "limit-cycles (gain beyond 2C/T overshoots the "
                    "boundary capacitance every period); reduce k1/k2, "
                    "tighten the slew limits, shorten the latency, or pass "
                    "allow_unstable=True to study the oscillation"
                )

    @property
    def total_latency_cycles(self) -> int:
        if self.latency_cycles is not None:
            return self.latency_cycles
        return control_latency_cycles(self.detector)

    # ------------------------------------------------------------------
    # Sampled-stability bound (the "~12 W/V" note on the gains above)
    # ------------------------------------------------------------------
    def stability_limit_w_per_v(
        self,
        cycle_time_s: Optional[float] = None,
        boundary_capacitance_f: Optional[float] = None,
    ) -> float:
        """The 2C/T gain bound of the sampled (ZOH) control loop.

        A proportional power-per-volt gain above ``2C/T`` moves more
        charge per loop latency ``T`` than the boundary capacitance
        ``C`` holds, so every correction overshoots and the loop
        limit-cycles.  ``C`` defaults to the decap hanging on one layer
        boundary of the default stack (above + below: 2 x columns x
        per-SM decap = 512 nF), ``T`` to this config's loop latency at
        the default 700 MHz clock — about 12 W/V for the 60-cycle loop.
        """
        if cycle_time_s is None:
            from repro.config import GPUConfig

            cycle_time_s = GPUConfig().cycle_time_s
        if boundary_capacitance_f is None:
            from repro.pdn.parameters import DEFAULT_PDN

            boundary_capacitance_f = (
                2 * StackConfig().num_columns * DEFAULT_PDN.sm_decap
            )
        latency_s = self.total_latency_cycles * cycle_time_s
        return 2.0 * boundary_capacitance_f / latency_s

    def effective_power_gains_w_per_v(self) -> Dict[str, float]:
        """Slew-aware closed-loop power gains, per actuator (W/V).

        The raw proportional gain is ``k_i * P_instr`` (DIWS/FII issue
        or inject instructions worth ``P_instr`` watts each; DCC's
        ``k3`` is already in W/V).  The per-decision slew limit caps how
        much actuation can actually build up within one loop latency —
        ``slew x (latency / period)`` command units — so over the
        guardband excursion (``v_nominal - guardband_v``) the realized
        gain is the *smaller* of the raw gain and that ramp bound.
        Only DIWS and FII gate construction: they always engage when
        triggered, while DCC's contribution scales with the actuation
        weight ``w3`` (zero in the reliability default) which this
        config does not know.
        """
        p_instr = WeightedActuation().instruction_power_w
        decisions = self.total_latency_cycles / self.control_period_cycles
        depth = self.v_nominal - self.guardband_v

        def slew_cap(slew: float, unit_power_w: float) -> float:
            if depth <= 0:
                return float("inf")
            return slew * decisions * unit_power_w / depth

        return {
            "diws": min(self.k1 * p_instr, slew_cap(self.slew_issue, p_instr)),
            "fii": min(self.k2 * p_instr, slew_cap(self.slew_fake, p_instr)),
            "dcc": min(self.k3, slew_cap(self.slew_dcc_w, 1.0)),
        }


@dataclass
class ControlDecision:
    """Per-GPU actuation computed by one controller invocation."""

    issue_widths: np.ndarray  # per SM
    fake_rates: np.ndarray  # per SM
    dcc_powers_w: np.ndarray  # per SM (watts of compensation current)
    triggered_sms: List[int] = field(default_factory=list)


class VoltageSmoothingController:
    """Algorithm 1 with detectors, latency pipeline and statistics."""

    def __init__(
        self,
        stack: StackConfig = StackConfig(),
        config: ControllerConfig = ControllerConfig(),
        actuation: Optional[WeightedActuation] = None,
        dt_s: float = 1.0 / 700e6,
    ) -> None:
        self.stack = stack
        self.config = config
        self.actuation = actuation or WeightedActuation()
        self.dt_s = dt_s
        self.detectors = [
            VoltageDetector(config.detector, filter_initial_v=stack.sm_voltage)
            for _ in range(stack.num_sms)
        ]
        # Vectorized sensor front-end: one array holds every SM's RC
        # filter state; observe() advances them all with three ufunc
        # calls instead of num_sms Python method calls.  The per-object
        # detectors above remain the spec source and the documented
        # front-end model; their scalar ``sample`` is what the array
        # update replicates operation-for-operation.
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        filt = self.detectors[0].filter
        tau = filt.r_ohm * filt.c_farad
        self._filter_alpha = dt_s / (tau + dt_s)
        self._filter_state = np.full(stack.num_sms, stack.sm_voltage)
        self._resolution_v = config.detector.resolution_v
        # (apply_at_cycle, decision) queue modelling the loop latency.
        self._pipeline: Deque[Tuple[int, ControlDecision]] = deque()
        self._last_decision_cycle = -config.control_period_cycles
        self._default_issue_width = float(self.actuation.issue_width_max)
        self.active_decision = self._default_decision()
        self._last_enqueued = self._default_decision()
        # Statistics for performance-penalty accounting.  throttled_cycles
        # counts *simulated* cycles (commands_for may be called more than
        # once for the same cycle without double counting).
        self.throttled_cycles = 0
        self._counted_through_cycle = -1
        self.decisions_made = 0
        self.triggers = 0
        # Per-actuator telemetry: decisions in which each actuator was
        # engaged, and decisions in which its slew clamp saturated (the
        # commanded change exceeded the per-decision limit).
        self.actuator_decisions: Dict[str, int] = {
            "diws": 0, "fii": 0, "dcc": 0
        }
        self.slew_saturations: Dict[str, int] = {
            "issue": 0, "fake": 0, "dcc": 0
        }
        self.throttle_decisions = 0
        self.boost_decisions = 0
        # Graceful-degradation state: sensor-loss fallback holds the
        # last good filtered measurement per SM; the guardband watchdog
        # tracks consecutive sub-guardband decisions and escalates to
        # the safe state; limit-cycle detection watches the throttle
        # flag flap.
        self._last_good = np.full(stack.num_sms, config.v_nominal)
        self._fallback_active = np.zeros(stack.num_sms, dtype=bool)
        self.sensor_fallback_samples = 0
        self.nan_samples_seen = 0
        self.watchdog_engagements = 0
        self.safe_state_decisions = 0
        self.in_safe_state = False
        self._subguard_streak = 0
        self._healthy_streak = 0
        self._flap_history: Deque[bool] = deque(
            maxlen=config.limit_cycle_window
        )
        # Incrementally maintained count of adjacent flag flips inside
        # the history window (O(1) per decision vs re-scanning the
        # window).
        self._flap_flips = 0
        self.limit_cycle_events = 0
        self._limit_cycle_flagged = False
        # Cached "active decision throttles" flag, refreshed whenever a
        # new decision is popped from the pipeline; commands_for()
        # consults it instead of re-scanning issue widths every cycle.
        # Decision arrays are controller-owned and never mutated after
        # enqueue (callers copy at the boundary — see run_cosim), so the
        # cache cannot go stale.
        self._active_throttling = bool(
            np.any(self.active_decision.issue_widths < self._default_issue_width)
        )

    # ------------------------------------------------------------------
    def _default_decision(self) -> ControlDecision:
        n = self.stack.num_sms
        return ControlDecision(
            issue_widths=np.full(n, self._default_issue_width),
            fake_rates=np.zeros(n),
            dcc_powers_w=np.zeros(n),
        )

    def observe(self, cycle: int, sm_voltages: np.ndarray) -> None:
        """Feed this cycle's true SM voltages through the detectors.

        Runs the per-SM RC filters every cycle; makes a control decision
        every ``control_period_cycles`` and enqueues it to apply after
        the loop latency.

        A non-finite sample means "no reading this cycle" (sensor
        dropout): it never enters the RC filter (NaN would poison the
        filter state permanently) and never produces actuation.  With
        the sensor fallback enabled the SM's last good measurement is
        held instead, with widened trigger thresholds; otherwise the SM
        simply cannot trigger until a real sample returns.
        """
        sm_voltages = np.asarray(sm_voltages, dtype=float)
        if sm_voltages.shape != (self.stack.num_sms,):
            raise ValueError(
                f"expected {self.stack.num_sms} SM voltages, got "
                f"{sm_voltages.shape}"
            )
        measured = self._advance_filters(sm_voltages)
        if cycle - self._last_decision_cycle < self.config.control_period_cycles:
            return
        self._last_decision_cycle = cycle
        self._make_decision(cycle, measured)

    def _advance_filters(self, sm_voltages: np.ndarray) -> np.ndarray:
        """Advance every SM's RC filter one cycle; return the measurement.

        RC filter + quantization for all SMs at once.  The elementwise
        float64 ops match RCLowPassFilter.step / VoltageDetector.sample
        exactly (np.rint is round-half-even, like Python's round), so
        decisions are bit-identical to the per-object path.  Non-finite
        samples never enter the filter state.

        Split out of :meth:`observe` so :class:`ControllerBank` can run
        the same arithmetic batched over lanes (broadcasting over a
        leading batch axis is elementwise, hence bit-identical per row).
        """
        cfg = self.config
        finite = np.isfinite(sm_voltages)
        state = self._filter_state
        alpha = self._filter_alpha
        step = self._resolution_v
        if finite.all():
            state += alpha * (sm_voltages - state)
            measured = np.rint(state / step) * step
            self._last_good[:] = measured
            if self._fallback_active.any():
                self._fallback_active[:] = False
        else:
            bad = ~finite
            self.nan_samples_seen += int(bad.sum())
            np.copyto(state, state + alpha * (sm_voltages - state), where=finite)
            measured = np.rint(state / step) * step
            np.copyto(self._last_good, measured, where=finite)
            self._fallback_active[finite] = False
            if cfg.sensor_fallback_enabled:
                np.copyto(measured, self._last_good, where=bad)
                self._fallback_active[bad] = True
                self.sensor_fallback_samples += int(bad.sum())
            else:
                measured[bad] = np.nan
        return measured

    def _make_decision(self, cycle: int, measured: np.ndarray) -> None:
        """Watchdog, Algorithm 1 body, slew limiting and enqueueing.

        The caller has already updated ``_last_decision_cycle`` — this
        is the per-decision tail of :meth:`observe`.
        """
        self._update_watchdog(measured)
        if self.in_safe_state:
            decision = self._safe_decision()
            self.safe_state_decisions += 1
        else:
            decision = self._decide(measured)
        self._apply_slew_limit(decision)
        self._last_enqueued = decision
        self.decisions_made += 1
        if decision.triggered_sms:
            self.triggers += 1
        # Per-actuator engagement accounting, on the post-slew decision
        # actually enqueued.  A throttle decision is one that cuts issue
        # width below the default — overvoltage boosts (which *inject*
        # work) are counted separately, so the Fig. 12 throttling proxy
        # is not inflated by power-adding actuation.
        throttling = bool(
            np.any(decision.issue_widths < self._default_issue_width)
        )
        self._track_limit_cycle(throttling)
        fii_active = bool(np.any(decision.fake_rates > 0.0))
        dcc_active = bool(np.any(decision.dcc_powers_w > 0.0))
        if throttling:
            self.throttle_decisions += 1
            self.actuator_decisions["diws"] += 1
        if fii_active:
            self.actuator_decisions["fii"] += 1
        if dcc_active:
            self.actuator_decisions["dcc"] += 1
        if fii_active or dcc_active:
            self.boost_decisions += 1
        self._pipeline.append(
            (cycle + self.config.total_latency_cycles, decision)
        )

    def _update_watchdog(self, measured: np.ndarray) -> None:
        """Track sub-guardband streaks; escalate / release the safe state.

        The streaks advance on *decisions* (not cycles), so
        ``watchdog_patience`` is a count of consecutive control
        decisions whose worst measured SM sits below the guardband.
        All-NaN measurements (total sensor loss without fallback) leave
        the streaks untouched: no evidence either way.
        """
        finite = measured[np.isfinite(measured)]
        if finite.size == 0:
            return
        self._note_worst_measurement(float(finite.min()))

    def _note_worst_measurement(self, worst: float) -> None:
        """Advance the watchdog streaks given this decision's worst SM."""
        cfg = self.config
        if worst < cfg.guardband_v:
            self._subguard_streak += 1
            self._healthy_streak = 0
        else:
            self._subguard_streak = 0
            self._healthy_streak += 1
        if (
            cfg.watchdog_enabled
            and not self.in_safe_state
            and self._subguard_streak >= cfg.watchdog_patience
        ):
            self.in_safe_state = True
            self.watchdog_engagements += 1
            self._healthy_streak = 0
        elif (
            self.in_safe_state
            and self._healthy_streak >= cfg.safe_state_release_decisions
        ):
            self.in_safe_state = False

    def _safe_decision(self) -> ControlDecision:
        """The emergency safe state: minimal, uniform, boost-free draw.

        Every SM's issue width is clamped to ``safe_issue_width`` and
        all power-adding actuation (FII, DCC) is clamped off: a small
        uniform current per layer restores the series balance no matter
        which layer caused the imbalance, at a known throughput cost.
        The decision still passes through the normal slew limiter and
        latency pipeline — the safe state must not itself ring the PDN.
        """
        n = self.stack.num_sms
        return ControlDecision(
            issue_widths=np.full(n, float(self.config.safe_issue_width)),
            fake_rates=np.zeros(n),
            dcc_powers_w=np.zeros(n),
        )

    def _track_limit_cycle(self, throttling: bool) -> None:
        """Flag sustained on/off flapping of the throttle engagement.

        The adjacent-flip count is maintained incrementally: appending
        to the full window evicts ``history[0]`` — removing the
        ``(history[0], history[1])`` adjacency — and adds the
        ``(history[-1], new)`` one, so each decision costs O(1) instead
        of re-scanning the window.
        """
        cfg = self.config
        hist = self._flap_history
        if len(hist) == cfg.limit_cycle_window and hist[0] != hist[1]:
            self._flap_flips -= 1
        if hist and hist[-1] != throttling:
            self._flap_flips += 1
        hist.append(throttling)
        if len(hist) < cfg.limit_cycle_window:
            return
        flips = self._flap_flips
        if flips >= cfg.limit_cycle_min_flips:
            if not self._limit_cycle_flagged:
                self._limit_cycle_flagged = True
                self.limit_cycle_events += 1
        elif flips <= cfg.limit_cycle_min_flips // 2:
            self._limit_cycle_flagged = False

    def _decide(
        self,
        measured: np.ndarray,
        decision: Optional[ControlDecision] = None,
    ) -> ControlDecision:
        """The Algorithm 1 loop body over all (layer, column) positions.

        ``decision`` lets :class:`ControllerBank` pass a preallocated
        default decision (rows of a wave-shared array) instead of
        allocating one per lane; its arrays must hold the default
        commands on entry.

        Two symmetric boundary triggers implement eq. (6)'s
        ``P_i = k V_i`` around the deadband:

        * an SM below ``v_threshold`` is overdrawing — DIWS throttles it
          proportionally to its droop;
        * an SM above ``v_high_threshold`` is underdrawing — FII / DCC
          raise its power proportionally to its overvoltage.  (In a
          series stack the overvolted SM is exactly the ``SM(i+1, j)``
          neighbour of a drooping SM that Algorithm 1 names as the
          injection target; triggering on its own voltage keeps the
          boost engaged until balance is actually restored instead of
          releasing as soon as the drooping SM crosses back over its
          threshold.)
        """
        cfg = self.config
        if decision is None:
            decision = self._default_decision()
        for sm in range(self.stack.num_sms):
            v_sm = measured[sm]
            # Sensor-loss fallback widens this SM's thresholds: with a
            # held (stale) measurement, protective throttling engages
            # earlier and power-adding boosts engage later.  NaN (no
            # fallback) fails both comparisons — never actuates.
            widen = (
                cfg.fallback_widen_v if self._fallback_active[sm] else 0.0
            )
            if v_sm < cfg.v_threshold + widen:
                decision.triggered_sms.append(sm)
                error = cfg.v_nominal - v_sm
                command = self.actuation.commands(
                    error, cfg.k1, cfg.k2, cfg.k3
                )
                decision.issue_widths[sm] = command.issue_width
            elif v_sm > cfg.v_high_threshold + widen:
                decision.triggered_sms.append(sm)
                boost = self.actuation.boost_commands(
                    v_sm - cfg.v_nominal, cfg.k2, cfg.k3
                )
                decision.fake_rates[sm] = max(
                    decision.fake_rates[sm], boost.fake_rate
                )
                decision.dcc_powers_w[sm] = max(
                    decision.dcc_powers_w[sm],
                    self.actuation.dac.power_for_code(boost.dcc_code),
                )
        return decision

    def _apply_slew_limit(self, decision: ControlDecision) -> None:
        """Clamp each command within its actuator's per-decision slew.

        Each actuator is limited in its own natural units (issue slots,
        fakes/cycle, watts); saturation of a clamp — the proportional
        law asking for a bigger step than the slew allows — is counted
        per actuator for telemetry.
        """
        cfg = self.config
        previous = self._last_enqueued
        for key, values, prev, slew in (
            ("issue", decision.issue_widths, previous.issue_widths,
             cfg.slew_issue),
            ("fake", decision.fake_rates, previous.fake_rates,
             cfg.slew_fake),
            ("dcc", decision.dcc_powers_w, previous.dcc_powers_w,
             cfg.slew_dcc_w),
        ):
            clamped = np.clip(values, prev - slew, prev + slew)
            if np.any(clamped != values):
                self.slew_saturations[key] += 1
            values[:] = clamped

    def commands_for(self, cycle: int) -> ControlDecision:
        """The actuation in force at ``cycle`` (after loop latency)."""
        while self._pipeline and self._pipeline[0][0] <= cycle:
            _, decision = self._pipeline.popleft()
            self.active_decision = decision
            # Decisions are immutable once enqueued (ownership contract:
            # actuation consumers copy at the boundary), so the throttle
            # scan happens once per decision pop, not once per cycle.
            self._active_throttling = bool(
                np.any(decision.issue_widths < self._default_issue_width)
            )
        # Count each simulated cycle at most once, so callers that read
        # the same cycle's commands twice do not double-count.
        if cycle > self._counted_through_cycle:
            self._counted_through_cycle = cycle
            if self._active_throttling:
                self.throttled_cycles += 1
        return self.active_decision

    # ------------------------------------------------------------------
    @property
    def throttle_fraction(self) -> float:
        """Fraction of decisions that cut issue width (for Fig. 12).

        Only work-removing decisions count; overvoltage boosts (FII/DCC
        injections, which *add* work) are reported separately as
        :attr:`boost_fraction`.
        """
        if self.decisions_made == 0:
            return 0.0
        return self.throttle_decisions / self.decisions_made

    @property
    def boost_fraction(self) -> float:
        """Fraction of decisions engaging power-adding actuation."""
        if self.decisions_made == 0:
            return 0.0
        return self.boost_decisions / self.decisions_made

    def stats(self) -> Dict[str, object]:
        """Controller statistics snapshot for telemetry manifests."""
        return {
            "decisions_made": self.decisions_made,
            "triggers": self.triggers,
            "throttle_decisions": self.throttle_decisions,
            "boost_decisions": self.boost_decisions,
            "throttled_cycles": self.throttled_cycles,
            "actuator_decisions": dict(self.actuator_decisions),
            "slew_saturations": dict(self.slew_saturations),
            "watchdog_engagements": self.watchdog_engagements,
            "safe_state_decisions": self.safe_state_decisions,
            "in_safe_state": self.in_safe_state,
            "sensor_fallback_samples": self.sensor_fallback_samples,
            "nan_samples_seen": self.nan_samples_seen,
            "limit_cycle_events": self.limit_cycle_events,
        }


class ControllerBank:
    """Lock-stepped sensor/decision front end over B independent lanes.

    The batched co-simulator steps B scenarios per cycle; this bank
    vectorizes the per-cycle RC filter advance and the per-decision
    threshold/slew arithmetic of B :class:`VoltageSmoothingController`
    instances by re-homing each lane's filter/fallback state as one row
    of shared ``(B, num_sms)`` arrays.  All batched operations are
    elementwise with per-lane ``(B, 1)`` broadcasts (or row-wise
    reductions), so each row is bit-identical to the serial controller;
    everything scalar or rarely taken — the Algorithm 1 per-SM loop of
    a *triggered* lane, watchdog streaks, pipelines, counters — still
    runs on the owning controller.  Observable state after
    ``bank.observe(cycle, voltages)`` is therefore byte-equal to
    calling ``lane.observe(cycle, voltages[i])`` per lane.

    Lanes may differ in gains, thresholds, detectors, periods and
    actuation — only ``num_sms`` must match.  The bank takes over the
    lanes' ``observe`` duty; do not call ``lane.observe`` directly while
    a bank owns the lane.
    """

    def __init__(self, controllers: List[VoltageSmoothingController]) -> None:
        self.controllers = list(controllers)
        if not self.controllers:
            raise ValueError("need at least one controller lane")
        for c in self.controllers:
            if not isinstance(c, VoltageSmoothingController):
                raise TypeError(
                    "ControllerBank requires VoltageSmoothingController "
                    f"lanes, got {type(c).__name__}"
                )
        sizes = {c.stack.num_sms for c in self.controllers}
        if len(sizes) != 1:
            raise ValueError(f"lanes must share num_sms, got {sorted(sizes)}")
        self.num_sms = sizes.pop()
        ctrls = self.controllers
        # Re-home per-lane filter/fallback state as rows of batch arrays
        # (np.stack copies current values; rows stay views so the serial
        # per-lane code paths keep operating on the same storage).
        self._state = np.stack([c._filter_state for c in ctrls])
        self._last_good = np.stack([c._last_good for c in ctrls])
        self._fallback = np.stack([c._fallback_active for c in ctrls])
        for i, c in enumerate(ctrls):
            c._filter_state = self._state[i]
            c._last_good = self._last_good[i]
            c._fallback_active = self._fallback[i]

        def col(values) -> np.ndarray:
            return np.asarray(values, dtype=float).reshape(-1, 1)

        self._alpha = col([c._filter_alpha for c in ctrls])
        self._step_v = col([c._resolution_v for c in ctrls])
        self._thr = col([c.config.v_threshold for c in ctrls])
        self._thr_high = col([c.config.v_high_threshold for c in ctrls])
        self._widen = col([c.config.fallback_widen_v for c in ctrls])
        self._default_w = col([c._default_issue_width for c in ctrls])
        self._slew = {
            "issue": col([c.config.slew_issue for c in ctrls]),
            "fake": col([c.config.slew_fake for c in ctrls]),
            "dcc": col([c.config.slew_dcc_w for c in ctrls]),
        }
        # Banked Algorithm 1 columns: when every lane runs the stock
        # WeightedActuation / CurrentCompensationDAC pair, a full
        # wave's per-SM proportional law vectorizes as (B, num_sms)
        # array ops (see _decide_banked).  A lane with a subclassed
        # actuation or DAC may override the command math, so any such
        # lane disables the banked path for the whole bank.
        if all(
            type(c.actuation) is WeightedActuation
            and type(c.actuation.dac) is CurrentCompensationDAC
            for c in ctrls
        ):
            self._bank_cols: Optional[Dict[str, np.ndarray]] = {
                "v_nom": col([c.config.v_nominal for c in ctrls]),
                "iwmax": col([c.actuation.issue_width_max for c in ctrls]),
                "k1w1": col([c.config.k1 * c.actuation.w1 for c in ctrls]),
                "k2w2": col([c.config.k2 * c.actuation.w2 for c in ctrls]),
                "k3w3": col([c.config.k3 * c.actuation.w3 for c in ctrls]),
                "unit": col([c.actuation.dac.unit_power_w for c in ctrls]),
                "max_code": col([c.actuation.dac.max_code for c in ctrls]),
            }
        else:
            self._bank_cols = None
        self._period = np.array(
            [c.config.control_period_cycles for c in ctrls], dtype=np.int64
        )
        self._last_decision = np.array(
            [c._last_decision_cycle for c in ctrls], dtype=np.int64
        )
        # Uniform-cadence fast path: when every lane shares one control
        # period and decision phase, the whole bank is due at the same
        # cycles, so the due test is one integer compare instead of a
        # (B,) reduction and the wave always covers all lanes.
        periods = {c.config.control_period_cycles for c in ctrls}
        lasts = {c._last_decision_cycle for c in ctrls}
        if len(periods) == 1 and len(lasts) == 1:
            self._uniform_period: Optional[int] = periods.pop()
            self._next_due = lasts.pop() + self._uniform_period
        else:
            self._uniform_period = None
            self._next_due = 0
        self._any_fallback = bool(self._fallback.any())
        # Per-cycle observe scratch (the filter advance is dispatch-
        # bound at small B; out= ufuncs avoid five temporaries a cycle).
        self._obs_buf = np.empty_like(self._state)
        self._finite_buf = np.empty(self._state.shape, dtype=bool)
        # Full-wave working set: the three actuator command blocks live
        # side by side in one (B, 3*num_sms) array, so the slew clamp
        # and its saturation test run as single ufunc calls; each
        # lane's ControlDecision holds row-slice views of the blocks.
        n = self.num_sms
        n_lanes = len(ctrls)
        self._cat_default = np.zeros((n_lanes, 3 * n))
        self._cat_default[:, :n] = self._default_w
        self._slew_cat = np.empty((n_lanes, 3 * n))
        self._slew_cat[:, :n] = self._slew["issue"]
        self._slew_cat[:, n:2 * n] = self._slew["fake"]
        self._slew_cat[:, 2 * n:] = self._slew["dcc"]
        self._prev_at_default = bool(
            (self._gather_prev_cat() == self._cat_default).all()
        )

    # ------------------------------------------------------------------
    def observe(self, cycle: int, sm_voltages: np.ndarray) -> None:
        """Batched equivalent of per-lane ``observe`` for one cycle.

        ``sm_voltages`` has shape ``(B, num_sms)`` — row i is lane i's
        true SM voltages this cycle.
        """
        sm_voltages = np.asarray(sm_voltages, dtype=float)
        expected = (len(self.controllers), self.num_sms)
        if sm_voltages.shape != expected:
            raise ValueError(
                f"expected voltages of shape {expected}, got "
                f"{sm_voltages.shape}"
            )
        np.isfinite(sm_voltages, out=self._finite_buf)
        if self._finite_buf.all():
            # The all-finite fast path of _advance_filters, broadcast
            # over lanes.  Clearing an all-False fallback row is a
            # no-op, so one global clear matches the per-lane clears.
            state = self._state
            buf = self._obs_buf
            np.subtract(sm_voltages, state, out=buf)
            buf *= self._alpha
            state += buf
            # Quantize straight into _last_good (rows alias the lanes'
            # held-measurement arrays, which the serial path updates
            # with exactly this value on every finite sample).
            measured = self._last_good
            np.divide(state, self._step_v, out=measured)
            np.rint(measured, out=measured)
            measured *= self._step_v
            if self._any_fallback:
                self._fallback[:] = False
                self._any_fallback = False
            finite = True
        else:
            measured = np.empty_like(sm_voltages)
            for i, c in enumerate(self.controllers):
                measured[i] = c._advance_filters(sm_voltages[i])
            self._any_fallback = bool(self._fallback.any())
            finite = bool(np.isfinite(measured).all())
        if self._uniform_period is not None:
            if cycle < self._next_due:
                return
            self._next_due = cycle + self._uniform_period
            self._last_decision[:] = cycle
            if finite:
                self._decide_wave_full(cycle, measured)
            else:
                self._prev_at_default = False
                for i, c in enumerate(self.controllers):
                    c._last_decision_cycle = cycle
                    c._make_decision(cycle, measured[i])
            return
        due = np.nonzero(cycle - self._last_decision >= self._period)[0]
        if due.size == 0:
            return
        self._last_decision[due] = cycle
        self._prev_at_default = False
        if finite:
            self._decide_wave(cycle, due, measured)
        else:
            # Sensor dropout without fallback leaves NaN in measured;
            # replicate the serial decision path exactly for this wave.
            for i in due:
                c = self.controllers[i]
                c._last_decision_cycle = cycle
                c._make_decision(cycle, measured[i])

    # ------------------------------------------------------------------
    def _gather_prev_cat(self) -> np.ndarray:
        """Previous enqueued commands as one (B, 3*num_sms) array.

        Decisions produced by full waves carry their concatenated row
        (``_cat``), so the usual gather is a single ``np.stack``; any
        other decision (the initial default, a serial-path decision) is
        concatenated on the fly.
        """
        prevs = []
        for c in self.controllers:
            d = c._last_enqueued
            pcat = getattr(d, "_cat", None)
            if pcat is None:
                pcat = np.concatenate(
                    (d.issue_widths, d.fake_rates, d.dcc_powers_w)
                )
            prevs.append(pcat)
        return np.stack(prevs)

    # ------------------------------------------------------------------
    def _decide_wave_full(self, cycle: int, measured: np.ndarray) -> None:
        """A decision wave covering every lane (uniform cadence path).

        Semantically identical to :meth:`_decide_wave` with all lanes
        due, with two extra amortizations: the three actuator command
        blocks share one ``(B, 3*num_sms)`` array so the slew clamp and
        saturation test are single ufunc calls, and a wave where no
        lane triggered while every previous command sat exactly at the
        default decision skips the clamp entirely (a no-op clamp of the
        default against itself).
        """
        ctrls = self.controllers
        m = measured
        worst = m.min(axis=1).tolist()
        for i, c in enumerate(ctrls):
            c._last_decision_cycle = cycle
            c._note_worst_measurement(worst[i])
        n = self.num_sms
        if self._any_fallback:
            widen = np.where(self._fallback, self._widen, 0.0)
            low = m < self._thr + widen
            high = m > self._thr_high + widen
        else:
            low = m < self._thr
            high = m > self._thr_high
        trig_mask = low | high
        trig = trig_mask.any(axis=1).tolist()
        any_safe = any(c.in_safe_state for c in ctrls)
        active = any(trig) or any_safe
        if not active and self._prev_at_default:
            # Idle wave: every previous command sits exactly at the
            # default and nothing triggered, so the new command is
            # value-identical to the previous one.  Re-enqueue the same
            # decision object — downstream consumers can then skip
            # actuation entirely on an identity check.
            for c in ctrls:
                c.decisions_made += 1
                c._track_limit_cycle(False)
                c._pipeline.append(
                    (cycle + c.config.total_latency_cycles, c._last_enqueued)
                )
            return
        cat = self._cat_default.copy()
        widths = cat[:, :n]
        fakes = cat[:, n:2 * n]
        dcc = cat[:, 2 * n:]
        decisions = []
        for j in range(len(ctrls)):
            d = ControlDecision(
                issue_widths=widths[j], fake_rates=fakes[j],
                dcc_powers_w=dcc[j],
            )
            d._cat = cat[j]
            decisions.append(d)
        if self._bank_cols is not None and not any_safe:
            if any(trig):
                self._decide_banked(
                    m, low, high, trig_mask, trig, decisions,
                    widths, fakes, dcc,
                )
        else:
            for j, c in enumerate(ctrls):
                if c.in_safe_state:
                    widths[j] = float(c.config.safe_issue_width)
                    c.safe_state_decisions += 1
                elif trig[j]:
                    c._decide(m[j], decision=decisions[j])
        prev_cat = self._gather_prev_cat()
        clamped = np.clip(
            cat, prev_cat - self._slew_cat, prev_cat + self._slew_cat
        )
        changed = clamped != cat
        cat[:] = clamped
        sat_i = changed[:, :n].any(axis=1).tolist()
        sat_f = changed[:, n:2 * n].any(axis=1).tolist()
        sat_d = changed[:, 2 * n:].any(axis=1).tolist()
        throttling = (widths < self._default_w).any(axis=1).tolist()
        fii_active = (fakes > 0.0).any(axis=1).tolist()
        dcc_active = (dcc > 0.0).any(axis=1).tolist()
        self._prev_at_default = bool((cat == self._cat_default).all())
        for j, c in enumerate(ctrls):
            d = decisions[j]
            if sat_i[j]:
                c.slew_saturations["issue"] += 1
            if sat_f[j]:
                c.slew_saturations["fake"] += 1
            if sat_d[j]:
                c.slew_saturations["dcc"] += 1
            c._last_enqueued = d
            c.decisions_made += 1
            if d.triggered_sms:
                c.triggers += 1
            throttled = throttling[j]
            c._track_limit_cycle(throttled)
            if throttled:
                c.throttle_decisions += 1
                c.actuator_decisions["diws"] += 1
            if fii_active[j]:
                c.actuator_decisions["fii"] += 1
            if dcc_active[j]:
                c.actuator_decisions["dcc"] += 1
            if fii_active[j] or dcc_active[j]:
                c.boost_decisions += 1
            c._pipeline.append((cycle + c.config.total_latency_cycles, d))

    # ------------------------------------------------------------------
    def _decide_banked(
        self,
        m: np.ndarray,
        low: np.ndarray,
        high: np.ndarray,
        trig_mask: np.ndarray,
        trig: List[bool],
        decisions: List[ControlDecision],
        widths: np.ndarray,
        fakes: np.ndarray,
        dcc: np.ndarray,
    ) -> None:
        """Vectorized Algorithm 1 body across every triggered lane.

        Bit-identical to ``c._decide(m[j])`` per triggered lane, for
        the stock :class:`WeightedActuation` /
        :class:`CurrentCompensationDAC` pair:

        * low side writes ``min(iwmax, max(0, iwmax - (k1*w1)*err))``
          (the clamps collapse to ``iwmax`` exactly where ``err <= 0``,
          matching the serial early return, which the ``np.where``
          keeps exact even for pathological negative gains);
        * high side max-merges FII/DCC into default-zero rows, i.e.
          plain masked assignment; the DAC quantization
          ``min(max_code, round(p / unit))`` uses ``np.rint``, whose
          half-to-even tie-breaking matches Python's ``round``.

        ``k1*w1`` etc. are precomputed per lane so the product
        associates exactly as the serial ``k1 * self.w1 * error_v``.
        """
        cols = self._bank_cols
        iwmax = cols["iwmax"]
        err = cols["v_nom"] - m
        w_raw = np.minimum(
            iwmax, np.maximum(0.0, iwmax - cols["k1w1"] * err)
        )
        np.copyto(widths, np.where(err > 0, w_raw, iwmax), where=low)
        high_eff = high & ~low
        if high_eff.any():
            over = m - cols["v_nom"]
            pos = over > 0
            fake = np.minimum(2.0, np.maximum(0.0, cols["k2w2"] * over))
            np.copyto(fakes, np.where(pos, fake, 0.0), where=high_eff)
            p = cols["k3w3"] * over
            code = np.minimum(cols["max_code"], np.rint(p / cols["unit"]))
            power = np.where(pos & (p > 0), code * cols["unit"], 0.0)
            np.copyto(dcc, power, where=high_eff)
        for j, d in enumerate(decisions):
            if trig[j]:
                d.triggered_sms = np.flatnonzero(trig_mask[j]).tolist()

    # ------------------------------------------------------------------
    def compact(self, keep: List[int]) -> "ControllerBank":
        """Rebuild the bank over the ``keep`` lanes (batch quarantine).

        Mid-run re-homing is exact: every piece of mutable lane state
        either lives on the controller object itself (pipelines,
        counters, ``_last_decision_cycle``, ``_last_enqueued``) or is a
        row *view* of the bank arrays — so the constructor's
        ``np.stack`` reads current values — and the due bookkeeping is
        reconstructed from ``_last_decision_cycle + period``, which is
        exactly the serial controller's cadence.  Dropped lanes'
        controllers are left untouched (their state rows simply stop
        being advanced).
        """
        return ControllerBank([self.controllers[i] for i in keep])

    # ------------------------------------------------------------------
    def _decide_wave(self, cycle: int, due: np.ndarray, measured) -> None:
        """One decision wave over the due lanes (all measurements finite)."""
        ctrls = self.controllers
        m = measured[due]
        n_due, n_sms = m.shape
        worst = m.min(axis=1)
        for j, i in enumerate(due):
            c = ctrls[i]
            c._last_decision_cycle = cycle
            c._note_worst_measurement(float(worst[j]))
        # Wave-owned decision arrays: each lane's decision holds row
        # views of arrays allocated for this wave only, so decisions
        # stay immutable after enqueue (the commands_for cache relies
        # on that) without per-lane allocations.
        widths = np.empty((n_due, n_sms))
        widths[:] = self._default_w[due]
        fakes = np.zeros((n_due, n_sms))
        dcc = np.zeros((n_due, n_sms))
        decisions = [
            ControlDecision(
                issue_widths=widths[j], fake_rates=fakes[j],
                dcc_powers_w=dcc[j],
            )
            for j in range(n_due)
        ]
        # Trigger pre-check: a lane enters the per-SM Algorithm 1 loop
        # only if some SM crosses a (possibly fallback-widened)
        # threshold — the exact condition under which the serial
        # _decide deviates from the default decision.
        widen = np.where(self._fallback[due], self._widen[due], 0.0)
        trig = (
            (m < self._thr[due] + widen) | (m > self._thr_high[due] + widen)
        ).any(axis=1)
        for j, i in enumerate(due):
            c = ctrls[i]
            if c.in_safe_state:
                widths[j] = float(c.config.safe_issue_width)
                c.safe_state_decisions += 1
            elif trig[j]:
                c._decide(m[j], decision=decisions[j])
        # Batched per-actuator slew limiting: same np.clip ufunc, with
        # per-lane previous commands and (B, 1) slew limits.
        for key, values, prev in (
            ("issue", widths,
             np.stack([ctrls[i]._last_enqueued.issue_widths for i in due])),
            ("fake", fakes,
             np.stack([ctrls[i]._last_enqueued.fake_rates for i in due])),
            ("dcc", dcc,
             np.stack([ctrls[i]._last_enqueued.dcc_powers_w for i in due])),
        ):
            slew = self._slew[key][due]
            clamped = np.clip(values, prev - slew, prev + slew)
            saturated = (clamped != values).any(axis=1)
            values[:] = clamped
            for j in np.nonzero(saturated)[0]:
                ctrls[due[j]].slew_saturations[key] += 1
        throttling = (widths < self._default_w[due]).any(axis=1)
        fii_active = (fakes > 0.0).any(axis=1)
        dcc_active = (dcc > 0.0).any(axis=1)
        for j, i in enumerate(due):
            c = ctrls[i]
            d = decisions[j]
            c._last_enqueued = d
            c.decisions_made += 1
            if d.triggered_sms:
                c.triggers += 1
            c._track_limit_cycle(bool(throttling[j]))
            if throttling[j]:
                c.throttle_decisions += 1
                c.actuator_decisions["diws"] += 1
            if fii_active[j]:
                c.actuator_decisions["fii"] += 1
            if dcc_active[j]:
                c.actuator_decisions["dcc"] += 1
            if fii_active[j] or dcc_active[j]:
                c.boost_decisions += 1
            c._pipeline.append((cycle + c.config.total_latency_cycles, d))
