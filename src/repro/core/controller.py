"""Algorithm 1: the boundary-triggered voltage smoothing controller.

Every control period the controller reads the filtered boundary-node
voltages from the per-SM detectors, derives each SM's layer voltage
``V_sm(i,j) = V(i,j) - V(i-1,j)``, and — only when an SM droops below
``v_threshold`` — computes proportional actuation:

* the drooping SM's issue width is cut by ``k1 * w1 * (V_nom - V_sm)``;
* fake instructions at rate ``k2 * w2 * (V_nom - V_sm)`` are injected
  into the SM *above* it in the stack (raising the neighbour layer's
  current restores the series balance from the other side);
* a DCC code worth ``k3 * w3 * (V_nom - V_sm)`` watts is applied near
  the layer above.

Commands take effect after the loop latency (detector + compute +
actuate + wire delay), modeled by a delay queue.  When the SM recovers
above the threshold its commands relax back to defaults.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.config import StackConfig
from repro.core.actuators import ActuationCommand, WeightedActuation
from repro.core.detectors import DETECTOR_OPTIONS, DetectorSpec, VoltageDetector
from repro.core.overheads import control_latency_cycles


@dataclass(frozen=True)
class ControllerConfig:
    """Tunables of the Algorithm 1 controller."""

    # Gains follow the sampled-stability analysis: the per-volt power
    # response k_i * P_instr must stay below the 2C/T limit (~12 W/V at
    # the 60-cycle loop), or the loop limit-cycles.
    v_threshold: float = 0.9  # droop trigger voltage (Section VI-C default)
    # Symmetric boost trigger: a layer voltage above this marks an
    # underdrawing layer and engages FII/DCC on it directly.  Sits a bit
    # beyond the droop threshold's mirror so ordinary workload variance
    # does not burn fake-instruction power.
    v_high_threshold: float = 1.15
    v_nominal: float = 1.0
    k1: float = 1.0  # DIWS proportional factor (issue slots per volt)
    k2: float = 8.0  # FII proportional factor (fakes/cycle per volt)
    k3: float = 20.0  # DCC proportional factor (watts per volt)
    control_period_cycles: int = 4  # decision rate of the controller
    # Maximum per-decision command change (slew limiting): abrupt
    # full-swing actuation steps would ring the PDN's package resonance
    # harder than the noise being fixed, and the slew bound also caps
    # the overshoot accumulated during the loop latency
    # (ramp <= slew * latency / period), which is what keeps the high
    # FII gain stable.  Each actuator slews in its *own* natural units —
    # issue slots, fakes/cycle, and watts respectively; a single shared
    # number cannot serve all three (0.02 slots is a meaningful DIWS
    # step, but 0.02 W per decision pins the k3 = 20 W/V DCC DAC to a
    # ramp hundreds of decisions long, disabling it in practice).
    # ``slew_per_decision`` is the legacy shared knob: it still seeds
    # ``slew_issue`` and ``slew_fake`` when they are not given, so
    # existing DIWS/FII configurations behave identically.
    slew_per_decision: float = 0.02
    slew_issue: Optional[float] = None  # issue slots per decision
    slew_fake: Optional[float] = None  # fakes/cycle per decision
    slew_dcc_w: float = 0.25  # watts per decision (5 DAC LSBs)
    latency_cycles: Optional[int] = None  # None -> budget from overheads
    detector: DetectorSpec = field(
        default_factory=lambda: DETECTOR_OPTIONS["oddd"]
    )

    def __post_init__(self) -> None:
        if not 0.0 < self.v_threshold <= self.v_nominal:
            raise ValueError("need 0 < v_threshold <= v_nominal")
        if self.v_high_threshold < self.v_nominal:
            raise ValueError("v_high_threshold must be >= v_nominal")
        if self.control_period_cycles <= 0:
            raise ValueError("control period must be positive")
        if min(self.k1, self.k2, self.k3) < 0:
            raise ValueError("proportional factors must be non-negative")
        if self.slew_per_decision <= 0:
            raise ValueError("slew limit must be positive")
        # Seed the per-actuator limits from the legacy shared knob.
        if self.slew_issue is None:
            object.__setattr__(self, "slew_issue", self.slew_per_decision)
        if self.slew_fake is None:
            object.__setattr__(self, "slew_fake", self.slew_per_decision)
        if min(self.slew_issue, self.slew_fake, self.slew_dcc_w) <= 0:
            raise ValueError("per-actuator slew limits must be positive")

    @property
    def total_latency_cycles(self) -> int:
        if self.latency_cycles is not None:
            return self.latency_cycles
        return control_latency_cycles(self.detector)


@dataclass
class ControlDecision:
    """Per-GPU actuation computed by one controller invocation."""

    issue_widths: np.ndarray  # per SM
    fake_rates: np.ndarray  # per SM
    dcc_powers_w: np.ndarray  # per SM (watts of compensation current)
    triggered_sms: List[int] = field(default_factory=list)


class VoltageSmoothingController:
    """Algorithm 1 with detectors, latency pipeline and statistics."""

    def __init__(
        self,
        stack: StackConfig = StackConfig(),
        config: ControllerConfig = ControllerConfig(),
        actuation: Optional[WeightedActuation] = None,
        dt_s: float = 1.0 / 700e6,
    ) -> None:
        self.stack = stack
        self.config = config
        self.actuation = actuation or WeightedActuation()
        self.dt_s = dt_s
        self.detectors = [
            VoltageDetector(config.detector, filter_initial_v=stack.sm_voltage)
            for _ in range(stack.num_sms)
        ]
        # (apply_at_cycle, decision) queue modelling the loop latency.
        self._pipeline: Deque[Tuple[int, ControlDecision]] = deque()
        self._last_decision_cycle = -config.control_period_cycles
        self._default_issue_width = float(self.actuation.issue_width_max)
        self.active_decision = self._default_decision()
        self._last_enqueued = self._default_decision()
        # Statistics for performance-penalty accounting.  throttled_cycles
        # counts *simulated* cycles (commands_for may be called more than
        # once for the same cycle without double counting).
        self.throttled_cycles = 0
        self._counted_through_cycle = -1
        self.decisions_made = 0
        self.triggers = 0
        # Per-actuator telemetry: decisions in which each actuator was
        # engaged, and decisions in which its slew clamp saturated (the
        # commanded change exceeded the per-decision limit).
        self.actuator_decisions: Dict[str, int] = {
            "diws": 0, "fii": 0, "dcc": 0
        }
        self.slew_saturations: Dict[str, int] = {
            "issue": 0, "fake": 0, "dcc": 0
        }
        self.throttle_decisions = 0
        self.boost_decisions = 0

    # ------------------------------------------------------------------
    def _default_decision(self) -> ControlDecision:
        n = self.stack.num_sms
        return ControlDecision(
            issue_widths=np.full(n, self._default_issue_width),
            fake_rates=np.zeros(n),
            dcc_powers_w=np.zeros(n),
        )

    def observe(self, cycle: int, sm_voltages: np.ndarray) -> None:
        """Feed this cycle's true SM voltages through the detectors.

        Runs the per-SM RC filters every cycle; makes a control decision
        every ``control_period_cycles`` and enqueues it to apply after
        the loop latency.
        """
        sm_voltages = np.asarray(sm_voltages, dtype=float)
        if sm_voltages.shape != (self.stack.num_sms,):
            raise ValueError(
                f"expected {self.stack.num_sms} SM voltages, got "
                f"{sm_voltages.shape}"
            )
        measured = np.array(
            [
                detector.sample(v, self.dt_s)
                for detector, v in zip(self.detectors, sm_voltages)
            ]
        )
        if cycle - self._last_decision_cycle < self.config.control_period_cycles:
            return
        self._last_decision_cycle = cycle
        decision = self._decide(measured)
        self._apply_slew_limit(decision)
        self._last_enqueued = decision
        self.decisions_made += 1
        if decision.triggered_sms:
            self.triggers += 1
        # Per-actuator engagement accounting, on the post-slew decision
        # actually enqueued.  A throttle decision is one that cuts issue
        # width below the default — overvoltage boosts (which *inject*
        # work) are counted separately, so the Fig. 12 throttling proxy
        # is not inflated by power-adding actuation.
        throttling = bool(
            np.any(decision.issue_widths < self._default_issue_width)
        )
        fii_active = bool(np.any(decision.fake_rates > 0.0))
        dcc_active = bool(np.any(decision.dcc_powers_w > 0.0))
        if throttling:
            self.throttle_decisions += 1
            self.actuator_decisions["diws"] += 1
        if fii_active:
            self.actuator_decisions["fii"] += 1
        if dcc_active:
            self.actuator_decisions["dcc"] += 1
        if fii_active or dcc_active:
            self.boost_decisions += 1
        self._pipeline.append(
            (cycle + self.config.total_latency_cycles, decision)
        )

    def _decide(self, measured: np.ndarray) -> ControlDecision:
        """The Algorithm 1 loop body over all (layer, column) positions.

        Two symmetric boundary triggers implement eq. (6)'s
        ``P_i = k V_i`` around the deadband:

        * an SM below ``v_threshold`` is overdrawing — DIWS throttles it
          proportionally to its droop;
        * an SM above ``v_high_threshold`` is underdrawing — FII / DCC
          raise its power proportionally to its overvoltage.  (In a
          series stack the overvolted SM is exactly the ``SM(i+1, j)``
          neighbour of a drooping SM that Algorithm 1 names as the
          injection target; triggering on its own voltage keeps the
          boost engaged until balance is actually restored instead of
          releasing as soon as the drooping SM crosses back over its
          threshold.)
        """
        cfg = self.config
        decision = self._default_decision()
        for sm in range(self.stack.num_sms):
            v_sm = measured[sm]
            if v_sm < cfg.v_threshold:
                decision.triggered_sms.append(sm)
                error = cfg.v_nominal - v_sm
                command = self.actuation.commands(
                    error, cfg.k1, cfg.k2, cfg.k3
                )
                decision.issue_widths[sm] = command.issue_width
            elif v_sm > cfg.v_high_threshold:
                decision.triggered_sms.append(sm)
                boost = self.actuation.boost_commands(
                    v_sm - cfg.v_nominal, cfg.k2, cfg.k3
                )
                decision.fake_rates[sm] = max(
                    decision.fake_rates[sm], boost.fake_rate
                )
                decision.dcc_powers_w[sm] = max(
                    decision.dcc_powers_w[sm],
                    self.actuation.dac.power_for_code(boost.dcc_code),
                )
        return decision

    def _apply_slew_limit(self, decision: ControlDecision) -> None:
        """Clamp each command within its actuator's per-decision slew.

        Each actuator is limited in its own natural units (issue slots,
        fakes/cycle, watts); saturation of a clamp — the proportional
        law asking for a bigger step than the slew allows — is counted
        per actuator for telemetry.
        """
        cfg = self.config
        previous = self._last_enqueued
        for key, values, prev, slew in (
            ("issue", decision.issue_widths, previous.issue_widths,
             cfg.slew_issue),
            ("fake", decision.fake_rates, previous.fake_rates,
             cfg.slew_fake),
            ("dcc", decision.dcc_powers_w, previous.dcc_powers_w,
             cfg.slew_dcc_w),
        ):
            clamped = np.clip(values, prev - slew, prev + slew)
            if np.any(clamped != values):
                self.slew_saturations[key] += 1
            values[:] = clamped

    def commands_for(self, cycle: int) -> ControlDecision:
        """The actuation in force at ``cycle`` (after loop latency)."""
        while self._pipeline and self._pipeline[0][0] <= cycle:
            _, decision = self._pipeline.popleft()
            self.active_decision = decision
        # Count each simulated cycle at most once, so callers that read
        # the same cycle's commands twice do not double-count.
        if cycle > self._counted_through_cycle:
            self._counted_through_cycle = cycle
            if np.any(
                self.active_decision.issue_widths < self._default_issue_width
            ):
                self.throttled_cycles += 1
        return self.active_decision

    # ------------------------------------------------------------------
    @property
    def throttle_fraction(self) -> float:
        """Fraction of decisions that cut issue width (for Fig. 12).

        Only work-removing decisions count; overvoltage boosts (FII/DCC
        injections, which *add* work) are reported separately as
        :attr:`boost_fraction`.
        """
        if self.decisions_made == 0:
            return 0.0
        return self.throttle_decisions / self.decisions_made

    @property
    def boost_fraction(self) -> float:
        """Fraction of decisions engaging power-adding actuation."""
        if self.decisions_made == 0:
            return 0.0
        return self.boost_decisions / self.decisions_made

    def stats(self) -> Dict[str, object]:
        """Controller statistics snapshot for telemetry manifests."""
        return {
            "decisions_made": self.decisions_made,
            "triggers": self.triggers,
            "throttle_decisions": self.throttle_decisions,
            "boost_decisions": self.boost_decisions,
            "throttled_cycles": self.throttled_cycles,
            "actuator_decisions": dict(self.actuator_decisions),
            "slew_saturations": dict(self.slew_saturations),
        }
