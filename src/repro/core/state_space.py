"""Linear dynamic model of the stacked power grid (Section IV-A).

One stack column is modeled by the boundary-node voltages
``X = [V1 .. V_{N-1}, V_N]`` (``V_N`` pinned to VDD by the supply), each
boundary backed by capacitance ``C``.  Layer ``i`` (between nodes ``i``
and ``i-1``) draws current ``I_i = P_i / (V_i - V_{i-1})``; linearizing
around the balanced equilibrium ``V_i = i * VDD / N`` gives the paper's
eq. (4)/(5) form::

    Xdot = A X + B U + dF

with ``A = 0`` (the grid is a pure integrator bank), ``U = [P1..PN]``
the per-layer SM powers (the control input), and ``dF`` the current
disturbance.  ``B`` is banded: node ``i`` integrates
``(I_{i+1} - I_i)/C``, so ``B[i, i] = -1/C`` and ``B[i, i+1] = +1/C``.
(The matrix as typeset in the paper's eq. (4) places every ``-1/C`` in
the first column — a transcription slip; the banded form follows
directly from eq. (1) and is what we implement.)

Proportional state feedback ``U = K X`` with ``K = k I`` (eq. 6) yields
the closed loop ``Xdot = (A + B K) X + dF`` (eq. 7), stable for every
``k > 0``: each deviation decays as ``exp(-k t / C)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class StackedGridModel:
    """State-space model of one voltage-stack column.

    ``cr_stamp_conductance_s`` optionally includes the column's CR-IVR in
    the plant: each flying-cap position adds a ``[1, -2, 1]`` difference
    conductance across three consecutive boundary nodes, entering the
    state matrix as ``-(g/C) * w w^T`` — the circuit layer's contribution
    to the cross-layer stability analysis.  With it at zero the model is
    the paper's bare eq. (4) integrator bank.
    """

    num_layers: int = 4
    layer_capacitance_f: float = 256e-9  # boundary-node capacitance
    vdd: float = 4.0  # paper's Section IV uses the idealized 4 V supply
    cr_stamp_conductance_s: float = 0.0  # per flying-cap position
    load_conductance_s: float = 0.0  # small-signal SM conductance per layer

    def __post_init__(self) -> None:
        if self.num_layers < 2:
            raise ValueError("need at least two stacked layers")
        if self.layer_capacitance_f <= 0:
            raise ValueError("capacitance must be positive")
        if self.vdd <= 0:
            raise ValueError("vdd must be positive")
        if self.cr_stamp_conductance_s < 0:
            raise ValueError("CR conductance cannot be negative")
        if self.load_conductance_s < 0:
            raise ValueError("load conductance cannot be negative")

    @classmethod
    def cross_layer_default(cls) -> "StackedGridModel":
        """The analysis model of the paper's cross-layer design point.

        Aggregates the four columns: 512 nF effective boundary storage
        (local SM decaps plus the package/bulk capacitance reflected at
        the controller's sub-MHz frequencies), the 0.2x-die CR-IVR's
        15.9 S split over three ladder boundaries, and the 6 S total
        small-signal load conductance per layer.
        """
        return cls(
            layer_capacitance_f=512e-9,
            cr_stamp_conductance_s=5.29,
            load_conductance_s=6.0,
        )

    # ------------------------------------------------------------------
    # Matrices
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        return self.num_layers  # V1..V_{N-1} plus the pinned V_N

    def a_matrix(self) -> np.ndarray:
        """State matrix.

        Zero without a CR-IVR (pure integrators; V_N held by the
        supply).  With ``cr_stamp_conductance_s`` set, the ladder's
        flying-cap positions stamp their equalizing Laplacian, giving
        the boundary nodes natural decay toward balance.
        """
        n = self.num_states
        a = np.zeros((n, n))
        c = self.layer_capacitance_f
        g = self.cr_stamp_conductance_s
        # Boundary nodes 0..n-1 are V1..V_N; virtual node -1 is ground
        # (deviation 0) and node n-1 (V_N) is pinned by the supply.
        if g > 0.0:
            for centre in range(n - 1):  # flying cap centred at V1..V_{N-1}
                trio = [centre + 1, centre, centre - 1]
                weights = [1.0, -2.0, 1.0]
                for i, wi in zip(trio, weights):
                    if not 0 <= i < n - 1:  # skip ground and the pinned V_N
                        continue
                    for j, wj in zip(trio, weights):
                        if not 0 <= j < n - 1:
                            continue
                        a[i, j] -= (g / c) * wi * wj
        g_load = self.load_conductance_s
        if g_load > 0.0:
            # Each layer's SM conducts between its two boundary nodes:
            # a [1, -1] stamp per layer.
            for layer in range(self.num_layers):
                duo = [layer, layer - 1]  # top node V_{layer+1} is index layer
                weights = [1.0, -1.0]
                for i, wi in zip(duo, weights):
                    if not 0 <= i < n - 1:
                        continue
                    for j, wj in zip(duo, weights):
                        if not 0 <= j < n - 1:
                            continue
                        a[i, j] -= (g_load / c) * wi * wj
        return a

    def b_matrix(self) -> np.ndarray:
        """Control-input matrix mapping layer powers to node-voltage rates."""
        n = self.num_states
        c = self.layer_capacitance_f
        b = np.zeros((n, n))
        for i in range(n - 1):  # interior boundary nodes V1..V_{N-1}
            b[i, i] = -1.0 / c
            b[i, i + 1] = 1.0 / c
        # V_N row stays zero: the supply pins it.
        return b

    def feedback_matrix(self, k: float) -> np.ndarray:
        """K = k * I over the controllable states (eq. 6)."""
        gain = np.eye(self.num_states) * k
        gain[-1, -1] = 0.0  # V_N is not controlled
        return gain

    def closed_loop(self, k: float) -> np.ndarray:
        """A + B K of eq. (7)."""
        return self.a_matrix() + self.b_matrix() @ self.feedback_matrix(k)

    # ------------------------------------------------------------------
    # Equilibrium
    # ------------------------------------------------------------------
    def equilibrium(self) -> np.ndarray:
        """Balanced operating point: V_i = i * VDD / N (eq. [1 2 3 4]')."""
        step = self.vdd / self.num_layers
        return step * np.arange(1, self.num_states + 1)

    def layer_voltages(self, state: np.ndarray) -> np.ndarray:
        """Per-layer voltages V_i - V_{i-1} from the node-voltage state."""
        state = np.asarray(state, dtype=float)
        if state.shape != (self.num_states,):
            raise ValueError(
                f"state must have {self.num_states} entries, got {state.shape}"
            )
        padded = np.concatenate([[0.0], state])
        return np.diff(padded)

    # ------------------------------------------------------------------
    # Continuous-time simulation (for analysis; the co-simulator uses
    # the full circuit model instead)
    # ------------------------------------------------------------------
    def simulate(
        self,
        k: float,
        dt: float,
        steps: int,
        disturbance: Optional[Callable[[float], np.ndarray]] = None,
        x0: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Forward-Euler rollout of the closed loop around equilibrium.

        ``disturbance(t)`` returns the dF vector (volts/second of state
        drift, i.e. dI/C).  Returns (times, deviations) where deviations
        has shape (steps+1, num_states) and is measured from equilibrium.
        """
        if dt <= 0 or steps <= 0:
            raise ValueError("dt and steps must be positive")
        closed = self.closed_loop(k)
        x = np.zeros(self.num_states) if x0 is None else np.asarray(x0, float).copy()
        times = dt * np.arange(steps + 1)
        trajectory = np.zeros((steps + 1, self.num_states))
        trajectory[0] = x
        for n in range(steps):
            drift = closed @ x
            if disturbance is not None:
                drift = drift + disturbance(times[n])
            x = x + dt * drift
            # V_N deviation is pinned to zero by the ideal supply.
            x[-1] = 0.0
            trajectory[n + 1] = x
        return times, trajectory
