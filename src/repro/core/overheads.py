"""Controller implementation overheads (Section IV-D).

The paper synthesizes the voltage-smoothing controller plus the sixteen
per-SM instruction issue adjusters in TSMC 40 nm: 1.634 mW and 3084 um^2
at the GPU's 700 MHz.  The total control latency budget sums detector
response, controller computation, actuation delay, and the round-trip
Elmore wire delay between the detectors/actuators and the centrally
placed controller.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.detectors import DETECTOR_OPTIONS, DetectorSpec, RCLowPassFilter


@dataclass(frozen=True)
class ControllerOverheads:
    """Synthesized cost of the smoothing controller (paper constants)."""

    # Synopsys DC, TSMC 40 nm, controller + 16 issue adjusters @ 700 MHz.
    power_w: float = 1.634e-3
    area_um2: float = 3084.0
    computation_cycles: int = 12
    actuation_cycles: int = 2
    # Round-trip tapered-buffer Elmore delay, controller at die centre.
    communication_cycles: int = 44

    @property
    def area_mm2(self) -> float:
        return self.area_um2 * 1e-6

    def total_area_um2(self, num_sms: int = 16) -> float:
        """Controller plus the per-SM RC filters."""
        return self.area_um2 + num_sms * RCLowPassFilter.AREA_UM2


def control_latency_cycles(
    detector: DetectorSpec = DETECTOR_OPTIONS["oddd"],
    overheads: ControllerOverheads = ControllerOverheads(),
) -> int:
    """Total loop latency: detector + compute + actuate + wires.

    With the default ODDD detector this lands at the paper's 60-cycle
    design point.
    """
    return (
        detector.latency_cycles
        + overheads.computation_cycles
        + overheads.actuation_cycles
        + overheads.communication_cycles
    )
