"""The live observability plane: metrics registry, status snapshots,
worker heartbeats.

The PR-2 telemetry layer is post-hoc: nothing is visible until the run
finishes and ``write_run`` emits the manifest.  This module is the
*during-the-run* counterpart:

* :class:`Counter` / :class:`Gauge` / :class:`Histogram` — minimal
  metric primitives collected in a :class:`MetricsRegistry`.  Updates
  are single Python bytecode-level mutations on plain attributes, so
  they are atomic under the GIL ("lock-free in spirit") and cheap
  enough for hot loops.
* :class:`StatusPublisher` — throttled, atomic export of a registry
  snapshot to ``status.json`` in a run directory.  Writes go through a
  temp file + ``os.replace`` so a concurrent ``repro top`` never reads
  a torn file.
* :func:`render_prometheus` — the same snapshot in Prometheus text
  exposition format (``repro metrics <dir>``).
* :class:`WorkerHeartbeat` / :class:`WorkerLiveConfig` — per-worker
  progress files under ``heartbeats/`` that sweep workers (which may
  live in separate processes) update independently; ``repro top``
  aggregates them.

Everything takes an injectable ``time_fn`` so rendering and throttling
are deterministic under test.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

STATUS_NAME = "status.json"
HEARTBEAT_DIR = "heartbeats"

# Default droop-depth style buckets (volts below nominal are small), kept
# generic: callers pass their own upper bounds per histogram.
DEFAULT_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1)


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A fixed-bucket cumulative-style histogram.

    ``uppers`` are the finite bucket upper bounds; an implicit ``+Inf``
    bucket catches the rest.  ``counts[i]`` is the number of
    observations ``<= uppers[i]`` exclusive of lower buckets
    (non-cumulative storage; :meth:`to_dict` and the Prometheus
    renderer cumulate on the way out).
    """

    __slots__ = ("name", "uppers", "counts", "total", "sum")

    def __init__(
        self, name: str, uppers: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        ordered = [float(u) for u in uppers]
        if not ordered or ordered != sorted(ordered):
            raise ValueError(
                f"histogram buckets must be non-empty ascending, got {uppers}"
            )
        self.name = name
        self.uppers = ordered
        self.counts = [0] * (len(ordered) + 1)  # +1 for the +Inf bucket
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        idx = len(self.uppers)
        for i, upper in enumerate(self.uppers):
            if value <= upper:
                idx = i
                break
        self.counts[idx] += 1
        self.total += 1
        self.sum += value

    def to_dict(self) -> Dict[str, object]:
        cumulative = []
        running = 0
        for count in self.counts:
            running += count
            cumulative.append(running)
        return {
            "buckets": list(self.uppers),
            "counts": cumulative,  # cumulative, parallel to buckets + [+Inf]
            "count": self.total,
            "sum": self.sum,
        }


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    ``counter``/``gauge``/``histogram`` are get-or-create; asking for an
    existing name with a different kind (or different histogram buckets)
    raises ``ValueError`` — the same contract the fixed
    ``Telemetry.channel`` now enforces for capacities.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, uppers: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        found = self._get_or_create(
            name, Histogram, lambda: Histogram(name, uppers)
        )
        if found.uppers != [float(u) for u in uppers]:
            raise ValueError(
                f"histogram {name!r} exists with buckets {found.uppers}, "
                f"requested {list(uppers)}"
            )
        return found

    def _get_or_create(self, name: str, kind: type, make: Callable):
        found = self._metrics.get(name)
        if found is None:
            found = make()
            self._metrics[name] = found
            return found
        if not isinstance(found, kind):
            raise ValueError(
                f"metric {name!r} exists as {type(found).__name__}, "
                f"requested {kind.__name__}"
            )
        return found

    def snapshot(self) -> Dict[str, object]:
        """A JSON-able point-in-time copy of every metric."""
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, object]] = {}
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = metric.to_dict()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }


def _sanitize(name: str) -> str:
    """Prometheus metric names allow [a-zA-Z0-9_:] only."""
    return "".join(
        ch if (ch.isalnum() or ch in "_:") else "_" for ch in name
    )


def render_prometheus(snapshot: Dict[str, object]) -> str:
    """Render a registry snapshot in Prometheus text exposition format."""
    lines: List[str] = []
    for name, value in sorted((snapshot.get("counters") or {}).items()):
        metric = _sanitize(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in sorted((snapshot.get("gauges") or {}).items()):
        metric = _sanitize(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    for name, hist in sorted((snapshot.get("histograms") or {}).items()):
        metric = _sanitize(name)
        lines.append(f"# TYPE {metric} histogram")
        uppers = list(hist.get("buckets") or [])
        counts = list(hist.get("counts") or [])
        for upper, count in zip(uppers, counts):
            lines.append(f'{metric}_bucket{{le="{upper:g}"}} {count}')
        inf_count = counts[-1] if counts else 0
        lines.append(f'{metric}_bucket{{le="+Inf"}} {inf_count}')
        lines.append(f"{metric}_sum {hist.get('sum', 0.0)}")
        lines.append(f"{metric}_count {hist.get('count', 0)}")
    return "\n".join(lines) + ("\n" if lines else "")


def atomic_write_json(path, payload) -> None:
    """Write JSON so a concurrent reader sees the old or the new file,
    never a torn one (temp file in the same directory + ``os.replace``)."""
    from repro.faults import chaos

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    try:
        with open(tmp, "w") as handle:
            event = chaos.fire("status_write")
            if event is not None:
                # A kill/torn write here strands only the temp file;
                # readers of the published path never see a torn JSON.
                chaos.sabotage_write(
                    event, handle, json.dumps(payload, indent=2) + "\n"
                )
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class StatusPublisher:
    """Throttled atomic export of a registry snapshot to ``status.json``.

    ``maybe_publish`` is cheap to call from a loop: it no-ops until
    ``interval_s`` has elapsed since the last write.  ``publish`` forces
    a write (call it once at the end of a run so the final state always
    lands).
    """

    def __init__(
        self,
        directory,
        registry: MetricsRegistry,
        interval_s: float = 1.0,
        time_fn: Callable[[], float] = time.time,
        extra: Optional[Dict[str, object]] = None,
    ) -> None:
        self.directory = Path(directory)
        self.registry = registry
        self.interval_s = float(interval_s)
        self.time_fn = time_fn
        self.extra = dict(extra or {})
        self.writes = 0
        self.write_errors = 0
        self._last_write: Optional[float] = None

    @property
    def path(self) -> Path:
        return self.directory / STATUS_NAME

    def maybe_publish(self) -> bool:
        now = self.time_fn()
        if (
            self._last_write is not None
            and now - self._last_write < self.interval_s
        ):
            return False
        self.publish(now=now)
        return True

    def publish(self, now: Optional[float] = None) -> None:
        now = self.time_fn() if now is None else now
        payload = {
            "updated_unix": now,
            **self.extra,
            **self.registry.snapshot(),
        }
        try:
            atomic_write_json(self.path, payload)
        except OSError:
            # Observability must not fail the run it reports on: a
            # failed status write (disk full, torn write) costs one
            # stale status.json, counted but swallowed.  Readers only
            # ever see whole files thanks to the atomic replace.
            self.write_errors += 1
            self._last_write = now
            return
        self._last_write = now
        self.writes += 1


@dataclass
class WorkerLiveConfig:
    """Everything a (possibly forked) sweep worker needs to heartbeat.

    Plain picklable data: it crosses the process boundary inside the
    sweep's ``_Task`` payloads.
    """

    directory: str
    worker_id: str
    interval_s: float = 1.0
    total_points: int = 0
    checkpoint_path: Optional[str] = None

    def open(self, time_fn: Callable[[], float] = time.time) -> "WorkerHeartbeat":
        return WorkerHeartbeat(self, time_fn=time_fn)


@dataclass
class WorkerHeartbeat:
    """One worker's progress file under ``<dir>/heartbeats/``.

    Sweep workers may be short-lived processes (the killable path forks
    one process per task), so the heartbeat loads any existing file for
    its worker id and accumulates into it — the file outlives the
    process.
    """

    config: WorkerLiveConfig
    time_fn: Callable[[], float] = time.time
    points_done: int = 0
    points_failed: int = 0
    points_retried: int = 0
    lane_cycles: int = 0
    busy_s: float = 0.0
    # Latest observed batched-solver backend ("c"/"numpy", "" = no
    # batch run yet) and shard count — lets `repro top` flag workers
    # that degraded to the NumPy fallback.
    solver_backend: str = ""
    solver_shards: int = 0
    current: List[str] = field(default_factory=list)
    _last_write: Optional[float] = None

    def __post_init__(self) -> None:
        existing = self._load()
        if existing:
            self.points_done = int(existing.get("points_done", 0))
            self.points_failed = int(existing.get("points_failed", 0))
            self.points_retried = int(existing.get("points_retried", 0))
            self.lane_cycles = int(existing.get("lane_cycles", 0))
            self.busy_s = float(existing.get("busy_s", 0.0))
            self.solver_backend = str(existing.get("solver_backend", ""))
            self.solver_shards = int(existing.get("solver_shards", 0))

    @property
    def path(self) -> Path:
        return (
            Path(self.config.directory)
            / HEARTBEAT_DIR
            / f"worker-{self.config.worker_id}.json"
        )

    def _load(self) -> Optional[Dict[str, object]]:
        try:
            with open(self.path) as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None

    def start_points(self, labels: Sequence[str]) -> None:
        self.current = [str(label) for label in labels]
        self.write()

    def finish_points(
        self,
        done: int,
        failed: int,
        retried: int,
        lane_cycles: int,
        busy_s: float,
        solver_backend: Optional[str] = None,
        solver_shards: Optional[int] = None,
    ) -> None:
        self.points_done += done
        self.points_failed += failed
        self.points_retried += retried
        self.lane_cycles += lane_cycles
        self.busy_s += busy_s
        if solver_backend is not None:
            self.solver_backend = str(solver_backend)
        if solver_shards is not None:
            self.solver_shards = int(solver_shards)
        self.current = []
        self.write()

    def snapshot(self) -> Dict[str, object]:
        rate = self.lane_cycles / self.busy_s if self.busy_s > 0 else 0.0
        done_or_failed = self.points_done + self.points_failed
        eta_s: Optional[float] = None
        if self.config.total_points and done_or_failed > 0 and self.busy_s > 0:
            remaining = max(0, self.config.total_points - done_or_failed)
            eta_s = remaining * (self.busy_s / done_or_failed)
        return {
            "worker": self.config.worker_id,
            "pid": os.getpid(),
            "updated_unix": self.time_fn(),
            "points_done": self.points_done,
            "points_failed": self.points_failed,
            "points_retried": self.points_retried,
            "lane_cycles": self.lane_cycles,
            "lane_cycles_per_s": rate,
            "busy_s": self.busy_s,
            "eta_s": eta_s,
            "last_checkpoint": self.config.checkpoint_path,
            "solver_backend": self.solver_backend,
            "solver_shards": self.solver_shards,
            "current": list(self.current),
        }

    def write(self) -> None:
        atomic_write_json(self.path, self.snapshot())
        self._last_write = self.time_fn()

    def maybe_write(self) -> bool:
        now = self.time_fn()
        if (
            self._last_write is not None
            and now - self._last_write < self.config.interval_s
        ):
            return False
        self.write()
        return True


def read_status(directory) -> Optional[Dict[str, object]]:
    """Load ``status.json`` from a run directory, or ``None``."""
    path = Path(directory) / STATUS_NAME
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


def read_heartbeats(directory) -> List[Dict[str, object]]:
    """Load every readable heartbeat file, sorted by worker id."""
    beat_dir = Path(directory) / HEARTBEAT_DIR
    if not beat_dir.is_dir():
        return []
    beats = []
    for path in sorted(beat_dir.glob("worker-*.json")):
        try:
            with open(path) as handle:
                beats.append(json.load(handle))
        except (OSError, json.JSONDecodeError):
            continue
    return beats


class LiveRun:
    """Bundle of the live plane for one run directory.

    Owns the registry, the throttled ``status.json`` publisher, and an
    ``events.jsonl`` sink that a :class:`~repro.telemetry.recorder.Telemetry`
    can stream into while the run is still going (``write_run`` rewrites
    the identical content at the end, so the two stay consistent).
    """

    def __init__(
        self,
        directory,
        interval_s: float = 1.0,
        time_fn: Callable[[], float] = time.time,
        extra: Optional[Dict[str, object]] = None,
    ) -> None:
        self.directory = Path(directory)
        self.registry = MetricsRegistry()
        self.publisher = StatusPublisher(
            self.directory,
            self.registry,
            interval_s=interval_s,
            time_fn=time_fn,
            extra=extra,
        )
        self._events_handle = None

    def event_sink(self, entry: Dict[str, object]) -> None:
        """Append one event line to ``events.jsonl`` immediately."""
        from repro.telemetry.manifest import EVENTS_NAME, to_jsonable

        if self._events_handle is None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._events_handle = open(
                self.directory / EVENTS_NAME, "w", buffering=1
            )
        self._events_handle.write(json.dumps(to_jsonable(entry)))
        self._events_handle.write("\n")

    def attach(self, telemetry) -> None:
        """Stream ``telemetry``'s future events into ``events.jsonl``."""
        telemetry.event_sink = self.event_sink

    def worker_config(
        self,
        worker_id: str,
        total_points: int = 0,
        checkpoint_path=None,
    ) -> WorkerLiveConfig:
        return WorkerLiveConfig(
            directory=str(self.directory),
            worker_id=str(worker_id),
            interval_s=self.publisher.interval_s,
            total_points=int(total_points),
            checkpoint_path=str(checkpoint_path) if checkpoint_path else None,
        )

    def close(self) -> None:
        self.publisher.publish()
        if self._events_handle is not None:
            self._events_handle.close()
            self._events_handle = None
