"""Per-run manifest + JSONL event log persistence.

A telemetry directory holds exactly two files:

* ``manifest.json`` — one JSON document identifying the run (run id,
  creation time, git revision, the full run configuration and a stable
  hash of it, the seed) plus everything the recorder accumulated:
  per-stage wall-clock timings, counters, headline metrics, and the
  decimated metric channels.
* ``events.jsonl`` — the structured event log, one JSON object per
  line, each stamped with seconds-since-recorder-start.

``repro trace <dir-or-manifest>`` renders a manifest with
:func:`render_manifest`; :func:`load_manifest` accepts either the
directory or the ``manifest.json`` path directly.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
from dataclasses import asdict, is_dataclass
from enum import Enum
from pathlib import Path
from typing import Dict, Mapping, Optional

from repro.telemetry.recorder import Telemetry

MANIFEST_NAME = "manifest.json"
EVENTS_NAME = "events.jsonl"


def to_jsonable(value):
    """Recursively coerce a value tree into ``json.dump``-able types.

    Handles dataclasses, mappings, sequences, sets, paths, enums, and —
    critically for sweep/telemetry metrics — NumPy arrays (``tolist``)
    and NumPy scalars (``item``), so any metric a run records survives a
    JSON round trip.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return to_jsonable(asdict(value))
    if isinstance(value, Enum):
        return to_jsonable(value.value)
    if isinstance(value, Mapping):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, Path):
        return str(value)
    # NumPy arrays expose .tolist(); scalars expose .item().  Checked
    # structurally so this module never hard-imports numpy types.
    if hasattr(value, "tolist") and not isinstance(value, (str, bytes)):
        return value.tolist()
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        return value.item()
    return value


def config_hash(config) -> str:
    """Stable short hash of a run configuration (dataclass or mapping)."""
    canonical = json.dumps(
        to_jsonable(config), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def git_revision(cwd: Optional[Path] = None) -> Optional[str]:
    """Current git commit hash, or ``None`` outside a repository."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def write_run(
    telemetry: Telemetry,
    out_dir,
    config=None,
    extra: Optional[Dict[str, object]] = None,
) -> Path:
    """Write ``manifest.json`` + ``events.jsonl`` under ``out_dir``.

    ``config`` (any dataclass or mapping) is embedded verbatim along
    with its stable hash; ``extra`` merges additional top-level
    manifest fields (command line, benchmark name, ...).  Returns the
    manifest path.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    events_path = out_dir / EVENTS_NAME
    with open(events_path, "w") as handle:
        for event in telemetry.events:
            handle.write(json.dumps(to_jsonable(event)))
            handle.write("\n")

    config_json = to_jsonable(config) if config is not None else None
    manifest: Dict[str, object] = {
        "run_id": telemetry.run_id,
        "created_unix": telemetry.created_unix,
        "wall_s": telemetry.elapsed_s,
        "git_rev": git_revision(),
        "config": config_json,
        "config_hash": config_hash(config) if config is not None else None,
        "seed": (config_json or {}).get("seed")
        if isinstance(config_json, dict)
        else None,
        "timings_s": to_jsonable(telemetry.timings),
        "counters": to_jsonable(telemetry.counters),
        "metrics": to_jsonable(telemetry.metrics),
        "channels": {
            name: channel.to_dict()
            for name, channel in telemetry.channels.items()
        },
        "events_file": EVENTS_NAME,
        "num_events": len(telemetry.events),
    }
    for name, value in telemetry.sections.items():
        if name in manifest:
            raise ValueError(
                f"telemetry section {name!r} collides with a manifest key"
            )
        manifest[name] = to_jsonable(value)
    if extra:
        manifest.update(to_jsonable(extra))

    manifest_path = out_dir / MANIFEST_NAME
    with open(manifest_path, "w") as handle:
        json.dump(manifest, handle, indent=2)
        handle.write("\n")
    return manifest_path


def resolve_events_path(path) -> Path:
    """Map a telemetry directory / manifest path / events path to the
    events file path (which may or may not exist)."""
    path = Path(path)
    if path.is_dir():
        return path / EVENTS_NAME
    if path.name == MANIFEST_NAME:
        return path.with_name(EVENTS_NAME)
    return path


def iter_events(path, offset: int = 0, on_bad=None):
    """Stream a run's ``events.jsonl`` one parsed event at a time.

    Unlike the eager :func:`read_events` this never holds the whole log
    in memory — a multi-hour sweep's event log streams in O(1) space.
    ``offset`` is a byte offset to start from (0 = the beginning);
    ``on_bad`` is called with each undecodable line (truncated writes).
    A missing file yields nothing.
    """
    path = resolve_events_path(path)
    try:
        handle = open(path, "rb")
    except OSError:
        return
    with handle:
        if offset:
            handle.seek(offset)
        for raw in handle:
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                if on_bad is not None:
                    on_bad(raw)


def tail_events(path, offset: int = 0):
    """Incremental read of *complete* events appended since ``offset``.

    The poll primitive behind ``repro top``: returns ``(events,
    new_offset)`` where ``new_offset`` feeds the next call.  A trailing
    line that does not yet end in a newline is a write in progress —
    it is left unconsumed (the next poll retries it), unlike the
    one-shot :func:`read_events` which judges it immediately.
    """
    path = resolve_events_path(path)
    events = []
    try:
        handle = open(path, "rb")
    except OSError:
        return events, offset
    with handle:
        handle.seek(offset)
        consumed = offset
        while True:
            raw = handle.readline()
            if not raw:
                break
            if not raw.endswith(b"\n"):
                break  # partial write in progress; leave for next poll
            consumed += len(raw)
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn line that still got its newline
    return events, consumed


def read_events(path):
    """Tolerantly read a run's ``events.jsonl``.

    ``path`` may be the telemetry directory, the ``manifest.json`` path
    or the events file itself.  Returns ``(events, note)`` where
    ``note`` is ``None`` for a healthy log, or a human-readable string
    when the file is missing or truncated (e.g. a run killed mid-write
    leaves a partial last line).  Never raises for those states: the
    manifest should still render, with the note made visible.  Built on
    the streaming :func:`iter_events`; a valid final line with no
    trailing newline still parses cleanly with no note.
    """
    path = resolve_events_path(path)
    if not path.exists():
        return [], f"events log missing ({path.name} not found)"
    bad = 0

    def _count_bad(_raw) -> None:
        nonlocal bad
        bad += 1

    events = list(iter_events(path, on_bad=_count_bad))
    if bad:
        return events, (
            f"events log truncated: parsed {len(events)} of "
            f"{len(events) + bad} lines"
        )
    return events, None


def load_manifest(path) -> Dict[str, object]:
    """Load a manifest from a telemetry directory or the file itself."""
    path = Path(path)
    if path.is_dir():
        path = path / MANIFEST_NAME
    if not path.exists():
        raise FileNotFoundError(f"no telemetry manifest at {path}")
    with open(path) as handle:
        return json.load(handle)


def render_manifest(manifest: Mapping[str, object]) -> str:
    """Human-readable summary of one run manifest (``repro trace``)."""
    from repro.analysis.report import format_seconds, format_table

    lines = []
    header_bits = [f"run {manifest.get('run_id', '?')}"]
    if manifest.get("config_hash"):
        header_bits.append(f"config {manifest['config_hash']}")
    if manifest.get("seed") is not None:
        header_bits.append(f"seed {manifest['seed']}")
    if manifest.get("git_rev"):
        header_bits.append(f"git {str(manifest['git_rev'])[:12]}")
    lines.append(" | ".join(header_bits))

    wall = float(manifest.get("wall_s") or 0.0)
    timings = dict(manifest.get("timings_s") or {})
    if timings:
        total = sum(timings.values())
        rows = [
            [stage, format_seconds(seconds),
             f"{seconds / wall:.1%}" if wall > 0 else "n/a"]
            for stage, seconds in sorted(
                timings.items(), key=lambda kv: -kv[1]
            )
        ]
        rows.append([
            "(stage sum)", format_seconds(total),
            f"{total / wall:.1%}" if wall > 0 else "n/a",
        ])
        lines.append("")
        lines.append(
            format_table(
                ["stage", "time", "of wall"], rows,
                title=f"Stage timings (wall {format_seconds(wall)})",
            )
        )

    counters = dict(manifest.get("counters") or {})
    if counters:
        lines.append("")
        lines.append(
            format_table(
                ["counter", "count"],
                [[k, f"{v:,}"] for k, v in sorted(counters.items())],
                title="Counters",
            )
        )

    metrics = dict(manifest.get("metrics") or {})
    if metrics:
        lines.append("")
        lines.append(
            format_table(
                ["metric", "value"],
                [[k, v] for k, v in sorted(metrics.items())],
                title="Headline metrics",
            )
        )

    faults = dict(manifest.get("faults") or {})
    if faults:
        summary = dict(faults.get("summary") or {})
        lines.append("")
        lines.append(
            f"faults: schedule {faults.get('schedule', '?')!r} "
            f"({faults.get('num_events', 0)} events, seed "
            f"{faults.get('seed', '?')}) -> verdict "
            f"{faults.get('verdict', '?')}"
        )
        if summary:
            lines.append(
                f"  min voltage {summary.get('min_voltage_v', float('nan')):.3f} V, "
                f"{summary.get('guardband_violation_cycles', 0)} "
                "guardband-violation cycles, "
                f"{summary.get('watchdog_engagements', 0)} watchdog "
                "engagement(s), "
                f"{summary.get('safe_state_decisions', 0)} safe-state "
                "decision(s)"
            )

    channels = dict(manifest.get("channels") or {})
    if channels:
        rows = []
        for name, chan in sorted(channels.items()):
            values = chan.get("values") or []
            span = (
                f"{min(values):.4g} .. {max(values):.4g}" if values else "-"
            )
            rows.append([
                name, chan.get("kept", 0), chan.get("offered", 0),
                chan.get("stride", 1), span,
            ])
        lines.append("")
        lines.append(
            format_table(
                ["channel", "kept", "offered", "stride", "range"], rows,
                title="Metric channels (decimated)",
            )
        )

    num_events = int(manifest.get("num_events") or 0)
    lines.append("")
    lines.append(
        f"{num_events} events in {manifest.get('events_file', EVENTS_NAME)}"
    )
    return "\n".join(lines)
