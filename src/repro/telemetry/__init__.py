"""repro.telemetry — run observability for co-simulations and sweeps.

The long-sweep workflows this library exists for (PDE maps, penalty
studies, design-space exploration) are only trustworthy when every run
says where its time went, what the controller actually did, and why a
point failed.  This package provides that layer:

* :class:`~repro.telemetry.recorder.Telemetry` — phase timers,
  monotonic counters, bounded/decimated per-cycle metric channels and a
  structured event log;
* :func:`~repro.telemetry.manifest.write_run` /
  :func:`~repro.telemetry.manifest.load_manifest` — the per-run
  ``manifest.json`` (config hash, seed, git revision, timings, headline
  metrics) plus the ``events.jsonl`` log;
* :func:`~repro.telemetry.manifest.render_manifest` — the human-facing
  summary behind ``repro trace``;
* :mod:`~repro.telemetry.live` — the *during-the-run* plane: a metrics
  registry (counters/gauges/histograms) snapshotted atomically to
  ``status.json``, per-worker heartbeat files, and the Prometheus text
  rendering behind ``repro metrics`` / the dashboard behind
  ``repro top``;
* :class:`~repro.telemetry.flight.FlightRecorder` — the droop flight
  recorder: an always-on ring buffer of full-resolution per-cycle state
  dumped around every guardband-violation onset and safe-state edge.

See ``docs/telemetry.md`` and ``docs/observability.md`` for the
schemas and usage patterns.
"""

from repro.telemetry.flight import (
    FlightRecorder,
    read_flight_dir,
    render_flight,
)
from repro.telemetry.live import (
    Counter,
    Gauge,
    Histogram,
    LiveRun,
    MetricsRegistry,
    StatusPublisher,
    WorkerHeartbeat,
    WorkerLiveConfig,
    atomic_write_json,
    read_heartbeats,
    read_status,
    render_prometheus,
)
from repro.telemetry.manifest import (
    EVENTS_NAME,
    MANIFEST_NAME,
    config_hash,
    git_revision,
    iter_events,
    load_manifest,
    read_events,
    render_manifest,
    resolve_events_path,
    tail_events,
    to_jsonable,
    write_run,
)
from repro.telemetry.recorder import MetricChannel, Telemetry

__all__ = [
    "EVENTS_NAME",
    "MANIFEST_NAME",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "LiveRun",
    "MetricChannel",
    "MetricsRegistry",
    "StatusPublisher",
    "Telemetry",
    "WorkerHeartbeat",
    "WorkerLiveConfig",
    "atomic_write_json",
    "config_hash",
    "git_revision",
    "iter_events",
    "load_manifest",
    "read_events",
    "read_flight_dir",
    "read_heartbeats",
    "read_status",
    "render_flight",
    "render_manifest",
    "render_prometheus",
    "resolve_events_path",
    "tail_events",
    "to_jsonable",
    "write_run",
]
