"""repro.telemetry — run observability for co-simulations and sweeps.

The long-sweep workflows this library exists for (PDE maps, penalty
studies, design-space exploration) are only trustworthy when every run
says where its time went, what the controller actually did, and why a
point failed.  This package provides that layer:

* :class:`~repro.telemetry.recorder.Telemetry` — phase timers,
  monotonic counters, bounded/decimated per-cycle metric channels and a
  structured event log;
* :func:`~repro.telemetry.manifest.write_run` /
  :func:`~repro.telemetry.manifest.load_manifest` — the per-run
  ``manifest.json`` (config hash, seed, git revision, timings, headline
  metrics) plus the ``events.jsonl`` log;
* :func:`~repro.telemetry.manifest.render_manifest` — the human-facing
  summary behind ``repro trace``.

See ``docs/telemetry.md`` for the manifest schema and usage patterns.
"""

from repro.telemetry.manifest import (
    EVENTS_NAME,
    MANIFEST_NAME,
    config_hash,
    git_revision,
    load_manifest,
    read_events,
    render_manifest,
    to_jsonable,
    write_run,
)
from repro.telemetry.recorder import MetricChannel, Telemetry

__all__ = [
    "EVENTS_NAME",
    "MANIFEST_NAME",
    "MetricChannel",
    "Telemetry",
    "config_hash",
    "git_revision",
    "load_manifest",
    "read_events",
    "render_manifest",
    "to_jsonable",
    "write_run",
]
