"""The droop flight recorder.

The telemetry channels of PR 2 are stride-decimated: for million-cycle
runs the exact cycles around a guardband violation are usually thinned
away before anyone looks.  This module keeps a small always-on ring
buffer of *full-resolution* per-cycle state — per-SM voltages, the
controller decision in force (the commanded actuation), the active
fault kinds, and the controller's safe-state flag — and dumps a bounded
window around every interesting edge:

* a **guardband-violation onset** — the minimum SM voltage crossing
  from at-or-above ``guardband_v`` to below it;
* a **safe-state edge** — the controller entering or leaving its
  safe state (the observable boundary of the fault machinery's
  ``safe_state`` verdict).

Cost discipline (the live plane must stay honest about "always-on"):
the per-cycle :meth:`FlightRecorder.observe` is one ring-row copy plus
a tuple store; all detection is deferred to a vectorized scan every
``scan_interval`` cycles.  ``benchmarks/test_perf_observability.py``
gates the whole thing at <= 2% of the hot co-sim loop.

Windows that attract further triggers while still open are *coalesced*
(the trigger list grows, the window extends) up to a hard length cap,
so every onset is guaranteed to land inside some dump's window — the
acceptance bar is 100% onset coverage for the canned fault scenarios.

Dumps serialize to ``flight/NNN.json`` via :meth:`FlightRecorder.write`
and render through ``repro observe``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

FLIGHT_DIR = "flight"

ONSET = "guardband_onset"
SAFE_ENTER = "safe_state_enter"
SAFE_EXIT = "safe_state_exit"
NUMERICAL_DIVERGENCE = "numerical_divergence"


class FlightDump:
    """One materialized window of full-resolution state."""

    __slots__ = (
        "index", "start_cycle", "end_cycle", "triggers",
        "voltages", "meta", "cycle_offset",
    )

    def __init__(self, index: int, start_cycle: int, cycle_offset: int) -> None:
        self.index = index
        self.start_cycle = start_cycle  # observed-cycle numbering
        self.end_cycle = start_cycle  # exclusive; grows as rows append
        self.cycle_offset = cycle_offset  # observed -> recorded cycles
        self.triggers: List[Dict[str, object]] = []
        self.voltages: List[np.ndarray] = []  # blocks, concatenated late
        self.meta: List[Tuple[object, object, bool]] = []

    @property
    def last_trigger_cycle(self) -> int:
        return int(self.triggers[-1]["cycle"]) if self.triggers else 0

    def num_cycles(self) -> int:
        return self.end_cycle - self.start_cycle

    def to_dict(self) -> Dict[str, object]:
        """JSON-able full-resolution window (recorded-cycle numbering)."""
        volts = (
            np.concatenate(self.voltages)
            if self.voltages
            else np.empty((0, 0))
        )
        n = self.num_cycles()
        volts = volts[:n]
        meta = self.meta[:n]
        off = self.cycle_offset
        # Consecutive cycles usually share one immutable decision object:
        # dedup by identity into an actuation table + per-cycle ids.
        actuations: List[Dict[str, object]] = []
        actuation_ids: List[Optional[int]] = []
        seen: Dict[int, int] = {}
        for decision, _, _ in meta:
            if decision is None:
                actuation_ids.append(None)
                continue
            key = id(decision)
            idx = seen.get(key)
            if idx is None:
                idx = len(actuations)
                seen[key] = idx
                actuations.append({
                    "issue_widths": np.asarray(
                        decision.issue_widths
                    ).tolist(),
                    "fake_rates": np.asarray(decision.fake_rates).tolist(),
                    "dcc_powers_w": np.asarray(
                        decision.dcc_powers_w
                    ).tolist(),
                })
            actuation_ids.append(idx)
        return {
            "index": self.index,
            "start_cycle": self.start_cycle + off,
            "end_cycle": self.end_cycle + off,
            "triggers": [
                {**t, "cycle": int(t["cycle"]) + off} for t in self.triggers
            ],
            "cycles": list(range(self.start_cycle + off, self.end_cycle + off)),
            "voltages": volts.tolist(),
            "min_voltage_v": volts.min(axis=1).tolist() if n else [],
            "safe_state": [bool(s) for _, _, s in meta],
            "active_faults": [
                list(kinds) if kinds else [] for _, kinds, _ in meta
            ],
            "actuation_id": actuation_ids,
            "actuations": actuations,
        }


class FlightRecorder:
    """Always-on ring buffer + edge-triggered window dumper.

    ``observe`` must be called once per simulated cycle (warmup
    included); ``cycle_offset`` maps observed cycles to the recorded
    numbering (pass ``-warmup_cycles`` so dump cycle labels match the
    fault/guardband convention).  Triggers fire only at recorded cycle
    >= 0 — warmup settling transients produce context, not dumps.
    """

    def __init__(
        self,
        num_sms: int,
        guardband_v: float,
        pre_cycles: int = 64,
        post_cycles: int = 64,
        scan_interval: int = 32,
        max_dumps: int = 32,
        max_window_cycles: Optional[int] = None,
        cycle_offset: int = 0,
    ) -> None:
        if pre_cycles < 0 or post_cycles < 0:
            raise ValueError("pre/post window cycles cannot be negative")
        if scan_interval < 1:
            raise ValueError("scan_interval must be >= 1")
        self.num_sms = int(num_sms)
        self.guardband_v = float(guardband_v)
        self.pre_cycles = int(pre_cycles)
        self.post_cycles = int(post_cycles)
        self.scan_interval = int(scan_interval)
        self.max_dumps = int(max_dumps)
        self.max_window_cycles = int(
            max_window_cycles
            if max_window_cycles is not None
            else (pre_cycles + post_cycles + 8 * scan_interval)
        )
        self.cycle_offset = int(cycle_offset)
        # Ring capacity: a trigger inside the current scan block needs
        # pre_cycles of history behind it, plus the unscanned block.
        self._W = self.pre_cycles + 2 * self.scan_interval
        self._volts = np.empty((self._W, self.num_sms))
        self._meta: List[Optional[Tuple[object, object, bool]]] = (
            [None] * self._W
        )
        self._safe = np.zeros(self._W, dtype=bool)
        self._n = 0  # observed cycles
        self._scanned = 0  # cycles processed by the scanner
        self._prev_below = False
        self._prev_safe = False
        self.dumps: List[FlightDump] = []
        self._pending: List[FlightDump] = []
        self.onsets = 0
        self.safe_edges = 0
        self.dumps_suppressed = 0

    # -- hot path ------------------------------------------------------
    def observe(self, voltages, decision=None, fault_kinds=None,
                safe: bool = False) -> None:
        """Record one cycle of state.  O(num_sms) copy, no detection."""
        slot = self._n % self._W
        self._volts[slot] = voltages
        self._meta[slot] = (decision, fault_kinds, safe)
        self._safe[slot] = safe
        self._n += 1
        if self._n - self._scanned >= self.scan_interval:
            self._scan()

    # -- deferred detection --------------------------------------------
    def _rows(self, start: int, end: int) -> np.ndarray:
        """Ring rows for observed cycles [start, end) (may wrap)."""
        lo = start % self._W
        hi = lo + (end - start)
        if hi <= self._W:
            return self._volts[lo:hi]
        return np.concatenate([self._volts[lo:], self._volts[: hi - self._W]])

    def _safe_flags(self, start: int, end: int) -> np.ndarray:
        lo = start % self._W
        hi = lo + (end - start)
        if hi <= self._W:
            return self._safe[lo:hi]
        return np.concatenate([self._safe[lo:], self._safe[: hi - self._W]])

    def _scan(self) -> None:
        start, end = self._scanned, self._n
        if end <= start:
            return
        rows = self._rows(start, end)
        mins = rows.min(axis=1)
        below = mins < self.guardband_v
        safe = self._safe_flags(start, end)

        # Edges vs the previous scanned cycle (block-boundary carry).
        prev_below = np.empty_like(below)
        prev_below[0] = self._prev_below
        prev_below[1:] = below[:-1]
        prev_safe = np.empty_like(safe)
        prev_safe[0] = self._prev_safe
        prev_safe[1:] = safe[:-1]

        triggers: List[Tuple[int, str, float]] = []
        first_recorded = max(0, -self.cycle_offset - start)
        onset_pos = np.flatnonzero(below & ~prev_below)
        for pos in onset_pos:
            if pos < first_recorded:
                continue  # warmup settling, context only
            self.onsets += 1
            triggers.append((start + int(pos), ONSET, float(mins[pos])))
        edge_pos = np.flatnonzero(safe != prev_safe)
        for pos in edge_pos:
            if pos < first_recorded:
                continue
            self.safe_edges += 1
            kind = SAFE_ENTER if safe[pos] else SAFE_EXIT
            triggers.append((start + int(pos), kind, float(mins[pos])))
        triggers.sort(key=lambda t: t[0])

        self._prev_below = bool(below[-1])
        self._prev_safe = bool(safe[-1])
        self._scanned = end

        for cycle, kind, min_v in triggers:
            self._trigger(cycle, kind, min_v)
        self._extend_pending(end)

    def _trigger(self, cycle: int, kind: str, min_v: float) -> None:
        record = {"cycle": cycle, "kind": kind, "min_voltage_v": min_v}
        if self._pending:
            dump = self._pending[-1]
            window_end = dump.last_trigger_cycle + self.post_cycles
            grown = cycle + self.post_cycles - dump.start_cycle + 1
            if cycle <= window_end and grown <= self.max_window_cycles:
                dump.triggers.append(record)
                return
        if len(self.dumps) + len(self._pending) >= self.max_dumps:
            self.dumps_suppressed += 1
            return
        start = max(0, cycle - self.pre_cycles)
        dump = FlightDump(
            index=len(self.dumps) + len(self._pending),
            start_cycle=start,
            cycle_offset=self.cycle_offset,
        )
        dump.triggers.append(record)
        # Backfill history from the ring (guaranteed present: the ring
        # holds pre_cycles + the unscanned block), clamped to the close
        # point so a short post window never over-collects.
        close_at = min(
            cycle + self.post_cycles + 1, start + self.max_window_cycles
        )
        take_to = min(self._scanned, close_at)
        dump.voltages.append(self._rows(start, take_to).copy())
        dump.meta.extend(
            self._meta[c % self._W] for c in range(start, take_to)
        )
        dump.end_cycle = take_to
        self._pending.append(dump)

    def _extend_pending(self, now: int) -> None:
        """Append newly scanned rows to open windows; close filled ones."""
        still_open: List[FlightDump] = []
        for dump in self._pending:
            close_at = min(
                dump.last_trigger_cycle + self.post_cycles + 1,
                dump.start_cycle + self.max_window_cycles,
            )
            take_to = min(now, close_at)
            if take_to > dump.end_cycle:
                dump.voltages.append(
                    self._rows(dump.end_cycle, take_to).copy()
                )
                dump.meta.extend(
                    self._meta[c % self._W]
                    for c in range(dump.end_cycle, take_to)
                )
                dump.end_cycle = take_to
            if now >= close_at:
                self.dumps.append(dump)
            else:
                still_open.append(dump)
        self._pending = still_open

    def force_dump(self, kind: str,
                   min_voltage_v: float = float("nan")) -> None:
        """Force a window ending at the last observed cycle.

        For terminal events that are not voltage or safe-state edges —
        e.g. a solver :data:`NUMERICAL_DIVERGENCE` verdict — so the
        full-resolution history behind the failure is captured even
        though no guardband edge fired.  Coalesces into an open window
        when one covers the tail; otherwise opens a new dump (subject
        to the usual ``max_dumps`` suppression accounting).
        """
        self._scan()
        if self._n == 0:
            return
        self._trigger(self._n - 1, kind, float(min_voltage_v))
        self._extend_pending(self._n)

    def finalize(self) -> None:
        """Scan the tail and close still-open windows (truncated post)."""
        self._scan()
        for dump in self._pending:
            self.dumps.append(dump)
        self._pending = []

    # -- reporting -----------------------------------------------------
    @property
    def cycles_observed(self) -> int:
        return self._n

    def summary(self) -> Dict[str, object]:
        return {
            "guardband_v": self.guardband_v,
            "cycles_observed": self._n,
            "onsets": self.onsets,
            "safe_state_edges": self.safe_edges,
            "dumps": len(self.dumps) + len(self._pending),
            "dumps_suppressed": self.dumps_suppressed,
            "pre_cycles": self.pre_cycles,
            "post_cycles": self.post_cycles,
            "windows": [
                {
                    "file": f"{d.index:03d}.json",
                    "start_cycle": d.start_cycle + self.cycle_offset,
                    "end_cycle": d.end_cycle + self.cycle_offset,
                    "num_triggers": len(d.triggers),
                    "kinds": sorted({t["kind"] for t in d.triggers}),
                }
                for d in self.dumps + self._pending
            ],
        }

    def write(self, directory) -> List[Path]:
        """Write every dump as ``<directory>/NNN.json``; returns paths."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = []
        for dump in self.dumps + self._pending:
            path = directory / f"{dump.index:03d}.json"
            with open(path, "w") as handle:
                json.dump(dump.to_dict(), handle)
                handle.write("\n")
            paths.append(path)
        return paths


def read_flight_dir(directory) -> List[Dict[str, object]]:
    """Load every ``NNN.json`` under a run's ``flight/`` directory."""
    directory = Path(directory)
    if directory.name != FLIGHT_DIR:
        directory = directory / FLIGHT_DIR
    if not directory.is_dir():
        return []
    dumps = []
    for path in sorted(directory.glob("*.json")):
        try:
            with open(path) as handle:
                dumps.append(json.load(handle))
        except (OSError, json.JSONDecodeError):
            continue
    return dumps


def render_flight(dumps: Sequence[Dict[str, object]],
                  guardband_v: Optional[float] = None) -> str:
    """Human-readable flight-recorder summary (``repro observe``)."""
    if not dumps:
        return "flight recorder: no dumps (no guardband or safe-state edges)"
    lines = [f"flight recorder: {len(dumps)} dump(s)"]
    for dump in dumps:
        mins = dump.get("min_voltage_v") or []
        floor = min(mins) if mins else float("nan")
        kinds: Dict[str, int] = {}
        for trig in dump.get("triggers") or []:
            kinds[str(trig.get("kind"))] = kinds.get(str(trig.get("kind")), 0) + 1
        kind_bits = ", ".join(f"{k} x{v}" for k, v in sorted(kinds.items()))
        lines.append(
            f"  [{dump.get('index', '?'):>3}] cycles "
            f"{dump.get('start_cycle', '?')}..{dump.get('end_cycle', '?')} "
            f"({len(mins)} cycles, floor {floor:.4f} V): {kind_bits}"
        )
    if guardband_v is not None:
        lines.append(f"  guardband {guardband_v:.3f} V")
    return "\n".join(lines)
