"""The run-telemetry recorder.

One :class:`Telemetry` instance accompanies one run (a co-simulation, a
sweep, a benchmark regeneration) and collects four kinds of
observability data, all cheap enough to leave on for million-cycle
runs:

* **phase timers** — accumulated wall-clock per named stage
  (``with tele.timer("transient_solve"): ...`` or explicit
  :meth:`Telemetry.add_time`), so a slow run localizes to GPU model /
  circuit solve / controller instead of one opaque steps/s number;
* **counters** — monotonic integers (solver steps, controller
  triggers, sweep failures);
* **metric channels** — bounded per-cycle sample series with automatic
  power-of-two decimation: a channel never holds more than its capacity
  regardless of run length, degrading resolution instead of memory;
* **events** — an append-only structured log, written out as JSONL.

The recorder itself never touches the filesystem; persistence (the
per-run manifest plus the JSONL event log) lives in
:mod:`repro.telemetry.manifest`.  A disabled recorder
(``Telemetry(enabled=False)``) accepts every call as a no-op so call
sites need no branching, while the hot loops that do branch (the
co-simulator) check :attr:`Telemetry.enabled` once up front.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List, Optional


class MetricChannel:
    """A bounded per-cycle sample series with stride decimation.

    Samples are kept every ``stride`` offers; whenever the retained set
    reaches ``capacity`` the channel drops every second sample and
    doubles the stride.  Memory is therefore O(capacity) for any run
    length, and the retained samples stay uniformly spaced from the
    first offer onward.
    """

    __slots__ = ("name", "capacity", "stride", "offered", "cycles", "values")

    def __init__(self, name: str, capacity: int = 4096) -> None:
        if capacity < 2:
            raise ValueError(f"channel capacity must be >= 2, got {capacity}")
        self.name = name
        self.capacity = int(capacity)
        self.stride = 1
        self.offered = 0
        self.cycles: List[int] = []
        self.values: List[float] = []

    def record(self, cycle: int, value: float) -> None:
        keep = self.offered % self.stride == 0
        self.offered += 1
        if not keep:
            return
        self.cycles.append(int(cycle))
        self.values.append(float(value))
        if len(self.values) >= self.capacity:
            # Halve the retained set; kept offers stay multiples of the
            # (doubled) stride because they started at offer 0.
            self.cycles = self.cycles[::2]
            self.values = self.values[::2]
            self.stride *= 2

    def __len__(self) -> int:
        return len(self.values)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "capacity": self.capacity,
            "stride": self.stride,
            "offered": self.offered,
            "kept": len(self.values),
            "cycles": list(self.cycles),
            "values": list(self.values),
        }


class Telemetry:
    """Per-run recorder: timers, counters, channels and an event log."""

    def __init__(
        self,
        run_id: str = "run",
        channel_capacity: int = 4096,
        enabled: bool = True,
    ) -> None:
        self.run_id = run_id
        self.channel_capacity = int(channel_capacity)
        self.enabled = bool(enabled)
        self.timings: Dict[str, float] = {}
        self.counters: Dict[str, int] = {}
        self.metrics: Dict[str, object] = {}
        self.channels: Dict[str, MetricChannel] = {}
        self.sections: Dict[str, object] = {}
        self.events: List[Dict[str, object]] = []
        # Optional live sink: when set (repro.telemetry.live.LiveRun
        # attaches one), every event is also streamed out immediately so
        # `repro top` can tail the log while the run is still going.
        self.event_sink = None
        self.created_unix = time.time()
        self._t0 = time.perf_counter()

    # -- timers --------------------------------------------------------
    @contextmanager
    def timer(self, stage: str):
        """Accumulate the wall-clock time of the enclosed block."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(stage, time.perf_counter() - start)

    def add_time(self, stage: str, seconds: float) -> None:
        if not self.enabled:
            return
        self.timings[stage] = self.timings.get(stage, 0.0) + float(seconds)

    @property
    def elapsed_s(self) -> float:
        """Wall-clock seconds since this recorder was created."""
        return time.perf_counter() - self._t0

    # -- counters and metrics ------------------------------------------
    def incr(self, name: str, n: int = 1) -> None:
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + int(n)

    def set_metric(self, name: str, value) -> None:
        if not self.enabled:
            return
        self.metrics[name] = value

    def set_metrics(self, values: Dict[str, object]) -> None:
        for name, value in values.items():
            self.set_metric(name, value)

    def set_section(self, name: str, value) -> None:
        """Attach a named structured block to the run.

        Sections become top-level manifest keys (e.g. the noise
        observatory's ``noise`` report), so the name must not collide
        with the manifest's own schema keys — ``write_run`` enforces
        that at persistence time.
        """
        if not self.enabled:
            return
        self.sections[name] = value

    # -- channels ------------------------------------------------------
    def channel(
        self, name: str, capacity: Optional[int] = None
    ) -> MetricChannel:
        """Get or create the named channel (even when disabled, so call
        sites can hold a handle; a disabled recorder never records).

        Asking for an existing channel with a *different* explicit
        ``capacity`` raises ``ValueError`` — the original instance keeps
        recording at its own capacity, so silently returning it would
        hand the caller a channel with a contract it never asked for.
        """
        found = self.channels.get(name)
        if found is None:
            found = MetricChannel(name, capacity or self.channel_capacity)
            self.channels[name] = found
        elif capacity is not None and found.capacity != int(capacity):
            raise ValueError(
                f"channel {name!r} exists with capacity {found.capacity}, "
                f"requested {capacity}"
            )
        return found

    def record(self, name: str, cycle: int, value: float) -> None:
        if not self.enabled:
            return
        self.channel(name).record(cycle, value)

    # -- events --------------------------------------------------------
    def event(self, kind: str, **fields) -> None:
        """Append one structured event (written out as a JSONL line)."""
        if not self.enabled:
            return
        entry: Dict[str, object] = {
            "t_s": round(time.perf_counter() - self._t0, 6),
            "kind": kind,
        }
        entry.update(fields)
        self.events.append(entry)
        if self.event_sink is not None:
            self.event_sink(entry)
