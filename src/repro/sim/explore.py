"""Design-space exploration service (``repro explore``).

One sweep answers "what do these N points look like"; the exploration
service answers the paper's actual question — *where is the
PDE-vs-area-vs-guardband trade-off frontier* — while doing as little
simulation as possible.  It layers three mechanisms on the hardened
:class:`~repro.sim.sweep.SweepRunner`:

1. **Config-hash result caching** (:class:`~repro.sim.store.ResultStore`).
   Every point of every round is keyed by the stable hash of its *full*
   resolved config plus its benchmark; a key already in the store is
   served from disk instead of simulated.  Repeated sub-configs across
   shards, resumed explorations and refinement rounds all collapse into
   one simulation each — a re-run of a finished exploration simulates
   nothing.

2. **Successive halving.**  Round 1 screens the whole grid at a short
   ``screen_cycles`` run length; each round promotes the most promising
   fraction (``1/eta``) to a longer run length, geometrically
   interpolated up to the full ``base_config.cycles`` in the final
   round.  Promotion is Pareto-rank based (frontier first), and the
   screening frontier itself is *always* promoted even when it exceeds
   the quota — halving must never drop a point that looks
   non-dominated, only the clearly dominated bulk.  The final round
   runs under ``base_config`` unchanged, so surviving points' metrics
   are bit-identical to an exhaustive ``repro sweep`` of the grid.

3. **A first-class frontier artifact.**  The result renders as a table
   and serializes to ``pareto.json``: objectives, per-round telemetry
   (cache hits, points simulated vs served, survivors), cache stats and
   the per-benchmark Pareto frontier over full-length metrics.

Sharding falls out of the cache: any number of ``repro explore``
processes pointed at disjoint benchmark/axis slices but one store
directory tree dedup against each other through the config-hash keys.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.pareto import (
    DEFAULT_OBJECTIVES,
    Objective,
    pareto_front,
    pareto_ranks,
    render_pareto,
)
from repro.sim.cosim import CosimConfig
from repro.sim.store import ResultStore, point_key
from repro.sim.sweep import (
    SweepPoint,
    SweepPointResult,
    SweepRunner,
    _atomic_write_json,
    _jsonable,
    expand_grid,
)
from repro.telemetry import Telemetry, config_hash
from repro.telemetry.live import LiveRun

#: Paper guardband: the supply floor below which timing is not safe.
DEFAULT_GUARDBAND_V = 0.8


def round_schedule(
    full_cycles: int, screen_cycles: int, rounds: int
) -> List[int]:
    """Per-round run lengths: geometric from screening to full.

    The last round is always exactly ``full_cycles`` (that is what
    makes survivors comparable to an exhaustive sweep); with one round
    there is no screening at all.
    """
    if rounds <= 0:
        raise ValueError(f"rounds must be positive, got {rounds}")
    if rounds == 1:
        return [full_cycles]
    if not 0 < screen_cycles < full_cycles:
        raise ValueError(
            f"screen_cycles must be in (0, {full_cycles}), "
            f"got {screen_cycles}"
        )
    ratio = full_cycles / screen_cycles
    schedule = [
        round(screen_cycles * ratio ** (r / (rounds - 1)))
        for r in range(rounds)
    ]
    schedule[-1] = full_cycles
    return schedule


@dataclass
class ExploreRound:
    """Telemetry of one successive-halving round."""

    number: int
    cycles: int
    warmup_cycles: int
    candidates: int
    served_from_cache: int = 0
    simulated: int = 0
    failed: int = 0
    promoted: int = 0

    @property
    def cache_hit_rate(self) -> float:
        return self.served_from_cache / self.candidates if self.candidates else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "round": self.number,
            "cycles": self.cycles,
            "warmup_cycles": self.warmup_cycles,
            "candidates": self.candidates,
            "served_from_cache": self.served_from_cache,
            "simulated": self.simulated,
            "failed": self.failed,
            "promoted": self.promoted,
            "cache_hit_rate": self.cache_hit_rate,
        }


@dataclass
class ExploreResult:
    """Everything one exploration produced, artifact-ready."""

    front: List[Dict[str, object]]
    evaluated: List[Dict[str, object]]
    rounds: List[ExploreRound]
    base_config: CosimConfig
    objectives: Sequence[Objective]
    guardband_v: float
    store_stats: Mapping[str, object] = field(default_factory=dict)
    elapsed_s: float = 0.0

    @property
    def num_simulated(self) -> int:
        return sum(r.simulated for r in self.rounds)

    @property
    def num_served(self) -> int:
        return sum(r.served_from_cache for r in self.rounds)

    def to_dict(self) -> Dict[str, object]:
        """The ``pareto.json`` document."""
        return {
            "artifact": "pareto",
            "config_hash": config_hash(self.base_config),
            "guardband_v": self.guardband_v,
            "objectives": [
                {"name": o.name, "sense": o.sense} for o in self.objectives
            ],
            "elapsed_s": self.elapsed_s,
            "points_simulated": self.num_simulated,
            "points_served_from_cache": self.num_served,
            "rounds": [r.to_dict() for r in self.rounds],
            "cache": _jsonable(dict(self.store_stats)),
            "front_size": len(self.front),
            "front": _jsonable(self.front),
            "evaluated": _jsonable(self.evaluated),
        }

    def write_json(self, path) -> Path:
        """Atomically write ``pareto.json`` to ``path``."""
        return _atomic_write_json(path, self.to_dict())

    def render(self) -> str:
        """The frontier table plus the exploration accounting lines."""
        lines = [
            render_pareto(
                self.front, self.objectives,
                title=f"Pareto frontier (guardband {self.guardband_v:g} V)",
            )
        ]
        for rnd in self.rounds:
            lines.append(
                f"round {rnd.number}: {rnd.candidates} candidates @ "
                f"{rnd.cycles} cycles -> {rnd.simulated} simulated, "
                f"{rnd.served_from_cache} cached "
                f"({rnd.cache_hit_rate:.0%} hit rate), "
                f"{rnd.failed} failed, {rnd.promoted} promoted"
            )
        lines.append(
            f"total: {self.num_simulated} simulated, {self.num_served} "
            f"served from cache, frontier {len(self.front)} points, "
            f"{self.elapsed_s:.1f}s"
        )
        return "\n".join(lines)


def _objective_row(
    result: SweepPointResult,
    round_base: CosimConfig,
    guardband_v: float,
) -> Dict[str, object]:
    """Flatten one successful point into a Pareto-comparable row."""
    config = result.point.config(round_base)
    metrics = result.metrics
    min_v = float(metrics["min_voltage_v"])
    return {
        "benchmark": result.point.benchmark,
        "index": result.point.index,
        "overrides": dict(result.point.overrides),
        "seed": result.point.seed,
        "cr_ivr_area_mm2": float(config.cr_ivr_area_mm2),
        "pde": float(metrics["pde"]),
        "min_voltage_v": min_v,
        "guardband_violation_v": max(0.0, guardband_v - min_v),
        "throughput_ipc": float(metrics["throughput_ipc"]),
    }


def _promote(
    rows: Sequence[Mapping[str, object]],
    eta: int,
    objectives: Sequence[Objective],
) -> List[int]:
    """Indices (``row["index"]``) surviving one halving round.

    Per benchmark: rank rows by non-dominated sorting, keep whole ranks
    until the ``ceil(n / eta)`` quota is met — but never cut into rank
    0, the screening frontier.  A partially admitted rank is filled in
    grid order, keeping promotion deterministic.
    """
    survivors: List[int] = []
    by_benchmark: Dict[str, List[Mapping[str, object]]] = {}
    for row in rows:
        by_benchmark.setdefault(str(row["benchmark"]), []).append(row)
    for group in by_benchmark.values():
        quota = math.ceil(len(group) / eta)
        ranks = pareto_ranks(group, objectives)
        chosen: List[Mapping[str, object]] = []
        for rank in range(max(ranks) + 1 if ranks else 0):
            layer = sorted(
                (row for row, r in zip(group, ranks) if r == rank),
                key=lambda row: row["index"],
            )
            if rank == 0 or len(chosen) + len(layer) <= quota:
                chosen.extend(layer)
            else:
                chosen.extend(layer[: max(0, quota - len(chosen))])
            if len(chosen) >= quota:
                break
        survivors.extend(int(row["index"]) for row in chosen)
    return sorted(survivors)


def run_exploration(
    benchmarks: Sequence[str],
    axes: Optional[Mapping[str, Sequence]] = None,
    base_config: CosimConfig = CosimConfig(),
    store_path="explore_store.jsonl",
    rounds: int = 2,
    eta: int = 2,
    screen_cycles: Optional[int] = None,
    guardband_v: float = DEFAULT_GUARDBAND_V,
    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
    base_seed: int = 1,
    max_workers: Optional[int] = None,
    batch_size: int = 1,
    progress=None,
    telemetry: Optional[Telemetry] = None,
    live: Optional[LiveRun] = None,
    **runner_kwargs,
) -> ExploreResult:
    """Explore ``benchmarks`` x ``axes`` by cached successive halving.

    ``axes`` uses the sweep grid syntax (``CosimConfig`` field names,
    dotted for nested fields like ``controller.k2``).  ``screen_cycles``
    defaults to a quarter of the full run length.  Extra keyword
    arguments (``point_timeout_s``, ``max_attempts``, ...) pass through
    to every round's :class:`SweepRunner`; checkpointing is not among
    them — the result store *is* the persistence layer, at per-point
    rather than per-sweep granularity.

    ``live`` (a :class:`repro.telemetry.LiveRun`) publishes the round
    number, candidate count, cache hit rate and frontier size to the
    run directory's ``status.json`` as the exploration progresses, and
    passes through to each round's sweep so its workers heartbeat too.
    """
    if eta <= 1:
        raise ValueError(f"eta must be at least 2, got {eta}")
    if "checkpoint_path" in runner_kwargs:
        raise ValueError(
            "explorations persist through the result store, not sweep "
            "checkpoints; drop checkpoint_path"
        )
    if screen_cycles is None:
        screen_cycles = max(1, base_config.cycles // 4)
    schedule = round_schedule(base_config.cycles, screen_cycles, rounds)
    grid = expand_grid(benchmarks, axes, base_seed=base_seed)
    store = ResultStore(store_path)
    tele = telemetry if telemetry is not None and telemetry.enabled else None
    if tele is not None:
        tele.event(
            "explore_start", num_points=len(grid), rounds=rounds, eta=eta,
            schedule=schedule, store_entries=len(store),
        )

    if live is not None:
        reg = live.registry
        live.publisher.extra.setdefault("command", "explore")
        reg.gauge("explore_rounds_total").set(len(schedule))
        live_round = reg.gauge("explore_round")
        live_candidates = reg.gauge("explore_candidates")
        live_hit_rate = reg.gauge("explore_cache_hit_rate")
        live_front = reg.gauge("explore_frontier_size")
        live_simulated = reg.counter("explore_points_simulated")
        live_served = reg.counter("explore_points_served")

    start = time.perf_counter()
    candidates: List[SweepPoint] = list(grid)
    round_stats: List[ExploreRound] = []
    final_rows: List[Dict[str, object]] = []
    for number, cycles in enumerate(schedule, start=1):
        is_final = number == len(schedule)
        if is_final:
            round_base = base_config
        else:
            warmup = min(
                int(base_config.warmup_cycles * cycles / base_config.cycles),
                cycles - 1,
            )
            round_base = replace(
                base_config, cycles=cycles, warmup_cycles=max(0, warmup)
            )
        stats = ExploreRound(
            number=number, cycles=round_base.cycles,
            warmup_cycles=round_base.warmup_cycles,
            candidates=len(candidates),
        )
        if tele is not None:
            tele.event(
                "explore_round_start", round=number, cycles=round_base.cycles,
                candidates=len(candidates), final=is_final,
            )
        if live is not None:
            live_round.set(number)
            live_candidates.set(len(candidates))
            live.publisher.publish()

        results: Dict[int, SweepPointResult] = {}
        to_run: List[SweepPoint] = []
        for point in candidates:
            served = store.serve(point_key(point, round_base), point)
            if served is None:
                to_run.append(point)
                continue
            results[point.index] = served
            stats.served_from_cache += 1
            if progress is not None:
                progress(served)
        if to_run:
            sweep = SweepRunner(
                to_run, round_base, max_workers=max_workers,
                batch_size=batch_size, **runner_kwargs,
            ).run(progress=progress, telemetry=tele, live=live)
            for result in sweep.points:
                results[result.point.index] = result
                stats.simulated += 1
                store.put(point_key(result.point, round_base), result)
        stats.failed = sum(1 for r in results.values() if not r.ok)

        rows = [
            _objective_row(results[p.index], round_base, guardband_v)
            for p in candidates
            if results[p.index].ok
        ]
        if is_final:
            final_rows = sorted(
                rows, key=lambda row: (row["benchmark"], row["index"])
            )
            stats.promoted = 0
        else:
            surviving = set(_promote(rows, eta, objectives))
            candidates = [p for p in candidates if p.index in surviving]
            stats.promoted = len(candidates)
        round_stats.append(stats)
        if live is not None:
            live_simulated.inc(stats.simulated)
            live_served.inc(stats.served_from_cache)
            total = live_simulated.value + live_served.value
            live_hit_rate.set(
                live_served.value / total if total else 0.0
            )
            live.publisher.publish()
        if tele is not None:
            tele.event(
                "explore_round_done", round=number,
                served_from_cache=stats.served_from_cache,
                simulated=stats.simulated, failed=stats.failed,
                promoted=stats.promoted,
                cache_hit_rate=round(stats.cache_hit_rate, 4),
            )
        if not candidates and not is_final:
            raise RuntimeError(
                f"round {number} eliminated every candidate (all points "
                "failed?) — nothing left to promote"
            )

    # One frontier per workload: PDE/voltage levels are not comparable
    # across benchmarks, so dominance is judged within each benchmark
    # and the artifact carries the per-benchmark frontiers' union.
    front: List[Dict[str, object]] = []
    for benchmark in sorted({str(row["benchmark"]) for row in final_rows}):
        front.extend(
            pareto_front(
                [row for row in final_rows if row["benchmark"] == benchmark],
                objectives,
            )
        )
    elapsed = time.perf_counter() - start
    if live is not None:
        live_front.set(len(front))
        live.publisher.publish()
    result = ExploreResult(
        front=front,
        evaluated=final_rows,
        rounds=round_stats,
        base_config=base_config,
        objectives=tuple(objectives),
        guardband_v=guardband_v,
        store_stats=store.stats(),
        elapsed_s=elapsed,
    )
    if tele is not None:
        tele.add_time("explore", elapsed)
        tele.set_metrics({
            "points_simulated": result.num_simulated,
            "points_served_from_cache": result.num_served,
            "cache_hit_rate": round(
                result.num_served
                / max(1, result.num_served + result.num_simulated),
                4,
            ),
            "front_size": len(front),
            "rounds": len(round_stats),
        })
        tele.event(
            "explore_done", front_size=len(front),
            points_simulated=result.num_simulated,
            points_served_from_cache=result.num_served,
            elapsed_s=round(elapsed, 3),
        )
    return result
