"""Parallel design-space sweeps over the co-simulator.

The vertical-power-delivery literature leans on large parameter sweeps
(CR-IVR area x control latency x guardband x workload) to map the
design space; this module makes those tractable by fanning a grid of
:class:`~repro.sim.cosim.CosimConfig` points across worker processes.

Structure:

* :func:`expand_grid` — cartesian product of benchmarks and per-field
  axes into a flat list of :class:`SweepPoint`, each with a
  deterministic per-point seed (reproducible regardless of worker
  scheduling order).
* :class:`SweepRunner` — chunked fan-out over a
  ``concurrent.futures.ProcessPoolExecutor``; every point's failure is
  captured as a structured :class:`SweepPointResult` (with traceback),
  so one diverging point never kills the sweep.
* :class:`SweepResult` — ordered per-point results plus a JSON writer.

The CLI front end is ``repro sweep``; ``examples/parameter_sweep.py``
shows library usage.
"""

from __future__ import annotations

import json
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field, replace
from itertools import product
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.sim.cosim import CosimConfig
from repro.telemetry import Telemetry, to_jsonable

# Seed derivation: a fixed odd multiplier keeps per-point seeds distinct
# for any base seed while staying deterministic across runs and worker
# scheduling orders.
_SEED_STRIDE = 100_003


def point_seed(base_seed: int, index: int) -> int:
    """Deterministic seed of grid point ``index`` under ``base_seed``."""
    return (base_seed * _SEED_STRIDE + index) % (2**31 - 1)


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: a benchmark plus ``CosimConfig`` field overrides."""

    index: int
    benchmark: str
    overrides: Tuple[Tuple[str, object], ...] = ()
    seed: int = 1

    def config(self, base: CosimConfig) -> CosimConfig:
        """The point's full config: ``base`` + overrides + per-point seed.

        An explicit ``seed`` axis wins over the derived per-point seed.
        """
        fields = dict(self.overrides)
        fields.setdefault("seed", self.seed)
        return replace(base, **fields)

    def describe(self) -> str:
        knobs = ", ".join(f"{k}={v}" for k, v in self.overrides)
        return f"#{self.index} {self.benchmark}" + (f" ({knobs})" if knobs else "")


@dataclass
class SweepPointResult:
    """Outcome of one point: metrics on success, a traceback on failure."""

    point: SweepPoint
    ok: bool
    metrics: Dict[str, object] = field(default_factory=dict)
    error: Optional[str] = None
    elapsed_s: float = 0.0


@dataclass
class SweepResult:
    """All per-point results of one sweep, in grid order."""

    points: List[SweepPointResult]
    base_config: CosimConfig
    elapsed_s: float = 0.0

    @property
    def num_failed(self) -> int:
        return sum(1 for p in self.points if not p.ok)

    def successes(self) -> List[SweepPointResult]:
        return [p for p in self.points if p.ok]

    def failures(self) -> List[SweepPointResult]:
        return [p for p in self.points if not p.ok]

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "num_points": len(self.points),
            "num_failed": self.num_failed,
            "elapsed_s": self.elapsed_s,
            "base_config": _jsonable(asdict(self.base_config)),
            "points": [
                {
                    "index": r.point.index,
                    "benchmark": r.point.benchmark,
                    "overrides": dict(r.point.overrides),
                    "seed": r.point.seed,
                    "ok": r.ok,
                    "metrics": _jsonable(r.metrics),
                    "error": r.error,
                    "elapsed_s": r.elapsed_s,
                }
                for r in self.points
            ],
        }

    def write_json(self, path) -> Path:
        """Write the structured results to ``path`` (JSON)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")
        return path


def _jsonable(value):
    """Coerce NumPy scalars/arrays/dataclasses for ``json.dump``.

    Delegates to :func:`repro.telemetry.to_jsonable`, which — unlike the
    earlier scalar-only ``.item()`` coercion — also round-trips NumPy
    *arrays* (``tolist``), sets, enums and paths; telemetry adds such
    values to point metrics.
    """
    return to_jsonable(value)


# ---------------------------------------------------------------------------
# Grid expansion
# ---------------------------------------------------------------------------
def expand_grid(
    benchmarks: Sequence[str],
    axes: Optional[Mapping[str, Sequence]] = None,
    base_seed: int = 1,
) -> List[SweepPoint]:
    """Cartesian product of ``benchmarks`` x every axis of ``axes``.

    ``axes`` maps :class:`CosimConfig` field names to value lists, e.g.
    ``{"cr_ivr_area_mm2": [52.9, 105.8, 211.6]}``.  Unknown field names
    fail fast here rather than inside a worker process.
    """
    if not benchmarks:
        raise ValueError("need at least one benchmark")
    axes = dict(axes or {})
    config_fields = set(CosimConfig.__dataclass_fields__)
    for name in axes:
        if name not in config_fields:
            raise ValueError(
                f"unknown CosimConfig field {name!r}; "
                f"valid axes: {sorted(config_fields)}"
            )
        if len(axes[name]) == 0:
            raise ValueError(f"axis {name!r} has no values")
    keys = list(axes)
    points: List[SweepPoint] = []
    for benchmark in benchmarks:
        for combo in product(*(axes[k] for k in keys)):
            index = len(points)
            points.append(
                SweepPoint(
                    index=index,
                    benchmark=benchmark,
                    overrides=tuple(zip(keys, combo)),
                    seed=point_seed(base_seed, index),
                )
            )
    return points


# ---------------------------------------------------------------------------
# Worker
# ---------------------------------------------------------------------------
def _point_metrics(result) -> Dict[str, object]:
    """Flatten a CosimResult into the JSON-friendly sweep record."""
    eff = result.efficiency()
    try:
        cycles_per_kernel = result.cycles_per_kernel()
    except ValueError:
        cycles_per_kernel = None
    return {
        "min_voltage_v": result.min_voltage,
        "max_voltage_v": result.max_voltage,
        "p1_voltage_v": float(result.voltage_percentiles(1)),
        "mean_power_w": result.power_trace.mean_power_w,
        "pde": eff.pde,
        "throughput_ipc": result.throughput(),
        "instructions": result.instructions,
        "fake_instructions": result.fake_instructions,
        "throttled_cycles": result.throttled_cycles,
        "kernels_completed": result.kernels_completed,
        "cycles_per_kernel": cycles_per_kernel,
        "mean_dcc_power_w": result.mean_dcc_power_w,
    }


def _run_point(payload: Tuple[SweepPoint, CosimConfig]) -> SweepPointResult:
    """Run one grid point; never raises — failures are captured."""
    point, base = payload
    start = time.perf_counter()
    try:
        from repro.sim.cosim import run_cosim

        result = run_cosim(point.benchmark, point.config(base))
        return SweepPointResult(
            point=point,
            ok=True,
            metrics=_point_metrics(result),
            elapsed_s=time.perf_counter() - start,
        )
    except Exception as exc:  # noqa: BLE001 — structured failure capture
        return SweepPointResult(
            point=point,
            ok=False,
            error=f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
            elapsed_s=time.perf_counter() - start,
        )


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------
class SweepRunner:
    """Fan a list of :class:`SweepPoint` across worker processes.

    ``max_workers=0/1`` runs in-process (useful for tests and debugging);
    otherwise a :class:`~concurrent.futures.ProcessPoolExecutor` maps
    points in ``chunksize`` batches.  Results always come back in grid
    order, independent of worker scheduling.
    """

    def __init__(
        self,
        points: Sequence[SweepPoint],
        base_config: CosimConfig = CosimConfig(),
        max_workers: Optional[int] = None,
        chunksize: int = 1,
    ) -> None:
        if not points:
            raise ValueError("sweep needs at least one point")
        if chunksize <= 0:
            raise ValueError(f"chunksize must be positive, got {chunksize}")
        if base_config.controller_object is not None:
            raise ValueError(
                "sweeps cannot ship a live controller_object to worker "
                "processes; parameterize via ControllerConfig instead"
            )
        self.points = list(points)
        self.base_config = base_config
        self.max_workers = max_workers
        self.chunksize = chunksize

    def run(
        self,
        progress=None,
        telemetry: Optional[Telemetry] = None,
    ) -> SweepResult:
        """Execute every point; ``progress`` (if given) is called with
        each :class:`SweepPointResult` as it completes.

        ``telemetry`` records per-point wall times and structured
        success/failure events (uniformly — the same failure capture
        that already lands in :class:`SweepPointResult`), plus worker
        utilization of the whole fan-out.
        """
        tele = (
            telemetry
            if telemetry is not None and telemetry.enabled
            else None
        )
        inline = self.max_workers is not None and self.max_workers <= 1
        workers = 1 if inline else (self.max_workers or os.cpu_count() or 1)
        if tele is not None:
            tele.event(
                "sweep_start", num_points=len(self.points), workers=workers,
                chunksize=self.chunksize,
            )
        payloads = [(p, self.base_config) for p in self.points]
        start = time.perf_counter()
        results: List[SweepPointResult]
        if inline:
            results = [
                self._notify(_run_point(p), progress, tele) for p in payloads
            ]
        else:
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                results = [
                    self._notify(r, progress, tele)
                    for r in pool.map(
                        _run_point, payloads, chunksize=self.chunksize
                    )
                ]
        elapsed = time.perf_counter() - start
        if tele is not None:
            busy = sum(r.elapsed_s for r in results)
            tele.add_time("sweep", elapsed)
            tele.set_metrics({
                "num_points": len(results),
                "num_failed": sum(1 for r in results if not r.ok),
                "workers": workers,
                # Fraction of the worker pool's wall-clock capacity spent
                # inside points; low values localize a slow sweep to
                # scheduling/serialization rather than the points.
                "worker_utilization": (
                    busy / (elapsed * workers) if elapsed > 0 else 0.0
                ),
            })
            tele.event(
                "sweep_done", elapsed_s=round(elapsed, 3),
                num_failed=sum(1 for r in results if not r.ok),
            )
        return SweepResult(
            points=results,
            base_config=self.base_config,
            elapsed_s=elapsed,
        )

    @staticmethod
    def _notify(
        result: SweepPointResult, progress, tele: Optional[Telemetry] = None
    ) -> SweepPointResult:
        if tele is not None:
            tele.incr("points_ok" if result.ok else "points_failed")
            event = {
                "index": result.point.index,
                "benchmark": result.point.benchmark,
                "ok": result.ok,
                "elapsed_s": round(result.elapsed_s, 4),
            }
            if not result.ok and result.error:
                event["error"] = result.error.splitlines()[0]
            tele.event("sweep_point", **event)
        if progress is not None:
            progress(result)
        return result


def run_sweep(
    benchmarks: Sequence[str],
    axes: Optional[Mapping[str, Sequence]] = None,
    base_config: CosimConfig = CosimConfig(),
    base_seed: int = 1,
    max_workers: Optional[int] = None,
    chunksize: int = 1,
    progress=None,
    telemetry: Optional[Telemetry] = None,
) -> SweepResult:
    """Convenience wrapper: expand the grid and run it."""
    points = expand_grid(benchmarks, axes, base_seed=base_seed)
    runner = SweepRunner(
        points, base_config, max_workers=max_workers, chunksize=chunksize
    )
    return runner.run(progress=progress, telemetry=telemetry)
