"""Parallel design-space sweeps over the co-simulator.

The vertical-power-delivery literature leans on large parameter sweeps
(CR-IVR area x control latency x guardband x workload) to map the
design space; this module makes those tractable by fanning a grid of
:class:`~repro.sim.cosim.CosimConfig` points across worker processes.

Structure:

* :func:`expand_grid` — cartesian product of benchmarks and per-field
  axes into a flat list of :class:`SweepPoint`, each with a
  deterministic per-point seed (reproducible regardless of worker
  scheduling order).
* :class:`SweepRunner` — chunked fan-out over a
  ``concurrent.futures.ProcessPoolExecutor``; every point's failure is
  captured as a structured :class:`SweepPointResult` (with traceback),
  so one diverging point never kills the sweep.
* :class:`SweepResult` — ordered per-point results plus a JSON writer.

Hardening (long sweeps die in boring ways, and should survive them):

* ``point_timeout_s`` runs each point in its own killable process — a
  hanging point is terminated at the deadline and captured as a
  structured, retryable failure instead of wedging the pool;
* ``max_attempts`` re-runs *retryable* failures (timeouts, crashed
  workers, OS-level errors) in bounded retry waves with exponential
  backoff; deterministic failures (bad configs) are never retried;
* ``checkpoint_path`` appends every completed point to an atomically
  replaced partial-results file, and :meth:`SweepRunner.resume`
  rebuilds a runner that skips the points already done — a sweep
  killed mid-run continues where it stopped.

The CLI front end is ``repro sweep``; ``examples/parameter_sweep.py``
shows library usage.
"""

from __future__ import annotations

import json
import os
import signal
import tempfile
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field, replace
from itertools import product
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.faults import chaos
from repro.sim.cosim import CosimConfig
from repro.sim.cosim import _LANE_SHARED_FIELDS as _BATCH_COMPAT_FIELDS
from repro.telemetry import Telemetry, config_hash, to_jsonable
from repro.telemetry.live import LiveRun, WorkerLiveConfig

# Seed derivation: a fixed odd multiplier keeps per-point seeds distinct
# for any base seed while staying deterministic across runs and worker
# scheduling orders.
_SEED_STRIDE = 100_003

#: Failure classes worth re-running: transient by nature (a timeout, a
#: worker killed by the OOM killer, a flaky filesystem) rather than a
#: property of the point's configuration.
RETRYABLE_ERRORS = frozenset({
    "TimeoutError", "WorkerCrash", "BrokenProcessPool",
    "OSError", "IOError", "MemoryError", "ConnectionResetError",
})


def point_seed(base_seed: int, index: int) -> int:
    """Deterministic seed of grid point ``index`` under ``base_seed``."""
    return (base_seed * _SEED_STRIDE + index) % (2**31 - 1)


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: a benchmark plus ``CosimConfig`` field overrides.

    Override names may be dotted (``controller.k2``) to reach one level
    into a nested config dataclass — the axis syntax that lets sweeps
    and the exploration service vary controller gains without shipping
    whole ``ControllerConfig`` objects through JSON checkpoints.
    """

    index: int
    benchmark: str
    overrides: Tuple[Tuple[str, object], ...] = ()
    seed: int = 1

    def config(self, base: CosimConfig) -> CosimConfig:
        """The point's full config: ``base`` + overrides + per-point seed.

        An explicit ``seed`` axis wins over the derived per-point seed.
        """
        fields: Dict[str, object] = {}
        nested: Dict[str, Dict[str, object]] = {}
        for name, value in self.overrides:
            if "." in name:
                head, tail = name.split(".", 1)
                nested.setdefault(head, {})[tail] = value
            else:
                fields[name] = value
        for head, sub in nested.items():
            fields[head] = replace(getattr(base, head), **sub)
        fields.setdefault("seed", self.seed)
        return replace(base, **fields)

    def describe(self) -> str:
        knobs = ", ".join(f"{k}={v}" for k, v in self.overrides)
        return f"#{self.index} {self.benchmark}" + (f" ({knobs})" if knobs else "")


@dataclass
class SweepPointResult:
    """Outcome of one point: metrics on success, a traceback on failure.

    ``note`` carries structured degradations that are *not* failures
    (e.g. ``cycles_per_kernel`` unavailable on a short run) so they
    surface in ``repro trace`` / the results JSON instead of being
    silently swallowed.  ``attempts``/``timed_out`` record the retry
    history under the hardened runner.  ``cached`` marks a result
    served from a :class:`~repro.sim.store.ResultStore` instead of a
    fresh simulation (its ``elapsed_s`` is the original run's).
    """

    point: SweepPoint
    ok: bool
    metrics: Dict[str, object] = field(default_factory=dict)
    error: Optional[str] = None
    error_type: Optional[str] = None
    elapsed_s: float = 0.0
    attempts: int = 1
    timed_out: bool = False
    note: Optional[str] = None
    cached: bool = False

    @property
    def retryable(self) -> bool:
        """Whether this failure is worth another attempt."""
        if self.ok:
            return False
        return self.timed_out or self.error_type in RETRYABLE_ERRORS

    def to_record(self) -> Dict[str, object]:
        """The JSON record shared by results files and checkpoints."""
        return {
            "index": self.point.index,
            "benchmark": self.point.benchmark,
            "overrides": dict(self.point.overrides),
            "seed": self.point.seed,
            "ok": self.ok,
            "metrics": _jsonable(self.metrics),
            "error": self.error,
            "error_type": self.error_type,
            "elapsed_s": self.elapsed_s,
            "attempts": self.attempts,
            "timed_out": self.timed_out,
            "note": self.note,
            "cached": self.cached,
        }

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "SweepPointResult":
        """Rebuild a result from its JSON record (checkpoint resume)."""
        point = SweepPoint(
            index=int(record["index"]),
            benchmark=str(record["benchmark"]),
            overrides=tuple(sorted(dict(record.get("overrides") or {}).items())),
            seed=int(record.get("seed", 1)),
        )
        return cls(
            point=point,
            ok=bool(record["ok"]),
            metrics=dict(record.get("metrics") or {}),
            error=record.get("error"),
            error_type=record.get("error_type"),
            elapsed_s=float(record.get("elapsed_s", 0.0)),
            attempts=int(record.get("attempts", 1)),
            timed_out=bool(record.get("timed_out", False)),
            note=record.get("note"),
            cached=bool(record.get("cached", False)),
        )


@dataclass
class SweepResult:
    """All per-point results of one sweep, in grid order."""

    points: List[SweepPointResult]
    base_config: CosimConfig
    elapsed_s: float = 0.0

    @property
    def num_failed(self) -> int:
        return sum(1 for p in self.points if not p.ok)

    def successes(self) -> List[SweepPointResult]:
        return [p for p in self.points if p.ok]

    def failures(self) -> List[SweepPointResult]:
        return [p for p in self.points if not p.ok]

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "num_points": len(self.points),
            "num_failed": self.num_failed,
            "elapsed_s": self.elapsed_s,
            "base_config": _jsonable(asdict(self.base_config)),
            "points": [r.to_record() for r in self.points],
        }

    def write_json(self, path) -> Path:
        """Write the structured results to ``path`` (JSON, atomically).

        The document lands via a same-directory temp file and
        ``os.replace``, so a sweep killed mid-write never leaves a
        truncated/corrupt results JSON behind.
        """
        return _atomic_write_json(path, self.to_dict())


def _atomic_write_json(path, payload: Dict[str, object]) -> Path:
    """Write ``payload`` as JSON via temp file + ``os.replace``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            event = chaos.fire("checkpoint_write")
            if event is not None:
                # Sabotaged write: a SIGKILL here leaves only the torn
                # temp file behind — os.replace never runs, so readers
                # keep the previous checkpoint (what resume relies on).
                chaos.sabotage_write(
                    event, handle, json.dumps(payload, indent=2) + "\n"
                )
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def _jsonable(value):
    """Coerce NumPy scalars/arrays/dataclasses for ``json.dump``.

    Delegates to :func:`repro.telemetry.to_jsonable`, which — unlike the
    earlier scalar-only ``.item()`` coercion — also round-trips NumPy
    *arrays* (``tolist``), sets, enums and paths; telemetry adds such
    values to point metrics.
    """
    return to_jsonable(value)


# ---------------------------------------------------------------------------
# Grid expansion
# ---------------------------------------------------------------------------
def expand_grid(
    benchmarks: Sequence[str],
    axes: Optional[Mapping[str, Sequence]] = None,
    base_seed: int = 1,
) -> List[SweepPoint]:
    """Cartesian product of ``benchmarks`` x every axis of ``axes``.

    ``axes`` maps :class:`CosimConfig` field names to value lists, e.g.
    ``{"cr_ivr_area_mm2": [52.9, 105.8, 211.6]}``.  A dotted name like
    ``controller.k2`` reaches one level into a nested config dataclass
    (controller gains, actuation weights).  Unknown field names fail
    fast here rather than inside a worker process.
    """
    if not benchmarks:
        raise ValueError("need at least one benchmark")
    axes = dict(axes or {})
    config_fields = set(CosimConfig.__dataclass_fields__)
    reference = CosimConfig()
    for name in axes:
        head, _, tail = name.partition(".")
        if head not in config_fields:
            raise ValueError(
                f"unknown CosimConfig field {head!r}; "
                f"valid axes: {sorted(config_fields)}"
            )
        if tail:
            nested = getattr(reference, head)
            nested_fields = getattr(nested, "__dataclass_fields__", {})
            if tail not in nested_fields:
                raise ValueError(
                    f"unknown nested field {name!r}; valid "
                    f"{head}.* axes: {sorted(nested_fields)}"
                )
        if len(axes[name]) == 0:
            raise ValueError(f"axis {name!r} has no values")
    keys = list(axes)
    points: List[SweepPoint] = []
    for benchmark in benchmarks:
        for combo in product(*(axes[k] for k in keys)):
            index = len(points)
            points.append(
                SweepPoint(
                    index=index,
                    benchmark=benchmark,
                    overrides=tuple(zip(keys, combo)),
                    seed=point_seed(base_seed, index),
                )
            )
    return points


# ---------------------------------------------------------------------------
# Worker
# ---------------------------------------------------------------------------
def _point_metrics(result) -> Tuple[Dict[str, object], Optional[str]]:
    """Flatten a CosimResult into the JSON-friendly sweep record.

    Returns ``(metrics, note)``: a metric that cannot be computed for a
    legitimate reason (``cycles_per_kernel`` needs a completed kernel in
    the window) is recorded as ``None`` *and explained* in the note —
    previously the ValueError was swallowed without a trace.
    """
    eff = result.efficiency()
    note: Optional[str] = None
    try:
        cycles_per_kernel = result.cycles_per_kernel()
    except ValueError as exc:
        cycles_per_kernel = None
        note = f"cycles_per_kernel unavailable: {exc}"
    metrics: Dict[str, object] = {
        "min_voltage_v": result.min_voltage,
        "max_voltage_v": result.max_voltage,
        "p1_voltage_v": float(result.voltage_percentiles(1)),
        "mean_power_w": result.power_trace.mean_power_w,
        "pde": eff.pde,
        "throughput_ipc": result.throughput(),
        "instructions": result.instructions,
        "fake_instructions": result.fake_instructions,
        "throttled_cycles": result.throttled_cycles,
        "kernels_completed": result.kernels_completed,
        "cycles_per_kernel": cycles_per_kernel,
        "mean_dcc_power_w": result.mean_dcc_power_w,
    }
    if result.fault_report is not None:
        metrics["fault_verdict"] = result.fault_report["verdict"]
        metrics["fault_min_voltage_v"] = (
            result.fault_report["summary"]["min_voltage_v"]
        )
    return metrics, note


def _divergence_result(
    point: SweepPoint, result, elapsed_s: float
) -> SweepPointResult:
    """The structured failure for a run_cosim ``diverged`` verdict.

    ``NumericalDivergence`` is deterministic — a property of the
    point's configuration, not of the worker that ran it — so it is
    deliberately *not* in :data:`RETRYABLE_ERRORS`; the forensics ride
    along in ``metrics`` so ``repro trace`` and the results JSON show
    where the solver gave up.
    """
    info = dict(result.divergence or {})
    return SweepPointResult(
        point=point,
        ok=False,
        metrics={"divergence": info},
        error=(
            "NumericalDivergence: solver diverged at recorded cycle "
            f"{info.get('cycle')} (stage {info.get('stage')}, worst node "
            f"{info.get('worst_node')}, value {info.get('worst_value')})"
        ),
        error_type="NumericalDivergence",
        note=f"waveform truncated to {result.num_cycles} recorded cycles",
        elapsed_s=elapsed_s,
    )


def _run_point(payload: Tuple[SweepPoint, CosimConfig]) -> SweepPointResult:
    """Run one grid point; never raises — failures are captured."""
    point, base = payload
    start = time.perf_counter()
    try:
        from repro.sim.cosim import run_cosim

        result = run_cosim(point.benchmark, point.config(base))
        if result.diverged:
            return _divergence_result(
                point, result, time.perf_counter() - start
            )
        metrics, note = _point_metrics(result)
        return SweepPointResult(
            point=point,
            ok=True,
            metrics=metrics,
            note=note,
            elapsed_s=time.perf_counter() - start,
        )
    except Exception as exc:  # noqa: BLE001 — structured failure capture
        return SweepPointResult(
            point=point,
            ok=False,
            error=f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
            error_type=type(exc).__name__,
            elapsed_s=time.perf_counter() - start,
        )


def _run_point_to_queue(runner, payload, queue) -> None:
    """Child-process entry for the timeout path: result via queue."""
    queue.put(runner(payload))


@dataclass
class _Task:
    """One unit of worker execution: a point, or a compatible batch.

    ``runner(payload)`` returns one :class:`SweepPointResult` (per-point
    task) or a list of them (batch task); ``points`` enumerates the grid
    points the task covers so path-level failures (broken pool, kill at
    deadline, worker crash) can be attributed to every affected point.

    ``live`` (a picklable :class:`~repro.telemetry.WorkerLiveConfig`)
    makes the executing worker maintain a heartbeat file; ``retry``
    marks tasks issued during a retry wave so the heartbeat's
    ``points_retried`` counter stays exact.
    """

    runner: object
    payload: object
    points: Tuple[SweepPoint, ...]
    live: Optional[WorkerLiveConfig] = None
    retry: bool = False

    def failure(self, error: str, error_type: str, **kwargs) -> List[SweepPointResult]:
        return [
            SweepPointResult(
                point=p, ok=False, error=error, error_type=error_type,
                **kwargs,
            )
            for p in self.points
        ]


def _task_lane_cycles(task: _Task, results: List[SweepPointResult]) -> int:
    """Simulated lane-cycles this task completed (ok points only)."""
    payload = task.payload
    if not (isinstance(payload, tuple) and len(payload) == 2):
        return 0
    base = payload[1]
    if not isinstance(base, CosimConfig):
        return 0
    total = 0
    for result in results:
        if not result.ok:
            continue
        config = result.point.config(base)
        total += config.cycles + config.warmup_cycles
    return total


def _run_task(task: _Task) -> List[SweepPointResult]:
    """Process-pool entry: run a task, normalizing to a result list.

    When the task carries a live config the worker writes its heartbeat
    file around the work — failures of the heartbeat itself (read-only
    filesystem, racing cleanup) never fail the task.
    """
    event = chaos.fire("worker_point")
    if event is not None and event.action == "kill":
        # Scheduled worker death at a point boundary: the parent sees a
        # crashed worker (retryable) and the fire-once token guarantees
        # the retry is not killed again.
        os.kill(os.getpid(), signal.SIGKILL)
    beat = None
    if task.live is not None:
        try:
            live = task.live
            if not live.worker_id:
                live = replace(live, worker_id=f"pid-{os.getpid()}")
            beat = live.open()
            beat.start_points([p.describe() for p in task.points])
        except Exception:  # noqa: BLE001 — observability must not fail work
            beat = None
    result = task.runner(task.payload)
    results = result if isinstance(result, list) else [result]
    if beat is not None:
        try:
            from repro.sim.cosim import last_batch_solver_info

            solver_info = last_batch_solver_info()
            done = sum(1 for r in results if r.ok)
            beat.finish_points(
                done=done,
                failed=len(results) - done,
                retried=len(results) if task.retry else 0,
                lane_cycles=_task_lane_cycles(task, results),
                busy_s=sum(r.elapsed_s for r in results),
                solver_backend=solver_info.get("backend"),
                solver_shards=solver_info.get("shards"),
            )
        except Exception:  # noqa: BLE001 — observability must not fail work
            pass
    return results


def _run_point_batch(
    payload: Tuple[Tuple[SweepPoint, ...], CosimConfig],
) -> List[SweepPointResult]:
    """Run one compatible batch of grid points through the lock-stepped
    batched co-simulator; never raises.

    The batch is bit-identical to running each point serially, so the
    per-point metrics are interchangeable with :func:`_run_point`'s;
    only ``elapsed_s`` differs in meaning (the batch wall time split
    evenly across its lanes).  A lane the batch runtime *quarantined*
    (structured ``diverged`` verdict) is retried serially on its own —
    a transient upset (e.g. injected NaN poisoning) succeeds on the
    retry, a deterministic divergence reproduces and is reported as the
    structured verdict; its batch-mates keep their batch results.  Only
    a whole-batch setup failure falls back to running every point
    serially.
    """
    points, base = payload
    start = time.perf_counter()
    try:
        from repro.sim.cosim import CosimLane, run_cosim_batch

        lanes = [
            CosimLane(benchmark=p.benchmark, config=p.config(base))
            for p in points
        ]
        results = run_cosim_batch(lanes)
    except Exception:  # noqa: BLE001 — per-point serial fallback
        return [_run_point((p, base)) for p in points]
    per_lane = (time.perf_counter() - start) / len(points)
    out: List[SweepPointResult] = []
    for point, result in zip(points, results):
        if result.diverged:
            out.append(_run_point((point, base)))
            continue
        try:
            metrics, note = _point_metrics(result)
            out.append(
                SweepPointResult(
                    point=point, ok=True, metrics=metrics, note=note,
                    elapsed_s=per_lane,
                )
            )
        except Exception as exc:  # noqa: BLE001 — structured capture
            out.append(
                SweepPointResult(
                    point=point, ok=False,
                    error=(
                        f"{type(exc).__name__}: {exc}\n"
                        f"{traceback.format_exc()}"
                    ),
                    error_type=type(exc).__name__,
                    elapsed_s=per_lane,
                )
            )
    return out


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------
class SweepRunner:
    """Fan a list of :class:`SweepPoint` across worker processes.

    ``max_workers=0/1`` runs in-process (useful for tests and debugging);
    otherwise points fan out across processes — a
    :class:`~concurrent.futures.ProcessPoolExecutor` in ``chunksize``
    batches, or (with ``point_timeout_s`` set) one killable process per
    task so a hung task can be terminated at its deadline.  Results
    always come back in grid order, independent of worker scheduling.

    ``batch_size > 1`` groups compatible points (same cycle counts,
    circuit substeps and CR-IVR area — the topology-family contract of
    :func:`repro.sim.cosim.run_cosim_batch`) into lock-stepped batched
    co-simulations, which amortize the per-cycle Python overhead across
    lanes while staying bit-identical to per-point runs.  A batch that
    fails as a whole falls back to independent serial runs of its
    points; an injected ``point_runner`` disables batching (tasks stay
    one point each so the injected runner actually runs).

    ``max_attempts > 1`` re-runs retryable failures in waves separated
    by ``retry_backoff_s * 2**(wave-1)`` seconds.  ``checkpoint_path``
    persists completed points (atomic replace) every
    ``checkpoint_every`` completions; :meth:`resume` rebuilds a runner
    from such a file that skips the successes already recorded.

    ``point_runner`` swaps the per-point callable (tests inject hanging
    or crashing stand-ins); it must stay importable/picklable for the
    process-pool path.
    """

    def __init__(
        self,
        points: Sequence[SweepPoint],
        base_config: CosimConfig = CosimConfig(),
        max_workers: Optional[int] = None,
        chunksize: int = 1,
        point_timeout_s: Optional[float] = None,
        max_attempts: int = 1,
        retry_backoff_s: float = 0.5,
        checkpoint_path=None,
        checkpoint_every: int = 1,
        point_runner=None,
        batch_size: int = 1,
    ) -> None:
        if not points:
            raise ValueError("sweep needs at least one point")
        if chunksize <= 0:
            raise ValueError(f"chunksize must be positive, got {chunksize}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if point_timeout_s is not None and point_timeout_s <= 0:
            raise ValueError(
                f"point_timeout_s must be positive, got {point_timeout_s}"
            )
        if max_attempts <= 0:
            raise ValueError(f"max_attempts must be positive, got {max_attempts}")
        if retry_backoff_s < 0:
            raise ValueError("retry_backoff_s cannot be negative")
        if checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        if base_config.controller_object is not None:
            raise ValueError(
                "sweeps cannot ship a live controller_object to worker "
                "processes; parameterize via ControllerConfig instead"
            )
        self.points = list(points)
        self.base_config = base_config
        self.max_workers = max_workers
        self.chunksize = chunksize
        self.point_timeout_s = point_timeout_s
        self.max_attempts = max_attempts
        self.retry_backoff_s = retry_backoff_s
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        self.checkpoint_every = checkpoint_every
        self._point_runner = point_runner or _run_point
        # Batched execution rides the bit-identical run_cosim_batch
        # engine, so an injected point_runner (tests substitute hanging
        # or crashing stand-ins per point) keeps the one-point-per-task
        # shape: batching would silently bypass it.
        self.batch_size = batch_size if point_runner is None else 1
        # index -> result preloaded from a checkpoint (resume).
        self._preloaded: Dict[int, SweepPointResult] = {}
        # index -> last recorded failure from the checkpoint.  Its
        # ``attempts`` seeds the retry budget so a resumed sweep cannot
        # grant a failing point a fresh ``max_attempts`` every resume;
        # a point whose budget is already spent keeps this result.
        self._prior_failures: Dict[int, SweepPointResult] = {}
        self._completed_since_checkpoint = 0
        # Failed checkpoint writes (disk full, torn): counted, never
        # fatal — the previous checkpoint stays valid on disk.
        self.checkpoint_write_errors = 0
        # Live plane of the current run() (None outside one): tasks are
        # stamped with per-worker heartbeat configs when this is set.
        self._live: Optional[LiveRun] = None

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    def _signature(self) -> Dict[str, object]:
        """Identity of this sweep: base config hash + the grid itself."""
        return {
            "config_hash": config_hash(self.base_config),
            "points_hash": config_hash([
                (p.index, p.benchmark, tuple(p.overrides), p.seed)
                for p in self.points
            ]),
            "num_points": len(self.points),
        }

    def _write_checkpoint(self, results_by_index: Dict[int, SweepPointResult]) -> None:
        payload = dict(self._signature())
        payload["completed"] = [
            results_by_index[i].to_record() for i in sorted(results_by_index)
        ]
        try:
            _atomic_write_json(self.checkpoint_path, payload)
        except OSError:
            # A checkpoint is a recovery aid, not the product: a failed
            # write must not kill a sweep that is making progress.  The
            # atomic-replace never ran, so the previous checkpoint is
            # still intact for a later resume.
            self.checkpoint_write_errors += 1

    def _maybe_checkpoint(
        self, results_by_index: Dict[int, SweepPointResult], force: bool = False
    ) -> None:
        if self.checkpoint_path is None:
            return
        self._completed_since_checkpoint += 0 if force else 1
        if force or self._completed_since_checkpoint >= self.checkpoint_every:
            self._write_checkpoint(results_by_index)
            self._completed_since_checkpoint = 0

    @classmethod
    def resume(
        cls,
        checkpoint_path,
        points: Sequence[SweepPoint],
        base_config: CosimConfig = CosimConfig(),
        **kwargs,
    ) -> "SweepRunner":
        """Rebuild a runner from a checkpoint written by a killed sweep.

        Points whose successful results are recorded in the checkpoint
        are *not* re-run; recorded failures are retried while attempt
        budget remains — their recorded ``attempts`` carry over, so the
        total attempts a point receives across any number of resumes
        never exceed ``max_attempts``.  A point that already spent its
        budget keeps its recorded failure.  The checkpoint must
        describe the same sweep: identical base config and grid (both
        hashed), otherwise resuming would silently mix results from
        different experiments.
        """
        checkpoint_path = Path(checkpoint_path)
        with open(checkpoint_path) as handle:
            data = json.load(handle)
        runner = cls(
            points, base_config, checkpoint_path=checkpoint_path, **kwargs
        )
        signature = runner._signature()
        for key in ("config_hash", "points_hash"):
            if data.get(key) != signature[key]:
                raise ValueError(
                    f"checkpoint {checkpoint_path} does not match this sweep "
                    f"({key} differs): it was written for a different base "
                    "config or grid"
                )
        by_index = {p.index: p for p in runner.points}
        for record in data.get("completed", []):
            result = SweepPointResult.from_record(record)
            point = by_index.get(result.point.index)
            if point is None:
                continue
            # Re-attach the live point object (identical by signature).
            result.point = point
            if result.ok:
                runner._preloaded[point.index] = result
            else:
                runner._prior_failures[point.index] = result
        return runner

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        progress=None,
        telemetry: Optional[Telemetry] = None,
        live: Optional[LiveRun] = None,
    ) -> SweepResult:
        """Execute every point; ``progress`` (if given) is called with
        each :class:`SweepPointResult` as it completes.

        ``telemetry`` records per-point wall times and structured
        success/failure events (uniformly — the same failure capture
        that already lands in :class:`SweepPointResult`), plus worker
        utilization of the whole fan-out.

        ``live`` (a :class:`repro.telemetry.LiveRun`) turns on the live
        plane: the parent publishes aggregate progress to the run
        directory's ``status.json`` as points complete, and every worker
        maintains a heartbeat file under ``heartbeats/`` (points
        done/failed/retried, lane-cycles/s, ETA) — what ``repro top``
        renders mid-run.
        """
        tele = (
            telemetry
            if telemetry is not None and telemetry.enabled
            else None
        )
        inline = self.max_workers is not None and self.max_workers <= 1
        workers = 1 if inline else (self.max_workers or os.cpu_count() or 1)
        self._live = live
        if live is not None:
            reg = live.registry
            live.publisher.extra.setdefault("command", "sweep")
            live.publisher.extra["last_checkpoint"] = (
                str(self.checkpoint_path) if self.checkpoint_path else None
            )
            live_done = reg.counter("sweep_points_done")
            live_failed = reg.counter("sweep_points_failed")
            live_retried = reg.counter("sweep_points_retried")
            reg.gauge("sweep_points_total").set(len(self.points))
            reg.gauge("sweep_workers").set(workers)
            live_wave = reg.gauge("sweep_wave")
            live_eta = reg.gauge("sweep_eta_s")
            live_elapsed = reg.histogram(
                "sweep_point_elapsed_s",
                uppers=(0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0),
            )
        if tele is not None:
            tele.event(
                "sweep_start", num_points=len(self.points), workers=workers,
                chunksize=self.chunksize,
                batch_size=self.batch_size,
                resumed_points=len(self._preloaded),
                point_timeout_s=self.point_timeout_s,
                max_attempts=self.max_attempts,
            )
        results_by_index: Dict[int, SweepPointResult] = dict(self._preloaded)
        # Failed points resume with their recorded attempt count; one
        # whose budget is already spent keeps its checkpointed failure
        # instead of being granted a fresh ``max_attempts`` per resume.
        attempts: Dict[int, int] = {p.index: 0 for p in self.points}
        for index, failure in self._prior_failures.items():
            if index in attempts:
                attempts[index] = failure.attempts
                if failure.attempts >= self.max_attempts:
                    results_by_index.setdefault(index, failure)
        pending = [p for p in self.points if p.index not in results_by_index]
        # Results carried over from a checkpoint spent their wall time
        # in a *previous* run; utilization below measures this run only.
        carried = frozenset(results_by_index)
        start = time.perf_counter()
        wave = 0
        while pending:
            wave += 1
            if wave > 1:
                delay = self.retry_backoff_s * 2 ** (wave - 2)
                if tele is not None:
                    tele.event(
                        "sweep_retry_wave", wave=wave,
                        num_points=len(pending), backoff_s=delay,
                    )
                if delay > 0:
                    time.sleep(delay)
            if live is not None:
                live_wave.set(wave)
            retry: List[SweepPoint] = []
            for result in self._iter_wave(
                pending, inline, workers, retry_wave=wave > 1
            ):
                attempts[result.point.index] += 1
                result.attempts = attempts[result.point.index]
                if (
                    result.retryable
                    and result.attempts < self.max_attempts
                ):
                    retry.append(result.point)
                # Record the latest outcome either way, so a sweep that
                # dies mid-retry still has the structured failure.
                results_by_index[result.point.index] = result
                self._notify(result, progress, tele)
                self._maybe_checkpoint(results_by_index)
                if live is not None:
                    (live_done if result.ok else live_failed).inc()
                    if result.attempts > 1:
                        live_retried.inc()
                    live_elapsed.observe(result.elapsed_s)
                    fresh = live_done.value + live_failed.value
                    if fresh > 0:
                        run_s = time.perf_counter() - start
                        remaining = max(0, len(self.points) - len(results_by_index))
                        live_eta.set(remaining * run_s / fresh)
                    live.publisher.maybe_publish()
            pending = retry
        self._maybe_checkpoint(results_by_index, force=True)
        if live is not None:
            live.publisher.publish()
        elapsed = time.perf_counter() - start
        results = [results_by_index[p.index] for p in self.points]
        if tele is not None:
            busy = sum(
                r.elapsed_s for r in results if r.point.index not in carried
            )
            tele.add_time("sweep", elapsed)
            tele.set_metrics({
                "num_points": len(results),
                "num_failed": sum(1 for r in results if not r.ok),
                "num_timed_out": sum(1 for r in results if r.timed_out),
                "num_resumed": len(self._preloaded),
                "workers": workers,
                "batch_size": self.batch_size,
                # Fraction of the worker pool's wall-clock capacity spent
                # inside points; low values localize a slow sweep to
                # scheduling/serialization rather than the points.
                "worker_utilization": (
                    busy / (elapsed * workers) if elapsed > 0 else 0.0
                ),
            })
            tele.event(
                "sweep_done", elapsed_s=round(elapsed, 3),
                num_failed=sum(1 for r in results if not r.ok),
                waves=wave,
            )
        return SweepResult(
            points=results,
            base_config=self.base_config,
            elapsed_s=elapsed,
        )

    def _group_batches(
        self, points: Sequence[SweepPoint]
    ) -> List[Tuple[SweepPoint, ...]]:
        """Partition ``points`` into batches the lock-stepped engine can
        co-simulate: lanes of one batch must agree on the topology-family
        fields ``run_cosim_batch`` validates (cycle counts, substeps,
        CR-IVR area).  Grouping is stable — batches come out in first-seen
        order and points keep their grid order within a batch."""
        buckets: Dict[Tuple, List[SweepPoint]] = {}
        batches: List[Tuple[SweepPoint, ...]] = []
        for point in points:
            config = point.config(self.base_config)
            key = tuple(
                getattr(config, name) for name in _BATCH_COMPAT_FIELDS
            )
            bucket = buckets.setdefault(key, [])
            bucket.append(point)
            if len(bucket) >= self.batch_size:
                batches.append(tuple(bucket))
                bucket.clear()
        for bucket in buckets.values():
            if bucket:
                batches.append(tuple(bucket))
        return batches

    def _make_tasks(
        self, points: Sequence[SweepPoint], retry_wave: bool = False
    ) -> List[_Task]:
        live_cfg = None
        if self._live is not None:
            # worker_id stays empty here: pool/inline workers resolve it
            # to their pid at execution time; the killable path stamps
            # stable slot ids at spawn.
            live_cfg = self._live.worker_config(
                "",
                total_points=len(self.points),
                checkpoint_path=self.checkpoint_path,
            )
        if self.batch_size > 1:
            return [
                _Task(
                    runner=_run_point_batch,
                    payload=(batch, self.base_config),
                    points=batch,
                    live=live_cfg,
                    retry=retry_wave,
                )
                for batch in self._group_batches(points)
            ]
        return [
            _Task(
                runner=self._point_runner,
                payload=(p, self.base_config),
                points=(p,),
                live=live_cfg,
                retry=retry_wave,
            )
            for p in points
        ]

    def _call_task(self, task: _Task) -> List[SweepPointResult]:
        """Invoke a task inline, structuring any exception it leaks.

        The built-in runners capture their own failures; this guard
        keeps an injected ``point_runner`` that raises from aborting the
        whole sweep (and losing the checkpoint progress of finished
        points).
        """
        try:
            return _run_task(task)
        except Exception as exc:
            return task.failure(
                error=f"{type(exc).__name__}: {exc}",
                error_type=type(exc).__name__,
            )

    def _iter_wave(
        self,
        points: Sequence[SweepPoint],
        inline: bool,
        workers: int,
        retry_wave: bool = False,
    ) -> Iterator[SweepPointResult]:
        """One attempt over ``points``, yielding each result as it
        completes (completion order, not grid order) so the caller can
        checkpoint incrementally; never raises."""
        tasks = self._make_tasks(points, retry_wave=retry_wave)
        if self.point_timeout_s is not None:
            yield from self._run_wave_killable(tasks, workers)
            return
        if inline:
            for task in tasks:
                yield from self._call_task(task)
            return
        done = 0
        try:
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                for results in pool.map(
                    _run_task, tasks, chunksize=self.chunksize
                ):
                    done += 1
                    yield from results
        except BrokenProcessPool:
            # A worker died hard (OOM kill, segfault).  Points without a
            # result get a structured, retryable failure.
            for task in tasks[done:]:
                yield from task.failure(
                    error="worker process pool broke before this point "
                          "completed",
                    error_type="BrokenProcessPool",
                )
        except Exception as exc:
            # A custom point runner raised inside the pool; ``map``
            # re-raises on iteration and drops the rest of the wave.
            for task in tasks[done:]:
                yield from task.failure(
                    error=f"{type(exc).__name__}: {exc}",
                    error_type=type(exc).__name__,
                )

    def _run_wave_killable(
        self, tasks: List[_Task], workers: int
    ) -> Iterator[SweepPointResult]:
        """Process-per-task execution with a wall-clock deadline each.

        ``ProcessPoolExecutor`` cannot kill a hung task, so the timeout
        path manages its own worker processes: up to ``workers`` run at
        once, each with a private result queue; a task that misses its
        deadline is terminated (then killed) and captured as a
        structured timeout.  A batch task covers several points' worth
        of work, so its deadline is ``point_timeout_s`` per covered
        point — and a kill or crash is attributed to every point in it.
        """
        import multiprocessing as mp
        import queue as queue_mod

        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover — non-POSIX fallback
            ctx = mp.get_context()
        pending = list(tasks)
        running: List[Tuple[object, object, _Task, float, int]] = []
        # Process-per-task means fresh pids constantly; heartbeat files
        # keyed by pid would proliferate.  A small pool of stable slot
        # ids (released when a task is harvested) keeps one heartbeat
        # file per concurrent worker lane instead.
        free_slots = list(range(workers))

        def harvest(proc, result_queue, task, started, _slot) -> Optional[List[SweepPointResult]]:
            now = time.monotonic()
            try:
                result = result_queue.get_nowait()
                proc.join()
                return result
            except queue_mod.Empty:
                pass
            if not proc.is_alive():
                # Dead without a result: give the queue feeder a moment
                # to flush, then declare a crash.
                try:
                    result = result_queue.get(timeout=0.25)
                    proc.join()
                    return result
                except queue_mod.Empty:
                    proc.join()
                    # Like the timeout branch: the batch's wall time is
                    # split across its points, not charged in full to
                    # every one of them.
                    return task.failure(
                        error=(
                            "worker process died without a result "
                            f"(exit code {proc.exitcode})"
                        ),
                        error_type="WorkerCrash",
                        elapsed_s=(now - started) / len(task.points),
                    )
            deadline = self.point_timeout_s * len(task.points)
            if now - started > deadline:
                proc.terminate()
                proc.join(timeout=2.0)
                if proc.is_alive():  # pragma: no cover — SIGTERM ignored
                    proc.kill()
                    proc.join()
                return task.failure(
                    error=(
                        f"task exceeded its {deadline:g} s wall-clock "
                        "timeout and was killed"
                    ),
                    error_type="TimeoutError",
                    timed_out=True,
                    elapsed_s=(now - started) / len(task.points),
                )
            return None

        while pending or running:
            while pending and len(running) < workers:
                task = pending.pop(0)
                slot = free_slots.pop(0) if free_slots else -1
                if task.live is not None and slot >= 0:
                    task = replace(
                        task,
                        live=replace(task.live, worker_id=f"slot-{slot}"),
                    )
                result_queue = ctx.Queue(maxsize=1)
                proc = ctx.Process(
                    target=_run_point_to_queue,
                    args=(_run_task, task, result_queue),
                    daemon=True,
                )
                proc.start()
                running.append(
                    (proc, result_queue, task, time.monotonic(), slot)
                )
            still_running = []
            for entry in running:
                outcome = harvest(*entry)
                if outcome is None:
                    still_running.append(entry)
                else:
                    if entry[4] >= 0:
                        free_slots.append(entry[4])
                    yield from (
                        outcome
                        if isinstance(outcome, list)
                        else [outcome]
                    )
            running = still_running
            if running:
                time.sleep(0.02)

    def _notify(
        self, result: SweepPointResult, progress, tele: Optional[Telemetry] = None
    ) -> SweepPointResult:
        if tele is not None:
            tele.incr("points_ok" if result.ok else "points_failed")
            event = {
                "index": result.point.index,
                "benchmark": result.point.benchmark,
                "ok": result.ok,
                "elapsed_s": round(result.elapsed_s, 4),
                "attempt": result.attempts,
            }
            if result.timed_out:
                event["timed_out"] = True
            if result.note:
                event["note"] = result.note
            if not result.ok and result.error:
                event["error"] = result.error.splitlines()[0]
            tele.event("sweep_point", **event)
        if progress is not None:
            progress(result)
        return result


def run_sweep(
    benchmarks: Sequence[str],
    axes: Optional[Mapping[str, Sequence]] = None,
    base_config: CosimConfig = CosimConfig(),
    base_seed: int = 1,
    max_workers: Optional[int] = None,
    chunksize: int = 1,
    progress=None,
    telemetry: Optional[Telemetry] = None,
    **runner_kwargs,
) -> SweepResult:
    """Convenience wrapper: expand the grid and run it.

    Extra keyword arguments (``batch_size``, ``point_timeout_s``,
    ``max_attempts``, ``retry_backoff_s``, ``checkpoint_path``, ...)
    pass through to :class:`SweepRunner`.
    """
    points = expand_grid(benchmarks, axes, base_seed=base_seed)
    runner = SweepRunner(
        points, base_config, max_workers=max_workers, chunksize=chunksize,
        **runner_kwargs,
    )
    return runner.run(progress=progress, telemetry=telemetry)
