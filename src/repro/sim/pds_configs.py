"""The four PDS configurations under comparison (Table III rows).

Each configuration bundles its topology kind, CR-IVR sizing and whether
the architectural smoothing controller runs — the axes that distinguish
the rows of Table III and the bars of Fig. 8.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from repro.pdn.area import required_cr_ivr_area


class PDSKind(enum.Enum):
    """Topology families from Table III."""

    CONVENTIONAL_VRM = "single_layer_vrm"
    SINGLE_LAYER_IVR = "single_layer_ivr"
    VS_CIRCUIT_ONLY = "vs_circuit_only"
    VS_CROSS_LAYER = "vs_cross_layer"


@dataclass(frozen=True)
class PDSConfigEntry:
    """One Table III row: topology plus its sizing."""

    kind: PDSKind
    label: str
    cr_ivr_area_mm2: float
    has_controller: bool
    paper_pde: float  # the PDE Table III reports
    paper_area_x_die: float  # die-area overhead in GPU-die multiples


def default_pds_configs() -> Dict[PDSKind, PDSConfigEntry]:
    """Build the four rows with areas from the sizing model."""
    circuit_area = required_cr_ivr_area(cross_layer=False)
    cross_area = required_cr_ivr_area(cross_layer=True, control_latency_cycles=60)
    return {
        PDSKind.CONVENTIONAL_VRM: PDSConfigEntry(
            PDSKind.CONVENTIONAL_VRM, "Single layer VRM", 0.0, False,
            paper_pde=0.80, paper_area_x_die=0.0,
        ),
        PDSKind.SINGLE_LAYER_IVR: PDSConfigEntry(
            PDSKind.SINGLE_LAYER_IVR, "Single layer IVR", 0.0, False,
            paper_pde=0.85, paper_area_x_die=0.33,
        ),
        PDSKind.VS_CIRCUIT_ONLY: PDSConfigEntry(
            PDSKind.VS_CIRCUIT_ONLY, "VS circuit only", circuit_area, False,
            paper_pde=0.93, paper_area_x_die=1.72,
        ),
        PDSKind.VS_CROSS_LAYER: PDSConfigEntry(
            PDSKind.VS_CROSS_LAYER, "VS cross-layer", cross_area, True,
            paper_pde=0.923, paper_area_x_die=0.20,
        ),
    }


PDS_CONFIGS = default_pds_configs()
