"""Collaborative power-management experiments (Figs. 15-17).

These drivers couple the GPU timing model with the higher-level power
optimizations and, for the voltage-stacked variants, the VS-aware
hypervisor (Algorithm 2):

* :func:`run_dfs_experiment` — GRAPE-style DFS chasing a performance
  target, with the hypervisor re-mapping per-SM frequencies on the
  stacked GPU;
* :func:`run_pg_experiment` — Warped-Gates power gating with GATES
  scheduling, with the hypervisor vetoing column-unbalancing gatings on
  the stacked GPU.

Energy accounting: chip energy integrates the power trace; board input
energy divides by the configuration's PDE (analytic model fed with the
trace's measured layer imbalance).  Normalizing by work (instructions)
makes runs of different speed comparable — the basis of the Fig. 15/16
"normalized energy" bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

import numpy as np

from repro.config import StackConfig, SystemConfig
from repro.core.hypervisor import VSAwareHypervisor
from repro.gpu.gpu import GPU
from repro.gpu.isa import ExecUnit
from repro.pdn.efficiency import (
    layer_shuffle_power,
    pde_conventional,
    pde_voltage_stacked,
)
from repro.power_mgmt.dfs import DFSConfig, GrapeDFSController
from repro.power_mgmt.power_gating import (
    PowerGatingConfig,
    WarpedGatesController,
)
from repro.workloads.benchmarks import get_benchmark


@dataclass
class PowerManagementResult:
    """Outcome of one DFS or PG experiment."""

    benchmark: str
    stacked: bool
    trace: np.ndarray  # (cycles, num_sms) watts
    instructions: int
    cycles: int
    frequency_overrides: int = 0
    gating_vetoes: int = 0

    @property
    def mean_power_w(self) -> float:
        return float(self.trace.sum(axis=1).mean())

    @property
    def chip_energy_j(self) -> float:
        return float(self.trace.sum()) / 700e6

    def pde(self) -> float:
        load = self.mean_power_w
        if not self.stacked:
            return pde_conventional(load).pde
        shuffle = layer_shuffle_power(self.trace, StackConfig())
        return pde_voltage_stacked(
            load, shuffle, controller_power_w=1.634e-3
        ).pde

    def input_energy_j(self) -> float:
        return self.chip_energy_j / self.pde()

    def energy_per_instruction_j(self) -> float:
        """Board-input energy per unit of work — the Fig. 15/16 metric."""
        if self.instructions <= 0:
            raise ValueError("no work executed")
        return self.input_energy_j() / self.instructions


def _build_gpu(benchmark: str, seed: int, gating_aware: bool = False) -> GPU:
    spec = get_benchmark(benchmark)
    return GPU(
        spec.kernel,
        config=SystemConfig(),
        seed=seed,
        miss_ratio=spec.miss_ratio,
        jitter=spec.jitter,
        gating_aware_scheduler=gating_aware,
    )


def run_dfs_experiment(
    benchmark: str = "hotspot",
    performance_target: float = 0.7,
    stacked: bool = True,
    cycles: int = 6 * 4096,
    seed: int = 3,
    dfs_config: DFSConfig = DFSConfig(),
) -> PowerManagementResult:
    """GRAPE DFS on a conventional or voltage-stacked GPU.

    On the stacked GPU every per-SM frequency request passes through the
    VS-aware hypervisor, which clamps intra-column frequency spread.
    """
    gpu = _build_gpu(benchmark, seed)
    controller = GrapeDFSController(
        num_sms=gpu.num_sms,
        performance_target=performance_target,
        config=dfs_config,
    )
    hypervisor = VSAwareHypervisor() if stacked else None
    period = dfs_config.decision_period_cycles

    # Calibration pass: one period at full speed per SM.
    baseline_start = np.array(
        [sm.stats.instructions_issued for sm in gpu.sms]
    )
    calibration = gpu.run(period)
    baseline = (
        np.array([sm.stats.instructions_issued for sm in gpu.sms])
        - baseline_start
    )
    controller.calibrate_baseline(np.maximum(baseline, 1.0))

    trace_chunks: List[np.ndarray] = [calibration]
    instructions_before = gpu.total_instructions()
    overrides = 0
    remaining = cycles
    while remaining > 0:
        chunk = min(period, remaining)
        before = np.array([sm.stats.instructions_issued for sm in gpu.sms])
        trace_chunks.append(gpu.run(chunk))
        measured = (
            np.array([sm.stats.instructions_issued for sm in gpu.sms]) - before
        )
        requested = controller.decide(measured * (period / chunk))
        if hypervisor is not None:
            before_overrides = hypervisor.frequency_overrides
            requested = hypervisor.map_frequencies(requested)
            overrides += hypervisor.frequency_overrides - before_overrides
        gpu.set_frequency_scales(requested / dfs_config.nominal_frequency_hz)
        remaining -= chunk

    trace = np.vstack(trace_chunks[1:])  # exclude the calibration period
    return PowerManagementResult(
        benchmark=benchmark,
        stacked=stacked,
        trace=trace,
        instructions=gpu.total_instructions() - instructions_before,
        cycles=cycles,
        frequency_overrides=overrides,
    )


def run_pg_experiment(
    benchmark: str = "hotspot",
    stacked: bool = True,
    cycles: int = 6000,
    seed: int = 3,
    pg_config: PowerGatingConfig = PowerGatingConfig(),
    hypervisor_period: int = 256,
) -> PowerManagementResult:
    """Warped-Gates power gating on a conventional or stacked GPU.

    On the stacked GPU, every ``hypervisor_period`` cycles the current
    gating state is re-validated through Algorithm 2: gatings that push
    a column's leakage imbalance past budget are woken back up.
    """
    gpu = _build_gpu(benchmark, seed, gating_aware=True)
    controllers = [WarpedGatesController(sm, pg_config) for sm in gpu.sms]
    hypervisor = VSAwareHypervisor() if stacked else None

    trace = np.empty((cycles, gpu.num_sms))
    instructions_before = gpu.total_instructions()
    vetoes = 0
    for cycle in range(cycles):
        for controller in controllers:
            controller.step(cycle)
        if hypervisor is not None and cycle % hypervisor_period == 0:
            requested: List[Set[ExecUnit]] = [
                set(sm.gated_units) for sm in gpu.sms
            ]
            before_vetoes = hypervisor.gating_vetoes
            granted = hypervisor.map_gating(requested)
            vetoes += hypervisor.gating_vetoes - before_vetoes
            for sm, allowed in zip(gpu.sms, granted):
                for unit in list(sm.gated_units):
                    if unit not in allowed:
                        sm.ungate_unit(unit, cycle)
        trace[cycle] = gpu.step()

    return PowerManagementResult(
        benchmark=benchmark,
        stacked=stacked,
        trace=trace,
        instructions=gpu.total_instructions() - instructions_before,
        cycles=cycles,
        gating_vetoes=vetoes,
    )


def run_baseline(
    benchmark: str, stacked: bool, cycles: int = 6000, seed: int = 3
) -> PowerManagementResult:
    """No power management: the Fig. 15/16 normalization reference."""
    gpu = _build_gpu(benchmark, seed)
    instructions_before = gpu.total_instructions()
    trace = gpu.run(cycles)
    return PowerManagementResult(
        benchmark=benchmark,
        stacked=stacked,
        trace=trace,
        instructions=gpu.total_instructions() - instructions_before,
        cycles=cycles,
    )
