"""Persistent, config-hash-keyed cache of sweep point results.

The exploration service (:mod:`repro.sim.explore`) revisits the same
design points over and over: successive-halving rounds promote a point
from short screening runs to full-length runs, shards of a long sweep
overlap, and a re-launched exploration starts from the grid's origin
again.  Simulating a point twice is pure waste — a co-simulation is
deterministic in its ``(benchmark, CosimConfig)`` pair, so its metrics
can be served from disk.

:class:`ResultStore` is that disk: an append-only JSONL file where each
line holds one completed :class:`~repro.sim.sweep.SweepPointResult`
record under its cache key

``config_hash(point.config(base)) + ":" + benchmark``

(the same stable hash the telemetry manifest stamps on runs, so a store
entry is traceable to any manifest with the matching hash).  The hash
covers *every* config field — cycles, seed, gains, area — which is what
makes serving safe: a screening run and a full-length run of the same
knobs are different keys.

Robustness contract: the store is best-effort by design.  A truncated
or corrupt line (a writer killed mid-append, a partial copy) degrades
to a cache *miss* for that entry, never a crash; duplicate keys keep
the last writer.  Appends self-heal a torn tail — a file ending
mid-line gets the fragment newline-terminated first, so one torn write
costs exactly one entry, not every append after it.  Appends take an advisory ``fcntl.flock`` on the
store file (where the platform has one), so concurrent writer
*processes* — parallel exploration shards sharing one store — cannot
interleave bytes inside each other's lines.  Only successful results
are cached — failures must re-run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Mapping, Optional

try:  # pragma: no cover — fcntl is POSIX-only; appends stay lockless there
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

from repro.faults import chaos
from repro.sim.cosim import CosimConfig
from repro.sim.sweep import SweepPoint, SweepPointResult
from repro.telemetry import config_hash, to_jsonable


def point_key(point: SweepPoint, base: CosimConfig) -> str:
    """Cache key of ``point`` under ``base``: full-config hash + benchmark."""
    return f"{config_hash(point.config(base))}:{point.benchmark}"


class ResultStore:
    """JSONL-backed map from cache key to a sweep point's result record.

    ``get``/``serve`` hits and misses are counted (``stats()``) so the
    exploration telemetry can report cache effectiveness per round.
    The constructor loads the whole file tolerantly; ``put`` appends
    one line and flushes, so concurrent *readers* of the file see only
    whole lines or a tolerated partial tail.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._entries: Dict[str, Dict[str, object]] = {}
        self.corrupt_lines = 0
        self.hits = 0
        self.misses = 0
        self.puts = 0
        if self.path.exists():
            self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        with open(self.path) as handle:
            for line in handle.read().splitlines():
                if not line.strip():
                    continue
                try:
                    entry = json.loads(line)
                    key = entry["key"]
                    record = entry["record"]
                    if not isinstance(key, str) or not isinstance(record, dict):
                        raise ValueError("malformed store entry")
                    # Probe that the record rebuilds; a record that
                    # cannot is as useless as a torn line.
                    SweepPointResult.from_record(record)
                except (ValueError, KeyError, TypeError):
                    self.corrupt_lines += 1
                    continue
                self._entries[key] = record

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The stored record under ``key``, counting the hit or miss."""
        record = self._entries.get(key)
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        return record

    def serve(self, key: str, point: SweepPoint) -> Optional[SweepPointResult]:
        """Rebuild the cached result of ``point``, or ``None`` on miss.

        The result is re-attached to the live ``point`` (the stored
        grid index may come from a different shard's numbering) and
        flagged ``cached``; its metrics are byte-identical to what the
        original simulation recorded.
        """
        record = self.get(key)
        if record is None:
            return None
        result = SweepPointResult.from_record(record)
        result.point = point
        result.cached = True
        return result

    def _tail_torn(self) -> bool:
        """Whether the store file ends mid-line (torn previous append)."""
        try:
            with open(self.path, "rb") as probe:
                probe.seek(-1, os.SEEK_END)
                return probe.read(1) != b"\n"
        except OSError:
            # Missing or empty file: nothing to heal.
            return False

    def put(self, key: str, result: SweepPointResult) -> bool:
        """Persist a *successful* result under ``key``.

        Failures are not cached (they must re-run); re-putting an
        existing key is a no-op so refinement rounds do not bloat the
        file.  Returns whether a line was written.
        """
        if not result.ok or key in self._entries:
            return False
        record = to_jsonable(result.to_record())
        self._entries[key] = record
        line = json.dumps(
            {"key": key, "record": record}, separators=(",", ":")
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            with open(self.path, "a") as handle:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                try:
                    # Self-heal a torn tail (a writer killed mid-append
                    # leaves half a line with no newline): terminate it
                    # first so the fragment degrades to one corrupt line
                    # instead of swallowing this entry too.  Probed under
                    # the lock, so no other writer can interleave.
                    if self._tail_torn():
                        handle.write("\n")
                    event = chaos.fire("store_append")
                    if event is not None:
                        chaos.sabotage_write(event, handle, line + "\n")
                    handle.write(line + "\n")
                    handle.flush()
                    os.fsync(handle.fileno())
                finally:
                    if fcntl is not None:
                        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        except OSError:
            # Best-effort contract: a failed append (disk full, torn
            # write) costs persistence of this one entry — readers of
            # the file tolerate the partial tail as a cache miss, and
            # this process still holds the record in memory.
            return False
        self.puts += 1
        return True

    # ------------------------------------------------------------------
    def stats(self) -> Mapping[str, object]:
        lookups = self.hits + self.misses
        return {
            "path": str(self.path),
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "hit_rate": self.hits / lookups if lookups else 0.0,
            "corrupt_lines": self.corrupt_lines,
        }
