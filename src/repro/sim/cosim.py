"""The coupled GPU / PDN / controller simulation loop.

Per GPU clock cycle:

1. the GPU timing model advances one cycle with whatever actuation is
   in force (issue widths, fake rates, DCC compensation) and emits each
   SM's power;
2. each SM's power becomes a load current ``I = P / V_sm`` on the PDN
   (the time-varying ideal-current-source convention), plus any DCC
   compensation power on its layer;
3. the transient solver advances the circuit by one clock period (in
   ``circuit_substeps`` trapezoidal steps for resonance accuracy);
4. the per-SM supply voltages feed the detectors and (cross-layer only)
   the Algorithm 1 controller, whose latency-delayed commands update
   the GPU's actuation for subsequent cycles.

:class:`LayerShutoffEvent` reproduces the paper's synthetic worst-case
imbalance (Fig. 9): at a chosen time a whole layer's SMs are forced to
stop issuing, dropping them to idle power while the rest of the stack
keeps running.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.circuits import (
    BatchSolverGuard,
    BatchTransientSolver,
    NumericalDivergence,
    SolverGuard,
    TransientSolver,
)
from repro.config import StackConfig, SystemConfig
from repro.faults import chaos
from repro.core.actuators import WeightedActuation
from repro.core.controller import (
    ControllerBank,
    ControllerConfig,
    VoltageSmoothingController,
)
from repro.gpu.gpu import GPU
from repro.gpu.kernels import KernelSpec
from repro.pdn.builder import StackedPDN, build_stacked_pdn
from repro.pdn.efficiency import (
    EfficiencyBreakdown,
    layer_shuffle_power,
    pde_voltage_stacked,
)
from repro.pdn.parameters import DEFAULT_PDN, PDNParameters
from repro.workloads.benchmarks import get_benchmark
from repro.workloads.traces import PowerTrace

if TYPE_CHECKING:  # pragma: no cover — typing only, avoids import cost
    from repro.faults import FaultSchedule
    from repro.telemetry import Telemetry


# Backend/shard facts from this process's most recent run_cosim_batch —
# sweep workers thread it into their heartbeat files so `repro top` can
# show a fleet that silently degraded to the NumPy solver fallback.
_LAST_BATCH_SOLVER: Dict[str, object] = {}


def last_batch_solver_info() -> Dict[str, object]:
    """Solver backend/shard info from the most recent batch run.

    Returns a copy of ``{"backend": "c"|"numpy", "shards": int,
    "lanes": int}``, or an empty dict until :func:`run_cosim_batch`
    has completed once in this process.
    """
    return dict(_LAST_BATCH_SOLVER)


@dataclass(frozen=True)
class LayerShutoffEvent:
    """Force a layer's SMs idle from ``start_cycle`` to ``end_cycle``."""

    layer: int = 3
    start_cycle: int = 2000
    end_cycle: int = 10**9

    def active(self, cycle: int) -> bool:
        return self.start_cycle <= cycle < self.end_cycle


@dataclass(frozen=True)
class CosimConfig:
    """Knobs of one co-simulation run."""

    cycles: int = 3000
    warmup_cycles: int = 200
    cr_ivr_area_mm2: float = 105.8  # the paper's 0.2x-die design point
    use_controller: bool = True
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    # Reliability default: DIWS + FII (Algorithm 1's paired actuation).
    # Performance studies override with DIWS-only or swept weights.
    actuation: Optional[WeightedActuation] = field(
        default_factory=lambda: WeightedActuation(w1=1.0, w2=1.0, w3=0.0)
    )
    circuit_substeps: int = 2
    seed: int = 1
    shutoff: Optional[LayerShutoffEvent] = None
    # Declarative cross-layer fault injection (repro.faults): a
    # FaultSchedule of timed circuit / architecture / system events,
    # threaded through the loop by a FaultInjector.  Event cycles use
    # the same convention as ``shutoff`` (0 = end of warmup).
    faults: Optional["FaultSchedule"] = None
    # Swap in an alternative controller implementation (duck-typed:
    # observe / commands_for / throttled_cycles) — used by the
    # prior-art ablation (e.g. GlobalThrottleController).
    controller_object: Optional[object] = field(default=None, compare=False)
    # GPU engine selection: the vectorized struct-of-arrays engine is
    # bit-identical to the per-object reference (repro.gpu.engine), so
    # this only matters when deliberately exercising the reference.
    vectorized_gpu: bool = True
    # Numerical guard-rails (repro.circuits.SolverGuard): detect
    # non-finite / blown-up solves once per cycle and recover by
    # refactorizing, then substep halving, before declaring the run
    # diverged.  The clean-path check is bit-transparent (gated <=2% in
    # benchmarks/test_perf_guard.py); disable only for overhead
    # measurements.
    solver_guard: bool = True

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise ValueError("cycles must be positive")
        if self.warmup_cycles < 0:
            raise ValueError("warmup cannot be negative")
        if self.warmup_cycles >= self.cycles:
            raise ValueError(
                f"warmup_cycles ({self.warmup_cycles}) must be smaller than "
                f"the measured window ({self.cycles} cycles): a warmup that "
                "long leaves (nearly) nothing to measure — every statistic "
                "would be dominated by settling transients or empty windows"
            )
        if self.circuit_substeps <= 0:
            raise ValueError("need at least one circuit substep")


class CosimResult:
    """Waveforms and statistics of one co-simulation."""

    def __init__(
        self,
        benchmark: str,
        power_trace: PowerTrace,
        sm_voltages: np.ndarray,
        supply_current: np.ndarray,
        stack: StackConfig,
        instructions: int,
        fake_instructions: int,
        throttled_cycles: int,
        controller_power_w: float,
        kernels_completed: int = 0,
        mean_dcc_power_w: float = 0.0,
    ) -> None:
        self.benchmark = benchmark
        self.power_trace = power_trace
        self.sm_voltages = sm_voltages  # (cycles, num_sms)
        self.supply_current = supply_current  # (cycles,)
        self.stack = stack
        self.instructions = instructions
        self.fake_instructions = fake_instructions
        self.throttled_cycles = throttled_cycles
        self.controller_power_w = controller_power_w
        self.kernels_completed = kernels_completed
        self.mean_dcc_power_w = mean_dcc_power_w
        self.kernel_durations: np.ndarray = np.array([])
        # Filled by run_cosim when a FaultSchedule was injected: the
        # manifest's ``faults`` section (events, counters, verdict).
        self.fault_report: Optional[Dict[str, object]] = None
        # The droop flight recorder that rode along, when one did
        # (always with telemetry, or passed explicitly): full-resolution
        # windows around every guardband onset / safe-state edge.
        self.flight = None
        # Structured verdict when the transient solve diverged and the
        # guard-rail ladder was exhausted (see SolverGuard): forensics
        # dict with cycle/stage/worst-node, plus truncated waveforms up
        # to the last good cycle.  None on a healthy run.
        self.divergence: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    @property
    def diverged(self) -> bool:
        return self.divergence is not None

    @property
    def num_cycles(self) -> int:
        return self.sm_voltages.shape[0]

    @property
    def min_voltage(self) -> float:
        # Diverged runs may truncate to an empty window.
        if self.sm_voltages.size == 0:
            return float("nan")
        return float(self.sm_voltages.min())

    @property
    def max_voltage(self) -> float:
        if self.sm_voltages.size == 0:
            return float("nan")
        return float(self.sm_voltages.max())

    def voltage_percentiles(self, q) -> np.ndarray:
        """Noise-distribution percentiles over all SMs and cycles (Fig. 11)."""
        return np.percentile(self.sm_voltages, q)

    def worst_sm_voltage_trace(self) -> np.ndarray:
        """Per-cycle minimum SM voltage (Fig. 9's critical waveform)."""
        return self.sm_voltages.min(axis=1)

    def efficiency(
        self, params: PDNParameters = DEFAULT_PDN
    ) -> EfficiencyBreakdown:
        """PDE breakdown of this run, from the measured trace imbalance."""
        load = self.power_trace.mean_power_w
        shuffle = layer_shuffle_power(self.power_trace.data, self.stack)
        return pde_voltage_stacked(
            load, shuffle, self.stack, params,
            controller_power_w=self.controller_power_w,
        )

    def throughput(self) -> float:
        """Real instructions per cycle across the GPU."""
        if self.num_cycles == 0:
            return 0.0
        return self.instructions / self.num_cycles

    def cycles_per_kernel(self) -> float:
        """Mean kernel completion time — the performance-penalty metric.

        Throttling that merely eats kernel-tail slack does not extend
        completion time; throttling on the critical SM does.  Requires
        at least one completed kernel in the measured window.
        """
        if len(self.kernel_durations) == 0:
            raise ValueError(
                "no kernel completed in the measurement window; run longer"
            )
        return float(np.mean(self.kernel_durations))

    def summary(self) -> str:
        eff = self.efficiency()
        # Short runs may finish zero kernels; the human-facing summary
        # degrades to "n/a" while cycles_per_kernel() keeps raising for
        # library callers that need the real number.
        try:
            kernel_time = f"{self.cycles_per_kernel():.0f} cycles/kernel"
        except ValueError:
            kernel_time = "cycles/kernel n/a"
        return (
            f"{self.benchmark}: {self.num_cycles} cycles, "
            f"mean power {self.power_trace.mean_power_w:.1f} W, "
            f"PDE {eff.pde:.1%}, "
            f"V(min) {self.min_voltage:.3f} V, "
            f"throughput {self.throughput():.1f} instr/cycle, "
            f"{kernel_time}, "
            f"fakes {self.fake_instructions}"
        )


def run_cosim(
    benchmark: str = "hotspot",
    config: CosimConfig = CosimConfig(),
    system: SystemConfig = SystemConfig(),
    params: PDNParameters = DEFAULT_PDN,
    kernel: Optional[KernelSpec] = None,
    telemetry: Optional["Telemetry"] = None,
    flight=None,
) -> CosimResult:
    """Run one coupled GPU/PDN/controller simulation.

    ``benchmark`` picks a paper workload; pass ``kernel`` to run a
    custom :class:`KernelSpec` instead (with default memory behaviour).

    ``telemetry`` (a :class:`repro.telemetry.Telemetry`) records the
    per-stage wall-clock split (GPU model / transient solve /
    controller), solver and controller work counters, decimated
    per-cycle voltage/power channels, and headline metrics.  ``None``
    (the default) leaves the hot loop on its untimed fast path.

    ``flight`` (a :class:`repro.telemetry.FlightRecorder`) rides the
    loop and captures full-resolution windows around guardband onsets
    and safe-state edges.  One is created automatically whenever
    telemetry is enabled; pass ``False`` to suppress that, or your own
    recorder to control the window geometry.  The finalized recorder is
    attached as ``result.flight``.
    """
    tele = telemetry if telemetry is not None and telemetry.enabled else None
    setup_start = perf_counter()
    if tele is not None:
        tele.event("cosim_start", benchmark=benchmark, cycles=config.cycles,
                   warmup_cycles=config.warmup_cycles, seed=config.seed)

    stack = system.stack
    if kernel is None:
        spec = get_benchmark(benchmark)
        gpu = GPU(
            spec.kernel, config=system, seed=config.seed,
            miss_ratio=spec.miss_ratio, jitter=spec.jitter,
            vectorized=config.vectorized_gpu,
        )
        name = spec.name
    else:
        gpu = GPU(
            kernel, config=system, seed=config.seed,
            vectorized=config.vectorized_gpu,
        )
        name = kernel.name

    pdn = build_stacked_pdn(
        stack=stack, params=params, cr_ivr_area_mm2=config.cr_ivr_area_mm2
    )
    cycle_s = system.gpu.cycle_time_s
    solver = TransientSolver(pdn.circuit, dt=cycle_s / config.circuit_substeps)
    # Seed the circuit at a balanced operating point.
    nominal_current = (
        system.power.sm_peak_power_w * 0.5 / stack.sm_voltage
    )
    pdn.set_sm_currents(np.full(stack.num_sms, nominal_current))
    solver.initialize_dc()
    guard = SolverGuard(solver) if config.solver_guard else None
    # Chaos harness (repro.faults.chaos): pre-resolve the scheduled
    # cycles so an inactive run pays one None check per cycle.
    monkey = chaos.current()
    chaos_cycles = monkey.cycle_schedule() if monkey is not None else None

    injector = None
    if config.faults is not None:
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(
            config.faults, stack, pdn=pdn, solver=solver
        )
        if tele is not None:
            tele.event(
                "faults_armed", schedule=config.faults.name,
                num_events=len(config.faults), seed=config.faults.seed,
            )

    controller = None
    controller_power = 0.0
    if config.use_controller:
        if config.controller_object is not None:
            controller = config.controller_object
        else:
            controller = VoltageSmoothingController(
                stack=stack,
                config=config.controller,
                actuation=config.actuation,
                dt_s=cycle_s,
            )
        from repro.core.overheads import ControllerOverheads

        controller_power = ControllerOverheads().power_w

    num = stack.num_sms
    # The droop flight recorder: always-on alongside telemetry (cost
    # gated by benchmarks/test_perf_observability.py), opt-in otherwise.
    if flight is None and tele is not None:
        from repro.telemetry.flight import FlightRecorder

        flight = FlightRecorder(
            num_sms=num,
            guardband_v=stack.min_safe_voltage,
            cycle_offset=-config.warmup_cycles,
        )
    elif flight is False:
        flight = None
    # Whether the controller exposes the safe-state flag the recorder
    # samples (duck-typed alternatives may not).
    flight_safe = flight is not None and hasattr(controller, "in_safe_state")

    # Vectorized SM-voltage readout: (top, bottom) node indices per SM.
    top_idx = np.empty(num, dtype=int)
    bot_idx = np.empty(num, dtype=int)
    bot_is_ground = np.zeros(num, dtype=bool)
    for sm in range(num):
        top, bottom = pdn.sm_terminals(sm)
        top_idx[sm] = solver.structure.node(top)
        if bottom == "0":
            bot_is_ground[sm] = True
            bot_idx[sm] = 0
        else:
            bot_idx[sm] = solver.structure.node(bottom)

    sm_voltages = np.empty((config.cycles, num))
    powers_rec = np.empty((config.cycles, num))
    supply_current = np.empty(config.cycles)
    dcc_powers = np.zeros(num)
    voltages_now = np.full(num, stack.sm_voltage)
    shutoff_sms: List[int] = (
        stack.sms_in_layer(config.shutoff.layer) if config.shutoff else []
    )

    conductance_bias = params.sm_conductance * stack.sm_voltage
    total_cycles = config.warmup_cycles + config.cycles
    dcc_energy_accum = 0.0
    # All work counters are measured over the recorded window only:
    # each is snapshotted at the warmup boundary and subtracted at the
    # end, so warmup cycles never inflate fake-instruction counts or
    # throttle fractions (the Fig. 13/14 inputs).
    instructions_at_start = 0
    fakes_at_start = 0
    throttled_at_start = 0
    # Telemetry: stage accumulators.  ``timing`` gates five perf_counter
    # reads per cycle; with telemetry off the loop body is branch-only.
    timing = tele is not None
    decision = None  # last controller decision (flight recorder sample)
    divergence: Optional[NumericalDivergence] = None
    recorded_count = config.cycles
    t_gpu = t_circuit = t_controller = t_record = 0.0
    if timing:
        tele.add_time("setup", perf_counter() - setup_start)
        v_chan = tele.channel("min_sm_voltage_v")
        p_chan = tele.channel("total_power_w")
        d_chan = tele.channel("dcc_power_w")
        li_chan = tele.channel("worst_layer_imbalance_w")
    loop_start = perf_counter()
    for cycle in range(total_cycles):
        recording = cycle >= config.warmup_cycles
        if cycle == config.warmup_cycles:
            instructions_at_start = gpu.total_instructions()
            fakes_at_start = gpu.total_fake_instructions()
            if controller is not None:
                throttled_at_start = controller.throttled_cycles

        # Fault-event timing shares the shutoff convention: cycle 0 of
        # an event window is the end of warmup.
        recorded_cycle = cycle - config.warmup_cycles

        # 1. GPU cycle under the actuation currently in force.
        if timing:
            t0 = perf_counter()
        powers = gpu.step()
        if injector is not None:
            # Circuit faults mutate element values (one re-factorization
            # per activation edge, before this cycle's solve); process
            # variation scales the emitted powers *before* they become
            # currents or records, keeping the PDE ledger closed.
            injector.apply_circuit_faults(recorded_cycle)
            powers = injector.scale_powers(recorded_cycle, powers)
            scales = injector.frequency_scales(recorded_cycle)
            if scales is not None:
                gpu.set_frequency_scales(scales)
        if timing:
            t1 = perf_counter()
            t_gpu += t1 - t0

        # 2. Powers -> PDN currents.  Per the paper's convention each SM
        # is a time-varying *ideal* current source: I = P / V_nominal.
        # (Dividing by the instantaneous voltage would add the classic
        # constant-power negative resistance and destabilize the grid.)
        # The netlist's small-signal load conductance already draws
        # ~g*V per SM, so that bias is deducted from the source to keep
        # the total SM draw equal to P / V_nominal.
        currents = (powers + dcc_powers) / stack.sm_voltage - conductance_bias
        pdn.set_sm_currents(np.maximum(currents, 0.0))
        if recording:
            # The DCC power *applied* this cycle (last decision's
            # command, just injected as current above).  Captured before
            # the controller updates dcc_powers for the next cycle, so
            # mean_dcc_power_w ledgers what the PDN actually saw — not
            # the final cycle's never-applied command.
            dcc_applied_w = float(dcc_powers.sum())

        # 3. Circuit transient over one clock period.
        if chaos_cycles is not None and recorded_cycle in chaos_cycles:
            for event in monkey.take_cycle(recorded_cycle):
                # Lane-targeted events belong to run_cosim_batch; the
                # serial loop honours only untargeted poisoning.
                if event.action == "nan_poison" and event.lane is None:
                    solver._react_v[:] = np.nan
        if guard is not None:
            try:
                node_v = guard.step_cycle(
                    config.circuit_substeps, cycle=recorded_cycle
                )
            except NumericalDivergence as exc:
                # Structured diverged verdict: truncate the recording at
                # the last completed cycle and stop simulating.
                divergence = exc
                recorded_count = max(0, cycle - config.warmup_cycles)
                break
        else:
            for _ in range(config.circuit_substeps):
                node_v = solver.step()
        bottoms = np.where(bot_is_ground, 0.0, node_v[bot_idx])
        voltages_now = node_v[top_idx] - bottoms
        if timing:
            t2 = perf_counter()
            t_circuit += t2 - t1

        # Halted SMs (legacy shutoff event + scheduled layer shutoffs /
        # power gating) must not block the kernel-launch barrier.
        halted: set = set()
        if config.shutoff is not None and config.shutoff.active(recorded_cycle):
            halted.update(shutoff_sms)
        if injector is not None:
            halted.update(injector.halted_sms(recorded_cycle))
        if config.shutoff is not None or injector is not None:
            gpu.barrier_exempt = halted
        halted_idx = sorted(halted)

        # 4. Detection + control (commands apply after the loop latency).
        # Ownership contract: decision arrays belong to the controller
        # and are immutable once enqueued (commands_for caches a
        # throttle flag on that assumption) — every value retained or
        # mutated here is copied at this boundary.  widths is mutated
        # (halted SMs) so it is always copied; fakes is consumed
        # synchronously by set_fake_rates (which copies into the
        # engine); dcc is retained across cycles in dcc_powers, so it
        # is copied into the loop-owned buffer rather than aliased.
        if controller is not None:
            if injector is None:
                controller.observe(cycle, voltages_now)
                decision = controller.commands_for(cycle)
                widths = decision.issue_widths.copy()
                fakes = decision.fake_rates
                dcc = decision.dcc_powers_w
            else:
                # Architecture faults: the detectors see a corrupted
                # copy of the voltages (or nothing at all this cycle),
                # and jitter delays which enqueued decision is read.
                seen = injector.corrupt_sensors(recorded_cycle, voltages_now)
                if injector.observation_allowed(recorded_cycle):
                    controller.observe(cycle, seen)
                decision = controller.commands_for(
                    cycle - injector.extra_latency(recorded_cycle)
                )
                widths = decision.issue_widths.copy()
                fakes = decision.fake_rates
                dcc = decision.dcc_powers_w
                if injector.touches_actuation:
                    fakes = fakes.copy()
                    dcc = dcc.copy()
                    injector.distort_actuation(
                        recorded_cycle, widths, fakes, dcc
                    )
            if halted_idx:
                widths[halted_idx] = 0.0
            gpu.set_issue_widths(widths)
            gpu.set_fake_rates(fakes)
            np.copyto(dcc_powers, dcc)
        elif config.shutoff is not None or injector is not None:
            widths = np.full(num, 2.0)
            if halted_idx:
                widths[halted_idx] = 0.0
            gpu.set_issue_widths(widths)
        if timing:
            t3 = perf_counter()
            t_controller += t3 - t2

        if flight is not None:
            flight.observe(
                voltages_now,
                decision,
                injector.active_kinds(recorded_cycle)
                if injector is not None
                else None,
                controller.in_safe_state if flight_safe else False,
            )

        if recording:
            k = cycle - config.warmup_cycles
            powers_rec[k] = powers
            sm_voltages[k] = voltages_now
            supply_current[k] = solver.vsource_current("vdd")
            dcc_energy_accum += dcc_applied_w
            if timing:
                v_chan.record(k, voltages_now.min())
                p_chan.record(k, powers.sum())
                d_chan.record(k, dcc_applied_w)
                layer_powers = powers.reshape(
                    stack.num_layers, stack.num_columns
                ).sum(axis=1)
                li_chan.record(
                    k, layer_powers.max() - layer_powers.mean()
                )
        if timing:
            t_record += perf_counter() - t3

    if timing:
        # Attribute the loop's residual (iteration overhead, warmup
        # bookkeeping, the timing reads themselves) to its own stage so
        # the stage sum reconciles with wall-clock time.
        loop_wall = perf_counter() - loop_start
        tele.add_time("gpu_model", t_gpu)
        tele.add_time("transient_solve", t_circuit)
        tele.add_time("controller", t_controller)
        tele.add_time("record", t_record)
        tele.add_time(
            "loop_other",
            max(0.0, loop_wall - t_gpu - t_circuit - t_controller - t_record),
        )

    if divergence is not None:
        sm_voltages = sm_voltages[:recorded_count]
        powers_rec = powers_rec[:recorded_count]
        supply_current = supply_current[:recorded_count]

    trace = PowerTrace(
        powers_rec, frequency_hz=system.gpu.sm_clock_hz, name=name
    )
    # Kernel accounting: a kernel is *completed* in the window when both
    # its launch and the next launch fall at or after the warmup
    # boundary, i.e. one completed-kernel interval per np.diff entry.
    # kernels_completed counts exactly those intervals, so it always
    # agrees with kernel_durations (a bare launch count would disagree
    # by one for the still-running kernel, and cycles_per_kernel()'s
    # guard would check the wrong population).
    launches = np.asarray(gpu.kernel_launch_cycles)
    durations = np.diff(launches[launches >= config.warmup_cycles])
    result = CosimResult(
        benchmark=name,
        power_trace=trace,
        sm_voltages=sm_voltages,
        supply_current=supply_current,
        stack=stack,
        instructions=gpu.total_instructions() - instructions_at_start,
        fake_instructions=gpu.total_fake_instructions() - fakes_at_start,
        throttled_cycles=(
            controller.throttled_cycles - throttled_at_start
            if controller is not None
            else 0
        ),
        controller_power_w=controller_power,
        kernels_completed=len(durations),
        mean_dcc_power_w=dcc_energy_accum / (
            config.cycles if divergence is None else max(1, recorded_count)
        ),
    )
    result.kernel_durations = durations
    if divergence is not None:
        info = divergence.forensics()
        info["benchmark"] = name
        result.divergence = info
    if injector is not None and result.num_cycles > 0:
        from repro.faults.injector import build_fault_report

        result.fault_report = build_fault_report(injector, result, controller)
    if flight is not None:
        if divergence is not None:
            flight.force_dump(
                "numerical_divergence",
                min_voltage_v=(
                    float("nan")
                    if divergence.worst_value is None
                    else float(divergence.worst_value)
                ),
            )
        flight.finalize()
        result.flight = flight
        if tele is not None:
            tele.set_section("flight", flight.summary())
    if tele is not None:
        with tele.timer("finalize"):
            _record_cosim_telemetry(
                tele, config, result, solver, controller, guard=guard
            )
    return result


def _record_cosim_telemetry(
    tele, config: CosimConfig, result: CosimResult, solver, controller,
    guard=None,
) -> None:
    """Flush run counters and headline metrics into the recorder."""
    tele.incr("cycles", config.cycles)
    tele.incr("warmup_cycles", config.warmup_cycles)
    tele.incr("solver_steps", solver.stats.steps)
    tele.incr("solver_factorizations", solver.stats.factorizations)
    tele.incr("solver_dc_solves", solver.stats.dc_solves)
    if guard is not None:
        for key, value in guard.counters().items():
            tele.incr(f"guard_{key}", value)
    # GPU C-backend fallback accounting: a failed on-demand build of
    # _enginec.c is warned about once and surfaced here as a counter so
    # campaigns notice the silent perf cliff.
    from repro.gpu._cbuild import build_fallback_count

    fallbacks = build_fallback_count()
    if fallbacks:
        tele.incr("gpu.backend_fallback", fallbacks)
    # Same accounting for the batched solver kernel (_solverc.c): the
    # NumPy fallback is bit-identical but slow, so fleets need to see it.
    from repro.circuits._solverc import build_fallback_count as _solver_fb

    solver_fallbacks = _solver_fb()
    if solver_fallbacks:
        tele.incr("solver.backend_fallback", solver_fallbacks)
    if result.divergence is not None:
        tele.event("numerical_divergence", **result.divergence)
    if controller is not None:
        # Duck-typed controllers (prior-art ablations) expose a subset.
        stats = getattr(controller, "stats", None)
        stats = stats() if callable(stats) else {}
        for key in ("decisions_made", "triggers", "throttle_decisions",
                    "boost_decisions"):
            if key in stats:
                tele.incr(f"controller_{key}", stats[key])
        for actuator, count in (stats.get("actuator_decisions") or {}).items():
            tele.incr(f"controller_{actuator}_decisions", count)
        for actuator, count in (stats.get("slew_saturations") or {}).items():
            tele.incr(f"controller_slew_saturated_{actuator}", count)
    tele.incr("controller_throttled_cycles", result.throttled_cycles)
    tele.incr("fake_instructions", result.fake_instructions)
    tele.incr("instructions", result.instructions)
    tele.incr("kernels_completed", result.kernels_completed)
    metrics: Dict[str, object] = {
        "benchmark": result.benchmark,
        # Divergence and recovery work as gateable metrics: baselines
        # carry zeros, so repro compare flags any diverged or
        # recovery-burning candidate with zero-tolerance thresholds.
        "diverged": 1.0 if result.diverged else 0.0,
        "guard_recoveries": (
            float(guard.recoveries) if guard is not None else 0.0
        ),
    }
    if result.num_cycles > 0:
        metrics.update({
            "min_voltage_v": result.min_voltage,
            "max_voltage_v": result.max_voltage,
            "mean_power_w": result.power_trace.mean_power_w,
            "pde": result.efficiency().pde,
            "throughput_ipc": result.throughput(),
            "mean_dcc_power_w": result.mean_dcc_power_w,
        })
    tele.set_metrics(metrics)
    # The noise observatory: band decomposition, droop-event log, PDE
    # loss ledger and per-layer imbalance, embedded as the manifest's
    # ``noise`` section (rendered back by ``repro observe`` and gated
    # by ``repro compare``).  Too-short runs skip it with an event.
    if result.num_cycles >= 8:
        from repro.analysis.observatory import compute_noise_report

        tele.set_section("noise", compute_noise_report(result).to_dict())
    else:
        tele.event(
            "noise_report_skipped",
            reason="too few recorded cycles",
            cycles=result.num_cycles,
        )
    # Fault-injection section: injected events, degradation counters
    # and the guardband verdict (gated by ``repro compare`` via the
    # flat ``faults.*`` summary keys).
    if result.fault_report is not None:
        tele.set_section("faults", result.fault_report)
        tele.event(
            "fault_verdict",
            verdict=result.fault_report["verdict"],
            min_voltage_v=result.fault_report["summary"]["min_voltage_v"],
        )
    tele.event(
        "cosim_done", benchmark=result.benchmark,
        min_voltage_v=result.min_voltage,
        throughput_ipc=result.throughput(),
    )


def run_crosslayer_cosim(
    benchmark: str = "hotspot", cycles: int = 2000, **kwargs
) -> CosimResult:
    """Convenience entry point: default cross-layer configuration."""
    return run_cosim(
        benchmark=benchmark, config=CosimConfig(cycles=cycles, **kwargs)
    )


# ---------------------------------------------------------------------------
# Batched struct-of-scenarios engine
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CosimLane:
    """One scenario of a batched co-simulation.

    Lanes in a batch must share a *topology family* — identical
    ``cycles``, ``warmup_cycles``, ``circuit_substeps`` and
    ``cr_ivr_area_mm2`` (the knobs that shape the netlist and the
    lock-stepped timeline) — while benchmark/kernel, seed, controller
    gains, actuation weights, shutoff events and fault schedules may
    vary freely per lane.
    """

    benchmark: str = "hotspot"
    config: CosimConfig = field(default_factory=CosimConfig)
    kernel: Optional[KernelSpec] = None


_LANE_SHARED_FIELDS = (
    "cycles", "warmup_cycles", "circuit_substeps", "cr_ivr_area_mm2",
    "solver_guard",
)


class _BatchLaneState:
    """Internal per-lane simulation state of ``run_cosim_batch``."""

    __slots__ = (
        "index", "name", "config", "gpu", "pdn", "solver", "injector",
        "controller", "controller_power", "in_bank", "shutoff_sms",
        "instructions_at_start", "fakes_at_start", "throttled_at_start",
        "applied_decision", "applied_halted", "halted_idx",
        "count_from", "active_throttling",
        "in_fast", "last_decision", "flight", "flight_safe",
        "row", "dead", "dead_at", "divergence", "guard",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        # Quarantine bookkeeping: ``row`` is the lane's current row in
        # the compacted batch arrays (== index until an eviction);
        # ``dead_at`` is the count of fully recorded cycles when the
        # lane was evicted.
        self.row = index
        self.dead = False
        self.dead_at = 0
        self.divergence = None
        self.guard = None
        self.injector = None
        self.controller = None
        self.controller_power = 0.0
        self.in_bank = False
        # Flight-recorder sampling state: fast lanes read the bank's
        # active decision; slow lanes record the last commands_for
        # return here (what serial run_cosim sees each cycle).
        self.in_fast = False
        self.last_decision = None
        self.flight = None
        self.flight_safe = False
        self.shutoff_sms: List[int] = []
        self.instructions_at_start = 0
        self.fakes_at_start = 0
        self.throttled_at_start = 0
        # Actuation gating: the last applied (decision, halted set).
        # GPU setters are idempotent for identical values, so re-applying
        # an unchanged decision is skipped; holding a strong reference to
        # the applied decision keeps the identity check sound.
        self.applied_decision = None
        self.applied_halted: tuple = ()
        self.halted_idx: List[int] = []
        # Event-driven throttle accounting (fast lanes): the active
        # decision's throttle flag covers the half-open cycle span
        # [count_from, next pop); the span length is credited to
        # throttled_cycles at the next pop/flush, replicating the
        # serial one-count-per-cycle commands_for bookkeeping.
        self.count_from = 0
        self.active_throttling = False


def run_cosim_batch(
    lanes: List[CosimLane],
    system: SystemConfig = SystemConfig(),
    params: PDNParameters = DEFAULT_PDN,
    telemetry: Optional["Telemetry"] = None,
    flights=None,
) -> List[CosimResult]:
    """Run B co-simulation scenarios lock-stepped as one batch.

    Semantically equivalent to ``[run_cosim(l.benchmark, l.config, ...)
    for l in lanes]`` — and *bit-identical* to it: every array op that
    crosses the batch axis is elementwise with per-lane broadcasts (or a
    row-wise reduction), the circuit back-substitution stays one LAPACK
    call per lane, and everything data-dependent (kernel scheduling,
    fault RNG, triggered controller decisions) runs on per-lane objects.
    The serial path is the correctness oracle; the batch exists for
    throughput (one NumPy dispatch per array op instead of B).

    All lanes must share the topology-family fields of
    :class:`CosimLane`.  ``telemetry`` records batch-level stage timings
    and events only; per-lane manifest sections (noise report, decimated
    channels) remain a ``run_cosim`` feature.

    ``flights`` is a per-lane list of
    :class:`repro.telemetry.FlightRecorder` (``None`` entries skip a
    lane).  As in ``run_cosim``, recorders are created automatically
    for every lane when telemetry is enabled (``False`` suppresses
    that) and attached as ``result.flight``; recording is observation
    only, so lanes stay bit-identical to their serial runs.
    """
    if not lanes:
        raise ValueError("need at least one lane")
    first_cfg = lanes[0].config
    for lane in lanes[1:]:
        for field_name in _LANE_SHARED_FIELDS:
            a = getattr(first_cfg, field_name)
            b = getattr(lane.config, field_name)
            if a != b:
                raise ValueError(
                    "lanes do not share a topology family: "
                    f"{field_name} differs ({a} != {b}); run incompatible "
                    "scenarios in separate batches"
                )

    tele = telemetry if telemetry is not None and telemetry.enabled else None
    setup_start = perf_counter()
    num_lanes = len(lanes)
    stack = system.stack
    num = stack.num_sms
    cycle_s = system.gpu.cycle_time_s
    conductance_bias = params.sm_conductance * stack.sm_voltage
    nominal_current = system.power.sm_peak_power_w * 0.5 / stack.sm_voltage
    warmup = first_cfg.warmup_cycles
    cycles = first_cfg.cycles
    substeps = first_cfg.circuit_substeps
    total_cycles = warmup + cycles
    if tele is not None:
        tele.event(
            "cosim_batch_start", lanes=num_lanes, cycles=cycles,
            warmup_cycles=warmup,
            benchmarks=[lane.benchmark for lane in lanes],
        )

    # The batch axis: row i of this array is lane i's bound SM current
    # buffer (the PDN sources read it directly; see bind_current_buffer).
    batch_currents = np.zeros((num_lanes, num), dtype=float)

    states: List[_BatchLaneState] = []
    for i, lane in enumerate(lanes):
        config = lane.config
        ln = _BatchLaneState(i)
        ln.config = config
        if lane.kernel is None:
            spec = get_benchmark(lane.benchmark)
            ln.gpu = GPU(
                spec.kernel, config=system, seed=config.seed,
                miss_ratio=spec.miss_ratio, jitter=spec.jitter,
                vectorized=config.vectorized_gpu,
            )
            ln.name = spec.name
        else:
            ln.gpu = GPU(
                lane.kernel, config=system, seed=config.seed,
                vectorized=config.vectorized_gpu,
            )
            ln.name = lane.kernel.name
        ln.pdn = build_stacked_pdn(
            stack=stack, params=params, cr_ivr_area_mm2=config.cr_ivr_area_mm2
        )
        # Re-bind the lane's current sources onto its batch row *before*
        # the solver caches its gather maps.
        ln.pdn.bind_current_buffer(batch_currents[i])
        ln.solver = TransientSolver(ln.pdn.circuit, dt=cycle_s / substeps)
        ln.pdn.set_sm_currents(np.full(num, nominal_current))
        ln.solver.initialize_dc()
        if config.faults is not None:
            from repro.faults.injector import FaultInjector

            ln.injector = FaultInjector(
                config.faults, stack, pdn=ln.pdn, solver=ln.solver
            )
        if config.use_controller:
            if config.controller_object is not None:
                ln.controller = config.controller_object
            else:
                ln.controller = VoltageSmoothingController(
                    stack=stack,
                    config=config.controller,
                    actuation=config.actuation,
                    dt_s=cycle_s,
                )
            from repro.core.overheads import ControllerOverheads

            ln.controller_power = ControllerOverheads().power_w
        ln.shutoff_sms = (
            stack.sms_in_layer(config.shutoff.layer) if config.shutoff else []
        )
        states.append(ln)

    batch_solver = BatchTransientSolver(
        [ln.solver for ln in states], shared_current_base=batch_currents
    )
    batch_guard = None
    if first_cfg.solver_guard:
        for ln in states:
            ln.guard = SolverGuard(ln.solver, lane=ln.index)
        batch_guard = BatchSolverGuard(
            batch_solver, guards=[ln.guard for ln in states]
        )
    # Chaos harness: pre-resolved scheduled cycles (one None check per
    # cycle when inactive); lane-targeted NaN poisoning keys on the
    # lane's *original* index.
    monkey = chaos.current()
    chaos_cycles = monkey.cycle_schedule() if monkey is not None else None
    from repro.gpu.batch import GPUBatch

    gpu_batch = GPUBatch([ln.gpu for ln in states])
    # Quarantine bookkeeping: ``alive`` is the current (compacted) lane
    # order — ``ln.row`` indexes the batch working arrays, ``ln.index``
    # the full-size recording arrays.  ``alive_idx`` is the fancy-index
    # map the recording block switches to once a lane has been evicted
    # (None keeps the basic-slice fast path on the clean run).
    alive: List[_BatchLaneState] = list(states)
    alive_idx: Optional[np.ndarray] = None

    # Batched sensor/decision front end for the "fast" lanes: the stock
    # controller with an uncorrupted sensor path.  Lanes with injectors
    # (corrupted/delayed observations) or duck-typed controller objects
    # keep the serial per-lane code path.
    bank = None
    bank_rows: List[int] = []
    for ln in states:
        if (
            ln.injector is None
            and isinstance(ln.controller, VoltageSmoothingController)
        ):
            ln.in_bank = True
            bank_rows.append(ln.index)
    if bank_rows:
        bank = ControllerBank([states[i].controller for i in bank_rows])
    bank_members = [states[i] for i in bank_rows]
    bank_rows_arr = np.array(bank_rows, dtype=np.intp)

    # Per-SM voltage readout indices — identical across lanes (same
    # netlist builder); verified against lane 0 at setup.
    s0 = states[0]
    top_idx = np.empty(num, dtype=int)
    bot_idx = np.empty(num, dtype=int)
    bot_is_ground = np.zeros(num, dtype=bool)
    for sm in range(num):
        top, bottom = s0.pdn.sm_terminals(sm)
        top_idx[sm] = s0.solver.structure.node(top)
        if bottom == "0":
            bot_is_ground[sm] = True
            bot_idx[sm] = 0
        else:
            bot_idx[sm] = s0.solver.structure.node(bottom)
    for ln in states[1:]:
        for sm in (0, num - 1):
            if ln.pdn.sm_terminals(sm) != s0.pdn.sm_terminals(sm):
                raise ValueError(
                    "lanes do not share a topology family (SM terminal "
                    "naming differs)"
                )

    powers_bt = np.empty((num_lanes, num))
    dcc_bt = np.zeros((num_lanes, num))
    voltages_bt = np.full((num_lanes, num), stack.sm_voltage)
    # Per-cycle scratch blocks (rebuilt on quarantine compaction): the
    # currents math and node->SM voltage extraction run as out= ufuncs
    # on these, since at small B the loop is dispatch-bound and every
    # avoided temporary counts.
    cur_buf = np.empty((num_lanes, num))
    bot_buf = np.empty((num_lanes, num))
    volt_buf = np.empty((num_lanes, num))
    ground_cols = np.flatnonzero(bot_is_ground)
    powers_rec_bt = np.empty((num_lanes, cycles, num))
    sm_voltages_bt = np.empty((num_lanes, cycles, num))
    supply_bt = np.empty((num_lanes, cycles))
    dcc_accum = np.zeros(num_lanes)
    dcc_applied = np.zeros(num_lanes)
    event_lanes = [
        ln for ln in states
        if ln.injector is not None or ln.config.shutoff is not None
    ]
    injector_lanes = [ln for ln in states if ln.injector is not None]
    # Fast lanes — bank-controlled, never halted — apply actuation only
    # when a decision pops out of the latency pipeline (decisions are
    # immutable once enqueued, so nothing can change between pops); the
    # rest replicate the serial per-cycle commands_for path.
    # (A pre-used controller object that already counted cycles keeps
    # the serial per-cycle path: its commands_for skips cycles at or
    # below _counted_through_cycle, which span accounting cannot see.)
    fast_lanes = [
        ln for ln in states
        if ln.in_bank
        and ln.config.shutoff is None
        and ln.controller._counted_through_cycle < 0
    ]
    slow_ctrl_lanes = [
        ln for ln in states
        if ln.controller is not None and ln not in fast_lanes
    ]
    for ln in fast_lanes:
        ln.active_throttling = bool(
            np.any(
                ln.controller.active_decision.issue_widths
                < ln.controller._default_issue_width
            )
        )
    # Skip the per-cycle applied-DCC reduction when no lane can ever
    # command nonzero DCC power (w3 == 0 and no actuation-distorting
    # faults): the serial ledger accumulates exact 0.0 adds, which is
    # bitwise what an untouched accumulator holds.
    def _lane_dcc_possible(ln: _BatchLaneState) -> bool:
        if ln.injector is not None and ln.injector.touches_actuation:
            return True
        if ln.controller is None:
            return False
        if ln.config.controller_object is not None:
            return True
        actuation = getattr(ln.controller, "actuation", None)
        w3 = getattr(actuation, "w3", None)
        return w3 is None or w3 != 0.0

    dcc_possible = any(_lane_dcc_possible(ln) for ln in states)
    all_banked = len(bank_rows) == num_lanes

    # Droop flight recorders: one per lane alongside telemetry (or as
    # passed), observation-only so bit-identity with serial runs holds.
    for ln in fast_lanes:
        ln.in_fast = True
    if flights is None and tele is not None:
        from repro.telemetry.flight import FlightRecorder

        flights = [
            FlightRecorder(
                num_sms=num,
                guardband_v=stack.min_safe_voltage,
                cycle_offset=-warmup,
            )
            for _ in states
        ]
    elif flights is False:
        flights = None
    if flights is not None and len(flights) != num_lanes:
        raise ValueError(
            f"flights must have one entry per lane ({num_lanes}), "
            f"got {len(flights)}"
        )
    flight_lanes: List[_BatchLaneState] = []
    if flights is not None:
        for ln, fr in zip(states, flights):
            ln.flight = fr
            if fr is not None:
                ln.flight_safe = hasattr(ln.controller, "in_safe_state")
                flight_lanes.append(ln)

    if tele is not None:
        tele.add_time("setup", perf_counter() - setup_start)
    loop_start = perf_counter()
    for cycle in range(total_cycles):
        recording = cycle >= warmup
        if cycle == warmup:
            # Settle the event-driven throttle spans through warmup-1
            # before snapshotting (serial counts those cycles one by
            # one before its warmup-boundary read).
            for ln in fast_lanes:
                if ln.active_throttling:
                    ln.controller.throttled_cycles += cycle - ln.count_from
                ln.count_from = cycle
            for ln in states:
                ln.instructions_at_start = ln.gpu.total_instructions()
                ln.fakes_at_start = ln.gpu.total_fake_instructions()
                if ln.controller is not None:
                    ln.throttled_at_start = ln.controller.throttled_cycles
        recorded_cycle = cycle - warmup

        # 1. GPU cycle per lane (independent engines, lock-stepped).
        gpu_batch.step_into(powers_bt)
        for ln in injector_lanes:
            ln.injector.apply_circuit_faults(recorded_cycle)
            powers_bt[ln.row] = ln.injector.scale_powers(
                recorded_cycle, powers_bt[ln.row]
            )
            scales = ln.injector.frequency_scales(recorded_cycle)
            if scales is not None:
                ln.gpu.set_frequency_scales(scales)

        # 2. Powers -> PDN currents, all lanes at once (the op sequence
        # matches run_cosim elementwise; see its convention note).
        np.add(powers_bt, dcc_bt, out=cur_buf)
        cur_buf /= stack.sm_voltage
        cur_buf -= conductance_bias
        np.maximum(cur_buf, 0.0, out=batch_currents)
        if recording and dcc_possible:
            # Bugfix parity with run_cosim: ledger the *applied* DCC.
            dcc_bt.sum(axis=1, out=dcc_applied)

        # 3. Circuit transient over one clock period, batched.  With the
        # guard on, a diverged lane is quarantined: marked dead, its row
        # compacted out of the batch, and the surviving lanes continue
        # lock-stepped (bit-identical to their serial runs — the guard
        # redoes suspect cycles per-lane, and compaction only rebuilds
        # views/wrappers around untouched per-lane state).
        if chaos_cycles is not None and recorded_cycle in chaos_cycles:
            for event in monkey.take_cycle(recorded_cycle):
                if event.action != "nan_poison":
                    continue
                for ln in alive:
                    if event.lane is None or event.lane == ln.index:
                        ln.solver._react_v[:] = np.nan
        if batch_guard is not None:
            node_bt, failures = batch_guard.step_cycle(
                substeps, cycle=recorded_cycle
            )
            if failures:
                for row in sorted(failures):
                    ln = alive[row]
                    ln.dead = True
                    ln.dead_at = max(0, recorded_cycle)
                    info = failures[row].forensics()
                    info["lane"] = ln.index
                    info["benchmark"] = ln.name
                    ln.divergence = info
                    if tele is not None:
                        tele.event("lane_quarantined", **info)
                survivors = [ln for ln in alive if not ln.dead]
                event_lanes = [ln for ln in event_lanes if not ln.dead]
                injector_lanes = [
                    ln for ln in injector_lanes if not ln.dead
                ]
                fast_lanes = [ln for ln in fast_lanes if not ln.dead]
                slow_ctrl_lanes = [
                    ln for ln in slow_ctrl_lanes if not ln.dead
                ]
                flight_lanes = [ln for ln in flight_lanes if not ln.dead]
                if not survivors:
                    alive = []
                    break
                # Compact the batch axis around the survivors: new
                # shared current base, re-bound PDN sources + solver
                # gather maps, rebuilt batch solver/guard/GPU front
                # ends, compacted controller bank.  Per-lane objects
                # (solver state, controllers, GPU engines) carry over
                # untouched, so survivor physics continues bit-exactly.
                old_rows = [ln.row for ln in survivors]
                batch_currents = batch_currents[old_rows].copy()
                cur_buf = np.empty((len(survivors), num))
                bot_buf = np.empty((len(survivors), num))
                volt_buf = np.empty((len(survivors), num))
                for new_row, ln in enumerate(survivors):
                    ln.row = new_row
                    ln.pdn.bind_current_buffer(batch_currents[new_row])
                    ln.solver.rebind_sources()
                batch_solver = BatchTransientSolver(
                    [ln.solver for ln in survivors],
                    shared_current_base=batch_currents,
                )
                batch_guard = BatchSolverGuard(
                    batch_solver, guards=[ln.guard for ln in survivors]
                )
                gpu_batch = GPUBatch([ln.gpu for ln in survivors])
                if bank is not None:
                    keep = [
                        j for j, bln in enumerate(bank_members)
                        if not bln.dead
                    ]
                    if not keep:
                        bank = None
                        bank_members = []
                    elif len(keep) != len(bank_members):
                        bank = bank.compact(keep)
                        bank_members = [bank_members[j] for j in keep]
                    bank_rows_arr = np.array(
                        [bln.row for bln in bank_members], dtype=np.intp
                    )
                all_banked = len(bank_members) == len(survivors)
                powers_bt = powers_bt[old_rows]
                dcc_bt = dcc_bt[old_rows]
                dcc_applied = dcc_applied[old_rows]
                alive = survivors
                alive_idx = np.array(
                    [ln.index for ln in survivors], dtype=np.intp
                )
                node_bt = batch_solver._sol_bt[:, : batch_solver.num_nodes]
        else:
            node_bt = batch_solver.step_n(substeps)
        # Bound-method take skips np.take's dispatch wrapper — this
        # runs twice per recorded cycle on the hot path.
        node_bt.take(bot_idx, axis=1, out=bot_buf)
        if ground_cols.size:
            bot_buf[:, ground_cols] = 0.0
        node_bt.take(top_idx, axis=1, out=volt_buf)
        volt_buf -= bot_buf
        voltages_bt = volt_buf

        # Halted SMs per lane (shutoff events + fault-scheduled halts).
        for ln in event_lanes:
            halted: set = set()
            shutoff = ln.config.shutoff
            if shutoff is not None and shutoff.active(recorded_cycle):
                halted.update(ln.shutoff_sms)
            if ln.injector is not None:
                halted.update(ln.injector.halted_sms(recorded_cycle))
            ln.gpu.barrier_exempt = halted
            ln.halted_idx = sorted(halted)

        # 4. Detection + control.  Bank lanes advance their RC filters
        # and decision waves batched; the rest replicate the serial
        # paths verbatim.  Actuation application is gated on decision
        # identity (setters are idempotent; decisions are immutable
        # once enqueued), except under actuation-distorting faults
        # which may perturb every cycle.
        if bank is not None:
            if all_banked:
                bank.observe(cycle, voltages_bt)
            else:
                bank.observe(cycle, voltages_bt[bank_rows_arr])
        for ln in fast_lanes:
            controller = ln.controller
            pipeline = controller._pipeline
            if pipeline and pipeline[0][0] <= cycle:
                while pipeline and pipeline[0][0] <= cycle:
                    _, decision = pipeline.popleft()
                if decision is ln.applied_decision:
                    # An idle wave re-enqueued the object already
                    # applied: same values, same throttle flag — the
                    # open span simply continues.
                    continue
                throttling = bool(
                    np.any(
                        decision.issue_widths
                        < controller._default_issue_width
                    )
                )
                controller.active_decision = decision
                controller._active_throttling = throttling
                if ln.active_throttling:
                    controller.throttled_cycles += cycle - ln.count_from
                ln.count_from = cycle
                ln.active_throttling = throttling
                if decision is not ln.applied_decision:
                    # Never halted, so the decision arrays pass through
                    # unmutated (the engine setters copy internally).
                    ln.gpu.set_issue_widths(decision.issue_widths)
                    ln.gpu.set_fake_rates(decision.fake_rates)
                    np.copyto(dcc_bt[ln.row], decision.dcc_powers_w)
                    ln.applied_decision = decision
            elif ln.applied_decision is None:
                # First cycles before any pop: the initial active
                # decision (what serial commands_for returns) applies.
                decision = controller.active_decision
                ln.gpu.set_issue_widths(decision.issue_widths)
                ln.gpu.set_fake_rates(decision.fake_rates)
                np.copyto(dcc_bt[ln.row], decision.dcc_powers_w)
                ln.applied_decision = decision
        for ln in slow_ctrl_lanes:
            controller = ln.controller
            if ln.in_bank:
                decision = controller.commands_for(cycle)
            elif ln.injector is None:
                controller.observe(cycle, voltages_bt[ln.row])
                decision = controller.commands_for(cycle)
            else:
                seen = ln.injector.corrupt_sensors(
                    recorded_cycle, voltages_bt[ln.row]
                )
                if ln.injector.observation_allowed(recorded_cycle):
                    controller.observe(cycle, seen)
                decision = controller.commands_for(
                    cycle - ln.injector.extra_latency(recorded_cycle)
                )
            ln.last_decision = decision
            if ln.injector is not None and ln.injector.touches_actuation:
                widths = decision.issue_widths.copy()
                fakes = decision.fake_rates.copy()
                dcc = decision.dcc_powers_w.copy()
                ln.injector.distort_actuation(
                    recorded_cycle, widths, fakes, dcc
                )
                if ln.halted_idx:
                    widths[ln.halted_idx] = 0.0
                ln.gpu.set_issue_widths(widths)
                ln.gpu.set_fake_rates(fakes)
                np.copyto(dcc_bt[ln.row], dcc)
            else:
                halted_sig = tuple(ln.halted_idx)
                if (
                    decision is not ln.applied_decision
                    or halted_sig != ln.applied_halted
                ):
                    widths = decision.issue_widths.copy()
                    if ln.halted_idx:
                        widths[ln.halted_idx] = 0.0
                    ln.gpu.set_issue_widths(widths)
                    ln.gpu.set_fake_rates(decision.fake_rates)
                    np.copyto(dcc_bt[ln.row], decision.dcc_powers_w)
                    ln.applied_decision = decision
                    ln.applied_halted = halted_sig
        for ln in event_lanes:
            if ln.controller is None:
                halted_sig = tuple(ln.halted_idx)
                if ln.applied_decision is None or halted_sig != ln.applied_halted:
                    widths = np.full(num, 2.0)
                    if ln.halted_idx:
                        widths[ln.halted_idx] = 0.0
                    ln.gpu.set_issue_widths(widths)
                    ln.applied_decision = widths
                    ln.applied_halted = halted_sig

        for ln in flight_lanes:
            ctrl = ln.controller
            ln.flight.observe(
                voltages_bt[ln.row],
                ctrl.active_decision if ln.in_fast else ln.last_decision,
                ln.injector.active_kinds(recorded_cycle)
                if ln.injector is not None
                else None,
                ctrl.in_safe_state if ln.flight_safe else False,
            )

        if recording:
            k = recorded_cycle
            if alive_idx is None:
                powers_rec_bt[:, k, :] = powers_bt
                sm_voltages_bt[:, k, :] = voltages_bt
                batch_solver.vsource_currents("vdd", out=supply_bt[:, k])
                if dcc_possible:
                    dcc_accum += dcc_applied
            else:
                # Post-eviction: dead lanes keep whatever they recorded
                # before their divergence cycle (results are truncated
                # to ``dead_at``); survivors scatter through alive_idx.
                powers_rec_bt[alive_idx, k, :] = powers_bt
                sm_voltages_bt[alive_idx, k, :] = voltages_bt
                supply_bt[alive_idx, k] = batch_solver.vsource_currents(
                    "vdd"
                )
                if dcc_possible:
                    dcc_accum[alive_idx] += dcc_applied
    # Settle the remaining event-driven throttle spans so lane
    # controllers end bit-equal to serial post-run state.
    for ln in fast_lanes:
        if ln.active_throttling:
            ln.controller.throttled_cycles += total_cycles - ln.count_from
        ln.controller._counted_through_cycle = total_cycles - 1
    if tele is not None:
        tele.add_time("batch_loop", perf_counter() - loop_start)

    finalize_start = perf_counter()
    results: List[CosimResult] = []
    for ln in states:
        # A quarantined lane's recorded window stops at its divergence
        # cycle; its result carries the forensics verdict instead of a
        # NaN tail.
        valid = cycles if not ln.dead else ln.dead_at
        trace = PowerTrace(
            powers_rec_bt[ln.index, :valid],
            frequency_hz=system.gpu.sm_clock_hz,
            name=ln.name,
        )
        launches = np.asarray(ln.gpu.kernel_launch_cycles)
        durations = np.diff(launches[launches >= warmup])
        result = CosimResult(
            benchmark=ln.name,
            power_trace=trace,
            sm_voltages=sm_voltages_bt[ln.index, :valid],
            supply_current=supply_bt[ln.index, :valid],
            stack=stack,
            instructions=(
                ln.gpu.total_instructions() - ln.instructions_at_start
            ),
            fake_instructions=(
                ln.gpu.total_fake_instructions() - ln.fakes_at_start
            ),
            throttled_cycles=(
                ln.controller.throttled_cycles - ln.throttled_at_start
                if ln.controller is not None
                else 0
            ),
            controller_power_w=ln.controller_power,
            kernels_completed=len(durations),
            mean_dcc_power_w=float(dcc_accum[ln.index]) / (
                cycles if not ln.dead else max(1, ln.dead_at)
            ),
        )
        result.kernel_durations = durations
        if ln.divergence is not None:
            result.divergence = ln.divergence
        if ln.injector is not None and result.num_cycles > 0:
            from repro.faults.injector import build_fault_report

            result.fault_report = build_fault_report(
                ln.injector, result, ln.controller
            )
        if ln.flight is not None:
            if ln.dead:
                worst = (ln.divergence or {}).get("worst_value")
                ln.flight.force_dump(
                    "numerical_divergence",
                    min_voltage_v=(
                        float("nan") if worst is None else float(worst)
                    ),
                )
            ln.flight.finalize()
            result.flight = ln.flight
        results.append(result)
    if tele is not None:
        tele.add_time("finalize", perf_counter() - finalize_start)
        if first_cfg.solver_guard:
            # Aggregate over every lane's guard directly — a rebuilt
            # batch guard only wraps the survivors, but quarantined
            # lanes' recovery/divergence counts must still be reported.
            totals: Dict[str, int] = {}
            for ln in states:
                for key, value in ln.guard.counters().items():
                    totals[key] = totals.get(key, 0) + value
            for key, value in totals.items():
                if value:
                    tele.incr(f"guard_{key}", value)
        quarantined = sum(1 for ln in states if ln.dead)
        if quarantined:
            tele.incr("lanes_quarantined", quarantined)
        # Batched-solver backend accounting: the NumPy fallback is
        # bit-identical but slow, so surface both the live backend and
        # any build-failure fallbacks that forced it.
        from repro.circuits._solverc import build_fallback_count as _solver_fb

        solver_fallbacks = _solver_fb()
        if solver_fallbacks:
            tele.incr("solver.backend_fallback", solver_fallbacks)
        for ln, result in zip(states, results):
            tele.event(
                "cosim_batch_lane_done", lane=ln.index,
                benchmark=result.benchmark,
                min_voltage_v=result.min_voltage,
                throughput_ipc=result.throughput(),
                diverged=bool(ln.dead),
            )
        tele.event(
            "cosim_batch_done", lanes=num_lanes,
            solver_backend=batch_solver.active_backend,
            solver_shards=batch_solver.shard_count,
        )
    _LAST_BATCH_SOLVER.update(
        backend=batch_solver.active_backend,
        shards=batch_solver.shard_count,
        lanes=num_lanes,
    )
    return results
