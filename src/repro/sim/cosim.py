"""The coupled GPU / PDN / controller simulation loop.

Per GPU clock cycle:

1. the GPU timing model advances one cycle with whatever actuation is
   in force (issue widths, fake rates, DCC compensation) and emits each
   SM's power;
2. each SM's power becomes a load current ``I = P / V_sm`` on the PDN
   (the time-varying ideal-current-source convention), plus any DCC
   compensation power on its layer;
3. the transient solver advances the circuit by one clock period (in
   ``circuit_substeps`` trapezoidal steps for resonance accuracy);
4. the per-SM supply voltages feed the detectors and (cross-layer only)
   the Algorithm 1 controller, whose latency-delayed commands update
   the GPU's actuation for subsequent cycles.

:class:`LayerShutoffEvent` reproduces the paper's synthetic worst-case
imbalance (Fig. 9): at a chosen time a whole layer's SMs are forced to
stop issuing, dropping them to idle power while the rest of the stack
keeps running.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.circuits import TransientSolver
from repro.config import StackConfig, SystemConfig
from repro.core.actuators import WeightedActuation
from repro.core.controller import ControllerConfig, VoltageSmoothingController
from repro.gpu.gpu import GPU
from repro.gpu.kernels import KernelSpec
from repro.pdn.builder import StackedPDN, build_stacked_pdn
from repro.pdn.efficiency import (
    EfficiencyBreakdown,
    layer_shuffle_power,
    pde_voltage_stacked,
)
from repro.pdn.parameters import DEFAULT_PDN, PDNParameters
from repro.workloads.benchmarks import get_benchmark
from repro.workloads.traces import PowerTrace

if TYPE_CHECKING:  # pragma: no cover — typing only, avoids import cost
    from repro.faults import FaultSchedule
    from repro.telemetry import Telemetry


@dataclass(frozen=True)
class LayerShutoffEvent:
    """Force a layer's SMs idle from ``start_cycle`` to ``end_cycle``."""

    layer: int = 3
    start_cycle: int = 2000
    end_cycle: int = 10**9

    def active(self, cycle: int) -> bool:
        return self.start_cycle <= cycle < self.end_cycle


@dataclass(frozen=True)
class CosimConfig:
    """Knobs of one co-simulation run."""

    cycles: int = 3000
    warmup_cycles: int = 200
    cr_ivr_area_mm2: float = 105.8  # the paper's 0.2x-die design point
    use_controller: bool = True
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    # Reliability default: DIWS + FII (Algorithm 1's paired actuation).
    # Performance studies override with DIWS-only or swept weights.
    actuation: Optional[WeightedActuation] = field(
        default_factory=lambda: WeightedActuation(w1=1.0, w2=1.0, w3=0.0)
    )
    circuit_substeps: int = 2
    seed: int = 1
    shutoff: Optional[LayerShutoffEvent] = None
    # Declarative cross-layer fault injection (repro.faults): a
    # FaultSchedule of timed circuit / architecture / system events,
    # threaded through the loop by a FaultInjector.  Event cycles use
    # the same convention as ``shutoff`` (0 = end of warmup).
    faults: Optional["FaultSchedule"] = None
    # Swap in an alternative controller implementation (duck-typed:
    # observe / commands_for / throttled_cycles) — used by the
    # prior-art ablation (e.g. GlobalThrottleController).
    controller_object: Optional[object] = field(default=None, compare=False)
    # GPU engine selection: the vectorized struct-of-arrays engine is
    # bit-identical to the per-object reference (repro.gpu.engine), so
    # this only matters when deliberately exercising the reference.
    vectorized_gpu: bool = True

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise ValueError("cycles must be positive")
        if self.warmup_cycles < 0:
            raise ValueError("warmup cannot be negative")
        if self.warmup_cycles >= self.cycles:
            raise ValueError(
                f"warmup_cycles ({self.warmup_cycles}) must be smaller than "
                f"the measured window ({self.cycles} cycles): a warmup that "
                "long leaves (nearly) nothing to measure — every statistic "
                "would be dominated by settling transients or empty windows"
            )
        if self.circuit_substeps <= 0:
            raise ValueError("need at least one circuit substep")


class CosimResult:
    """Waveforms and statistics of one co-simulation."""

    def __init__(
        self,
        benchmark: str,
        power_trace: PowerTrace,
        sm_voltages: np.ndarray,
        supply_current: np.ndarray,
        stack: StackConfig,
        instructions: int,
        fake_instructions: int,
        throttled_cycles: int,
        controller_power_w: float,
        kernels_completed: int = 0,
        mean_dcc_power_w: float = 0.0,
    ) -> None:
        self.benchmark = benchmark
        self.power_trace = power_trace
        self.sm_voltages = sm_voltages  # (cycles, num_sms)
        self.supply_current = supply_current  # (cycles,)
        self.stack = stack
        self.instructions = instructions
        self.fake_instructions = fake_instructions
        self.throttled_cycles = throttled_cycles
        self.controller_power_w = controller_power_w
        self.kernels_completed = kernels_completed
        self.mean_dcc_power_w = mean_dcc_power_w
        self.kernel_durations: np.ndarray = np.array([])
        # Filled by run_cosim when a FaultSchedule was injected: the
        # manifest's ``faults`` section (events, counters, verdict).
        self.fault_report: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    @property
    def num_cycles(self) -> int:
        return self.sm_voltages.shape[0]

    @property
    def min_voltage(self) -> float:
        return float(self.sm_voltages.min())

    @property
    def max_voltage(self) -> float:
        return float(self.sm_voltages.max())

    def voltage_percentiles(self, q) -> np.ndarray:
        """Noise-distribution percentiles over all SMs and cycles (Fig. 11)."""
        return np.percentile(self.sm_voltages, q)

    def worst_sm_voltage_trace(self) -> np.ndarray:
        """Per-cycle minimum SM voltage (Fig. 9's critical waveform)."""
        return self.sm_voltages.min(axis=1)

    def efficiency(
        self, params: PDNParameters = DEFAULT_PDN
    ) -> EfficiencyBreakdown:
        """PDE breakdown of this run, from the measured trace imbalance."""
        load = self.power_trace.mean_power_w
        shuffle = layer_shuffle_power(self.power_trace.data, self.stack)
        return pde_voltage_stacked(
            load, shuffle, self.stack, params,
            controller_power_w=self.controller_power_w,
        )

    def throughput(self) -> float:
        """Real instructions per cycle across the GPU."""
        return self.instructions / self.num_cycles

    def cycles_per_kernel(self) -> float:
        """Mean kernel completion time — the performance-penalty metric.

        Throttling that merely eats kernel-tail slack does not extend
        completion time; throttling on the critical SM does.  Requires
        at least one completed kernel in the measured window.
        """
        if self.kernels_completed <= 0 or len(self.kernel_durations) == 0:
            raise ValueError(
                "no kernel completed in the measurement window; run longer"
            )
        return float(np.mean(self.kernel_durations))

    def summary(self) -> str:
        eff = self.efficiency()
        # Short runs may finish zero kernels; the human-facing summary
        # degrades to "n/a" while cycles_per_kernel() keeps raising for
        # library callers that need the real number.
        try:
            kernel_time = f"{self.cycles_per_kernel():.0f} cycles/kernel"
        except ValueError:
            kernel_time = "cycles/kernel n/a"
        return (
            f"{self.benchmark}: {self.num_cycles} cycles, "
            f"mean power {self.power_trace.mean_power_w:.1f} W, "
            f"PDE {eff.pde:.1%}, "
            f"V(min) {self.min_voltage:.3f} V, "
            f"throughput {self.throughput():.1f} instr/cycle, "
            f"{kernel_time}, "
            f"fakes {self.fake_instructions}"
        )


def run_cosim(
    benchmark: str = "hotspot",
    config: CosimConfig = CosimConfig(),
    system: SystemConfig = SystemConfig(),
    params: PDNParameters = DEFAULT_PDN,
    kernel: Optional[KernelSpec] = None,
    telemetry: Optional["Telemetry"] = None,
) -> CosimResult:
    """Run one coupled GPU/PDN/controller simulation.

    ``benchmark`` picks a paper workload; pass ``kernel`` to run a
    custom :class:`KernelSpec` instead (with default memory behaviour).

    ``telemetry`` (a :class:`repro.telemetry.Telemetry`) records the
    per-stage wall-clock split (GPU model / transient solve /
    controller), solver and controller work counters, decimated
    per-cycle voltage/power channels, and headline metrics.  ``None``
    (the default) leaves the hot loop on its untimed fast path.
    """
    tele = telemetry if telemetry is not None and telemetry.enabled else None
    setup_start = perf_counter()
    if tele is not None:
        tele.event("cosim_start", benchmark=benchmark, cycles=config.cycles,
                   warmup_cycles=config.warmup_cycles, seed=config.seed)

    stack = system.stack
    if kernel is None:
        spec = get_benchmark(benchmark)
        gpu = GPU(
            spec.kernel, config=system, seed=config.seed,
            miss_ratio=spec.miss_ratio, jitter=spec.jitter,
            vectorized=config.vectorized_gpu,
        )
        name = spec.name
    else:
        gpu = GPU(
            kernel, config=system, seed=config.seed,
            vectorized=config.vectorized_gpu,
        )
        name = kernel.name

    pdn = build_stacked_pdn(
        stack=stack, params=params, cr_ivr_area_mm2=config.cr_ivr_area_mm2
    )
    cycle_s = system.gpu.cycle_time_s
    solver = TransientSolver(pdn.circuit, dt=cycle_s / config.circuit_substeps)
    # Seed the circuit at a balanced operating point.
    nominal_current = (
        system.power.sm_peak_power_w * 0.5 / stack.sm_voltage
    )
    pdn.set_sm_currents(np.full(stack.num_sms, nominal_current))
    solver.initialize_dc()

    injector = None
    if config.faults is not None:
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(
            config.faults, stack, pdn=pdn, solver=solver
        )
        if tele is not None:
            tele.event(
                "faults_armed", schedule=config.faults.name,
                num_events=len(config.faults), seed=config.faults.seed,
            )

    controller = None
    controller_power = 0.0
    if config.use_controller:
        if config.controller_object is not None:
            controller = config.controller_object
        else:
            controller = VoltageSmoothingController(
                stack=stack,
                config=config.controller,
                actuation=config.actuation,
                dt_s=cycle_s,
            )
        from repro.core.overheads import ControllerOverheads

        controller_power = ControllerOverheads().power_w

    num = stack.num_sms
    # Vectorized SM-voltage readout: (top, bottom) node indices per SM.
    top_idx = np.empty(num, dtype=int)
    bot_idx = np.empty(num, dtype=int)
    bot_is_ground = np.zeros(num, dtype=bool)
    for sm in range(num):
        top, bottom = pdn.sm_terminals(sm)
        top_idx[sm] = solver.structure.node(top)
        if bottom == "0":
            bot_is_ground[sm] = True
            bot_idx[sm] = 0
        else:
            bot_idx[sm] = solver.structure.node(bottom)

    sm_voltages = np.empty((config.cycles, num))
    powers_rec = np.empty((config.cycles, num))
    supply_current = np.empty(config.cycles)
    dcc_powers = np.zeros(num)
    voltages_now = np.full(num, stack.sm_voltage)
    shutoff_sms: List[int] = (
        stack.sms_in_layer(config.shutoff.layer) if config.shutoff else []
    )

    conductance_bias = params.sm_conductance * stack.sm_voltage
    total_cycles = config.warmup_cycles + config.cycles
    dcc_energy_accum = 0.0
    # All work counters are measured over the recorded window only:
    # each is snapshotted at the warmup boundary and subtracted at the
    # end, so warmup cycles never inflate fake-instruction counts or
    # throttle fractions (the Fig. 13/14 inputs).
    instructions_at_start = 0
    fakes_at_start = 0
    throttled_at_start = 0
    kernels_at_start = gpu.kernels_launched
    # Telemetry: stage accumulators.  ``timing`` gates five perf_counter
    # reads per cycle; with telemetry off the loop body is branch-only.
    timing = tele is not None
    t_gpu = t_circuit = t_controller = t_record = 0.0
    if timing:
        tele.add_time("setup", perf_counter() - setup_start)
        v_chan = tele.channel("min_sm_voltage_v")
        p_chan = tele.channel("total_power_w")
        d_chan = tele.channel("dcc_power_w")
        li_chan = tele.channel("worst_layer_imbalance_w")
    loop_start = perf_counter()
    for cycle in range(total_cycles):
        recording = cycle >= config.warmup_cycles
        if cycle == config.warmup_cycles:
            instructions_at_start = gpu.total_instructions()
            fakes_at_start = gpu.total_fake_instructions()
            kernels_at_start = gpu.kernels_launched
            if controller is not None:
                throttled_at_start = controller.throttled_cycles

        # Fault-event timing shares the shutoff convention: cycle 0 of
        # an event window is the end of warmup.
        recorded_cycle = cycle - config.warmup_cycles

        # 1. GPU cycle under the actuation currently in force.
        if timing:
            t0 = perf_counter()
        powers = gpu.step()
        if injector is not None:
            # Circuit faults mutate element values (one re-factorization
            # per activation edge, before this cycle's solve); process
            # variation scales the emitted powers *before* they become
            # currents or records, keeping the PDE ledger closed.
            injector.apply_circuit_faults(recorded_cycle)
            powers = injector.scale_powers(recorded_cycle, powers)
            scales = injector.frequency_scales(recorded_cycle)
            if scales is not None:
                gpu.set_frequency_scales(scales)
        if timing:
            t1 = perf_counter()
            t_gpu += t1 - t0

        # 2. Powers -> PDN currents.  Per the paper's convention each SM
        # is a time-varying *ideal* current source: I = P / V_nominal.
        # (Dividing by the instantaneous voltage would add the classic
        # constant-power negative resistance and destabilize the grid.)
        # The netlist's small-signal load conductance already draws
        # ~g*V per SM, so that bias is deducted from the source to keep
        # the total SM draw equal to P / V_nominal.
        currents = (powers + dcc_powers) / stack.sm_voltage - conductance_bias
        pdn.set_sm_currents(np.maximum(currents, 0.0))

        # 3. Circuit transient over one clock period.
        for _ in range(config.circuit_substeps):
            node_v = solver.step()
        bottoms = np.where(bot_is_ground, 0.0, node_v[bot_idx])
        voltages_now = node_v[top_idx] - bottoms
        if timing:
            t2 = perf_counter()
            t_circuit += t2 - t1

        # Halted SMs (legacy shutoff event + scheduled layer shutoffs /
        # power gating) must not block the kernel-launch barrier.
        halted: set = set()
        if config.shutoff is not None and config.shutoff.active(recorded_cycle):
            halted.update(shutoff_sms)
        if injector is not None:
            halted.update(injector.halted_sms(recorded_cycle))
        if config.shutoff is not None or injector is not None:
            gpu.barrier_exempt = halted
        halted_idx = sorted(halted)

        # 4. Detection + control (commands apply after the loop latency).
        if controller is not None:
            if injector is None:
                controller.observe(cycle, voltages_now)
                decision = controller.commands_for(cycle)
                widths = decision.issue_widths.copy()
                fakes = decision.fake_rates
                dcc = decision.dcc_powers_w
            else:
                # Architecture faults: the detectors see a corrupted
                # copy of the voltages (or nothing at all this cycle),
                # and jitter delays which enqueued decision is read.
                seen = injector.corrupt_sensors(recorded_cycle, voltages_now)
                if injector.observation_allowed(recorded_cycle):
                    controller.observe(cycle, seen)
                decision = controller.commands_for(
                    cycle - injector.extra_latency(recorded_cycle)
                )
                widths = decision.issue_widths.copy()
                fakes = decision.fake_rates
                dcc = decision.dcc_powers_w
                if injector.touches_actuation:
                    fakes = fakes.copy()
                    dcc = dcc.copy()
                    injector.distort_actuation(
                        recorded_cycle, widths, fakes, dcc
                    )
            if halted_idx:
                widths[halted_idx] = 0.0
            gpu.set_issue_widths(widths)
            gpu.set_fake_rates(fakes)
            dcc_powers = dcc
        elif config.shutoff is not None or injector is not None:
            widths = np.full(num, 2.0)
            if halted_idx:
                widths[halted_idx] = 0.0
            gpu.set_issue_widths(widths)
        if timing:
            t3 = perf_counter()
            t_controller += t3 - t2

        if recording:
            k = cycle - config.warmup_cycles
            powers_rec[k] = powers
            sm_voltages[k] = voltages_now
            supply_current[k] = solver.vsource_current("vdd")
            dcc_energy_accum += float(dcc_powers.sum())
            if timing:
                v_chan.record(k, voltages_now.min())
                p_chan.record(k, powers.sum())
                d_chan.record(k, dcc_powers.sum())
                layer_powers = powers.reshape(
                    stack.num_layers, stack.num_columns
                ).sum(axis=1)
                li_chan.record(
                    k, layer_powers.max() - layer_powers.mean()
                )
        if timing:
            t_record += perf_counter() - t3

    if timing:
        # Attribute the loop's residual (iteration overhead, warmup
        # bookkeeping, the timing reads themselves) to its own stage so
        # the stage sum reconciles with wall-clock time.
        loop_wall = perf_counter() - loop_start
        tele.add_time("gpu_model", t_gpu)
        tele.add_time("transient_solve", t_circuit)
        tele.add_time("controller", t_controller)
        tele.add_time("record", t_record)
        tele.add_time(
            "loop_other",
            max(0.0, loop_wall - t_gpu - t_circuit - t_controller - t_record),
        )

    trace = PowerTrace(
        powers_rec, frequency_hz=system.gpu.sm_clock_hz, name=name
    )
    launches = np.asarray(gpu.kernel_launch_cycles)
    durations = np.diff(launches[launches >= config.warmup_cycles])
    result = CosimResult(
        benchmark=name,
        power_trace=trace,
        sm_voltages=sm_voltages,
        supply_current=supply_current,
        stack=stack,
        instructions=gpu.total_instructions() - instructions_at_start,
        fake_instructions=gpu.total_fake_instructions() - fakes_at_start,
        throttled_cycles=(
            controller.throttled_cycles - throttled_at_start
            if controller is not None
            else 0
        ),
        controller_power_w=controller_power,
        kernels_completed=gpu.kernels_launched - kernels_at_start,
        mean_dcc_power_w=dcc_energy_accum / config.cycles,
    )
    result.kernel_durations = durations
    if injector is not None:
        from repro.faults.injector import build_fault_report

        result.fault_report = build_fault_report(injector, result, controller)
    if tele is not None:
        with tele.timer("finalize"):
            _record_cosim_telemetry(tele, config, result, solver, controller)
    return result


def _record_cosim_telemetry(
    tele, config: CosimConfig, result: CosimResult, solver, controller
) -> None:
    """Flush run counters and headline metrics into the recorder."""
    tele.incr("cycles", config.cycles)
    tele.incr("warmup_cycles", config.warmup_cycles)
    tele.incr("solver_steps", solver.stats.steps)
    tele.incr("solver_factorizations", solver.stats.factorizations)
    tele.incr("solver_dc_solves", solver.stats.dc_solves)
    if controller is not None:
        # Duck-typed controllers (prior-art ablations) expose a subset.
        stats = getattr(controller, "stats", None)
        stats = stats() if callable(stats) else {}
        for key in ("decisions_made", "triggers", "throttle_decisions",
                    "boost_decisions"):
            if key in stats:
                tele.incr(f"controller_{key}", stats[key])
        for actuator, count in (stats.get("actuator_decisions") or {}).items():
            tele.incr(f"controller_{actuator}_decisions", count)
        for actuator, count in (stats.get("slew_saturations") or {}).items():
            tele.incr(f"controller_slew_saturated_{actuator}", count)
    tele.incr("controller_throttled_cycles", result.throttled_cycles)
    tele.incr("fake_instructions", result.fake_instructions)
    tele.incr("instructions", result.instructions)
    tele.incr("kernels_completed", result.kernels_completed)
    tele.set_metrics({
        "benchmark": result.benchmark,
        "min_voltage_v": result.min_voltage,
        "max_voltage_v": result.max_voltage,
        "mean_power_w": result.power_trace.mean_power_w,
        "pde": result.efficiency().pde,
        "throughput_ipc": result.throughput(),
        "mean_dcc_power_w": result.mean_dcc_power_w,
    })
    # The noise observatory: band decomposition, droop-event log, PDE
    # loss ledger and per-layer imbalance, embedded as the manifest's
    # ``noise`` section (rendered back by ``repro observe`` and gated
    # by ``repro compare``).  Too-short runs skip it with an event.
    if result.num_cycles >= 8:
        from repro.analysis.observatory import compute_noise_report

        tele.set_section("noise", compute_noise_report(result).to_dict())
    else:
        tele.event(
            "noise_report_skipped",
            reason="too few recorded cycles",
            cycles=result.num_cycles,
        )
    # Fault-injection section: injected events, degradation counters
    # and the guardband verdict (gated by ``repro compare`` via the
    # flat ``faults.*`` summary keys).
    if result.fault_report is not None:
        tele.set_section("faults", result.fault_report)
        tele.event(
            "fault_verdict",
            verdict=result.fault_report["verdict"],
            min_voltage_v=result.fault_report["summary"]["min_voltage_v"],
        )
    tele.event(
        "cosim_done", benchmark=result.benchmark,
        min_voltage_v=result.min_voltage,
        throughput_ipc=result.throughput(),
    )


def run_crosslayer_cosim(
    benchmark: str = "hotspot", cycles: int = 2000, **kwargs
) -> CosimResult:
    """Convenience entry point: default cross-layer configuration."""
    return run_cosim(
        benchmark=benchmark, config=CosimConfig(cycles=cycles, **kwargs)
    )
