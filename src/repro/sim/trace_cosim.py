"""Trace-driven PDN simulation (the fast path for sweeps).

Replays a recorded :class:`~repro.workloads.traces.PowerTrace` through
the stacked PDN without re-running the GPU timing model.  Open-loop by
construction (the controller cannot change a pre-recorded workload), so
it is used where the paper's methodology is also trace-driven:
impedance validation, PDE sweeps across many CR-IVR sizes, and quick
what-if studies.

A simple *actuation replay* option approximates the smoothing
controller's effect on the trace: DIWS scales the trace's dynamic power
and defers the shaved energy to later cycles (work is delayed, not
destroyed), and FII adds fake-instruction power — useful to estimate
controller impact across sweeps at a fraction of the closed-loop cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.circuits import TransientSolver
from repro.config import PowerConfig, StackConfig
from repro.pdn.builder import build_stacked_pdn
from repro.pdn.parameters import DEFAULT_PDN, PDNParameters
from repro.workloads.traces import PowerTrace


@dataclass
class TraceCosimResult:
    """Waveforms from a trace replay."""

    sm_voltages: np.ndarray  # (cycles, num_sms)
    supply_current: np.ndarray  # (cycles,)
    trace: PowerTrace

    @property
    def min_voltage(self) -> float:
        return float(self.sm_voltages.min())

    def worst_sm_voltage_trace(self) -> np.ndarray:
        return self.sm_voltages.min(axis=1)

    def noise_std(self) -> float:
        return float(self.sm_voltages.std())


def replay_trace(
    trace: PowerTrace,
    cr_ivr_area_mm2: float = 105.8,
    stack: StackConfig = StackConfig(),
    params: PDNParameters = DEFAULT_PDN,
    circuit_substeps: int = 2,
    settle_cycles: int = 200,
) -> TraceCosimResult:
    """Drive the stacked PDN with a recorded per-SM power trace.

    The circuit settles for ``settle_cycles`` at the trace's initial
    power level before recording begins.
    """
    if trace.num_sms != stack.num_sms:
        raise ValueError(
            f"trace has {trace.num_sms} SMs, stack expects {stack.num_sms}"
        )
    if circuit_substeps <= 0:
        raise ValueError("need at least one circuit substep")
    pdn = build_stacked_pdn(
        stack=stack, params=params, cr_ivr_area_mm2=cr_ivr_area_mm2
    )
    solver = TransientSolver(
        pdn.circuit, dt=trace.dt / circuit_substeps
    )
    conductance_bias = params.sm_conductance * stack.sm_voltage
    initial = np.maximum(
        trace.data[0] / stack.sm_voltage - conductance_bias, 0.0
    )
    pdn.set_sm_currents(initial)
    solver.initialize_dc()
    for _ in range(settle_cycles * circuit_substeps):
        solver.step()

    num = stack.num_sms
    top_idx = np.empty(num, dtype=int)
    bot_idx = np.empty(num, dtype=int)
    bot_is_ground = np.zeros(num, dtype=bool)
    for sm in range(num):
        top, bottom = pdn.sm_terminals(sm)
        top_idx[sm] = solver.structure.node(top)
        if bottom == "0":
            bot_is_ground[sm] = True
            bot_idx[sm] = 0
        else:
            bot_idx[sm] = solver.structure.node(bottom)

    voltages = np.empty((trace.num_cycles, num))
    supply = np.empty(trace.num_cycles)
    for cycle in range(trace.num_cycles):
        currents = np.maximum(
            trace.data[cycle] / stack.sm_voltage - conductance_bias, 0.0
        )
        pdn.set_sm_currents(currents)
        for _ in range(circuit_substeps):
            node_v = solver.step()
        bottoms = np.where(bot_is_ground, 0.0, node_v[bot_idx])
        voltages[cycle] = node_v[top_idx] - bottoms
        supply[cycle] = solver.vsource_current("vdd")
    return TraceCosimResult(voltages, supply, trace)


def run_current_pattern(
    pattern,
    duration_s: float,
    cr_ivr_area_mm2: float = 105.8,
    stack: StackConfig = StackConfig(),
    params: PDNParameters = DEFAULT_PDN,
    dt_s: float = 1.0 / 1.4e9,
    settle_s: float = 0.5e-6,
) -> TraceCosimResult:
    """Drive the stacked PDN with a synthetic current pattern.

    ``pattern(t) -> per-SM amps`` is one of the generators in
    :mod:`repro.workloads.synthetic` (layer shutoff, resonance square
    wave, ...).  Used by impedance validation: sweeping a resonance
    pattern's frequency and finding the empirical worst-droop frequency
    must land on the AC analysis's peak.
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    pdn = build_stacked_pdn(
        stack=stack, params=params, cr_ivr_area_mm2=cr_ivr_area_mm2
    )
    solver = TransientSolver(pdn.circuit, dt=dt_s)
    pdn.set_sm_currents(np.asarray(pattern(0.0), dtype=float))
    solver.initialize_dc()
    for _ in range(int(settle_s / dt_s)):
        pdn.set_sm_currents(np.asarray(pattern(solver.time), dtype=float))
        solver.step()

    num = stack.num_sms
    top_idx = np.empty(num, dtype=int)
    bot_idx = np.empty(num, dtype=int)
    bot_is_ground = np.zeros(num, dtype=bool)
    for sm in range(num):
        top, bottom = pdn.sm_terminals(sm)
        top_idx[sm] = solver.structure.node(top)
        if bottom == "0":
            bot_is_ground[sm] = True
            bot_idx[sm] = 0
        else:
            bot_idx[sm] = solver.structure.node(bottom)

    steps = int(duration_s / dt_s)
    voltages = np.empty((steps, num))
    supply = np.empty(steps)
    start_time = solver.time
    for k in range(steps):
        t = solver.time - start_time
        pdn.set_sm_currents(np.asarray(pattern(t), dtype=float))
        node_v = solver.step()
        bottoms = np.where(bot_is_ground, 0.0, node_v[bot_idx])
        voltages[k] = node_v[top_idx] - bottoms
        supply[k] = solver.vsource_current("vdd")
    placeholder = PowerTrace(
        np.maximum(voltages * 0.0 + 1.0, 0.0), frequency_hz=1.0 / dt_s,
        name="synthetic",
    )
    return TraceCosimResult(voltages, supply, placeholder)


def apply_actuation_replay(
    trace: PowerTrace,
    issue_scale: float = 1.0,
    fake_power_w: float = 0.0,
    leakage_w: float = PowerConfig().sm_leakage_power_w,
) -> PowerTrace:
    """Approximate DIWS / FII effects on a recorded trace.

    ``issue_scale`` in (0, 1] scales each SM's *dynamic* power; the
    shaved energy is carried forward and released in later cycles
    (throttled work is deferred, not destroyed), extending activity the
    way DIWS stretches execution.  ``fake_power_w`` adds a constant FII
    power per SM.
    """
    if not 0.0 < issue_scale <= 1.0:
        raise ValueError(f"issue_scale must be in (0,1], got {issue_scale}")
    if fake_power_w < 0:
        raise ValueError("fake power cannot be negative")
    dynamic = np.clip(trace.data - leakage_w, 0.0, None)
    scaled = dynamic * issue_scale
    deferred = np.zeros(trace.num_sms)
    adjusted = np.empty_like(trace.data)
    peak_dynamic = float(dynamic.max()) if dynamic.size else 0.0
    for cycle in range(trace.num_cycles):
        shaved = dynamic[cycle] - scaled[cycle]
        deferred += shaved
        # Release deferred work into remaining headroom this cycle.
        headroom = np.maximum(peak_dynamic * issue_scale - scaled[cycle], 0.0)
        release = np.minimum(deferred, headroom)
        deferred -= release
        adjusted[cycle] = leakage_w + scaled[cycle] + release + fake_power_w
    return PowerTrace(
        adjusted, frequency_hz=trace.frequency_hz, name=f"{trace.name}+act"
    )
