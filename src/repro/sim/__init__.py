"""Integrated hybrid simulation infrastructure (Section V).

Couples the three layers the way the paper couples GPGPU-Sim and
SPICE 3: every GPU clock cycle the timing model emits per-SM power,
the PDN circuit model converts it to currents and advances the supply
transient, the detectors sample the resulting SM voltages, and the
smoothing controller's (latency-delayed) commands reconfigure the GPU's
issue adjusters before the next cycle.
"""

from repro.sim.cosim import (
    CosimConfig,
    CosimResult,
    LayerShutoffEvent,
    run_cosim,
    run_crosslayer_cosim,
)
from repro.sim.explore import (
    ExploreResult,
    ExploreRound,
    round_schedule,
    run_exploration,
)
from repro.sim.pds_configs import PDS_CONFIGS, PDSKind
from repro.sim.power_experiments import (
    run_baseline,
    run_dfs_experiment,
    run_pg_experiment,
)
from repro.sim.sweep import (
    SweepPoint,
    SweepPointResult,
    SweepResult,
    SweepRunner,
    expand_grid,
    run_sweep,
)
from repro.sim.store import ResultStore, point_key
from repro.sim.trace_cosim import (
    apply_actuation_replay,
    replay_trace,
    run_current_pattern,
)

__all__ = [
    "CosimConfig",
    "CosimResult",
    "ExploreResult",
    "ExploreRound",
    "LayerShutoffEvent",
    "PDSKind",
    "PDS_CONFIGS",
    "ResultStore",
    "SweepPoint",
    "SweepPointResult",
    "SweepResult",
    "SweepRunner",
    "apply_actuation_replay",
    "expand_grid",
    "point_key",
    "replay_trace",
    "round_schedule",
    "run_baseline",
    "run_cosim",
    "run_crosslayer_cosim",
    "run_current_pattern",
    "run_dfs_experiment",
    "run_exploration",
    "run_pg_experiment",
    "run_sweep",
]
