"""Shared infrastructure for compile-on-demand native kernels.

Both the GPU step kernel (``repro.gpu._enginec``) and the batched PDN
solver kernel (``repro.circuits._solverc``) are plain-C shared objects
compiled by the system toolchain at first use and driven through
:mod:`ctypes`.  :class:`repro.native.cbuild.KernelBuild` holds the build,
cache, and loud-fallback machinery they have in common.
"""

from repro.native.cbuild import LOAD_FAILED, KernelBuild

__all__ = ["KernelBuild", "LOAD_FAILED"]
