"""Compile-on-demand loader shared by the repo's C kernels.

No new dependencies: each kernel is plain C with no Python headers, so a
stock system compiler (``cc``/``gcc``/``clang``) produces the shared
object and stdlib :mod:`ctypes` drives it.  Build artifacts are cached
next to the kernel source under ``_cbuild_cache/`` keyed by a hash of
the C source, so the compiler runs once per source revision; concurrent
builders (e.g. parallel sweep workers) race benignly through an atomic
rename.

When no compiler is available or the build fails, :meth:`KernelBuild.load`
returns ``None`` and the consumer falls back to its pure-NumPy path —
same results (both are bit-identical by contract), just slower.  The
fallback is *loud*: one :class:`RuntimeWarning` per process plus a
fallback counter that the co-sim telemetry surfaces (e.g. as
``gpu.backend_fallback`` / ``solver.backend_fallback``), so a fleet
silently running 10x slower shows up in the first manifest instead of a
profiler session.

Setting the kernel's env var (``REPRO_GPU_CBUILD`` /
``REPRO_SOLVER_CBUILD``) to ``fail`` forces the build to fail (test hook
for the fallback path); ``quiet`` suppresses the warning while keeping
the counter.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import warnings
from pathlib import Path
from typing import Callable, Optional

# IEEE-strict flags: no FMA contraction, no fast-math — double
# arithmetic must match CPython's operation for operation.
CFLAGS = ["-O2", "-fPIC", "-shared", "-ffp-contract=off", "-fno-fast-math"]

#: Sentinel cached in :attr:`KernelBuild.cache` after a failed load, so
#: repeated consumers hit the counter instead of re-running the compiler.
LOAD_FAILED = object()


def find_compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


class KernelBuild:
    """Build/cache/load state for one on-demand C kernel.

    Parameters
    ----------
    source:
        Path to the ``.c`` translation unit.
    env_var:
        Override variable (``fail`` forces the fallback path, ``quiet``
        suppresses the warn-once).
    what:
        Human name used in the fallback warning ("C step kernel").
    fallback:
        Description of the slow path the consumer lands on.
    counter:
        Telemetry counter name quoted in the warning.
    configure:
        Called with the freshly loaded :class:`ctypes.CDLL` to set
        argtypes/restypes; an :class:`AttributeError` (missing symbol)
        is treated as a failed load.
    """

    def __init__(
        self,
        source: Path,
        env_var: str,
        what: str,
        fallback: str,
        counter: str,
        configure: Callable[[ctypes.CDLL], None],
    ) -> None:
        self.source = source
        self.env_var = env_var
        self.what = what
        self.fallback = fallback
        self.counter = counter
        self.configure = configure
        self.cache_dir = source.parent / "_cbuild_cache"
        # Shared mutable state; module-level back-compat aliases (e.g.
        # repro.gpu._cbuild._LIB_CACHE) bind these same objects.
        self.cache: dict = {}
        self.fallbacks = {"count": 0, "warned": False}

    # ------------------------------------------------------------------
    # Fallback accounting
    # ------------------------------------------------------------------
    def fallback_count(self) -> int:
        """How many times this process fell back to the slow path."""
        return self.fallbacks["count"]

    def reset(self) -> None:
        """Test hook: forget cached load failures and fallback accounting."""
        self.cache.pop("lib", None)
        self.fallbacks["count"] = 0
        self.fallbacks["warned"] = False

    def note_fallback(self, reason: str) -> None:
        self.fallbacks["count"] += 1
        if self.fallbacks["warned"] or os.environ.get(self.env_var) == "quiet":
            return
        self.fallbacks["warned"] = True
        warnings.warn(
            f"{self.what} unavailable ({reason}); falling back to "
            f"{self.fallback} — results are identical but substantially "
            f"slower (telemetry counter: {self.counter})",
            RuntimeWarning,
            stacklevel=4,
        )

    # ------------------------------------------------------------------
    # Build + load
    # ------------------------------------------------------------------
    def _build(self, so_path: Path) -> bool:
        compiler = find_compiler()
        if compiler is None:
            return False
        so_path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            suffix=".so", prefix=f"{self.source.stem}_", dir=str(so_path.parent)
        )
        os.close(fd)
        try:
            result = subprocess.run(
                [compiler, *CFLAGS, "-o", tmp, str(self.source), "-lm"],
                capture_output=True,
                timeout=120,
            )
            if result.returncode != 0:
                return False
            os.replace(tmp, so_path)  # atomic: concurrent builders race safely
            return True
        except (OSError, subprocess.SubprocessError):
            return False
        finally:
            if os.path.exists(tmp):
                try:
                    os.unlink(tmp)
                except OSError:
                    pass

    def load(self) -> Optional[ctypes.CDLL]:
        """The compiled kernel, or ``None`` when unavailable."""
        cached = self.cache.get("lib")
        if cached is LOAD_FAILED:
            # Count every consumer that lands on the slow path, not just
            # the first failed build, so the telemetry counter reflects
            # how much of the run actually ran slow.
            self.fallbacks["count"] += 1
            return None
        if cached is not None:
            return cached
        if os.environ.get(self.env_var) == "fail":
            # Forced-failure test hook: behaves exactly like a failed
            # build (short-circuits before the cached-.so check so a
            # previously built artifact cannot mask the fallback path).
            self.cache["lib"] = LOAD_FAILED
            self.note_fallback(f"forced by {self.env_var}=fail")
            return None
        try:
            digest = hashlib.sha256(self.source.read_bytes()).hexdigest()[:16]
            so_path = self.cache_dir / f"{self.source.stem}_{digest}.so"
            if not so_path.exists() and not self._build(so_path):
                self.cache["lib"] = LOAD_FAILED
                self.note_fallback("compiler missing or build failed")
                return None
            lib = ctypes.CDLL(str(so_path))
            self.configure(lib)
        except (OSError, AttributeError):
            self.cache["lib"] = LOAD_FAILED
            self.note_fallback("shared object failed to load")
            return None
        self.cache["lib"] = lib
        return lib
