"""Per-SM power trace container and capture utilities.

A :class:`PowerTrace` is the interchange format between the GPU timing
model and the PDN analysis: a ``(cycles, num_sms)`` array of watts at a
fixed clock, with helpers for layer aggregation, imbalance statistics
and (de)serialization.  Traces let expensive GPU simulations run once
and feed many PDN experiments (the paper's trace-driven methodology).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.config import StackConfig
from repro.gpu.gpu import GPU
from repro.pdn.efficiency import imbalance_fraction, layer_shuffle_power


@dataclass
class PowerTrace:
    """A per-SM power waveform sampled every clock cycle."""

    data: np.ndarray  # (cycles, num_sms) watts
    frequency_hz: float = 700e6
    name: str = "trace"

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=float)
        if self.data.ndim != 2:
            raise ValueError(f"trace must be 2-D, got shape {self.data.shape}")
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if np.any(self.data < 0):
            raise ValueError("power cannot be negative")

    # ------------------------------------------------------------------
    @property
    def num_cycles(self) -> int:
        return self.data.shape[0]

    @property
    def num_sms(self) -> int:
        return self.data.shape[1]

    @property
    def duration_s(self) -> float:
        return self.num_cycles / self.frequency_hz

    @property
    def dt(self) -> float:
        return 1.0 / self.frequency_hz

    @property
    def total_power(self) -> np.ndarray:
        """Chip power per cycle (sum over SMs)."""
        return self.data.sum(axis=1)

    @property
    def mean_power_w(self) -> float:
        return float(self.total_power.mean())

    def layer_powers(self, stack: StackConfig = StackConfig()) -> np.ndarray:
        """Per-layer power, shape (cycles, num_layers)."""
        if self.num_sms != stack.num_sms:
            raise ValueError(
                f"trace has {self.num_sms} SMs, stack expects {stack.num_sms}"
            )
        return self.data.reshape(
            self.num_cycles, stack.num_layers, stack.num_columns
        ).sum(axis=2)

    def sm_currents(self, sm_voltage: float = 1.0) -> np.ndarray:
        """Per-SM current assuming each SM sees ``sm_voltage``."""
        if sm_voltage <= 0:
            raise ValueError("sm_voltage must be positive")
        return self.data / sm_voltage

    def shuffle_power_w(self, stack: StackConfig = StackConfig()) -> float:
        return layer_shuffle_power(self.data, stack)

    def imbalance_fraction(self, stack: StackConfig = StackConfig()) -> float:
        return imbalance_fraction(self.data, stack)

    def window(self, start: int, stop: int) -> "PowerTrace":
        """Sub-trace over the cycle range [start, stop)."""
        if not 0 <= start < stop <= self.num_cycles:
            raise ValueError(f"bad window [{start}, {stop})")
        return PowerTrace(self.data[start:stop], self.frequency_hz, self.name)

    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Serialize to a compressed ``.npz``."""
        np.savez_compressed(
            Path(path),
            data=self.data,
            frequency_hz=self.frequency_hz,
            name=np.array(self.name),
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "PowerTrace":
        with np.load(Path(path), allow_pickle=False) as archive:
            return cls(
                data=archive["data"],
                frequency_hz=float(archive["frequency_hz"]),
                name=str(archive["name"]),
            )


def capture_trace(
    gpu: GPU,
    cycles: int,
    warmup_cycles: int = 0,
    name: Optional[str] = None,
) -> PowerTrace:
    """Run ``gpu`` and record its per-SM power trace.

    ``warmup_cycles`` are executed and discarded first so the pipeline
    and memory queues reach steady state.
    """
    if warmup_cycles < 0:
        raise ValueError("warmup_cycles cannot be negative")
    if warmup_cycles:
        gpu.run(warmup_cycles)
    data = gpu.run(cycles)
    return PowerTrace(
        data,
        frequency_hz=gpu.config.gpu.sm_clock_hz,
        name=name or gpu.kernel.name,
    )
