"""Workloads: the paper's twelve benchmarks plus synthetic stimuli.

The paper evaluates on six Rodinia 2.0 and six NVIDIA CUDA SDK
benchmarks.  Compiled CUDA binaries cannot run here, so each benchmark
is realized as a :class:`~repro.gpu.kernels.KernelSpec` whose statistics
(instruction mix, memory intensity, dependence, phase structure, tail
jitter) are tuned to the paper's qualitative characterizations — e.g.
``backprop`` shows the most layer imbalance, ``heartwall`` the most
uniformity (Fig. 17), and ``pathfinder`` / ``fastwalsh`` /
``simpleatomic`` are the noise-distribution outliers of Fig. 11.
"""

from repro.workloads.benchmarks import (
    BENCHMARK_NAMES,
    BenchmarkSpec,
    get_benchmark,
    list_benchmarks,
)
from repro.workloads.traces import PowerTrace, capture_trace
from repro.workloads.synthetic import (
    layer_shutoff_currents,
    resonance_currents,
    step_currents,
    worst_case_residual_currents,
)

__all__ = [
    "BENCHMARK_NAMES",
    "BenchmarkSpec",
    "PowerTrace",
    "capture_trace",
    "get_benchmark",
    "layer_shutoff_currents",
    "list_benchmarks",
    "resonance_currents",
    "step_currents",
    "worst_case_residual_currents",
]
