"""The twelve evaluation benchmarks as statistical kernel models.

Six from Rodinia 2.0 (backprop, bfs, heartwall, hotspot, pathfinder,
srad) and six from the NVIDIA CUDA SDK (blackscholes, scalarprod,
sortingnet, simpleface, fastwalsh, simpleatomic) — the suite used across
Figs. 8, 11, 12, 14 and 17.

Each :class:`BenchmarkSpec` couples a kernel model with its memory-system
behaviour and its SM-to-SM activity mismatch level.  Tuning targets:

* issue rates inside the paper's observed 0.8-1.8 warps/cycle band;
* layer imbalance "usually below 20 % of layer power", with ``backprop``
  the most imbalanced and ``heartwall`` the most uniform (Fig. 17);
* ``pathfinder``, ``fastwalsh`` and ``simpleatomic`` carrying strong
  phase transitions (the Fig. 11 outliers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.gpu.isa import InstructionClass as IC
from repro.gpu.kernels import KernelSpec


@dataclass(frozen=True)
class BenchmarkSpec:
    """A paper benchmark: kernel statistics plus system-level behaviour."""

    name: str
    suite: str  # "rodinia" or "cuda_sdk"
    kernel: KernelSpec
    miss_ratio: float
    jitter: float
    description: str

    def __post_init__(self) -> None:
        if not 0.0 <= self.miss_ratio <= 1.0:
            raise ValueError(f"{self.name}: miss_ratio out of range")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"{self.name}: jitter out of range")


def _spec(name, suite, mix, dependence, miss, jitter, desc, phase_period=0,
          phase_boost=0.0, warps=12, body=120):
    return BenchmarkSpec(
        name=name,
        suite=suite,
        kernel=KernelSpec(
            name,
            mix=mix,
            dependence=dependence,
            warps_per_sm=warps,
            body_length=body,
            phase_period=phase_period,
            phase_memory_boost=phase_boost,
        ),
        miss_ratio=miss,
        jitter=jitter,
        description=desc,
    )


_REGISTRY: Dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        # ------------------------------- Rodinia 2.0 -------------------
        _spec(
            "backprop", "rodinia",
            {IC.FMA: 0.35, IC.FALU: 0.25, IC.LOAD: 0.22, IC.STORE: 0.10,
             IC.IALU: 0.08},
            dependence=0.40, miss=0.35, jitter=0.16,
            desc="neural-net training; layered phases make it the most "
                 "layer-imbalanced workload (Fig. 17 worst case)",
            phase_period=45, phase_boost=1.5,
        ),
        _spec(
            "bfs", "rodinia",
            {IC.LOAD: 0.40, IC.IALU: 0.30, IC.BRANCH: 0.20, IC.STORE: 0.10},
            dependence=0.45, miss=0.55, jitter=0.10,
            desc="breadth-first search; irregular memory-bound traversal",
            warps=32,
        ),
        _spec(
            "heartwall", "rodinia",
            {IC.FMA: 0.40, IC.FALU: 0.30, IC.LOAD: 0.18, IC.IALU: 0.12},
            dependence=0.30, miss=0.18, jitter=0.01,
            desc="image tracking; dense regular compute — the most "
                 "uniform workload (Fig. 17 best case)",
        ),
        _spec(
            "hotspot", "rodinia",
            {IC.FMA: 0.35, IC.FALU: 0.25, IC.LOAD: 0.25, IC.STORE: 0.15},
            dependence=0.40, miss=0.25, jitter=0.05,
            desc="thermal stencil; balanced compute/memory iterations",
        ),
        _spec(
            "pathfinder", "rodinia",
            {IC.IALU: 0.40, IC.LOAD: 0.25, IC.BRANCH: 0.20, IC.STORE: 0.15},
            dependence=0.50, miss=0.30, jitter=0.08,
            desc="dynamic programming over a grid; strong row-boundary "
                 "phase transitions (a Fig. 11 outlier)",
            phase_period=30, phase_boost=2.0, warps=16,
        ),
        _spec(
            "srad", "rodinia",
            {IC.FMA: 0.30, IC.FALU: 0.30, IC.SFU: 0.12, IC.LOAD: 0.18,
             IC.STORE: 0.10},
            dependence=0.35, miss=0.22, jitter=0.04,
            desc="speckle-reducing anisotropic diffusion; compute heavy "
                 "with transcendental use",
        ),
        # ------------------------------- CUDA SDK ----------------------
        _spec(
            "blackscholes", "cuda_sdk",
            {IC.SFU: 0.30, IC.FMA: 0.30, IC.FALU: 0.20, IC.LOAD: 0.12,
             IC.STORE: 0.08},
            dependence=0.30, miss=0.12, jitter=0.03,
            desc="option pricing; SFU-saturated streaming compute",
        ),
        _spec(
            "scalarprod", "cuda_sdk",
            {IC.LOAD: 0.35, IC.FMA: 0.35, IC.IALU: 0.20, IC.STORE: 0.10},
            dependence=0.40, miss=0.30, jitter=0.05,
            desc="dot products; bandwidth-bound streaming reduction",
            warps=20,
        ),
        _spec(
            "sortingnet", "cuda_sdk",
            {IC.IALU: 0.40, IC.BRANCH: 0.25, IC.LOAD: 0.20, IC.STORE: 0.15},
            dependence=0.50, miss=0.20, jitter=0.06,
            desc="bitonic sorting networks; branch-dense regular stages",
        ),
        _spec(
            "simpleface", "cuda_sdk",
            {IC.FMA: 0.30, IC.FALU: 0.25, IC.LOAD: 0.25, IC.IALU: 0.20},
            dependence=0.35, miss=0.28, jitter=0.06,
            desc="face-detection cascade; mixed compute and lookups",
        ),
        _spec(
            "fastwalsh", "cuda_sdk",
            {IC.FALU: 0.35, IC.LOAD: 0.30, IC.IALU: 0.20, IC.STORE: 0.15},
            dependence=0.45, miss=0.35, jitter=0.07,
            desc="Walsh-Hadamard transform; butterfly stages alternate "
                 "compute and memory sharply (a Fig. 11 outlier)",
            phase_period=24, phase_boost=2.5, warps=16,
        ),
        _spec(
            "simpleatomic", "cuda_sdk",
            {IC.LOAD: 0.30, IC.STORE: 0.25, IC.IALU: 0.30, IC.BRANCH: 0.15},
            dependence=0.60, miss=0.45, jitter=0.12,
            desc="atomic-intrinsic stress; serialized contention makes "
                 "activity spiky (a Fig. 11 outlier)",
            phase_period=20, phase_boost=1.5, warps=20,
        ),
    ]
}

BENCHMARK_NAMES: List[str] = list(_REGISTRY)

# Display aliases the paper's figures use.
_ALIASES = {
    "backp": "backprop",
    "sard": "srad",  # the paper's figures spell srad as "sard"
}


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look up a benchmark by name (case-insensitive, paper aliases ok)."""
    key = name.lower()
    key = _ALIASES.get(key, key)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(BENCHMARK_NAMES)}"
        )


def list_benchmarks(suite: str = "") -> List[BenchmarkSpec]:
    """All benchmarks, optionally filtered by suite."""
    specs = list(_REGISTRY.values())
    if suite:
        specs = [s for s in specs if s.suite == suite]
    return specs
