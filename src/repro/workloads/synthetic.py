"""Synthetic current stimuli for worst-case reliability experiments.

These generators produce per-SM *current* functions of time (amps) for
driving the PDN directly, bypassing the GPU timing model — used by the
Fig. 9 worst-imbalance experiment, the Fig. 10 sensitivity sweeps, and
the impedance-validation tests.

Each generator returns ``f(t) -> np.ndarray of shape (num_sms,)``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.config import PowerConfig, StackConfig

CurrentPattern = Callable[[float], np.ndarray]


def _steady(stack: StackConfig, power: PowerConfig, activity: float) -> np.ndarray:
    """Per-SM current at an activity level (fraction of dynamic peak)."""
    if not 0.0 <= activity <= 1.0:
        raise ValueError(f"activity must be in [0,1], got {activity}")
    watts = power.sm_leakage_power_w + activity * power.sm_dynamic_peak_w
    return np.full(stack.num_sms, watts / stack.sm_voltage)


def layer_shutoff_currents(
    shutoff_time_s: float,
    layer: int = 3,
    activity: float = 0.8,
    stack: StackConfig = StackConfig(),
    power: PowerConfig = PowerConfig(),
    recovery_time_s: float = float("inf"),
) -> CurrentPattern:
    """Fig. 9's worst-imbalance event: one layer drops to leakage.

    All SMs run at ``activity`` until ``shutoff_time_s``; then every SM
    in ``layer`` collapses to leakage-only draw (optionally recovering at
    ``recovery_time_s``), creating the extreme sustained stack imbalance.
    """
    if shutoff_time_s < 0:
        raise ValueError("shutoff time cannot be negative")
    base = _steady(stack, power, activity)
    off = base.copy()
    leak = power.sm_leakage_power_w / stack.sm_voltage
    for sm in stack.sms_in_layer(layer):
        off[sm] = leak

    def pattern(t: float) -> np.ndarray:
        if shutoff_time_s <= t < recovery_time_s:
            return off
        return base

    return pattern


def step_currents(
    step_time_s: float,
    before_activity: float = 0.2,
    after_activity: float = 1.0,
    stack: StackConfig = StackConfig(),
    power: PowerConfig = PowerConfig(),
) -> CurrentPattern:
    """Global load step: every SM jumps between two activity levels."""
    lo = _steady(stack, power, before_activity)
    hi = _steady(stack, power, after_activity)

    def pattern(t: float) -> np.ndarray:
        return hi if t >= step_time_s else lo

    return pattern


def resonance_currents(
    frequency_hz: float,
    low_activity: float = 0.2,
    high_activity: float = 1.0,
    stack: StackConfig = StackConfig(),
    power: PowerConfig = PowerConfig(),
) -> CurrentPattern:
    """Square-wave global load at ``frequency_hz``.

    Driving this at the PDN's resonance frequency produces the classic
    worst-case dI/dt noise of conventional (single-layer) analysis.
    """
    if frequency_hz <= 0:
        raise ValueError("frequency must be positive")
    lo = _steady(stack, power, low_activity)
    hi = _steady(stack, power, high_activity)
    period = 1.0 / frequency_hz

    def pattern(t: float) -> np.ndarray:
        return hi if (t % period) < period / 2 else lo

    return pattern


def worst_case_residual_currents(
    frequency_hz: float,
    sm: int = 0,
    amplitude_a: float = 2.0,
    activity: float = 0.5,
    stack: StackConfig = StackConfig(),
    power: PowerConfig = PowerConfig(),
) -> CurrentPattern:
    """Concentrated residual-component stimulus at one SM.

    Adds a square-wave residual pattern (the imbalance component with the
    highest effective impedance) of ``amplitude_a`` on top of a balanced
    baseline — the stimulus combination Section III-B identifies as
    generating the worst-case supply noise.
    """
    if frequency_hz <= 0:
        raise ValueError("frequency must be positive")
    if amplitude_a < 0:
        raise ValueError("amplitude cannot be negative")
    base = _steady(stack, power, activity)
    layer, column = stack.layer_column(sm)
    residual = np.zeros(stack.num_sms)
    for other in stack.sms_in_column(column):
        residual[other] = -amplitude_a / (stack.num_layers - 1)
    residual[sm] = amplitude_a
    period = 1.0 / frequency_hz

    def pattern(t: float) -> np.ndarray:
        if (t % period) < period / 2:
            return base + residual
        return base

    return pattern
