"""Adversarial microbenchmarks (power viruses).

Conventional supply-noise studies stress the PDS with synthetic
*microbenchmarks* whose activity alternates at a chosen period,
concentrating di/dt energy at one frequency.  The paper's Section III-B
argues such pulse-train worst cases are exactly what the effective
impedance analysis bounds; these generators let the time-domain
experiments construct them at the *GPU* level (real instructions, real
issue machinery) rather than as raw current patterns.

Two flavours:

* :func:`didt_virus` — a global di/dt virus: all SMs alternate between
  compute-saturated and idle phases at a target period, pumping the
  package resonance when the period matches;
* :func:`imbalance_virus` — the VS-specific attack: activity alternates
  *between stack layers* so the residual (imbalance) component is
  pumped instead, at a chosen period.

Both return per-SM "activity schedules" the GPU applies through DIWS
issue-width modulation (the cleanest way to impose an activity envelope
on real instruction streams).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import StackConfig


@dataclass(frozen=True)
class VirusSchedule:
    """A periodic per-SM issue-width envelope.

    ``widths(cycle)`` returns the per-SM issue-width vector at a cycle;
    the driver applies it via ``GPU.set_issue_widths`` each cycle.
    """

    period_cycles: int
    high_width: float
    low_width: float
    pattern: str  # "global" or "imbalance"
    stack: StackConfig = StackConfig()

    def __post_init__(self) -> None:
        if self.period_cycles < 2:
            raise ValueError("period must be at least 2 cycles")
        if not 0.0 <= self.low_width <= self.high_width <= 2.0:
            raise ValueError("need 0 <= low <= high <= 2")
        if self.pattern not in ("global", "imbalance"):
            raise ValueError(f"unknown pattern {self.pattern!r}")

    @property
    def frequency_hz(self) -> float:
        return 700e6 / self.period_cycles

    def widths(self, cycle: int) -> np.ndarray:
        """Per-SM issue widths at ``cycle``."""
        n = self.stack.num_sms
        in_high = (cycle % self.period_cycles) < self.period_cycles // 2
        if self.pattern == "global":
            value = self.high_width if in_high else self.low_width
            return np.full(n, value)
        # Imbalance virus: top half of the stack swings against the
        # bottom half, keeping total activity roughly constant while
        # maximizing the residual/stack components.
        widths = np.empty(n)
        half = self.stack.num_layers // 2
        for layer in range(self.stack.num_layers):
            upper = layer >= half
            active = in_high if upper else not in_high
            value = self.high_width if active else self.low_width
            for sm in self.stack.sms_in_layer(layer):
                widths[sm] = value
        return widths


def didt_virus(
    period_cycles: int = 11,  # ~63 MHz at 700 MHz: the resonance pump
    high_width: float = 2.0,
    low_width: float = 0.0,
) -> VirusSchedule:
    """Global di/dt virus at the given alternation period."""
    return VirusSchedule(
        period_cycles=period_cycles,
        high_width=high_width,
        low_width=low_width,
        pattern="global",
    )


def imbalance_virus(
    period_cycles: int = 700,  # ~1 MHz: deep in the residual plateau
    high_width: float = 2.0,
    low_width: float = 0.2,
) -> VirusSchedule:
    """Layer-alternating imbalance virus — the VS-specific worst case."""
    return VirusSchedule(
        period_cycles=period_cycles,
        high_width=high_width,
        low_width=low_width,
        pattern="imbalance",
    )
