"""Compile-on-demand loader for the C step kernel (``_enginec.c``).

No new dependencies: the kernel is plain C with no Python headers, so a
stock system compiler (``cc``/``gcc``/``clang``) produces the shared
object and stdlib :mod:`ctypes` drives it.  Build artifacts are cached
next to this file under ``_cbuild_cache/`` keyed by a hash of the C
source, so the compiler runs once per source revision; concurrent
builders (e.g. parallel sweep workers) race benignly through an atomic
rename.

When no compiler is available or the build fails, :func:`load_engine_lib`
returns ``None`` and the engine falls back to its pure-NumPy step path —
same results (both are bit-identical to the per-object reference), just
slower.  The fallback is *loud*: one :class:`RuntimeWarning` per process
plus a :func:`build_fallback_count` counter that the co-sim telemetry
surfaces as ``gpu.backend_fallback``, so a fleet silently running 10x
slower shows up in the first manifest instead of a profiler session.

Setting ``REPRO_GPU_CBUILD=fail`` forces the build to fail (test hook
for the fallback path); ``REPRO_GPU_CBUILD=quiet`` suppresses the
warning while keeping the counter.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import warnings
from pathlib import Path
from typing import Optional

CBUILD_ENV = "REPRO_GPU_CBUILD"

_C_SOURCE = Path(__file__).with_name("_enginec.c")
_CACHE_DIR = Path(__file__).with_name("_cbuild_cache")

# IEEE-strict flags: no FMA contraction, no fast-math — double
# arithmetic must match CPython's operation for operation.
_CFLAGS = ["-O2", "-fPIC", "-shared", "-ffp-contract=off", "-fno-fast-math"]

_PTR = ctypes.c_void_p
_I64 = ctypes.c_longlong
_F64 = ctypes.c_double


class CEngineState(ctypes.Structure):
    """Mirror of ``EngineState`` in ``_enginec.c`` (field order matters)."""

    _fields_ = [
        ("num_sms", _I64),
        ("num_warps", _I64),
        ("body", _I64),
        ("heap_cap", _I64),
        ("max_pc", _I64),
        ("dram_cycles", _I64),
        ("l2_cycles", _I64),
        ("clock_hz", _F64),
        ("idle_energy", _F64),
        ("fake_energy", _F64),
        ("slot_width", _F64),
        ("issue_width", _PTR),
        ("fake_rate", _PTR),
        ("freq_scale", _PTR),
        ("gated", _PTR),
        ("waking", _PTR),
        ("unit_idle", _PTR),
        ("leakage", _PTR),
        ("window_start", _PTR),
        ("budget", _PTR),
        ("fake_acc", _PTR),
        ("clock_acc", _PTR),
        ("wheel", _PTR),
        ("wheel_pos", _PTR),
        ("st_cycles", _PTR),
        ("st_active", _PTR),
        ("st_inst", _PTR),
        ("st_fake", _PTR),
        ("st_stall", _PTR),
        ("pc", _PTR),
        ("length", _PTR),
        ("outstanding", _PTR),
        ("warp_done", _PTR),
        ("ready_at", _PTR),
        ("last_warp", _PTR),
        ("heap", _PTR),
        ("heap_len", _PTR),
        ("mem_slot", _PTR),
        ("mem_counters", _PTR),
        ("totals", _PTR),
        ("s_unit", _PTR),
        ("s_latency", _PTR),
        ("s_dest", _PTR),
        ("s_is_load", _PTR),
        ("s_span", _PTR),
        ("s_share", _PTR),
        ("s_dest_col", _PTR),
        ("s_src1_col", _PTR),
        ("s_src2_col", _PTR),
        ("miss_table", _PTR),
        ("powers", _PTR),
    ]


_LIB_CACHE: dict = {}
_LOAD_FAILED = object()
_FALLBACKS = {"count": 0, "warned": False}


def build_fallback_count() -> int:
    """How many times this process fell back to the NumPy step path."""
    return _FALLBACKS["count"]


def reset_fallback_state() -> None:
    """Test hook: forget cached load failures and fallback accounting."""
    _LIB_CACHE.pop("lib", None)
    _FALLBACKS["count"] = 0
    _FALLBACKS["warned"] = False


def _note_fallback(reason: str) -> None:
    _FALLBACKS["count"] += 1
    if _FALLBACKS["warned"] or os.environ.get(CBUILD_ENV) == "quiet":
        return
    _FALLBACKS["warned"] = True
    warnings.warn(
        "C step kernel unavailable ("
        f"{reason}); falling back to the pure-NumPy engine path — "
        "results are identical but substantially slower "
        "(telemetry counter: gpu.backend_fallback)",
        RuntimeWarning,
        stacklevel=3,
    )


def _find_compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _build(so_path: Path) -> bool:
    compiler = _find_compiler()
    if compiler is None:
        return False
    so_path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        suffix=".so", prefix="_enginec_", dir=str(so_path.parent)
    )
    os.close(fd)
    try:
        result = subprocess.run(
            [compiler, *_CFLAGS, "-o", tmp, str(_C_SOURCE), "-lm"],
            capture_output=True,
            timeout=120,
        )
        if result.returncode != 0:
            return False
        os.replace(tmp, so_path)  # atomic: concurrent builders race safely
        return True
    except (OSError, subprocess.SubprocessError):
        return False
    finally:
        if os.path.exists(tmp):
            try:
                os.unlink(tmp)
            except OSError:
                pass


def load_engine_lib() -> Optional[ctypes.CDLL]:
    """The compiled step kernel, or ``None`` when unavailable."""
    cached = _LIB_CACHE.get("lib")
    if cached is _LOAD_FAILED:
        # Count every consumer that lands on the NumPy path, not just
        # the first failed build, so the telemetry counter reflects how
        # much of the run actually ran slow.
        _FALLBACKS["count"] += 1
        return None
    if cached is not None:
        return cached
    if os.environ.get(CBUILD_ENV) == "fail":
        # Forced-failure test hook: behaves exactly like a failed build
        # (short-circuits before the cached-.so check so a previously
        # built artifact cannot mask the fallback path).
        _LIB_CACHE["lib"] = _LOAD_FAILED
        _note_fallback("forced by REPRO_GPU_CBUILD=fail")
        return None
    try:
        digest = hashlib.sha256(_C_SOURCE.read_bytes()).hexdigest()[:16]
        so_path = _CACHE_DIR / f"_enginec_{digest}.so"
        if not so_path.exists() and not _build(so_path):
            _LIB_CACHE["lib"] = _LOAD_FAILED
            _note_fallback("compiler missing or build failed")
            return None
        lib = ctypes.CDLL(str(so_path))
        lib.engine_step.argtypes = [ctypes.POINTER(CEngineState), _I64]
        lib.engine_step.restype = _I64
    except (OSError, AttributeError):
        _LIB_CACHE["lib"] = _LOAD_FAILED
        _note_fallback("shared object failed to load")
        return None
    _LIB_CACHE["lib"] = lib
    return lib
