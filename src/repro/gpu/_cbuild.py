"""Compile-on-demand loader for the C step kernel (``_enginec.c``).

The build/cache/loud-fallback machinery lives in
:class:`repro.native.cbuild.KernelBuild` (shared with the batched PDN
solver kernel, ``repro.circuits._solverc``); this module binds it to the
engine kernel and keeps the original module-level surface
(:data:`_LIB_CACHE`, :data:`_LOAD_FAILED`, :func:`load_engine_lib`, …)
that the engine, CLI chaos scenario, and fallback tests poke.

When no compiler is available or the build fails, :func:`load_engine_lib`
returns ``None`` and the engine falls back to its pure-NumPy step path —
same results (both are bit-identical to the per-object reference), just
slower; the co-sim telemetry surfaces the count as
``gpu.backend_fallback``.  Setting ``REPRO_GPU_CBUILD=fail`` forces the
build to fail (test hook); ``REPRO_GPU_CBUILD=quiet`` suppresses the
warning while keeping the counter.
"""

from __future__ import annotations

import ctypes
from pathlib import Path
from typing import Optional

from repro.native.cbuild import LOAD_FAILED as _LOAD_FAILED
from repro.native.cbuild import KernelBuild

CBUILD_ENV = "REPRO_GPU_CBUILD"

_C_SOURCE = Path(__file__).with_name("_enginec.c")

_PTR = ctypes.c_void_p
_I64 = ctypes.c_longlong
_F64 = ctypes.c_double


class CEngineState(ctypes.Structure):
    """Mirror of ``EngineState`` in ``_enginec.c`` (field order matters)."""

    _fields_ = [
        ("num_sms", _I64),
        ("num_warps", _I64),
        ("body", _I64),
        ("heap_cap", _I64),
        ("max_pc", _I64),
        ("dram_cycles", _I64),
        ("l2_cycles", _I64),
        ("clock_hz", _F64),
        ("idle_energy", _F64),
        ("fake_energy", _F64),
        ("slot_width", _F64),
        ("issue_width", _PTR),
        ("fake_rate", _PTR),
        ("freq_scale", _PTR),
        ("gated", _PTR),
        ("waking", _PTR),
        ("unit_idle", _PTR),
        ("leakage", _PTR),
        ("window_start", _PTR),
        ("budget", _PTR),
        ("fake_acc", _PTR),
        ("clock_acc", _PTR),
        ("wheel", _PTR),
        ("wheel_pos", _PTR),
        ("st_cycles", _PTR),
        ("st_active", _PTR),
        ("st_inst", _PTR),
        ("st_fake", _PTR),
        ("st_stall", _PTR),
        ("pc", _PTR),
        ("length", _PTR),
        ("outstanding", _PTR),
        ("warp_done", _PTR),
        ("ready_at", _PTR),
        ("last_warp", _PTR),
        ("heap", _PTR),
        ("heap_len", _PTR),
        ("mem_slot", _PTR),
        ("mem_counters", _PTR),
        ("totals", _PTR),
        ("s_unit", _PTR),
        ("s_latency", _PTR),
        ("s_dest", _PTR),
        ("s_is_load", _PTR),
        ("s_span", _PTR),
        ("s_share", _PTR),
        ("s_dest_col", _PTR),
        ("s_src1_col", _PTR),
        ("s_src2_col", _PTR),
        ("miss_table", _PTR),
        ("powers", _PTR),
    ]


def _configure(lib: ctypes.CDLL) -> None:
    lib.engine_step.argtypes = [ctypes.POINTER(CEngineState), _I64]
    lib.engine_step.restype = _I64
    lib.engine_step_batch.argtypes = [
        ctypes.POINTER(ctypes.POINTER(CEngineState)),
        _I64,
        _I64,
        _PTR,
    ]
    lib.engine_step_batch.restype = _I64


_BUILD = KernelBuild(
    source=_C_SOURCE,
    env_var=CBUILD_ENV,
    what="C step kernel",
    fallback="the pure-NumPy engine path",
    counter="gpu.backend_fallback",
    configure=_configure,
)

# Back-compat aliases: tests monkeypatch _LIB_CACHE["lib"] and compare
# against _LOAD_FAILED directly; both bind KernelBuild's own objects.
_LIB_CACHE = _BUILD.cache
_FALLBACKS = _BUILD.fallbacks


def build_fallback_count() -> int:
    """How many times this process fell back to the NumPy step path."""
    return _BUILD.fallback_count()


def reset_fallback_state() -> None:
    """Test hook: forget cached load failures and fallback accounting."""
    _BUILD.reset()


def load_engine_lib() -> Optional[ctypes.CDLL]:
    """The compiled step kernel, or ``None`` when unavailable."""
    return _BUILD.load()
