"""Warp schedulers: GTO (Table I) and the gating-aware two-level GATES.

* :class:`GTOScheduler` — greedy-then-oldest: keep issuing from the warp
  issued last as long as it stays ready, otherwise fall back to the
  oldest ready warp.  The scheduler the paper's configuration uses.
* :class:`GatingAwareScheduler` — the Warped-Gates-style two-level
  scheduler (GATES): prefer warps whose next instruction targets an
  execution unit that is already powered on, extending unit idle windows
  so power gating can engage (Section V's PG study).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.gpu.isa import ExecUnit
from repro.gpu.warp import Warp


class GTOScheduler:
    """Greedy-then-oldest warp selection."""

    def __init__(self) -> None:
        self._last_warp_id: Optional[int] = None

    def select(self, warps: List[Warp], cycle: int) -> Optional[Warp]:
        """Pick the next warp to issue from, or ``None`` if none ready."""
        ready = [w for w in warps if w.is_ready(cycle)]
        if not ready:
            return None
        if self._last_warp_id is not None:
            for warp in ready:
                if warp.warp_id == self._last_warp_id:
                    return warp
        # Oldest = least progressed, ties broken by warp id.
        chosen = min(ready, key=lambda w: (w.pc, w.warp_id))
        self._last_warp_id = chosen.warp_id
        return chosen

    def issued(self, warp: Warp) -> None:
        self._last_warp_id = warp.warp_id

    def reset(self) -> None:
        self._last_warp_id = None


class GatingAwareScheduler(GTOScheduler):
    """GATES: bias selection toward already-active execution units.

    ``active_units`` is refreshed by the SM each cycle with the units
    currently powered on; ready warps whose next instruction needs an
    active unit are preferred, so gated units stay idle longer and the
    break-even condition of power gating is met more often.
    """

    def __init__(self) -> None:
        super().__init__()
        self.active_units: Set[ExecUnit] = set(ExecUnit)

    def set_active_units(self, units: Iterable[ExecUnit]) -> None:
        self.active_units = set(units)

    def select(self, warps: List[Warp], cycle: int) -> Optional[Warp]:
        ready = [w for w in warps if w.is_ready(cycle)]
        if not ready:
            return None
        preferred = [
            w for w in ready if w.peek() is not None and w.peek().unit in self.active_units
        ]
        pool = preferred if preferred else ready
        if self._last_warp_id is not None:
            for warp in pool:
                if warp.warp_id == self._last_warp_id:
                    return warp
        chosen = min(pool, key=lambda w: (w.pc, w.warp_id))
        self._last_warp_id = chosen.warp_id
        return chosen
