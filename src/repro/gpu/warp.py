"""Warp state and the register scoreboard.

A :class:`Warp` owns a linear instruction stream (kernels unroll loops
when the stream is built) and a per-warp :class:`Scoreboard` mapping
register ids to the cycle their pending write completes.  A warp is
*ready* when its next instruction's sources and destination are free —
the check the paper's issue path performs before dispatch ("only when
the warp is marked ready in the scoreboard can it be issued").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.gpu.isa import Instruction

# Sentinel meaning "pending on an unresolved memory access".
PENDING_MEMORY = -1


class Scoreboard:
    """Register -> ready-cycle map for one warp."""

    def __init__(self) -> None:
        self._ready_at: Dict[int, int] = {}

    def is_ready(self, reg: int, cycle: int) -> bool:
        ready = self._ready_at.get(reg)
        if ready is None:
            return True
        if ready == PENDING_MEMORY:
            return False
        return cycle >= ready

    def mark_pending(self, reg: int, ready_cycle: int) -> None:
        """Record a write to ``reg`` completing at ``ready_cycle``.

        ``PENDING_MEMORY`` marks an unresolved memory access; it is
        released explicitly by :meth:`release`.
        """
        if reg < 0:
            return
        self._ready_at[reg] = ready_cycle

    def release(self, reg: int, cycle: int) -> None:
        """Resolve a memory-pending register at ``cycle``."""
        if self._ready_at.get(reg) == PENDING_MEMORY:
            self._ready_at[reg] = cycle

    def pending_count(self, cycle: int) -> int:
        return sum(
            1
            for ready in self._ready_at.values()
            if ready == PENDING_MEMORY or ready > cycle
        )


@dataclass
class Warp:
    """One warp's execution state within an SM."""

    warp_id: int
    instructions: List[Instruction]
    pc: int = 0
    scoreboard: Scoreboard = field(default_factory=Scoreboard)
    last_issue_cycle: int = -1
    # Registers whose loads are in flight (for release on completion).
    outstanding_loads: int = 0

    @property
    def done(self) -> bool:
        return self.pc >= len(self.instructions)

    def peek(self) -> Optional[Instruction]:
        if self.done:
            return None
        return self.instructions[self.pc]

    def is_ready(self, cycle: int) -> bool:
        """Can the next instruction issue this cycle?"""
        instruction = self.peek()
        if instruction is None:
            return False
        board = self.scoreboard
        if not board.is_ready(instruction.dest, cycle):
            return False
        return all(board.is_ready(reg, cycle) for reg in instruction.srcs)

    def advance(self, cycle: int) -> Instruction:
        """Issue the next instruction (caller must have checked readiness)."""
        instruction = self.instructions[self.pc]
        self.pc += 1
        self.last_issue_cycle = cycle
        return instruction

    @property
    def progress(self) -> float:
        """Fraction of the stream retired (0..1)."""
        if not self.instructions:
            return 1.0
        return self.pc / len(self.instructions)
