"""Shared L2 / DRAM memory model.

A latency + bandwidth model, not a functional cache: each load is
assigned a service latency (L2 hit or DRAM miss, drawn per-request from
the kernel's miss ratio) and queues against a global requests-per-cycle
bandwidth limit shared by all SMs — the FR-FCFS controller and 179.2
GB/s channel limit of Table I reduced to their timing effect.

SMs call :meth:`request` at issue time and receive the absolute cycle
the value becomes ready; completion releases the destination register in
the warp's scoreboard (handled by the SM).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class MemoryTimings:
    """Service latencies and bandwidth of the memory hierarchy."""

    l2_hit_cycles: int = 32
    dram_cycles: int = 220
    # Requests the whole chip can start servicing per cycle (6 channels).
    requests_per_cycle: int = 12

    def __post_init__(self) -> None:
        if self.l2_hit_cycles <= 0 or self.dram_cycles <= 0:
            raise ValueError("latencies must be positive")
        if self.requests_per_cycle <= 0:
            raise ValueError("requests_per_cycle must be positive")


class MemorySystem:
    """Global latency/bandwidth arbiter shared by every SM."""

    def __init__(
        self,
        miss_ratio: float = 0.3,
        timings: MemoryTimings = MemoryTimings(),
        seed: int = 0,
    ) -> None:
        if not 0.0 <= miss_ratio <= 1.0:
            raise ValueError(f"miss_ratio must be in [0,1], got {miss_ratio}")
        self.miss_ratio = miss_ratio
        self.timings = timings
        self._seed = seed + 1
        self._rng = np.random.default_rng(seed)
        # Earliest cycle at which the next request can start service.
        self._next_service_slot = 0.0
        self.requests_served = 0
        self.misses = 0

    def request(self, cycle: int, key: Optional[tuple] = None) -> int:
        """Issue a load at ``cycle``; return its completion cycle.

        ``key`` identifies the access site (e.g. ``(warp id, pc)``).
        When given, hit/miss is a *deterministic* function of the key —
        so under the SPMD model every SM executing the same code sees
        the same microarchitectural events, the property that keeps
        layer currents balanced (Section III-A).  Without a key the
        outcome is drawn randomly at the configured miss ratio.
        """
        slot_width = 1.0 / self.timings.requests_per_cycle
        start = max(float(cycle), self._next_service_slot)
        self._next_service_slot = start + slot_width
        queue_delay = start - cycle
        if key is not None:
            draw = self._site_hash(key)
        else:
            draw = self._rng.random()
        if draw < self.miss_ratio:
            latency = self.timings.dram_cycles
            self.misses += 1
        else:
            latency = self.timings.l2_hit_cycles
        self.requests_served += 1
        return int(cycle + queue_delay + latency)

    def service_batch(self, cycle: int, latencies: np.ndarray, miss_count: int) -> np.ndarray:
        """Serve one cycle's loads in arrival order; return completion cycles.

        Batched form of :meth:`request` for the vectorized engine: the
        caller resolves hit/miss per request (via :meth:`site_miss_table`)
        and passes the service ``latencies`` in the exact order the
        reference model would have called :meth:`request`.  The bandwidth
        recurrence ``start = max(cycle, slot); slot = start + width`` is
        a running sum once the first start is pinned, so a cumulative sum
        reproduces it add-for-add (bit-identical floats).
        """
        n = len(latencies)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        slot_width = 1.0 / self.timings.requests_per_cycle
        increments = np.full(n, slot_width)
        increments[0] = max(float(cycle), self._next_service_slot)
        starts = np.cumsum(increments)
        self._next_service_slot = float(starts[-1]) + slot_width
        queue_delay = starts - float(cycle)
        completions = ((cycle + queue_delay) + latencies).astype(np.int64)
        self.requests_served += n
        self.misses += int(miss_count)
        return completions

    def site_miss_table(
        self, num_warps: int, max_pc: int, generation: int
    ) -> np.ndarray:
        """Hit/miss for every ``(warp_id, pc, generation)`` access site.

        Precomputes :meth:`_site_hash` over the full (warp, pc) grid of
        one kernel generation — the site key is SM-independent under
        SPMD, so one table serves all SMs.  Entry ``[warp_id, pc]`` is
        True when a load issued from that site misses to DRAM.
        """
        mask = (1 << 32) - 1
        c1, c2 = 0x7F4A7C15, 0x85EBCA6B
        table = np.empty((num_warps, max_pc), dtype=bool)
        pcs = np.arange(max_pc, dtype=np.uint64)
        for warp_id in range(num_warps):
            # First mixing step in Python ints: the seed product is taken
            # unreduced in the reference, so it may exceed 64 bits.
            h1 = ((self._seed * 0x9E3779B1) ^ (warp_id + c1)) * c2 & mask
            h2 = ((np.uint64(h1) ^ (pcs + np.uint64(c1))) * np.uint64(c2)) & np.uint64(mask)
            h3 = ((h2 ^ np.uint64((int(generation) + c1) & ((1 << 64) - 1))) * np.uint64(c2)) & np.uint64(mask)
            draws = h3.astype(float) / float(1 << 32)
            table[warp_id] = draws < self.miss_ratio
        return table

    def _site_hash(self, key: tuple) -> float:
        """Stable uniform draw in [0, 1) from an access-site key."""
        h = self._seed * 0x9E3779B1
        for part in key:
            h = (h ^ (int(part) + 0x7F4A7C15)) * 0x85EBCA6B % (1 << 32)
        return h / float(1 << 32)

    @property
    def observed_miss_ratio(self) -> float:
        if self.requests_served == 0:
            return 0.0
        return self.misses / self.requests_served

    def reset_statistics(self) -> None:
        self.requests_served = 0
        self.misses = 0
