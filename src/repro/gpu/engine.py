"""Struct-of-arrays GPU engine: all 16 SMs stepped as NumPy arrays.

The per-object model (:class:`repro.gpu.sm.StreamingMultiprocessor`)
walks Python objects per warp per cycle — scheduler scans, scoreboard
dict lookups, a per-instruction modulo loop over the energy wheel — and
the stage telemetry shows it dominating co-simulation wall time.  This
module re-implements the *same* microarchitecture with the state held
as ``(num_sms, ...)`` arrays, advancing every SM per cycle in one batch
of vector operations.

The contract with the retained reference is **bit-identical** output:
per-cycle power vectors and every statistic match the per-object model
exactly for the same seed.  That dictates the implementation at the
float-operation level; where it matters the code notes which reference
ordering it is preserving:

* the DIWS budget uses the same ``round()`` (banker's) as the SM;
* the FII accumulator is drained by *sequential* ``-= 1.0`` steps, not
  one fused subtraction (``a - 1.0 - 1.0 != a - 2.0`` in floats);
* energy-wheel deposits happen in reference order (first issue slot,
  second slot, then fakes; offsets ascending) so per-cell float sums
  associate identically;
* memory requests are serviced in the reference's global order — SM 0's
  issue slots before SM 1's — by collecting the cycle's loads and
  replaying them through one cumulative-sum batch
  (:meth:`repro.gpu.memory.MemorySystem.service_batch`);
* leakage is computed by the *same* :meth:`SMPowerModel.leakage_w` on a
  mirrored per-SM ``set`` receiving the identical add/discard sequence,
  so the set-iteration float-sum order matches.

Scoreboards become a ``(sms, warps, 17)`` ready-at table (column 16 is
a dummy register for dest-less instructions, so readiness is a plain
fancy-indexed ``max``), with sentinels for "never written" and "load in
flight".  Stale pending-load heap entries survive kernel relaunch with
the reference's exact semantics (release-if-pending against the *new*
warp's scoreboard, unconditional outstanding-count decrement).

The GPU facade (:class:`repro.gpu.gpu.GPU`) selects this engine by
default (``vectorized=True``) and exposes per-SM views so existing
consumers (experiments, tests) keep reading per-SM statistics and
issuing per-SM actuation.  The Warped-Gates PG study needs the
per-object scheduler coupling and keeps using the reference model.
"""

from __future__ import annotations

import ctypes
import heapq
import os
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.gpu._cbuild import CEngineState, load_engine_lib
from repro.gpu.isa import ENERGY, ExecUnit, InstructionClass
from repro.gpu.kernels import (
    KernelSpec,
    StreamArrays,
    UNIT_ORDER,
    build_warps,
    jittered_lengths,
    stream_arrays,
)
from repro.gpu.memory import MemorySystem
from repro.gpu.power import IDLE_DYNAMIC_ENERGY, SMPowerModel
from repro.gpu.sm import DIWS_WINDOW, SMStatistics, UNIT_PORTS, WAKEUP_CYCLES
from repro.gpu.warp import Warp

_UNIT_INDEX: Dict[ExecUnit, int] = {u: i for i, u in enumerate(UNIT_ORDER)}
_PORTS_INIT = np.array([UNIT_PORTS[u] for u in UNIT_ORDER], dtype=np.int64)
_FAKE_ENERGY = ENERGY[InstructionClass.FAKE]  # latency 1 -> span 1, share=E

# Scoreboard sentinels in the int64 ready-at table.  "Ready" is the
# single comparison ``ready_at <= cycle``: a register never written is
# always ready (very negative), a load in flight never is (very
# positive) until its completion pops and writes the release cycle.
_NEVER = -(1 << 62)
_PENDING = 1 << 62
_FAR = 1 << 62  # done-warp ready cycle / argmin mask value


def _resolve_backend(backend: str, num_warps: int) -> str:
    """Pick the step backend: compiled C kernel when available.

    ``REPRO_GPU_BACKEND`` (``c`` | ``numpy``) overrides the caller; the
    C kernel additionally requires fields to fit its packed heap keys.
    Both backends produce bit-identical results — the C path is just an
    order of magnitude faster.
    """
    env = os.environ.get("REPRO_GPU_BACKEND", "").strip().lower()
    if env in ("c", "numpy"):
        backend = env
    if backend == "c" or backend == "auto":
        if num_warps < (1 << 16) and load_engine_lib() is not None:
            return "c"
        if backend == "c":
            raise RuntimeError(
                "C engine backend requested but unavailable "
                "(no working compiler, or kernel too large)"
            )
    return "numpy"


class VectorizedGPUEngine:
    """All SMs of one GPU as struct-of-arrays state, stepped per cycle."""

    #: Pending-load heap capacity per SM for the C backend.
    HEAP_CAPACITY = 4096

    def __init__(
        self,
        kernel: KernelSpec,
        num_sms: int,
        memory: MemorySystem,
        power_model: SMPowerModel,
        seed: int = 0,
        jitter: float = 0.0,
        backend: str = "auto",
    ) -> None:
        self.kernel = kernel
        self.num_sms = num_sms
        self.num_warps = kernel.warps_per_sm
        self.memory = memory
        self.power_model = power_model
        self.jitter = jitter
        self._base_seed = seed
        # Same per-SM jitter-seed derivation as the GPU's SM construction.
        self._jitter_seeds = [seed * 65_537 + sm_id + 1 for sm_id in range(num_sms)]
        self.generation = 0
        self._clock_hz = power_model.gpu.sm_clock_hz

        S, W = num_sms, self.num_warps
        # Actuation state -------------------------------------------------
        self.issue_width = np.full(S, 2.0)
        self.fake_rate = np.zeros(S)
        self.frequency_scale = np.ones(S)
        self._gated = np.zeros((S, 3), dtype=bool)
        # Mirrored Python sets: fed the same add/discard sequence as the
        # reference SM's ``gated_units`` so leakage_w's set-iteration
        # float-sum order is identical.
        self.gated_sets: List[Set[ExecUnit]] = [set() for _ in range(S)]
        self._waking = np.full((S, 3), _NEVER, dtype=np.int64)  # usable-at
        self.unit_idle = np.zeros((S, 3), dtype=np.int64)
        self._leakage = np.full(S, power_model.leakage_w(()))

        # DIWS / FII / DFS machinery --------------------------------------
        self._window_start = np.zeros(S, dtype=np.int64)
        self._issue_budget = np.rint(self.issue_width * DIWS_WINDOW).astype(
            np.int64
        )
        self._fake_acc = np.zeros(S)
        self._clock_acc = np.zeros(S)

        # Energy wheel ----------------------------------------------------
        self._wheel = np.zeros((S, 8))
        self._wheel_pos = np.zeros(S, dtype=np.int64)

        # Statistics ------------------------------------------------------
        self.stat_cycles = np.zeros(S, dtype=np.int64)
        self.stat_active = np.zeros(S, dtype=np.int64)
        self.stat_instructions = np.zeros(S, dtype=np.int64)
        self.stat_fakes = np.zeros(S, dtype=np.int64)
        self.stat_stalls = np.zeros(S, dtype=np.int64)
        self.stat_kernels = np.zeros(S, dtype=np.int64)
        # O(1) GPU-total counters: [instructions, fakes].
        self._totals = np.zeros(2, dtype=np.int64)

        # Per-warp execution state ---------------------------------------
        self._pc = np.zeros((S, W), dtype=np.int64)
        self._length = np.empty((S, W), dtype=np.int64)
        self._warp_done = np.zeros((S, W), dtype=bool)
        self._outstanding = np.zeros((S, W), dtype=np.int64)
        self._ready_at = np.full((S, W, 17), _NEVER, dtype=np.int64)
        self._ready_cycle = np.full((S, W), _NEVER, dtype=np.int64)
        self._head_unit = np.zeros((S, W), dtype=np.int64)
        self._last_warp = np.full(S, -1, dtype=np.int64)

        # Pending loads: per-SM heaps of (completion, warp, reg) exactly
        # like the reference (stale entries survive kernel relaunch);
        # _next_pending caches each heap's minimum for a vector gate.
        self._pending: List[List[Tuple[int, int, int]]] = [[] for _ in range(S)]
        self._next_pending = np.full(S, _FAR, dtype=np.int64)

        # Preallocated per-cycle scratch ----------------------------------
        self._rows = np.arange(S)
        self._wids = np.arange(W)
        self._ports = np.empty((S, 3), dtype=np.int64)
        self._used = np.zeros((S, 3), dtype=bool)
        self._dyn = np.zeros(S)
        self._n_issued = np.zeros(S, dtype=np.int64)

        self._streams: Optional[StreamArrays] = None
        self._miss_table: Optional[np.ndarray] = None

        self.backend = _resolve_backend(backend, self.num_warps)
        if self.backend == "c":
            self._clib = load_engine_lib()
            self._cheap = np.zeros((S, self.HEAP_CAPACITY), dtype=np.int64)
            self._cheap_len = np.zeros(S, dtype=np.int64)
            self._mem_slot = np.zeros(1)
            self._mem_counters = np.zeros(2, dtype=np.int64)
            self._powers_buf = np.zeros(S)
            self._c_ndone = 0
        self._load_generation(0, first=True)

    @property
    def total_instructions(self) -> int:
        return int(self._totals[0])

    @property
    def total_fakes(self) -> int:
        return int(self._totals[1])

    # ------------------------------------------------------------------
    # Kernel generations
    # ------------------------------------------------------------------
    def _load_generation(self, generation: int, first: bool = False) -> None:
        """(Re)launch the kernel on every SM — the global barrier.

        Matches :meth:`StreamingMultiprocessor.start_new_kernel`: fresh
        warps (PCs, scoreboards, outstanding counts), scheduler reset,
        ``kernels_completed`` bumped — while the pending-load heaps keep
        their stale entries, exactly like the reference.
        """
        self.generation = generation
        seed = self._base_seed + 7919 * generation
        self._streams = stream_arrays(self.kernel, seed, self.num_warps)
        for s in range(self.num_sms):
            jseed = self._jitter_seeds[s] + 7919 * generation
            self._length[s] = jittered_lengths(
                self.kernel, self.num_warps, self.jitter, jseed, seed
            )
        self._pc[:] = 0
        self._ready_at[:] = _NEVER
        self._outstanding[:] = 0
        self._warp_done[:] = False
        self._last_warp[:] = -1
        if not first:
            self.stat_kernels += 1
        miss = self.memory.site_miss_table(
            self.num_warps, int(self._length.max()) + 1, generation
        )
        self._miss_table = miss
        if self.backend == "c":
            self._rebuild_cstate()
            self._c_ndone = 0
            return
        timings = self.memory.timings
        self._site_latency = np.where(
            miss, timings.dram_cycles, timings.l2_hit_cycles
        ).astype(np.int64)
        all_s = np.repeat(self._rows, self.num_warps)
        all_w = np.tile(self._wids, self.num_sms)
        self._refresh_heads(all_s, all_w)

    def _rebuild_cstate(self) -> None:
        """Point the C kernel's state struct at the current buffers.

        Rebuilt at every kernel generation (the stream arrays and miss
        table change); all other pointers are stable but cheap to
        re-derive.  Holding the arrays as attributes keeps every pointer
        alive for the struct's lifetime.
        """
        st = self._streams
        timings = self.memory.timings

        def ptr(arr: np.ndarray) -> int:
            return arr.ctypes.data

        cs = CEngineState(
            num_sms=self.num_sms,
            num_warps=self.num_warps,
            body=st.body_length,
            heap_cap=self.HEAP_CAPACITY,
            max_pc=self._miss_table.shape[1],
            dram_cycles=timings.dram_cycles,
            l2_cycles=timings.l2_hit_cycles,
            clock_hz=self._clock_hz,
            idle_energy=IDLE_DYNAMIC_ENERGY,
            fake_energy=_FAKE_ENERGY,
            slot_width=1.0 / timings.requests_per_cycle,
            issue_width=ptr(self.issue_width),
            fake_rate=ptr(self.fake_rate),
            freq_scale=ptr(self.frequency_scale),
            gated=ptr(self._gated),
            waking=ptr(self._waking),
            unit_idle=ptr(self.unit_idle),
            leakage=ptr(self._leakage),
            window_start=ptr(self._window_start),
            budget=ptr(self._issue_budget),
            fake_acc=ptr(self._fake_acc),
            clock_acc=ptr(self._clock_acc),
            wheel=ptr(self._wheel),
            wheel_pos=ptr(self._wheel_pos),
            st_cycles=ptr(self.stat_cycles),
            st_active=ptr(self.stat_active),
            st_inst=ptr(self.stat_instructions),
            st_fake=ptr(self.stat_fakes),
            st_stall=ptr(self.stat_stalls),
            pc=ptr(self._pc),
            length=ptr(self._length),
            outstanding=ptr(self._outstanding),
            warp_done=ptr(self._warp_done),
            ready_at=ptr(self._ready_at),
            last_warp=ptr(self._last_warp),
            heap=ptr(self._cheap),
            heap_len=ptr(self._cheap_len),
            mem_slot=ptr(self._mem_slot),
            mem_counters=ptr(self._mem_counters),
            totals=ptr(self._totals),
            s_unit=ptr(st.unit),
            s_latency=ptr(st.latency),
            s_dest=ptr(st.dest),
            s_is_load=ptr(st.is_load),
            s_span=ptr(st.span),
            s_share=ptr(st.share),
            s_dest_col=ptr(st.dest_col),
            s_src1_col=ptr(st.src1_col),
            s_src2_col=ptr(st.src2_col),
            miss_table=ptr(self._miss_table),
            powers=ptr(self._powers_buf),
        )
        self._cstate = cs
        self._cstate_ptr = ctypes.pointer(cs)

    def _refresh_heads(self, s_idx: np.ndarray, w_idx: np.ndarray) -> None:
        """Recompute head instruction and readiness for the given warps.

        Called after any event that moves a warp's head or touches a
        register its head reads/writes: issue (PC advance + dest marked
        pending), load completion (register released), kernel relaunch.
        """
        if len(s_idx) == 0:
            return
        st = self._streams
        pc = self._pc[s_idx, w_idx]
        done = pc >= self._length[s_idx, w_idx]
        self._warp_done[s_idx, w_idx] = done
        body = st.body_length
        # Jitter-lengthened streams wrap to their own head; clamp keeps
        # the (unused) index of just-done warps in bounds when a stream
        # runs to exactly twice the body.
        eff = np.where(pc >= body, pc - body, pc)
        eff = np.minimum(eff, body - 1)
        rc = np.maximum(
            np.maximum(
                self._ready_at[s_idx, w_idx, st.dest_col[w_idx, eff]],
                self._ready_at[s_idx, w_idx, st.src1_col[w_idx, eff]],
            ),
            self._ready_at[s_idx, w_idx, st.src2_col[w_idx, eff]],
        )
        self._ready_cycle[s_idx, w_idx] = np.where(done, _FAR, rc)
        self._head_unit[s_idx, w_idx] = st.unit[w_idx, eff]

    # ------------------------------------------------------------------
    # Actuation
    # ------------------------------------------------------------------
    @staticmethod
    def _clamp02(values: np.ndarray) -> np.ndarray:
        # Reference per-SM setter: ``min(2.0, max(0.0, x))`` — Python's
        # max/min return 0.0 for NaN (failed comparison keeps the first
        # argument), so np.clip (NaN-propagating) would diverge.
        low = np.where(values > 0.0, values, 0.0)
        return np.where(low < 2.0, low, 2.0)

    def _fanout(self, values: Sequence[float]) -> np.ndarray:
        if not isinstance(values, np.ndarray):
            values = np.asarray(list(values), dtype=float)
        values = values.astype(float, copy=False)
        # zip() semantics: shorter input actuates a prefix of the SMs.
        return values[: self.num_sms]

    def set_issue_widths(self, widths: Sequence[float]) -> None:
        arr = self._fanout(widths)
        self.issue_width[: len(arr)] = self._clamp02(arr)

    def set_fake_rates(self, rates: Sequence[float]) -> None:
        arr = self._fanout(rates)
        self.fake_rate[: len(arr)] = self._clamp02(arr)

    def set_frequency_scales(self, scales: Sequence[float]) -> None:
        arr = self._fanout(scales)
        bad = arr <= 0
        if bad.any():
            # The reference fans out sequentially and raises mid-loop:
            # SMs before the offending value keep their new scale.
            i = int(np.argmax(bad))
            self.frequency_scale[:i] = np.where(arr[:i] < 1.0, arr[:i], 1.0)
            raise ValueError(
                f"frequency scale must be positive, got {float(arr[i])}"
            )
        self.frequency_scale[: len(arr)] = np.where(arr < 1.0, arr, 1.0)

    def set_issue_width(self, sm_id: int, width: float) -> None:
        self.issue_width[sm_id] = min(2.0, max(0.0, float(width)))

    def set_fake_rate(self, sm_id: int, rate: float) -> None:
        self.fake_rate[sm_id] = min(2.0, max(0.0, float(rate)))

    def set_frequency_scale(self, sm_id: int, scale: float) -> None:
        if scale <= 0:
            raise ValueError(f"frequency scale must be positive, got {scale}")
        self.frequency_scale[sm_id] = min(1.0, float(scale))

    def gate_unit(self, sm_id: int, unit: ExecUnit) -> None:
        u = _UNIT_INDEX[unit]
        self._gated[sm_id, u] = True
        self.gated_sets[sm_id].add(unit)
        self._waking[sm_id, u] = _NEVER
        self._leakage[sm_id] = self.power_model.leakage_w(self.gated_sets[sm_id])

    def ungate_unit(self, sm_id: int, unit: ExecUnit, cycle: int) -> None:
        if unit not in self.gated_sets[sm_id]:
            return
        u = _UNIT_INDEX[unit]
        self.gated_sets[sm_id].discard(unit)
        self._gated[sm_id, u] = False
        self._waking[sm_id, u] = cycle + WAKEUP_CYCLES
        self.unit_idle[sm_id, u] = -WAKEUP_CYCLES
        self._leakage[sm_id] = self.power_model.leakage_w(self.gated_sets[sm_id])

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def kernel_done_mask(self) -> np.ndarray:
        return np.all(self._warp_done & (self._outstanding == 0), axis=1)

    def step(
        self,
        cycle: int,
        exempt: np.ndarray,
        exempt_any: bool = False,
        out: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, bool]:
        """Advance all SMs one nominal clock.

        Returns ``(powers, launched)`` — the per-SM power vector and
        whether the kernel-launch barrier fired before stepping.  With
        ``out`` the powers are written into the caller's buffer (no
        allocation); otherwise a fresh array is returned each cycle.
        """
        if self.backend == "c":
            return self._step_c(cycle, exempt, exempt_any, out)
        powers, launched = self._step_numpy(cycle, exempt)
        if out is None:
            return powers, launched
        np.copyto(out, powers)
        return out, launched

    def _step_c(
        self,
        cycle: int,
        exempt: np.ndarray,
        exempt_any: bool,
        out: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, bool]:
        launched = False
        if exempt_any:
            if bool(np.all(self.kernel_done_mask() | exempt)):
                launched = True
        elif self._c_ndone == self.num_sms:
            launched = True
        if launched:
            self._load_generation(self.generation + 1)

        mem = self.memory
        self._mem_slot[0] = mem._next_service_slot
        ndone = self._clib.engine_step(self._cstate_ptr, cycle)
        if ndone < 0:
            raise RuntimeError("C engine pending-load heap overflow")
        self._c_ndone = int(ndone)
        mem._next_service_slot = self._mem_slot[0].item()
        served, misses = self._mem_counters
        if served:
            mem.requests_served += int(served)
            mem.misses += int(misses)
            self._mem_counters[:] = 0
        if out is None:
            return self._powers_buf.copy(), launched
        np.copyto(out, self._powers_buf)
        return out, launched

    def _step_numpy(
        self, cycle: int, exempt: np.ndarray
    ) -> Tuple[np.ndarray, bool]:
        launched = False
        if bool(np.all(self.kernel_done_mask() | exempt)):
            self._load_generation(self.generation + 1)
            launched = True

        S, W = self.num_sms, self.num_warps
        rows = self._rows
        self.stat_cycles += 1

        # DFS clock masking: lanes whose accumulator stays below 1 skip
        # execution this cycle (frequency_scale semantics of SM.step).
        self._clock_acc += self.frequency_scale
        active = self._clock_acc >= 1.0
        self._clock_acc[active] -= 1.0
        self.stat_active[active] += 1

        # Load completions (before the kernel-done check, like the SM).
        if bool(np.any(active & (self._next_pending <= cycle))):
            self._complete_loads(cycle, active)

        done_now = self.kernel_done_mask()
        part = active & ~done_now  # lanes that execute the issue path

        if bool(part.any()):
            # DIWS window bookkeeping.
            refresh = part & (cycle - self._window_start >= DIWS_WINDOW)
            if bool(refresh.any()):
                self._window_start[refresh] = cycle
                self._issue_budget[refresh] = np.rint(
                    self.issue_width[refresh] * DIWS_WINDOW
                ).astype(np.int64)

            ports = self._ports
            ports[:] = _PORTS_INIT
            used = self._used
            used[:] = False
            avail = (~self._gated) & (self._waking <= cycle)
            n_issued = self._n_issued
            n_issued[:] = 0
            loads: List[Tuple[int, int, int, int, int]] = []
            wave_deposits = []

            elig = part & (self._issue_budget > 0)
            for wave in range(2):
                if not bool(elig.any()):
                    break
                ready = self._ready_cycle <= cycle
                last = self._last_warp
                safe_last = np.where(last >= 0, last, 0)
                greedy = elig & (last >= 0) & ready[rows, safe_last]
                any_ready = elig & ready.any(axis=1)
                key = self._pc * W + self._wids
                oldest = np.argmin(np.where(ready, key, _FAR), axis=1)
                # GTO falls back to oldest-and-*remembers it* even when
                # the subsequent issue is blocked by a structural hazard.
                np.copyto(self._last_warp, oldest, where=any_ready & ~greedy)
                sel = np.where(greedy, safe_last, oldest)
                havesel = greedy | any_ready
                selunit = self._head_unit[rows, sel]
                free = (ports[rows, selunit] > 0) & avail[rows, selunit]
                ok = havesel & free
                blocked = havesel & ~free
                if bool(blocked.any()):
                    # Structural hazard: oldest ready warp (excluding the
                    # selected one) whose head unit has a free, live port.
                    port_free = (ports > 0) & avail
                    head_free = port_free[rows[:, None], self._head_unit]
                    alt_ok = ready & head_free
                    alt_ok[rows, sel] = False
                    alt = np.argmin(np.where(alt_ok, key, _FAR), axis=1)
                    has_alt = alt_ok[rows, alt]
                    issue = ok | (blocked & has_alt)
                    sel = np.where(ok, sel, alt)
                else:
                    issue = ok
                s_i = np.nonzero(issue)[0]
                if len(s_i) == 0:
                    break
                w_i = sel[s_i]
                u_i = self._head_unit[s_i, w_i]
                ports[s_i, u_i] -= 1
                used[s_i, u_i] = True
                self._last_warp[s_i] = w_i
                self._issue_budget[s_i] -= 1
                self.stat_instructions[s_i] += 1
                n_issued[s_i] += 1
                self._totals[0] += len(s_i)

                st = self._streams
                pc_before = self._pc[s_i, w_i]
                body = st.body_length
                eff = np.where(pc_before >= body, pc_before - body, pc_before)
                self._pc[s_i, w_i] = pc_before + 1
                dest = st.dest[w_i, eff]
                lat = st.latency[w_i, eff]
                is_load = st.is_load[w_i, eff]
                normal = (dest >= 0) & ~is_load
                if bool(normal.any()):
                    self._ready_at[s_i[normal], w_i[normal], dest[normal]] = (
                        cycle + lat[normal]
                    )
                if bool(is_load.any()):
                    # Defer the shared-memory request; serviced at end of
                    # cycle in the reference's (sm, wave) global order.
                    for s, w, r, p in zip(
                        s_i[is_load], w_i[is_load], dest[is_load],
                        pc_before[is_load] + 1,
                    ):
                        loads.append((int(s), wave, int(w), int(r), int(p)))
                    self._ready_at[s_i[is_load], w_i[is_load], dest[is_load]] = (
                        _PENDING
                    )
                    self._outstanding[s_i[is_load], w_i[is_load]] += 1
                wave_deposits.append((s_i, st.span[w_i, eff], st.share[w_i, eff]))
                self._refresh_heads(s_i, w_i)
                elig = issue & (self._issue_budget > 0)

            stall = part & (n_issued == 0)
            self.stat_stalls[stall] += 1

            # FII: fill leftover hardware slots with fake instructions.
            self._fake_acc[part] += self.fake_rate[part]
            can_fake = part & avail[:, 0]
            kf = np.zeros(S, dtype=np.int64)
            kf[can_fake] = np.minimum(
                2 - n_issued[can_fake],
                np.floor(self._fake_acc[can_fake]).astype(np.int64),
            )
            # Drain by sequential subtraction, matching the reference's
            # per-fake ``accumulator -= 1.0`` float steps.
            self._fake_acc[kf >= 1] -= 1.0
            self._fake_acc[kf >= 2] -= 1.0
            self.stat_fakes += kf
            self._totals[1] += int(kf.sum())
            self._fake_acc[part] = np.minimum(self._fake_acc[part], 2.0)

            # PG idle accounting (real issues only; fakes never reset it).
            pu = part[:, None]
            self.unit_idle[pu & used] = 0
            self.unit_idle[pu & ~used] += 1

            # Shared-memory service, in reference global order: both of
            # SM k's issue slots precede SM k+1's.
            if loads:
                loads.sort()
                w_arr = np.array([l[2] for l in loads])
                p_arr = np.array([l[4] for l in loads])
                miss = self._miss_table[w_arr, p_arr]
                completions = self.memory.service_batch(
                    cycle, self._site_latency[w_arr, p_arr], int(miss.sum())
                )
                for (s, _wave, w, reg, _p), comp in zip(loads, completions):
                    heapq.heappush(self._pending[s], (int(comp), w, reg))
                for s in {l[0] for l in loads}:
                    self._next_pending[s] = self._pending[s][0][0]

            # Energy wheel: deposit in reference order (slot 0, slot 1,
            # fakes; offsets ascending) — each (sm, cell) receives its
            # float adds in the identical sequence.
            wheel = self._wheel
            pos = self._wheel_pos
            for s_i, span, share in wave_deposits:
                top = int(span.max()) if len(span) else 0
                for off in range(top):
                    m = span > off
                    idx = s_i[m]
                    wheel[idx, (pos[idx] + off) % 8] += share[m]
            f1 = np.nonzero(kf >= 1)[0]
            wheel[f1, pos[f1]] += _FAKE_ENERGY
            f2 = np.nonzero(kf >= 2)[0]
            wheel[f2, pos[f2]] += _FAKE_ENERGY
        else:
            stall = None

        # Rotate the wheel and read this cycle's dynamic energy for the
        # participating lanes only; masked and drained lanes burn idle.
        dyn = self._dyn
        dyn[:] = 0.0
        p_i = np.nonzero(part)[0]
        if len(p_i):
            pos_p = self._wheel_pos[p_i]
            dyn[p_i] = self._wheel[p_i, pos_p]
            self._wheel[p_i, pos_p] = 0.0
            self._wheel_pos[p_i] = (pos_p + 1) % 8

        # leakage + (IDLE + dynamic) * (clock * f_scale), preserving the
        # reference's operation association exactly.
        f = self._clock_hz * np.where(active, self.frequency_scale, 0.0)
        powers = self._leakage + (IDLE_DYNAMIC_ENERGY + dyn) * f
        return powers, launched

    def _complete_loads(self, cycle: int, active: np.ndarray) -> None:
        refresh_s: List[int] = []
        refresh_w: List[int] = []
        for s in np.nonzero(active & (self._next_pending <= cycle))[0]:
            heap = self._pending[s]
            while heap and heap[0][0] <= cycle:
                _, w, reg = heapq.heappop(heap)
                # Stale entries from before a relaunch hit the *new*
                # warp's scoreboard and count, like the reference.
                if self._ready_at[s, w, reg] == _PENDING:
                    self._ready_at[s, w, reg] = cycle
                self._outstanding[s, w] -= 1
                refresh_s.append(s)
                refresh_w.append(w)
            self._next_pending[s] = heap[0][0] if heap else _FAR
        self._refresh_heads(np.asarray(refresh_s), np.asarray(refresh_w))

    # ------------------------------------------------------------------
    # Derived statistics
    # ------------------------------------------------------------------
    def issue_rates(self) -> np.ndarray:
        out = np.zeros(self.num_sms)
        np.divide(
            self.stat_instructions,
            self.stat_active,
            out=out,
            where=self.stat_active > 0,
        )
        return out


class _SMStatsView:
    """Live :class:`SMStatistics`-shaped window into the engine arrays."""

    __slots__ = ("_engine", "_sm_id")

    def __init__(self, engine: VectorizedGPUEngine, sm_id: int) -> None:
        self._engine = engine
        self._sm_id = sm_id

    @property
    def cycles(self) -> int:
        return int(self._engine.stat_cycles[self._sm_id])

    @property
    def active_cycles(self) -> int:
        return int(self._engine.stat_active[self._sm_id])

    @property
    def instructions_issued(self) -> int:
        return int(self._engine.stat_instructions[self._sm_id])

    @property
    def fake_instructions(self) -> int:
        return int(self._engine.stat_fakes[self._sm_id])

    @property
    def issue_stall_cycles(self) -> int:
        return int(self._engine.stat_stalls[self._sm_id])

    @property
    def kernels_completed(self) -> int:
        return int(self._engine.stat_kernels[self._sm_id])

    @property
    def issue_rate(self) -> float:
        active = self.active_cycles
        if active == 0:
            return 0.0
        return self.instructions_issued / active

    def snapshot(self) -> SMStatistics:
        """Detached copy as the reference dataclass."""
        return SMStatistics(
            cycles=self.cycles,
            active_cycles=self.active_cycles,
            instructions_issued=self.instructions_issued,
            fake_instructions=self.fake_instructions,
            issue_stall_cycles=self.issue_stall_cycles,
            kernels_completed=self.kernels_completed,
        )


class SMView:
    """Per-SM facade over the vectorized engine.

    Presents the :class:`StreamingMultiprocessor` surface that
    experiments and tests use — actuation setters, live statistics,
    gating, and the (lazily materialized) warp list describing the
    current kernel generation's streams.
    """

    def __init__(self, engine: VectorizedGPUEngine, sm_id: int) -> None:
        self._engine = engine
        self.sm_id = sm_id
        self.stats = _SMStatsView(engine, sm_id)
        self._warps_cache: Optional[Tuple[int, List[Warp]]] = None

    # -- actuation ------------------------------------------------------
    @property
    def issue_width_setting(self) -> float:
        return float(self._engine.issue_width[self.sm_id])

    @property
    def fake_rate(self) -> float:
        return float(self._engine.fake_rate[self.sm_id])

    @property
    def frequency_scale(self) -> float:
        return float(self._engine.frequency_scale[self.sm_id])

    def set_issue_width(self, width: float) -> None:
        self._engine.set_issue_width(self.sm_id, width)

    def set_fake_rate(self, rate: float) -> None:
        self._engine.set_fake_rate(self.sm_id, rate)

    def set_frequency_scale(self, scale: float) -> None:
        self._engine.set_frequency_scale(self.sm_id, scale)

    # -- power gating ---------------------------------------------------
    @property
    def gated_units(self) -> Set[ExecUnit]:
        return self._engine.gated_sets[self.sm_id]

    def gate_unit(self, unit: ExecUnit) -> None:
        self._engine.gate_unit(self.sm_id, unit)

    def ungate_unit(self, unit: ExecUnit, cycle: int) -> None:
        self._engine.ungate_unit(self.sm_id, unit, cycle)

    @property
    def unit_idle_cycles(self) -> Dict[ExecUnit, int]:
        return {
            unit: int(self._engine.unit_idle[self.sm_id, i])
            for i, unit in enumerate(UNIT_ORDER)
        }

    # -- execution state ------------------------------------------------
    @property
    def _kernel_generation(self) -> int:
        return self._engine.generation

    @property
    def kernel_done(self) -> bool:
        return bool(self._engine.kernel_done_mask()[self.sm_id])

    @property
    def warps(self) -> List[Warp]:
        """The current generation's warps, materialized as objects.

        A *workload description* (instruction streams and jittered
        lengths exactly as the reference would build them), not live
        execution state — the engine holds PCs and scoreboards as
        arrays.  Cached per kernel generation.
        """
        engine = self._engine
        gen = engine.generation
        if self._warps_cache is None or self._warps_cache[0] != gen:
            seed = engine._base_seed + 7919 * gen
            jseed = engine._jitter_seeds[self.sm_id] + 7919 * gen
            self._warps_cache = (
                gen,
                build_warps(
                    engine.kernel, seed, jitter=engine.jitter, jitter_seed=jseed
                ),
            )
        return self._warps_cache[1]
