"""Instruction classes, latencies and energies.

A deliberately small ISA: the voltage-smoothing controller only cares
about *when* instructions issue and *how much power* each one draws, so
instructions are classified by execution unit and energy, not semantics.

Energies are per warp-instruction (32 threads) and calibrated so a
fully-fed dual-issue SM at 700 MHz lands near the 8 W per-SM peak of the
Fermi-class power envelope (Table I / PowerConfig).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Tuple


class InstructionClass(enum.Enum):
    """Instruction kinds, keyed by the block that executes them (Fig. 6)."""

    IALU = "ialu"  # integer ALU op on a shader-core block
    FALU = "falu"  # single-precision FP op on a shader-core block
    FMA = "fma"  # fused multiply-add (highest-energy ALU op)
    SFU = "sfu"  # transcendental on the special function units
    LOAD = "load"  # global/local memory read through the LSU
    STORE = "store"  # memory write through the LSU
    BRANCH = "branch"  # control flow (handled by the ALU block)
    FAKE = "fake"  # paper's fake-injected instruction: power, no effect


class ExecUnit(enum.Enum):
    """The four execution blocks of a Fermi SM (two core blocks, SFU, LSU)."""

    ALU = "alu"
    SFU = "sfu"
    LSU = "lsu"


UNIT_FOR_CLASS: Dict[InstructionClass, ExecUnit] = {
    InstructionClass.IALU: ExecUnit.ALU,
    InstructionClass.FALU: ExecUnit.ALU,
    InstructionClass.FMA: ExecUnit.ALU,
    InstructionClass.BRANCH: ExecUnit.ALU,
    InstructionClass.SFU: ExecUnit.SFU,
    InstructionClass.LOAD: ExecUnit.LSU,
    InstructionClass.STORE: ExecUnit.LSU,
    InstructionClass.FAKE: ExecUnit.ALU,
}

# Pipeline latency in cycles from issue to result availability.
LATENCY: Dict[InstructionClass, int] = {
    InstructionClass.IALU: 4,
    InstructionClass.FALU: 4,
    InstructionClass.FMA: 6,
    InstructionClass.SFU: 16,
    InstructionClass.LOAD: 0,  # resolved by the memory system
    InstructionClass.STORE: 1,
    InstructionClass.BRANCH: 2,
    InstructionClass.FAKE: 1,
}

# Dynamic energy per warp-instruction, joules.  At 700 MHz, two
# instructions per cycle at ~4 nJ each plus base activity approaches the
# ~6.8 W per-SM dynamic peak.
ENERGY: Dict[InstructionClass, float] = {
    InstructionClass.IALU: 3.2e-9,
    InstructionClass.FALU: 3.8e-9,
    InstructionClass.FMA: 4.6e-9,
    InstructionClass.SFU: 4.2e-9,
    InstructionClass.LOAD: 3.6e-9,
    InstructionClass.STORE: 3.4e-9,
    InstructionClass.BRANCH: 2.2e-9,
    # Fake instructions are chosen to mimic a mid-weight ALU op.
    InstructionClass.FAKE: 3.8e-9,
}


@dataclass
class Instruction:
    """One warp-instruction with register dependencies.

    ``dest`` is the written register id (-1 for none); ``srcs`` are read
    register ids.  Register ids are small ints local to the warp.
    """

    op: InstructionClass
    dest: int = -1
    srcs: Tuple[int, ...] = field(default_factory=tuple)

    @property
    def unit(self) -> ExecUnit:
        return UNIT_FOR_CLASS[self.op]

    @property
    def latency(self) -> int:
        return LATENCY[self.op]

    @property
    def energy(self) -> float:
        return ENERGY[self.op]


FAKE_INSTRUCTION = Instruction(InstructionClass.FAKE)
