"""Simplified cycle-level Fermi-class GPU model (GPGPU-Sim substitute).

The model reproduces the architectural behaviour the paper's control
scheme interacts with:

* per-SM dual-issue front end with a GTO warp scheduler and a register
  scoreboard (so issue rates land in the paper's observed 0.8-1.8
  warps/cycle band);
* ALU / SFU / LSU execution blocks with per-class latencies;
* a shared L2/DRAM memory model with hit/miss latencies and a global
  bandwidth limit;
* the two architectural actuation hooks the paper adds — dynamic issue
  width scaling (DIWS, fractional widths via a down-counter window) and
  fake instruction injection (FII) — plus per-SM frequency scaling and
  execution-unit power gating for the collaborative power-management
  studies;
* a GPUWattch-style event power model emitting per-SM power every cycle.

Two engines implement the model: the per-object reference
(``StreamingMultiprocessor``) and the default vectorized
struct-of-arrays engine (``VectorizedGPUEngine``), bit-identical to it
— see ``docs/performance.md``.
"""

from repro.gpu.isa import InstructionClass, Instruction, UNIT_FOR_CLASS
from repro.gpu.kernels import KernelSpec, build_warps
from repro.gpu.warp import Warp, Scoreboard
from repro.gpu.scheduler import GTOScheduler, GatingAwareScheduler
from repro.gpu.memory import MemorySystem
from repro.gpu.power import SMPowerModel
from repro.gpu.sm import StreamingMultiprocessor
from repro.gpu.engine import VectorizedGPUEngine
from repro.gpu.gpu import GPU

__all__ = [
    "GPU",
    "VectorizedGPUEngine",
    "GTOScheduler",
    "GatingAwareScheduler",
    "Instruction",
    "InstructionClass",
    "KernelSpec",
    "MemorySystem",
    "SMPowerModel",
    "Scoreboard",
    "StreamingMultiprocessor",
    "UNIT_FOR_CLASS",
    "Warp",
    "build_warps",
]
