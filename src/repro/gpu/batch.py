"""Lock-stepped batch facade over B independent GPU instances.

The batched co-simulator (``repro.sim.cosim.run_cosim_batch``) steps B
scenarios per cycle.  The GPU timing model is already vectorized *within*
one GPU (PR 5's struct-of-arrays engine), and its per-step cost is a
small slice of the cycle budget, so batching across scenarios lands as B
independent engines behind one facade: per-lane state (kernels, RNG
streams, barrier bookkeeping) stays exactly the serial model's, which is
what keeps the batch bit-identical to B serial runs.

The facade's contribution is lock-step stepping into a caller-owned
``(B, num_sms)`` power array plus per-lane access for actuation — and a
single place to swap in a cross-lane vectorized engine later without
touching the co-sim loop.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

from repro.gpu.gpu import GPU


class GPUBatch:
    """B independent :class:`GPU` instances stepped in lock-step."""

    def __init__(self, gpus: Sequence[GPU]) -> None:
        self.gpus: List[GPU] = list(gpus)
        if not self.gpus:
            raise ValueError("need at least one GPU lane")
        sizes = {gpu.num_sms for gpu in self.gpus}
        if len(sizes) != 1:
            raise ValueError(f"lanes must share num_sms, got {sorted(sizes)}")
        self.num_sms = sizes.pop()

    def __len__(self) -> int:
        return len(self.gpus)

    def __getitem__(self, lane: int) -> GPU:
        return self.gpus[lane]

    def __iter__(self) -> Iterator[GPU]:
        return iter(self.gpus)

    def step_into(self, out: np.ndarray) -> np.ndarray:
        """Advance every lane one cycle; write per-SM powers into ``out``.

        ``out`` has shape ``(B, num_sms)``; row i receives lane i's
        emitted powers (a copy — callers may mutate rows freely, e.g.
        for fault power scaling).
        """
        for i, gpu in enumerate(self.gpus):
            gpu.step_into(out[i])
        return out

    def total_instructions(self) -> int:
        """Aggregate real instructions across all lanes."""
        return sum(gpu.total_instructions() for gpu in self.gpus)

    def total_fake_instructions(self) -> int:
        """Aggregate injected fake instructions across all lanes."""
        return sum(gpu.total_fake_instructions() for gpu in self.gpus)
