"""Lock-stepped batch facade over B independent GPU instances.

The batched co-simulator (``repro.sim.cosim.run_cosim_batch``) steps B
scenarios per cycle.  The GPU timing model is already vectorized *within*
one GPU (PR 5's struct-of-arrays engine); batching across scenarios
lands as B independent engines behind one facade: per-lane state
(kernels, RNG streams, barrier bookkeeping) stays exactly the serial
model's, which is what keeps the batch bit-identical to B serial runs.

When every lane runs the compiled engine backend, the facade steps all
lanes through one ``engine_step_batch`` call per cycle instead of B
``engine_step`` calls — the per-lane C work is unchanged (lanes share
nothing, so cross-lane order cannot affect results); only the Python
and ctypes dispatch around it is amortized.  Lanes with a non-empty
barrier-exempt set (power-gating faults) or a NumPy engine fall back to
the per-lane path for that cycle, preserving the serial protocol
exactly.
"""

from __future__ import annotations

import ctypes
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.gpu._cbuild import CEngineState, load_engine_lib
from repro.gpu.gpu import GPU


class _FusedDispatch:
    """Cached ctypes plumbing for the one-call-per-cycle batch step.

    Re-homes each engine's memory-queue slot, counter pair and power
    output as rows of shared ``(B, ...)`` arrays (then repoints the C
    structs), so the per-cycle shuttles run as one vectorized store per
    direction instead of B NumPy scalar stores.
    """

    __slots__ = ("lib", "ptrs", "ndone", "engines", "lanes", "slots",
                 "counters", "powers", "call", "B", "ndone_ptr", "nsms",
                 "last_ndone", "stale")

    def __init__(self, lib: ctypes.CDLL, gpus: Sequence[GPU]) -> None:
        self.lib = lib
        engines = [gpu.engine for gpu in gpus]
        self.engines = engines
        B = len(engines)
        self.slots = np.zeros(B)
        self.counters = np.zeros((B, 2), dtype=np.int64)
        self.powers = np.zeros((B, engines[0].num_sms))
        for i, eng in enumerate(engines):
            self.slots[i] = eng._mem_slot[0]
            self.counters[i] = eng._mem_counters
            self.powers[i] = eng._powers_buf
            eng._mem_slot = self.slots[i : i + 1]
            eng._mem_counters = self.counters[i]
            eng._powers_buf = self.powers[i]
            eng._rebuild_cstate()
        self.ptrs = (ctypes.POINTER(CEngineState) * B)(
            *[eng._cstate_ptr for eng in engines]
        )
        self.ndone = np.zeros(B, dtype=np.int64)
        self.lanes = list(zip(gpus, engines, [e.memory for e in engines]))
        # Hot-path prebinds: the per-cycle call crosses ctypes once, so
        # everything constant about it is resolved here, not per cycle.
        self.call = lib.engine_step_batch
        self.B = B
        self.ndone_ptr = self.ndone.ctypes.data
        self.nsms = engines[0].num_sms
        # last_ndone mirrors each engine's _c_ndone as plain ints so
        # the per-cycle launch check reads list slots, not attributes.
        # stale=True forces a resync from engine state (first fused
        # cycle, and after any per-lane fallback cycle).
        self.last_ndone: list = []
        self.stale = True


class GPUBatch:
    """B independent :class:`GPU` instances stepped in lock-step."""

    def __init__(self, gpus: Sequence[GPU]) -> None:
        self.gpus: List[GPU] = list(gpus)
        if not self.gpus:
            raise ValueError("need at least one GPU lane")
        sizes = {gpu.num_sms for gpu in self.gpus}
        if len(sizes) != 1:
            raise ValueError(f"lanes must share num_sms, got {sorted(sizes)}")
        self.num_sms = sizes.pop()
        # None = not yet probed, False = ineligible (NumPy engine lane).
        self._fused: Optional[object] = None
        self._fused_probed = False

    def __len__(self) -> int:
        return len(self.gpus)

    def __getitem__(self, lane: int) -> GPU:
        return self.gpus[lane]

    def __iter__(self) -> Iterator[GPU]:
        return iter(self.gpus)

    def _probe_fused(self) -> Optional[_FusedDispatch]:
        self._fused_probed = True
        if not all(
            gpu.vectorized and getattr(gpu.engine, "backend", "") == "c"
            for gpu in self.gpus
        ):
            return None
        # Alignment is invariant once established: both the fused and
        # the per-lane fallback path advance every lane exactly one
        # cycle per step_into, so checking once here suffices.
        if len({gpu.cycle for gpu in self.gpus}) != 1:
            return None
        lib = load_engine_lib()
        if lib is None:
            return None
        self._fused = _FusedDispatch(lib, self.gpus)
        return self._fused

    def step_into(self, out: np.ndarray) -> np.ndarray:
        """Advance every lane one cycle; write per-SM powers into ``out``.

        ``out`` has shape ``(B, num_sms)``; row i receives lane i's
        emitted powers (a copy — callers may mutate rows freely, e.g.
        for fault power scaling).
        """
        gpus = self.gpus
        fused = self._fused
        if fused is None and not self._fused_probed:
            fused = self._probe_fused()
        if fused is not None and not any(gpu.barrier_exempt for gpu in gpus):
            return self._step_fused(fused, gpus[0].cycle, out)
        if fused is not None:
            # Per-lane stepping advances engine/memory state outside
            # the fused mirrors; resync before the next fused cycle.
            fused.stale = True
        for i, gpu in enumerate(gpus):
            gpu.step_into(out[i])
        return out

    def _step_fused(
        self, fused: _FusedDispatch, cycle: int, out: np.ndarray
    ) -> np.ndarray:
        """One ``engine_step_batch`` call for the whole lane set.

        Mirrors ``VectorizedGPUEngine._step_c``'s per-lane protocol —
        launch barrier, memory-queue slot shuttle, counter sync —
        around a single crossing of the ctypes boundary.
        """
        lanes = fused.lanes
        ptrs = fused.ptrs
        if fused.stale:
            # First fused cycle, or a fallback cycle ran since: pull
            # the authoritative per-lane state back into the mirrors.
            fused.slots[:] = [mem._next_service_slot for _, _, mem in lanes]
            last = [eng._c_ndone for _, eng, _ in lanes]
            fused.stale = False
        else:
            # Steady state: the C kernel stepped through the shared
            # arrays last cycle and nothing else touched them, so the
            # mirrors (slots rows, last_ndone ints) are already current.
            last = fused.last_ndone
        nsms = fused.nsms
        for i, nd in enumerate(last):
            if nd == nsms:
                gpu, eng, mem = lanes[i]
                eng._load_generation(eng.generation + 1)
                # _rebuild_cstate allocated a fresh struct; repoint.
                ptrs[i] = eng._cstate_ptr
                gpu._generation = eng.generation
                gpu.kernels_launched += 1
                gpu.kernel_launch_cycles.append(gpu.cycle)
        rc = fused.call(ptrs, fused.B, cycle, fused.ndone_ptr)
        if rc < 0:
            raise RuntimeError("C engine pending-load heap overflow")
        ndone = fused.ndone.tolist()
        fused.last_ndone = ndone
        slots = fused.slots.tolist()
        counters = fused.counters
        served_any = counters[:, 0].tolist()
        for i, (gpu, eng, mem) in enumerate(lanes):
            eng._c_ndone = ndone[i]
            mem._next_service_slot = slots[i]
            served = served_any[i]
            if served:
                mem.requests_served += served
                mem.misses += int(counters[i, 1])
                counters[i] = 0
            gpu.cycle += 1
        np.copyto(out, fused.powers)
        return out

    def total_instructions(self) -> int:
        """Aggregate real instructions across all lanes."""
        return sum(gpu.total_instructions() for gpu in self.gpus)

    def total_fake_instructions(self) -> int:
        """Aggregate injected fake instructions across all lanes."""
        return sum(gpu.total_fake_instructions() for gpu in self.gpus)
