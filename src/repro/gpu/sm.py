"""Streaming multiprocessor: dual-issue front end with actuation hooks.

Implements the SM microarchitecture of Fig. 6 at the fidelity the
voltage-smoothing study needs:

* up to ``issue_width`` (2) warps dispatched per cycle, subject to the
  scoreboard, execution-block ports (2 ALU blocks, 1 SFU, 1 LSU) and the
  shared memory system;
* **DIWS** — the instruction issue adjuster: a down-counter grants
  ``round(width * window)`` issue slots per ``window`` cycles, giving
  fractional effective widths (the paper's "1.7 instructions per cycle
  by setting the down-counter to 17 with a reset every 10 cycles");
* **FII** — fake instruction injection into leftover issue slots, with a
  fractional-rate accumulator;
* per-SM frequency scaling by clock masking (for DFS) and per-unit
  power gating with a wake-up penalty (for Warped-Gates PG);
* a completed kernel re-arms with a derived seed, so the SM produces an
  indefinite workload stream for long co-simulations.

``step(cycle)`` advances one nominal clock cycle and returns the SM's
power draw in watts.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.gpu.isa import (
    ExecUnit,
    FAKE_INSTRUCTION,
    Instruction,
    InstructionClass,
)
from repro.gpu.kernels import KernelSpec, build_warps
from repro.gpu.memory import MemorySystem
from repro.gpu.power import SMPowerModel
from repro.gpu.scheduler import GTOScheduler
from repro.gpu.warp import PENDING_MEMORY, Warp

# Ports each execution block accepts per cycle (two 16-core blocks).
UNIT_PORTS = {ExecUnit.ALU: 2, ExecUnit.SFU: 1, ExecUnit.LSU: 1}

# Cycles a gated unit needs to wake before accepting work (Blackout).
WAKEUP_CYCLES = 3

DIWS_WINDOW = 10  # cycles per issue-budget window

# An instruction's dynamic energy is drawn over this many cycles of
# pipeline occupancy (bounded by its latency), which sets the spectral
# content of the SM's power trace as seen by the PDN.
ENERGY_SMEAR_LIMIT = 6


@dataclass
class SMStatistics:
    """Counters accumulated across a run."""

    cycles: int = 0
    active_cycles: int = 0
    instructions_issued: int = 0
    fake_instructions: int = 0
    issue_stall_cycles: int = 0
    kernels_completed: int = 0

    @property
    def issue_rate(self) -> float:
        """Real warps issued per active cycle (paper band: 0.8-1.8)."""
        if self.active_cycles == 0:
            return 0.0
        return self.instructions_issued / self.active_cycles


class StreamingMultiprocessor:
    """One SM executing a kernel with voltage-smoothing actuation hooks."""

    ENERGY_WHEEL_SIZE = 8

    def __init__(
        self,
        sm_id: int,
        kernel: KernelSpec,
        memory: MemorySystem,
        power_model: Optional[SMPowerModel] = None,
        seed: int = 0,
        jitter: float = 0.0,
        scheduler: Optional[GTOScheduler] = None,
        rearm: bool = True,
        jitter_seed: Optional[int] = None,
    ) -> None:
        self.sm_id = sm_id
        self.kernel = kernel
        self.memory = memory
        self.power_model = power_model or SMPowerModel()
        self.scheduler = scheduler or GTOScheduler()
        self.jitter = jitter
        self.rearm = rearm
        self._base_seed = seed
        self._jitter_seed = jitter_seed if jitter_seed is not None else seed
        self._kernel_generation = 0
        self.warps: List[Warp] = build_warps(
            kernel, seed, jitter=jitter, jitter_seed=self._jitter_seed
        )

        # Actuation state --------------------------------------------------
        self.issue_width_setting: float = 2.0  # DIWS target (0..2)
        self.fake_rate: float = 0.0  # FII fakes per cycle (0..2)
        self.frequency_scale: float = 1.0  # DFS f/f_nom (0..1]
        self.gated_units: Set[ExecUnit] = set()
        self._waking_units: dict = {}  # unit -> cycle it becomes usable

        # Internal machinery ------------------------------------------------
        self._issue_budget = self._window_budget()
        self._window_start = 0
        self._fake_accumulator = 0.0
        self._clock_accumulator = 0.0
        self._pending_loads: List[Tuple[int, int, int]] = []  # (cycle, warp, reg)
        # Issued instructions draw their energy over their pipeline
        # occupancy, not in the issue cycle alone: a small energy wheel
        # smears each instruction's energy across the next few cycles.
        self._energy_wheel = [0.0] * self.ENERGY_WHEEL_SIZE
        self._wheel_pos = 0
        self.stats = SMStatistics()
        self.last_cycle_power_w = 0.0
        # Per-unit idle counters for the PG controller.
        self.unit_idle_cycles = {unit: 0 for unit in ExecUnit}

    # ------------------------------------------------------------------
    # Actuation interface (called by controller / hypervisor)
    # ------------------------------------------------------------------
    def set_issue_width(self, width: float) -> None:
        """DIWS: clamp and apply a (possibly fractional) issue width."""
        self.issue_width_setting = min(2.0, max(0.0, float(width)))

    def set_fake_rate(self, rate: float) -> None:
        """FII: clamp and apply fake instructions per cycle."""
        self.fake_rate = min(2.0, max(0.0, float(rate)))

    def set_frequency_scale(self, scale: float) -> None:
        """DFS: clamp and apply the clock-mask fraction."""
        if scale <= 0:
            raise ValueError(f"frequency scale must be positive, got {scale}")
        self.frequency_scale = min(1.0, float(scale))

    def gate_unit(self, unit: ExecUnit) -> None:
        """PG: power-gate an execution block immediately."""
        self.gated_units.add(unit)
        self._waking_units.pop(unit, None)

    def ungate_unit(self, unit: ExecUnit, cycle: int) -> None:
        """PG: begin waking a gated block (usable after WAKEUP_CYCLES).

        The idle counter resets so a just-woken unit is not immediately
        re-gated before demand can reach it (gate thrash).
        """
        if unit in self.gated_units:
            self.gated_units.discard(unit)
            self._waking_units[unit] = cycle + WAKEUP_CYCLES
            self.unit_idle_cycles[unit] = -WAKEUP_CYCLES

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _window_budget(self) -> int:
        return int(round(self.issue_width_setting * DIWS_WINDOW))

    def _unit_available(self, unit: ExecUnit, cycle: int) -> bool:
        if unit in self.gated_units:
            return False
        wake = self._waking_units.get(unit)
        if wake is not None:
            if cycle < wake:
                return False
            del self._waking_units[unit]
        return True

    def _complete_loads(self, cycle: int) -> None:
        while self._pending_loads and self._pending_loads[0][0] <= cycle:
            _, warp_index, reg = heapq.heappop(self._pending_loads)
            warp = self.warps[warp_index]
            warp.scoreboard.release(reg, cycle)
            warp.outstanding_loads -= 1

    def _rearm_kernel(self) -> None:
        self.start_new_kernel(self._kernel_generation + 1)

    def start_new_kernel(self, generation: int) -> None:
        """Launch the next kernel instance (same spec, derived seed).

        Called by the GPU at kernel-boundary barriers so all SMs launch
        together — the global synchronization a real kernel launch
        provides, which bounds SM-to-SM phase drift.
        """
        self._kernel_generation = generation
        seed = self._base_seed + 7919 * generation
        self.warps = build_warps(
            self.kernel,
            seed,
            jitter=self.jitter,
            jitter_seed=self._jitter_seed + 7919 * generation,
        )
        self.scheduler.reset()
        self.stats.kernels_completed += 1

    @property
    def kernel_done(self) -> bool:
        return all(w.done and w.outstanding_loads == 0 for w in self.warps)

    def step(self, cycle: int) -> float:
        """Advance one nominal clock; return this cycle's power (watts)."""
        self.stats.cycles += 1

        # DFS clock masking: skip execution on masked cycles.
        self._clock_accumulator += self.frequency_scale
        if self._clock_accumulator < 1.0:
            self.last_cycle_power_w = self.power_model.cycle_power_w(
                (), frequency_scale=0.0, gated_units=self.gated_units
            )
            return self.last_cycle_power_w
        self._clock_accumulator -= 1.0
        self.stats.active_cycles += 1

        self._complete_loads(cycle)
        if self.kernel_done:
            if self.rearm:
                self._rearm_kernel()
            else:
                self.last_cycle_power_w = self.power_model.cycle_power_w(
                    (), frequency_scale=self.frequency_scale,
                    gated_units=self.gated_units,
                )
                return self.last_cycle_power_w

        # DIWS window bookkeeping.
        if cycle - self._window_start >= DIWS_WINDOW:
            self._window_start = cycle
            self._issue_budget = self._window_budget()

        issued: List[Instruction] = []
        ports = dict(UNIT_PORTS)
        used_units: Set[ExecUnit] = set()
        hardware_width = 2
        while len(issued) < hardware_width and self._issue_budget > 0:
            warp = self.scheduler.select(self.warps, cycle)
            if warp is None:
                break
            instruction = warp.peek()
            assert instruction is not None
            unit = instruction.unit
            if ports.get(unit, 0) <= 0 or not self._unit_available(unit, cycle):
                # Structural hazard: try the oldest different-unit warp.
                alternative = self._select_alternative(cycle, ports, warp)
                if alternative is None:
                    break
                warp, instruction, unit = alternative
            ports[unit] -= 1
            used_units.add(unit)
            warp.advance(cycle)
            self.scheduler.issued(warp)
            self._issue_budget -= 1
            issued.append(instruction)
            self.stats.instructions_issued += 1
            self._register_result(warp, instruction, cycle)

        if not issued:
            self.stats.issue_stall_cycles += 1

        # FII: fill leftover hardware slots with fake instructions.
        self._fake_accumulator += self.fake_rate
        while (
            self._fake_accumulator >= 1.0
            and len(issued) < hardware_width
            and self._unit_available(ExecUnit.ALU, cycle)
        ):
            self._fake_accumulator -= 1.0
            issued.append(FAKE_INSTRUCTION)
            self.stats.fake_instructions += 1
        self._fake_accumulator = min(self._fake_accumulator, 2.0)

        # PG idle accounting.
        for unit in ExecUnit:
            if unit in used_units:
                self.unit_idle_cycles[unit] = 0
            else:
                self.unit_idle_cycles[unit] += 1

        # Smear each issued instruction's energy over its occupancy.
        wheel = self._energy_wheel
        size = self.ENERGY_WHEEL_SIZE
        pos = self._wheel_pos
        for instruction in issued:
            span = max(1, min(ENERGY_SMEAR_LIMIT, instruction.latency))
            share = instruction.energy / span
            for offset in range(span):
                wheel[(pos + offset) % size] += share
        dynamic_energy = wheel[pos]
        wheel[pos] = 0.0
        self._wheel_pos = (pos + 1) % size

        self.last_cycle_power_w = self.power_model.cycle_power_from_energy(
            dynamic_energy,
            frequency_scale=self.frequency_scale,
            gated_units=self.gated_units,
        )
        return self.last_cycle_power_w

    def _select_alternative(self, cycle: int, ports, blocked_warp):
        """Oldest ready warp whose next instruction has a free, live unit."""
        best = None
        for warp in self.warps:
            if warp is blocked_warp or not warp.is_ready(cycle):
                continue
            instruction = warp.peek()
            if instruction is None:
                continue
            unit = instruction.unit
            if ports.get(unit, 0) <= 0 or not self._unit_available(unit, cycle):
                continue
            if best is None or (warp.pc, warp.warp_id) < (best[0].pc, best[0].warp_id):
                best = (warp, instruction, unit)
        return best

    def _register_result(
        self, warp: Warp, instruction: Instruction, cycle: int
    ) -> None:
        if instruction.dest < 0:
            return
        if instruction.op is InstructionClass.LOAD:
            # Access site key: same (warp, pc) on every SM -> same
            # hit/miss outcome, preserving SPMD balance.
            ready = self.memory.request(
                cycle, key=(warp.warp_id, warp.pc, self._kernel_generation)
            )
            warp.scoreboard.mark_pending(instruction.dest, PENDING_MEMORY)
            warp.outstanding_loads += 1
            heapq.heappush(
                self._pending_loads,
                (ready, self.warps.index(warp), instruction.dest),
            )
        else:
            warp.scoreboard.mark_pending(
                instruction.dest, cycle + instruction.latency
            )
