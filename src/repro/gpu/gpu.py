"""The 16-SM GPU stepping in lockstep.

All SMs run the same kernel (the SPMD execution model that motivates
voltage stacking in a GPU), with per-SM seeds and optional jitter
providing the realistic small activity mismatches that become layer
current imbalance in the stack.  ``step()`` advances every SM one cycle
and returns the per-SM power vector — the signal the PDN co-simulator
converts to layer currents.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.config import GPUConfig, PowerConfig, StackConfig, SystemConfig
from repro.gpu.engine import SMView, VectorizedGPUEngine
from repro.gpu.kernels import KernelSpec
from repro.gpu.memory import MemorySystem
from repro.gpu.power import SMPowerModel
from repro.gpu.scheduler import GatingAwareScheduler, GTOScheduler
from repro.gpu.sm import StreamingMultiprocessor


class GPU:
    """A Fermi-class GPU: 16 SMs, shared memory system, per-cycle power.

    Two interchangeable, bit-identical execution engines back the model:

    * ``vectorized=True`` (default): the struct-of-arrays engine in
      :mod:`repro.gpu.engine`, stepping all SMs per cycle as NumPy
      array operations.  ``self.sms`` holds per-SM views that expose
      the same statistics/actuation surface as the object model.
    * ``vectorized=False``: the retained per-object reference —
      :class:`StreamingMultiprocessor` instances stepped in a Python
      loop.  The equivalence suite (``tests/gpu/test_engine_equivalence``)
      holds the two bit-identical per cycle.

    The Warped-Gates study's gating-aware scheduler needs the
    per-object scheduler coupling, so ``gating_aware_scheduler=True``
    always uses the reference engine.
    """

    def __init__(
        self,
        kernel: KernelSpec,
        config: SystemConfig = SystemConfig(),
        seed: int = 0,
        miss_ratio: float = 0.3,
        jitter: float = 0.0,
        gating_aware_scheduler: bool = False,
        vectorized: bool = True,
    ) -> None:
        self.config = config
        self.kernel = kernel
        self.memory = MemorySystem(miss_ratio=miss_ratio, seed=seed)
        power_model = SMPowerModel(config.gpu, config.power)
        self.vectorized = bool(vectorized) and not gating_aware_scheduler
        if self.vectorized:
            self.engine: Optional[VectorizedGPUEngine] = VectorizedGPUEngine(
                kernel,
                config.gpu.num_sms,
                self.memory,
                power_model,
                seed=seed,
                jitter=jitter,
            )
            self.sms = [
                SMView(self.engine, sm_id)
                for sm_id in range(config.gpu.num_sms)
            ]
        else:
            self.engine = None
            self.sms: List[StreamingMultiprocessor] = []
            for sm_id in range(config.gpu.num_sms):
                scheduler = (
                    GatingAwareScheduler()
                    if gating_aware_scheduler
                    else GTOScheduler()
                )
                # SPMD: every SM runs the same instruction streams (same
                # stream seed); only the jitter seed differs per SM.  SMs
                # do not self-rearm — the GPU launches kernels at global
                # barriers (below) so phase drift stays bounded.
                self.sms.append(
                    StreamingMultiprocessor(
                        sm_id,
                        kernel,
                        self.memory,
                        power_model=power_model,
                        seed=seed,
                        jitter=jitter,
                        scheduler=scheduler,
                        jitter_seed=seed * 65_537 + sm_id + 1,
                        rearm=False,
                    )
                )
        self.cycle = 0
        self.kernels_launched = 1
        self.kernel_launch_cycles = [0]
        self._generation = 0
        # SMs listed here do not block the kernel-launch barrier (used
        # to model halted/powered-off SMs in worst-case experiments).
        self.barrier_exempt: set = set()
        self._exempt_mask = np.zeros(config.gpu.num_sms, dtype=bool)
        # True while _exempt_mask may hold stale True entries from a
        # previous cycle's barrier_exempt set; lets the common no-exempt
        # case skip the per-cycle mask clear.
        self._mask_dirty = False

    @property
    def num_sms(self) -> int:
        return len(self.sms)

    def step(self) -> np.ndarray:
        """Advance one clock; return per-SM power (watts, flat SM order).

        When every SM has drained its kernel instance, the next kernel
        launches on all SMs simultaneously — the global barrier a real
        kernel launch provides under the SPMD model.  SMs that finish
        early idle at base power until the barrier (the tail imbalance
        the per-SM jitter models).
        """
        if self.vectorized:
            powers, launched = self.engine.step(
                self.cycle, self._refresh_exempt_mask(), bool(self.barrier_exempt)
            )
            if launched:
                self._generation = self.engine.generation
                self.kernels_launched += 1
                self.kernel_launch_cycles.append(self.cycle)
            self.cycle += 1
            return powers
        if all(
            sm.kernel_done or sm.sm_id in self.barrier_exempt
            for sm in self.sms
        ):
            self._generation += 1
            for sm in self.sms:
                sm.start_new_kernel(self._generation)
            self.kernels_launched += 1
            self.kernel_launch_cycles.append(self.cycle)
        powers = np.empty(self.num_sms)
        for k, sm in enumerate(self.sms):
            powers[k] = sm.step(self.cycle)
        self.cycle += 1
        return powers

    def _refresh_exempt_mask(self) -> np.ndarray:
        """Sync ``_exempt_mask`` with ``barrier_exempt``, lazily."""
        mask = self._exempt_mask
        if self.barrier_exempt:
            mask[:] = False
            mask[list(self.barrier_exempt)] = True
            self._mask_dirty = True
        elif self._mask_dirty:
            mask[:] = False
            self._mask_dirty = False
        return mask

    def step_into(self, out: np.ndarray) -> np.ndarray:
        """Advance one clock, writing per-SM powers into ``out``.

        Identical semantics to :meth:`step`, but the powers land in the
        caller's buffer (one copy instead of copy-then-assign) — the hot
        path for the batched co-simulator's ``(B, num_sms)`` stepping.
        """
        if not self.vectorized:
            out[:] = self.step()
            return out
        _, launched = self.engine.step(
            self.cycle,
            self._refresh_exempt_mask(),
            bool(self.barrier_exempt),
            out=out,
        )
        if launched:
            self._generation = self.engine.generation
            self.kernels_launched += 1
            self.kernel_launch_cycles.append(self.cycle)
        self.cycle += 1
        return out

    def run(self, cycles: int) -> np.ndarray:
        """Advance ``cycles`` clocks; return the (cycles, num_sms) trace."""
        if cycles <= 0:
            raise ValueError(f"cycles must be positive, got {cycles}")
        trace = np.empty((cycles, self.num_sms))
        for step in range(cycles):
            trace[step] = self.step()
        return trace

    # ------------------------------------------------------------------
    # Actuation fan-out (used by the controller and the hypervisor)
    # ------------------------------------------------------------------
    def set_issue_widths(self, widths: Sequence[float]) -> None:
        if self.vectorized:
            self.engine.set_issue_widths(widths)
            return
        for sm, width in zip(self.sms, widths):
            sm.set_issue_width(width)

    def set_fake_rates(self, rates: Sequence[float]) -> None:
        if self.vectorized:
            self.engine.set_fake_rates(rates)
            return
        for sm, rate in zip(self.sms, rates):
            sm.set_fake_rate(rate)

    def set_frequency_scales(self, scales: Sequence[float]) -> None:
        if self.vectorized:
            self.engine.set_frequency_scales(scales)
            return
        for sm, scale in zip(self.sms, scales):
            sm.set_frequency_scale(scale)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def issue_rates(self) -> np.ndarray:
        if self.vectorized:
            return self.engine.issue_rates()
        return np.array([sm.stats.issue_rate for sm in self.sms])

    def total_instructions(self) -> int:
        if self.vectorized:
            return self.engine.total_instructions
        return sum(sm.stats.instructions_issued for sm in self.sms)

    def total_fake_instructions(self) -> int:
        if self.vectorized:
            return self.engine.total_fakes
        return sum(sm.stats.fake_instructions for sm in self.sms)

    def layer_powers(self, per_sm_power: np.ndarray) -> np.ndarray:
        """Aggregate a per-SM power vector into per-layer totals."""
        stack = self.config.stack
        return per_sm_power.reshape(stack.num_layers, stack.num_columns).sum(axis=1)
