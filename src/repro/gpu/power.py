"""GPUWattch-substitute event power model.

Per-cycle SM power = leakage (gateable per execution unit) + issue base
activity + the energy of every instruction issued this cycle times the
clock frequency.  Frequency scaling reduces dynamic power linearly (the
paper's DFS masks clocks rather than scaling voltage, so power is
proportional to f, not f^3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.config import GPUConfig, PowerConfig
from repro.gpu.isa import ExecUnit, Instruction

# Share of SM leakage attributable to each gateable execution block;
# the rest (register file, fetch, L1) is ungateable.
LEAKAGE_SHARE = {
    ExecUnit.ALU: 0.30,
    ExecUnit.SFU: 0.10,
    ExecUnit.LSU: 0.15,
}
UNGATEABLE_LEAKAGE_SHARE = 1.0 - sum(LEAKAGE_SHARE.values())

# Dynamic energy per cycle for clocking/fetch even with no issue (J).
IDLE_DYNAMIC_ENERGY = 0.6e-9


@dataclass
class SMPowerModel:
    """Converts issue events into per-cycle SM power (watts)."""

    gpu: GPUConfig = GPUConfig()
    power: PowerConfig = PowerConfig()

    def leakage_w(self, gated_units: Iterable[ExecUnit] = ()) -> float:
        """Static power with the given execution units power-gated."""
        total = self.power.sm_leakage_power_w
        gated = sum(LEAKAGE_SHARE[u] for u in set(gated_units))
        return total * (1.0 - gated)

    def cycle_power_w(
        self,
        issued: Iterable[Instruction],
        frequency_scale: float = 1.0,
        gated_units: Iterable[ExecUnit] = (),
    ) -> float:
        """Total SM power for one cycle with all issue energy up front.

        ``issued`` are the instructions dispatched this cycle (0-2 plus
        fakes); ``frequency_scale`` is f/f_nominal from DFS.
        """
        return self.cycle_power_from_energy(
            sum(i.energy for i in issued), frequency_scale, gated_units
        )

    def cycle_power_from_energy(
        self,
        dynamic_energy_j: float,
        frequency_scale: float = 1.0,
        gated_units: Iterable[ExecUnit] = (),
    ) -> float:
        """Total SM power for one cycle given its dynamic energy draw.

        Used by the SM's energy wheel, which smears each instruction's
        energy over its pipeline occupancy before calling this.
        """
        if frequency_scale < 0:
            raise ValueError(f"frequency_scale must be >= 0, got {frequency_scale}")
        f = self.gpu.sm_clock_hz * frequency_scale
        energy = IDLE_DYNAMIC_ENERGY + dynamic_energy_j
        return self.leakage_w(gated_units) + energy * f

    @property
    def peak_power_w(self) -> float:
        """Sanity anchor: dual-issue of the hottest ops at full clock."""
        from repro.gpu.isa import ENERGY, InstructionClass

        hottest = max(ENERGY.values())
        return (
            self.leakage_w()
            + (IDLE_DYNAMIC_ENERGY + 2 * hottest) * self.gpu.sm_clock_hz
        )
