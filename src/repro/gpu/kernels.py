"""Kernel descriptions -> per-warp instruction streams.

A :class:`KernelSpec` describes a GPU kernel statistically — instruction
mix, memory intensity, dependence density, warp count, body length —
and :func:`build_warps` expands it into concrete per-warp instruction
streams with register dependencies.  All randomness flows through an
explicit seed so every simulation is reproducible.

The specs are how the twelve paper benchmarks are realized (see
``repro.workloads.benchmarks``): each benchmark is a KernelSpec tuned to
its published character (memory-bound BFS, SFU-heavy blackscholes,
phase-structured backprop, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.gpu.isa import (
    ENERGY,
    LATENCY,
    UNIT_FOR_CLASS,
    ExecUnit,
    Instruction,
    InstructionClass,
)
from repro.gpu.warp import Warp

# Register file window each warp cycles through; small enough to create
# realistic read-after-write dependence chains.
_NUM_REGS = 16


@dataclass(frozen=True)
class KernelSpec:
    """Statistical description of a kernel's instruction stream.

    ``mix`` maps instruction classes to relative frequencies (normalized
    internally).  ``dependence`` in [0, 1] sets how often an instruction
    reads the most recently written register (longer RAW chains -> lower
    issue rate).  ``warps_per_sm`` and ``body_length`` set occupancy and
    stream length; ``phase_period``/``phase_memory_boost`` overlay a
    coarse compute/memory phase structure (cycles of alternating
    behaviour, the source of low-frequency power swing).
    """

    name: str
    mix: Dict[InstructionClass, float] = field(
        default_factory=lambda: {
            InstructionClass.FALU: 0.5,
            InstructionClass.IALU: 0.3,
            InstructionClass.LOAD: 0.15,
            InstructionClass.STORE: 0.05,
        }
    )
    dependence: float = 0.35
    warps_per_sm: int = 12
    body_length: int = 4000
    phase_period: int = 0  # instructions per phase; 0 disables phases
    phase_memory_boost: float = 0.0  # extra LOAD weight in memory phases

    def __post_init__(self) -> None:
        if not self.mix:
            raise ValueError(f"kernel {self.name!r} has an empty mix")
        if any(w < 0 for w in self.mix.values()):
            raise ValueError(f"kernel {self.name!r} has negative mix weights")
        if sum(self.mix.values()) <= 0:
            raise ValueError(f"kernel {self.name!r} mix sums to zero")
        if not 0.0 <= self.dependence <= 1.0:
            raise ValueError(f"dependence must be in [0,1], got {self.dependence}")
        if self.warps_per_sm <= 0:
            raise ValueError(f"warps_per_sm must be positive")
        if self.body_length <= 0:
            raise ValueError(f"body_length must be positive")


def _draw_stream_fields(spec: KernelSpec, rng: np.random.Generator, length: int):
    """The random draws behind one instruction stream, vectorized.

    Shared by the per-object stream builder (:func:`_sample_stream`) and
    the struct-of-arrays builder (:func:`stream_arrays`) so both consume
    the generator identically — the draws, not the container, define the
    workload.  Returns ``(classes, op_indices, use_chain, random_src1,
    add_src2, random_src2)``.
    """
    classes = list(spec.mix.keys())
    weights = np.array([spec.mix[c] for c in classes], dtype=float)
    base_probs = weights / weights.sum()

    # Per-position class probabilities (two alternating phase profiles).
    positions = np.arange(length)
    if spec.phase_period > 0 and spec.phase_memory_boost > 0:
        boosted = np.array(
            [
                spec.mix[c]
                + (spec.phase_memory_boost if c is InstructionClass.LOAD else 0.0)
                for c in classes
            ]
        )
        boosted = boosted / boosted.sum()
        in_memory_phase = (positions // spec.phase_period) % 2 == 1
    else:
        boosted = base_probs
        in_memory_phase = np.zeros(length, dtype=bool)

    uniform = rng.random(length)
    cum_base = np.cumsum(base_probs)
    cum_boost = np.cumsum(boosted)
    idx_base = np.searchsorted(cum_base, uniform, side="right")
    idx_boost = np.searchsorted(cum_boost, uniform, side="right")
    op_indices = np.where(in_memory_phase, idx_boost, idx_base)
    op_indices = np.clip(op_indices, 0, len(classes) - 1)

    use_chain = rng.random(length) < spec.dependence
    random_src1 = rng.integers(0, _NUM_REGS, size=length)
    add_src2 = rng.random(length) < 0.5
    random_src2 = rng.integers(0, _NUM_REGS, size=length)
    return classes, op_indices, use_chain, random_src1, add_src2, random_src2


def _sample_stream(
    spec: KernelSpec, rng: np.random.Generator, length: int
) -> List[Instruction]:
    """Draw one instruction stream from the spec's statistics.

    All random draws are vectorized — streams run to thousands of
    instructions and this is the hot path of GPU construction.
    """
    classes, op_indices, use_chain, random_src1, add_src2, random_src2 = (
        _draw_stream_fields(spec, rng, length)
    )

    stream: List[Instruction] = []
    last_dest = -1
    next_reg = 0
    for position in range(length):
        op = classes[op_indices[position]]
        dest = next_reg
        next_reg = (next_reg + 1) % _NUM_REGS
        src1 = (
            last_dest
            if (last_dest >= 0 and use_chain[position])
            else int(random_src1[position])
        )
        srcs = (
            (src1, int(random_src2[position])) if add_src2[position] else (src1,)
        )
        if op is InstructionClass.STORE or op is InstructionClass.BRANCH:
            dest = -1
        stream.append(Instruction(op, dest, srcs))
        if dest >= 0:
            last_dest = dest
    return stream


# Cache of generated base streams: under SPMD all 16 SMs request the
# same (spec, seed) streams, so generation runs once per GPU, not per SM.
_STREAM_CACHE: dict = {}
_STREAM_CACHE_LIMIT = 64


def _spec_cache_key(spec: KernelSpec, seed: int, count: int) -> tuple:
    return (
        spec.name,
        tuple(sorted((c.value, w) for c, w in spec.mix.items())),
        spec.dependence,
        spec.body_length,
        spec.phase_period,
        spec.phase_memory_boost,
        seed,
        count,
    )


def _base_streams(
    spec: KernelSpec, seed: int, count: int
) -> List[List[Instruction]]:
    key = _spec_cache_key(spec, seed, count)
    cached = _STREAM_CACHE.get(key)
    if cached is None:
        rng = np.random.default_rng(seed)
        cached = [_sample_stream(spec, rng, spec.body_length) for _ in range(count)]
        if len(_STREAM_CACHE) >= _STREAM_CACHE_LIMIT:
            _STREAM_CACHE.clear()
        _STREAM_CACHE[key] = cached
    return cached


def build_warps(
    spec: KernelSpec,
    seed: int,
    num_warps: Optional[int] = None,
    jitter: float = 0.0,
    jitter_seed: Optional[int] = None,
) -> List[Warp]:
    """Materialize the kernel's warps for one SM.

    ``seed`` draws the instruction streams; under the SPMD execution
    model every SM passes the *same* seed so all SMs run identical code
    (the balance property that motivates GPU voltage stacking).

    ``jitter`` in [0, 1) perturbs each warp's stream length, modelling
    per-SM thread-block tail imbalance; it draws from ``jitter_seed``
    (unique per SM) so SMs diverge only in workload tails, not code.
    """
    if jitter < 0 or jitter >= 1:
        raise ValueError(f"jitter must be in [0,1), got {jitter}")
    jitter_rng = np.random.default_rng(seed if jitter_seed is None else jitter_seed)
    count = num_warps if num_warps is not None else spec.warps_per_sm
    base = _base_streams(spec, seed, count)
    warps: List[Warp] = []
    for warp_id in range(count):
        stream = base[warp_id]
        if jitter > 0:
            scale = 1.0 + jitter * float(jitter_rng.uniform(-1.0, 1.0))
            length = max(1, int(round(spec.body_length * scale)))
            if length <= spec.body_length:
                stream = stream[:length]
            else:
                stream = stream + stream[: length - spec.body_length]
        else:
            stream = list(stream)
        warps.append(Warp(warp_id, stream))
    return warps


# --------------------------------------------------------------------------
# Struct-of-arrays stream representation (vectorized GPU engine)
# --------------------------------------------------------------------------

#: Fixed execution-unit ordering used by all ``(…, 3)`` engine arrays.
UNIT_ORDER = (ExecUnit.ALU, ExecUnit.SFU, ExecUnit.LSU)
_UNIT_INDEX = {unit: idx for idx, unit in enumerate(UNIT_ORDER)}

# Energy-smear bounds mirrored from the SM model (kept in sync with
# repro.gpu.sm; the arrays bake span/share in so the engine's hot loop
# never touches per-instruction Python objects).
_SMEAR_LIMIT = 6


@dataclass(frozen=True)
class StreamArrays:
    """One SM's base instruction streams as ``(num_warps, body)`` arrays.

    Column layout per (warp, position):

    - ``unit``: execution-unit index into :data:`UNIT_ORDER`
    - ``latency`` / ``energy``: pipeline latency and dynamic energy
    - ``span`` / ``share``: energy-smear window and per-slot share
      (``span = clip(latency, 1, 6)``, ``share = energy / span``)
    - ``is_load``: LOAD-class lanes (resolved by the memory system)
    - ``dest_col``: scoreboard column of the written register
      (register id, or the dummy column 16 for dest-less instructions)
    - ``src1_col`` / ``src2_col``: scoreboard columns of the read
      registers (column 16 when the second source is absent)

    The dummy column lets readiness be computed as one fancy-indexed
    ``max`` over a ``(…, 17)`` ready-at table with no masking.
    """

    num_warps: int
    body_length: int
    unit: np.ndarray
    latency: np.ndarray
    energy: np.ndarray
    span: np.ndarray
    share: np.ndarray
    is_load: np.ndarray
    dest: np.ndarray  # register id, -1 for none (STORE/BRANCH)
    dest_col: np.ndarray
    src1_col: np.ndarray
    src2_col: np.ndarray


def _stream_fields_to_arrays(
    spec: KernelSpec, rng: np.random.Generator, length: int
) -> dict:
    """One warp's stream directly as column arrays.

    Consumes the generator exactly like :func:`_sample_stream` (both call
    :func:`_draw_stream_fields`); the sequential dest/chain recurrence is
    replaced by a running-maximum over writer positions.
    """
    classes, op_indices, use_chain, random_src1, add_src2, random_src2 = (
        _draw_stream_fields(spec, rng, length)
    )
    lat_lut = np.array([LATENCY[c] for c in classes], dtype=np.int64)
    energy_lut = np.array([ENERGY[c] for c in classes], dtype=float)
    unit_lut = np.array(
        [_UNIT_INDEX[UNIT_FOR_CLASS[c]] for c in classes], dtype=np.int64
    )
    has_dest_lut = np.array(
        [
            c is not InstructionClass.STORE and c is not InstructionClass.BRANCH
            for c in classes
        ],
        dtype=bool,
    )
    is_load_lut = np.array(
        [c is InstructionClass.LOAD for c in classes], dtype=bool
    )

    positions = np.arange(length, dtype=np.int64)
    has_dest = has_dest_lut[op_indices]
    dest = np.where(has_dest, positions % _NUM_REGS, -1)

    # src1 chains to the most recent written register strictly before the
    # current position (the reference's running ``last_dest``).
    writer_pos = np.where(has_dest, positions, -1)
    last_writer = np.empty(length, dtype=np.int64)
    if length:
        last_writer[0] = -1
        np.maximum.accumulate(writer_pos[:-1], out=last_writer[1:])
    src1 = np.where(
        use_chain & (last_writer >= 0), last_writer % _NUM_REGS, random_src1
    )

    latency = lat_lut[op_indices]
    energy = energy_lut[op_indices]
    span = np.clip(latency, 1, _SMEAR_LIMIT)
    return {
        "unit": unit_lut[op_indices],
        "latency": latency,
        "energy": energy,
        "span": span,
        "share": energy / span,
        "is_load": is_load_lut[op_indices],
        "dest": dest,
        "dest_col": np.where(has_dest, dest, _NUM_REGS),
        "src1_col": src1.astype(np.int64),
        "src2_col": np.where(add_src2, random_src2, _NUM_REGS).astype(np.int64),
    }


_ARRAY_CACHE: dict = {}


def stream_arrays(spec: KernelSpec, seed: int, count: int) -> StreamArrays:
    """The kernel's base streams for one SM in struct-of-arrays form.

    Same cache discipline as :func:`_base_streams` (all SMs share the
    (spec, seed) streams under SPMD), and drawn from an identically
    consumed generator, so the arrays describe exactly the instructions
    :func:`build_warps` would materialize as objects.
    """
    key = _spec_cache_key(spec, seed, count)
    cached = _ARRAY_CACHE.get(key)
    if cached is None:
        rng = np.random.default_rng(seed)
        columns = [
            _stream_fields_to_arrays(spec, rng, spec.body_length)
            for _ in range(count)
        ]
        cached = StreamArrays(
            num_warps=count,
            body_length=spec.body_length,
            **{
                name: np.stack([c[name] for c in columns])
                for name in columns[0]
            },
        )
        if len(_ARRAY_CACHE) >= _STREAM_CACHE_LIMIT:
            _ARRAY_CACHE.clear()
        _ARRAY_CACHE[key] = cached
    return cached


def jittered_lengths(
    spec: KernelSpec,
    count: int,
    jitter: float,
    jitter_seed: Optional[int],
    seed: int,
) -> np.ndarray:
    """Per-warp stream lengths exactly as :func:`build_warps` assigns them.

    Replays the same jitter-generator consumption (one scalar draw per
    warp, only when ``jitter > 0``); lengths beyond ``body_length`` mean
    the stream wraps around to its own head.
    """
    if jitter < 0 or jitter >= 1:
        raise ValueError(f"jitter must be in [0,1), got {jitter}")
    if jitter == 0:
        return np.full(count, spec.body_length, dtype=np.int64)
    jitter_rng = np.random.default_rng(seed if jitter_seed is None else jitter_seed)
    lengths = np.empty(count, dtype=np.int64)
    for warp_id in range(count):
        scale = 1.0 + jitter * float(jitter_rng.uniform(-1.0, 1.0))
        lengths[warp_id] = max(1, int(round(spec.body_length * scale)))
    return lengths
