/* Per-cycle GPU step kernel for the struct-of-arrays engine.
 *
 * Compiled on demand by repro.gpu._cbuild (plain cc, no Python headers)
 * and driven through ctypes.  Operates in place on the NumPy buffers of
 * repro.gpu.engine.VectorizedGPUEngine; one call advances all SMs one
 * nominal clock cycle.
 *
 * The contract is bit-identical equivalence with the per-object Python
 * reference (repro.gpu.sm.StreamingMultiprocessor).  This file is a
 * direct sequential transliteration of SM.step() — same operation
 * order, same IEEE-754 double arithmetic:
 *
 *   - compile with -ffp-contract=off (no FMA contraction) and without
 *     -ffast-math, so double expressions evaluate exactly as CPython's;
 *   - rint() under the default round-to-nearest-even mode matches
 *     Python's round() for the DIWS budget;
 *   - (long long) casts of non-negative doubles truncate like int();
 *   - the memory-queue recurrence and energy-wheel deposits run in the
 *     reference's exact sequence (per SM, per issue slot, fakes last).
 *
 * Scoreboards are the engine's (sms, warps, 17) ready-at table with
 * sentinels RA_NEVER (never written -> always ready) and RA_PENDING
 * (load in flight -> never ready); readiness is max(cols) <= cycle.
 * Pending loads live in per-SM binary heaps of packed
 * (completion << 24 | warp << 8 | reg) keys — packed-integer order
 * equals the reference's (completion, warp, reg) tuple order, so pop
 * order is identical, and stale entries survive kernel relaunch with
 * reference semantics (release-if-pending, unconditional outstanding
 * decrement).
 */

#include <math.h>
#include <stdint.h>

typedef int64_t i64;
typedef uint8_t u8;

#define RA_NEVER (-(1LL << 62))
#define RA_PENDING (1LL << 62)

#define HEAP_PACK(comp, w, reg) (((comp) << 24) | ((i64)(w) << 8) | (i64)(reg))
#define HEAP_COMP(e) ((e) >> 24)
#define HEAP_WARP(e) (((e) >> 8) & 0xFFFF)
#define HEAP_REG(e) ((e) & 0xFF)

typedef struct {
    /* dimensions and scalar constants */
    i64 num_sms;
    i64 num_warps;
    i64 body;
    i64 heap_cap;
    i64 max_pc;
    i64 dram_cycles;
    i64 l2_cycles;
    double clock_hz;
    double idle_energy;
    double fake_energy;
    double slot_width;
    /* actuation state, (S,) / (S,3) */
    double *issue_width;
    double *fake_rate;
    double *freq_scale;
    u8 *gated;
    i64 *waking; /* usable-at cycle; RA_NEVER when cleared */
    i64 *unit_idle;
    double *leakage;
    /* DIWS / FII / DFS machinery, (S,) */
    i64 *window_start;
    i64 *budget;
    double *fake_acc;
    double *clock_acc;
    /* energy wheel */
    double *wheel; /* (S,8) */
    i64 *wheel_pos;
    /* statistics, (S,) */
    i64 *st_cycles;
    i64 *st_active;
    i64 *st_inst;
    i64 *st_fake;
    i64 *st_stall;
    /* per-warp state, (S,W) / (S,W,17) */
    i64 *pc;
    i64 *length;
    i64 *outstanding;
    u8 *warp_done;
    i64 *ready_at;
    i64 *last_warp; /* (S,) */
    /* pending-load heaps, (S,cap) packed */
    i64 *heap;
    i64 *heap_len;
    /* shared memory system: [0] next service slot; counters
     * [served, misses]; totals [instructions, fakes] */
    double *mem_slot;
    i64 *mem_counters;
    i64 *totals;
    /* current generation's streams, (W,body) */
    i64 *s_unit;
    i64 *s_latency;
    i64 *s_dest;
    u8 *s_is_load;
    i64 *s_span;
    double *s_share;
    i64 *s_dest_col;
    i64 *s_src1_col;
    i64 *s_src2_col;
    u8 *miss_table; /* (W,max_pc) */
    /* output */
    double *powers; /* (S,) */
} EngineState;

static inline int warp_ready(const EngineState *st, i64 s, i64 w, i64 cycle) {
    i64 sw = s * st->num_warps + w;
    i64 p = st->pc[sw];
    if (p >= st->length[sw])
        return 0; /* done: peek() is None */
    i64 e = p >= st->body ? p - st->body : p;
    i64 pos = w * st->body + e;
    const i64 *ra = st->ready_at + sw * 17;
    if (ra[st->s_dest_col[pos]] > cycle)
        return 0;
    if (ra[st->s_src1_col[pos]] > cycle)
        return 0;
    return ra[st->s_src2_col[pos]] <= cycle;
}

static inline int unit_avail(const EngineState *st, i64 s, i64 u, i64 cycle) {
    if (st->gated[s * 3 + u])
        return 0;
    return st->waking[s * 3 + u] <= cycle;
}

static void heap_push(i64 *heap, i64 *len, i64 entry) {
    i64 i = (*len)++;
    heap[i] = entry;
    while (i > 0) {
        i64 parent = (i - 1) / 2;
        if (heap[parent] <= heap[i])
            break;
        i64 t = heap[parent];
        heap[parent] = heap[i];
        heap[i] = t;
        i = parent;
    }
}

static i64 heap_pop(i64 *heap, i64 *len) {
    i64 top = heap[0];
    i64 n = --(*len);
    heap[0] = heap[n];
    i64 i = 0;
    for (;;) {
        i64 left = 2 * i + 1;
        if (left >= n)
            break;
        i64 small = left;
        i64 right = left + 1;
        if (right < n && heap[right] < heap[left])
            small = right;
        if (heap[i] <= heap[small])
            break;
        i64 t = heap[i];
        heap[i] = heap[small];
        heap[small] = t;
        i = small;
    }
    return top;
}

/* GTO select: greedy on the last-issued warp while it stays ready,
 * else oldest ready (min (pc, warp_id)) — remembering the oldest pick
 * even when the subsequent issue is blocked, like the reference. */
static i64 gto_select(EngineState *st, i64 s, i64 cycle) {
    i64 W = st->num_warps;
    i64 last = st->last_warp[s];
    if (last >= 0 && warp_ready(st, s, last, cycle))
        return last;
    i64 best = -1, best_pc = 0;
    for (i64 w = 0; w < W; w++) {
        if (!warp_ready(st, s, w, cycle))
            continue;
        i64 p = st->pc[s * W + w];
        if (best < 0 || p < best_pc) {
            best = w;
            best_pc = p;
        }
    }
    if (best >= 0)
        st->last_warp[s] = best;
    return best;
}

/* One nominal clock for every SM.  Returns the number of kernel-done
 * SMs at end of cycle (for the GPU's launch barrier), or -1 if a
 * pending-load heap overflowed. */
i64 engine_step(EngineState *st, i64 cycle) {
    const i64 S = st->num_sms, W = st->num_warps, body = st->body;

    for (i64 s = 0; s < S; s++) {
        st->st_cycles[s]++;

        /* DFS clock masking: skip execution on masked cycles. */
        st->clock_acc[s] += st->freq_scale[s];
        if (st->clock_acc[s] < 1.0) {
            double freq = st->clock_hz * 0.0;
            double energy = st->idle_energy + 0.0;
            st->powers[s] = st->leakage[s] + energy * freq;
            continue;
        }
        st->clock_acc[s] -= 1.0;
        st->st_active[s]++;

        /* Complete arrived loads (stale relaunch entries included). */
        i64 *heap = st->heap + s * st->heap_cap;
        i64 *hlen = st->heap_len + s;
        while (*hlen > 0 && HEAP_COMP(heap[0]) <= cycle) {
            i64 entry = heap_pop(heap, hlen);
            i64 w = HEAP_WARP(entry), reg = HEAP_REG(entry);
            i64 *ra = st->ready_at + (s * W + w) * 17;
            if (ra[reg] == RA_PENDING)
                ra[reg] = cycle;
            st->outstanding[s * W + w]--;
        }

        /* Drained kernel: idle at base power until the launch barrier. */
        int done = 1;
        for (i64 w = 0; w < W; w++) {
            if (!st->warp_done[s * W + w] || st->outstanding[s * W + w] != 0) {
                done = 0;
                break;
            }
        }
        if (done) {
            double freq = st->clock_hz * st->freq_scale[s];
            double energy = st->idle_energy + 0.0;
            st->powers[s] = st->leakage[s] + energy * freq;
            continue;
        }

        /* DIWS window bookkeeping. */
        if (cycle - st->window_start[s] >= 10) {
            st->window_start[s] = cycle;
            st->budget[s] = (i64)rint(st->issue_width[s] * 10.0);
        }

        i64 ports[3] = {2, 1, 1};
        int used[3] = {0, 0, 0};
        int issued = 0;
        i64 iss_span[2];
        double iss_share[2];

        while (issued < 2 && st->budget[s] > 0) {
            i64 w = gto_select(st, s, cycle);
            if (w < 0)
                break;
            i64 p = st->pc[s * W + w];
            i64 e = p >= body ? p - body : p;
            i64 unit = st->s_unit[w * body + e];
            if (ports[unit] <= 0 || !unit_avail(st, s, unit, cycle)) {
                /* Structural hazard: oldest ready warp (excluding the
                 * blocked one) whose head unit has a free, live port. */
                i64 alt = -1, alt_pc = 0;
                for (i64 v = 0; v < W; v++) {
                    if (v == w || !warp_ready(st, s, v, cycle))
                        continue;
                    i64 pv = st->pc[s * W + v];
                    i64 ev = pv >= body ? pv - body : pv;
                    i64 uv = st->s_unit[v * body + ev];
                    if (ports[uv] <= 0 || !unit_avail(st, s, uv, cycle))
                        continue;
                    if (alt < 0 || pv < alt_pc) {
                        alt = v;
                        alt_pc = pv;
                    }
                }
                if (alt < 0)
                    break;
                w = alt;
                p = st->pc[s * W + w];
                e = p >= body ? p - body : p;
                unit = st->s_unit[w * body + e];
            }
            ports[unit]--;
            used[unit] = 1;
            st->pc[s * W + w] = p + 1;
            if (p + 1 >= st->length[s * W + w])
                st->warp_done[s * W + w] = 1;
            st->last_warp[s] = w;
            st->budget[s]--;
            st->st_inst[s]++;
            st->totals[0]++;

            i64 spos = w * body + e;
            i64 dest = st->s_dest[spos];
            if (dest >= 0) {
                if (st->s_is_load[spos]) {
                    /* Shared-memory request, inline like the reference:
                     * bandwidth slot recurrence, then site-keyed
                     * hit/miss from the precomputed table. */
                    double dc = (double)cycle;
                    double start =
                        dc > st->mem_slot[0] ? dc : st->mem_slot[0];
                    st->mem_slot[0] = start + st->slot_width;
                    double queue_delay = start - dc;
                    int miss = st->miss_table[w * st->max_pc + (p + 1)];
                    i64 lat = miss ? st->dram_cycles : st->l2_cycles;
                    if (miss)
                        st->mem_counters[1]++;
                    st->mem_counters[0]++;
                    i64 comp =
                        (i64)(((double)cycle + queue_delay) + (double)lat);
                    st->ready_at[(s * W + w) * 17 + dest] = RA_PENDING;
                    st->outstanding[s * W + w]++;
                    if (*hlen >= st->heap_cap)
                        return -1;
                    heap_push(heap, hlen, HEAP_PACK(comp, w, dest));
                } else {
                    st->ready_at[(s * W + w) * 17 + dest] =
                        cycle + st->s_latency[spos];
                }
            }
            iss_span[issued] = st->s_span[spos];
            iss_share[issued] = st->s_share[spos];
            issued++;
        }

        if (issued == 0)
            st->st_stall[s]++;

        /* FII: fill leftover hardware slots with fake instructions. */
        st->fake_acc[s] += st->fake_rate[s];
        int fakes = 0;
        while (st->fake_acc[s] >= 1.0 && issued + fakes < 2 &&
               unit_avail(st, s, 0, cycle)) {
            st->fake_acc[s] -= 1.0;
            fakes++;
            st->st_fake[s]++;
            st->totals[1]++;
        }
        if (st->fake_acc[s] > 2.0)
            st->fake_acc[s] = 2.0;

        /* PG idle accounting (real issues only). */
        for (i64 u = 0; u < 3; u++) {
            if (used[u])
                st->unit_idle[s * 3 + u] = 0;
            else
                st->unit_idle[s * 3 + u]++;
        }

        /* Smear issued energy over pipeline occupancy (fakes last,
         * span 1), then rotate the wheel. */
        double *wheel = st->wheel + s * 8;
        i64 pos = st->wheel_pos[s];
        for (int k = 0; k < issued; k++) {
            for (i64 off = 0; off < iss_span[k]; off++)
                wheel[(pos + off) & 7] += iss_share[k];
        }
        for (int k = 0; k < fakes; k++)
            wheel[pos] += st->fake_energy;
        double dynamic_energy = wheel[pos];
        wheel[pos] = 0.0;
        st->wheel_pos[s] = (pos + 1) & 7;

        double freq = st->clock_hz * st->freq_scale[s];
        double energy = st->idle_energy + dynamic_energy;
        st->powers[s] = st->leakage[s] + energy * freq;
    }

    /* Kernel-done census for the GPU's launch barrier. */
    i64 ndone = 0;
    for (i64 s = 0; s < S; s++) {
        int done = 1;
        for (i64 w = 0; w < W; w++) {
            if (!st->warp_done[s * W + w] || st->outstanding[s * W + w] != 0) {
                done = 0;
                break;
            }
        }
        ndone += done;
    }
    return ndone;
}

/* Step a batch of independent engines one nominal clock in a single
 * call — the co-simulator's B-lane hot path.  Each lane is the exact
 * engine_step() above on its own state struct; lanes share nothing, so
 * ordering across lanes cannot affect results.  Per-lane kernel-done
 * censuses land in ndone_out; returns -(lane + 1) on the first lane
 * whose pending-load heap overflows, else 0.
 */
i64 engine_step_batch(EngineState **sts, i64 nlanes, i64 cycle,
                      i64 *ndone_out) {
    for (i64 b = 0; b < nlanes; b++) {
        i64 ndone = engine_step(sts[b], cycle);
        if (ndone < 0)
            return -(b + 1);
        ndone_out[b] = ndone;
    }
    return 0;
}
