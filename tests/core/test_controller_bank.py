"""Bit-identity contract of the batched controller front end.

``ControllerBank.observe(cycle, voltages)`` must leave every lane's
observable state byte-equal to serial per-lane ``observe`` calls — for
uniform and mixed control periods (the fast and generic wave paths),
through quiet stretches (the idle-wave shortcut re-enqueues the same
decision object), droop storms, NaN sensor dropouts and the watchdog.
"""

import numpy as np
import pytest

from repro.config import StackConfig
from repro.core.actuators import WeightedActuation
from repro.core.controller import (
    ControllerBank,
    ControllerConfig,
    VoltageSmoothingController,
)

NUM_SMS = StackConfig().num_sms
DT = 1.0 / 700e6


def _make_lane(config):
    return VoltageSmoothingController(
        stack=StackConfig(), config=config,
        actuation=WeightedActuation(), dt_s=DT,
    )


def _voltage_stream(rng, cycles):
    """Mostly-quiet voltages with droop storms, overshoot and NaN holes."""
    v = 1.0 + 0.002 * rng.standard_normal((cycles, NUM_SMS))
    v[120:135] -= 0.15  # droop storm: triggers + slew saturation
    v[200:206] += 0.2  # overshoot: FII/DCC side
    v[260:263] = np.nan  # sensor dropout: fallback path
    return v


def _assert_lane_states_equal(serial, banked, cycle=None):
    tag = f"cycle {cycle}" if cycle is not None else "final"
    assert serial.stats() == banked.stats(), f"{tag}: stats diverged"
    assert np.array_equal(
        serial._filter_state, np.asarray(banked._filter_state)
    ), f"{tag}: filter state diverged"
    sd, bd = serial.active_decision, banked.active_decision
    assert np.array_equal(sd.issue_widths, bd.issue_widths), tag
    assert np.array_equal(sd.fake_rates, bd.fake_rates), tag
    assert np.array_equal(sd.dcc_powers_w, bd.dcc_powers_w), tag


def _run_pair(configs, cycles=400, seed=0):
    rng = np.random.default_rng(seed)
    stream = _voltage_stream(rng, cycles)
    serial = [_make_lane(c) for c in configs]
    banked = [_make_lane(c) for c in configs]
    bank = ControllerBank(banked)
    for cycle in range(cycles):
        for i, c in enumerate(serial):
            c.observe(cycle, stream[cycle, :])
        bank.observe(cycle, np.tile(stream[cycle], (len(configs), 1)))
        for i, (s, b) in enumerate(zip(serial, banked)):
            ds = s.commands_for(cycle)
            db = b.commands_for(cycle)
            assert np.array_equal(ds.issue_widths, db.issue_widths), (
                f"lane {i} cycle {cycle}"
            )
            assert np.array_equal(ds.fake_rates, db.fake_rates)
            assert np.array_equal(ds.dcc_powers_w, db.dcc_powers_w)
    for s, b in zip(serial, banked):
        _assert_lane_states_equal(s, b)


class TestBankEquivalence:
    def test_uniform_cadence_mixed_gains(self):
        _run_pair([
            ControllerConfig(),
            ControllerConfig(k1=0.5, k2=4.0),
            ControllerConfig(k1=2.0, k3=10.0),
        ])

    def test_mixed_periods_take_generic_waves(self):
        _run_pair([
            ControllerConfig(control_period_cycles=4),
            ControllerConfig(control_period_cycles=6),
            ControllerConfig(control_period_cycles=4, k1=0.5),
        ])

    def test_watchdog_lane(self):
        _run_pair([
            ControllerConfig(),
            ControllerConfig(watchdog_enabled=True, watchdog_patience=4),
        ], seed=5)

    def test_single_lane_bank(self):
        _run_pair([ControllerConfig()], cycles=300)


class TestIdleWaveShortcut:
    """Quiet stretches re-enqueue the previous decision object."""

    def test_idle_waves_reuse_decision_object(self):
        lanes = [_make_lane(ControllerConfig()) for _ in range(2)]
        bank = ControllerBank(lanes)
        quiet = np.full((2, NUM_SMS), 1.0)
        seen = set()
        for cycle in range(120):
            bank.observe(cycle, quiet)
            for lane in lanes:
                seen.add(id(lane.commands_for(cycle)))
        # Steady default command: the active decision is one reused
        # object per lane (plus at most the initial default).
        assert len(seen) <= 4
        for lane in lanes:
            assert lane.decisions_made == 30  # every period still decides

    def test_idle_then_droop_recovers_full_wave(self):
        config = ControllerConfig()
        serial = _make_lane(config)
        banked = _make_lane(config)
        bank = ControllerBank([banked])
        for cycle in range(300):
            v = np.full(NUM_SMS, 1.0)
            if 140 <= cycle < 160:
                v -= 0.2
            serial.observe(cycle, v)
            bank.observe(cycle, v[None, :])
            ds = serial.commands_for(cycle)
            db = banked.commands_for(cycle)
            assert np.array_equal(ds.issue_widths, db.issue_widths), cycle
        _assert_lane_states_equal(serial, banked)


class TestBankValidation:
    def test_empty_bank_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ControllerBank([])

    def test_non_controller_lane_rejected(self):
        with pytest.raises(TypeError, match="VoltageSmoothingController"):
            ControllerBank([object()])
