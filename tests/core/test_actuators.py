"""Tests for actuation mechanisms and the weighted control input."""

import pytest

from repro.core.actuators import (
    ACTUATION_TIMESCALES,
    ActuationCommand,
    CurrentCompensationDAC,
    WeightedActuation,
    smoothing_capable,
)


class TestTimescales:
    """Fig. 5: only DIWS, FII, DCC are fast enough for smoothing."""

    def test_smoothing_trio(self):
        assert set(smoothing_capable()) == {"diws", "fii", "dcc"}

    def test_slow_mechanisms_excluded(self):
        for name in ("thread_migration", "power_gating", "dfs"):
            assert not ACTUATION_TIMESCALES[name][2]

    def test_smoothing_mechanisms_within_hundreds_of_cycles(self):
        # The low-frequency noise band needs response within ~100 cycles.
        for name, (lo, hi, _) in smoothing_capable().items():
            assert hi <= 100, name

    def test_dfs_is_slowest(self):
        assert ACTUATION_TIMESCALES["dfs"][0] >= max(
            v[0] for k, v in ACTUATION_TIMESCALES.items() if k != "dfs"
        )


class TestDAC:
    def test_max_power(self):
        dac = CurrentCompensationDAC(n_bits=4, unit_power_w=0.1)
        assert dac.max_code == 15
        assert dac.max_power_w == pytest.approx(1.5)

    def test_code_roundtrip(self):
        dac = CurrentCompensationDAC()
        code = dac.code_for_power(0.5)
        assert dac.power_for_code(code) == pytest.approx(0.5, abs=dac.unit_power_w)

    def test_code_clamped_at_max(self):
        dac = CurrentCompensationDAC(n_bits=3, unit_power_w=0.1)
        assert dac.code_for_power(100.0) == dac.max_code

    def test_nonpositive_power_gives_zero(self):
        assert CurrentCompensationDAC().code_for_power(-1.0) == 0

    def test_power_for_code_validates(self):
        dac = CurrentCompensationDAC(n_bits=3)
        with pytest.raises(ValueError):
            dac.power_for_code(8)

    def test_overheads_scale_with_bits(self):
        small = CurrentCompensationDAC(n_bits=4)
        big = CurrentCompensationDAC(n_bits=8)
        assert big.area_um2 == 2 * small.area_um2
        assert big.leakage_w == 2 * small.leakage_w


class TestCommandValidation:
    def test_defaults_valid(self):
        ActuationCommand()

    @pytest.mark.parametrize(
        "kwargs", [{"issue_width": 3.0}, {"fake_rate": -1.0}, {"dcc_code": -1}]
    )
    def test_rejects_out_of_range(self, kwargs):
        with pytest.raises(ValueError):
            ActuationCommand(**kwargs)


class TestWeightedActuation:
    def test_rejects_all_zero_weights(self):
        with pytest.raises(ValueError):
            WeightedActuation(w1=0.0, w2=0.0, w3=0.0)

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            WeightedActuation(w1=-1.0)

    def test_no_error_no_actuation(self):
        act = WeightedActuation(w1=1.0, w2=1.0, w3=1.0)
        cmd = act.commands(0.0, 10, 10, 10)
        assert cmd.issue_width == 2.0
        assert cmd.fake_rate == 0.0
        assert cmd.dcc_code == 0

    def test_diws_only_throttles_width(self):
        act = WeightedActuation(w1=1.0, w2=0.0, w3=0.0)
        cmd = act.commands(0.1, k1=10, k2=10, k3=10)
        assert cmd.issue_width == pytest.approx(1.0)
        assert cmd.fake_rate == 0.0
        assert cmd.dcc_code == 0

    def test_fii_only_injects(self):
        act = WeightedActuation(w1=0.0, w2=1.0, w3=0.0)
        cmd = act.commands(0.1, k1=10, k2=10, k3=10)
        assert cmd.issue_width == 2.0
        assert cmd.fake_rate == pytest.approx(1.0)

    def test_dcc_only_codes(self):
        act = WeightedActuation(w1=0.0, w2=0.0, w3=1.0)
        cmd = act.commands(0.1, k1=10, k2=10, k3=30)
        assert cmd.dcc_code == act.dac.code_for_power(3.0)

    def test_commands_clamped(self):
        act = WeightedActuation(w1=1.0, w2=1.0, w3=0.0)
        cmd = act.commands(10.0, k1=100, k2=100, k3=0)
        assert cmd.issue_width == 0.0
        assert cmd.fake_rate == 2.0

    def test_power_effect_signs(self):
        """Eq. (9): DIWS sheds power, FII and DCC add it."""
        act = WeightedActuation(w1=1.0, w2=1.0, w3=1.0)
        diws_cmd = ActuationCommand(issue_width=1.0)
        fii_cmd = ActuationCommand(fake_rate=1.0)
        dcc_cmd = ActuationCommand(dcc_code=10)
        assert act.power_effect_w(diws_cmd) < 0
        assert act.power_effect_w(fii_cmd) > 0
        assert act.power_effect_w(dcc_cmd) > 0

    def test_mixed_weights_split_the_error(self):
        mixed = WeightedActuation(w1=0.8, w2=0.2, w3=0.0)
        cmd = mixed.commands(0.1, k1=10, k2=10, k3=0)
        assert cmd.issue_width == pytest.approx(2.0 - 0.8)
        assert cmd.fake_rate == pytest.approx(0.2)
