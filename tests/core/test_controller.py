"""Tests for the Algorithm 1 voltage smoothing controller."""

import numpy as np
import pytest

from repro.config import StackConfig
from repro.core.actuators import WeightedActuation
from repro.core.controller import ControllerConfig, VoltageSmoothingController


def make_controller(**config_kwargs):
    defaults = dict(latency_cycles=10, control_period_cycles=1)
    defaults.update(config_kwargs)
    return VoltageSmoothingController(
        config=ControllerConfig(**defaults),
        actuation=WeightedActuation(w1=1.0, w2=1.0, w3=1.0),
    )


def healthy_voltages():
    return np.full(16, 1.0)


def drooping_voltages(sm, v=0.8):
    voltages = healthy_voltages()
    voltages[sm] = v
    return voltages


class TestConfig:
    def test_defaults_valid(self):
        ControllerConfig()

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            ControllerConfig(v_threshold=1.5)

    def test_default_latency_from_overheads(self):
        assert ControllerConfig().total_latency_cycles == 60

    def test_explicit_latency_wins(self):
        assert ControllerConfig(latency_cycles=42).total_latency_cycles == 42


class TestTriggering:
    def test_no_action_above_threshold(self):
        ctl = make_controller()
        for cycle in range(20):
            ctl.observe(cycle, healthy_voltages())
        decision = ctl.commands_for(30)
        assert np.all(decision.issue_widths == 2.0)
        assert np.all(decision.fake_rates == 0.0)
        assert ctl.triggers == 0

    def test_droop_below_threshold_triggers(self):
        ctl = make_controller()
        # Hold the droop so the RC filter settles through it.
        for cycle in range(300):
            ctl.observe(cycle, drooping_voltages(5, v=0.8))
        decision = ctl.commands_for(400)
        assert 5 in decision.triggered_sms
        assert decision.issue_widths[5] < 2.0

    def test_fii_targets_overvolted_sm(self):
        """The symmetric trigger: an underdrawing (overvolted) SM gets
        fake instructions injected directly — in a series stack this is
        precisely the SM(i+1, j) neighbour of a drooping SM."""
        ctl = make_controller()
        voltages = healthy_voltages()
        voltages[6] = 1.3  # underdrawing SM
        for cycle in range(800):
            ctl.observe(cycle, voltages)
        decision = ctl.commands_for(900)
        assert decision.fake_rates[6] > 0.0
        assert decision.issue_widths[6] == 2.0  # not throttled

    def test_no_fii_when_nothing_overvolted(self):
        ctl = make_controller()
        for cycle in range(300):
            ctl.observe(cycle, drooping_voltages(5, v=0.8))
        decision = ctl.commands_for(400)
        assert np.all(decision.fake_rates == 0.0)

    def test_boost_proportional_to_overvoltage(self):
        mild = make_controller()
        severe = make_controller()
        v_mild, v_severe = healthy_voltages(), healthy_voltages()
        v_mild[2], v_severe[2] = 1.15, 1.5
        for cycle in range(1500):
            mild.observe(cycle, v_mild)
            severe.observe(cycle, v_severe)
        assert (
            severe.commands_for(1600).fake_rates[2]
            > mild.commands_for(1600).fake_rates[2]
        )

    def test_recovery_relaxes_commands(self):
        ctl = make_controller()
        for cycle in range(300):
            ctl.observe(cycle, drooping_voltages(5, v=0.8))
        assert ctl.commands_for(350).issue_widths[5] < 2.0
        for cycle in range(300, 900):
            ctl.observe(cycle, healthy_voltages())
        assert ctl.commands_for(950).issue_widths[5] == 2.0


class TestLatencyPipeline:
    def test_commands_delayed_by_latency(self):
        ctl = make_controller(latency_cycles=50)
        for cycle in range(200):
            ctl.observe(cycle, drooping_voltages(3, v=0.7))
        # A decision made near cycle 199 applies only after +50.
        fresh = VoltageSmoothingController(
            config=ControllerConfig(latency_cycles=50, control_period_cycles=1)
        )
        fresh.observe(0, drooping_voltages(3, v=0.0))  # huge instant droop
        early = fresh.commands_for(10)
        assert np.all(early.issue_widths == 2.0)  # not yet in force

    def test_proportional_to_error(self):
        shallow = make_controller()
        deep = make_controller()
        for cycle in range(300):
            shallow.observe(cycle, drooping_voltages(2, v=0.88))
            deep.observe(cycle, drooping_voltages(2, v=0.75))
        w_shallow = shallow.commands_for(400).issue_widths[2]
        w_deep = deep.commands_for(400).issue_widths[2]
        assert w_deep < w_shallow

    def test_control_period_batches_decisions(self):
        sparse = make_controller(control_period_cycles=16)
        for cycle in range(160):
            sparse.observe(cycle, drooping_voltages(1, v=0.8))
        assert sparse.decisions_made == 10

    def test_observe_validates_shape(self):
        ctl = make_controller()
        with pytest.raises(ValueError):
            ctl.observe(0, np.ones(4))


class TestStatistics:
    def test_throttle_fraction(self):
        ctl = make_controller()
        for cycle in range(100):
            ctl.observe(cycle, drooping_voltages(0, v=0.8))
        assert 0.0 < ctl.throttle_fraction <= 1.0

    def test_throttled_cycles_counted(self):
        ctl = make_controller()
        for cycle in range(300):
            ctl.observe(cycle, drooping_voltages(0, v=0.8))
            ctl.commands_for(cycle)
        assert ctl.throttled_cycles > 0

    def test_zero_decisions_zero_fraction(self):
        assert make_controller().throttle_fraction == 0.0
