"""Tests for the Algorithm 1 voltage smoothing controller."""

import numpy as np
import pytest

from repro.config import StackConfig
from repro.core.actuators import WeightedActuation
from repro.core.controller import ControllerConfig, VoltageSmoothingController


def make_controller(**config_kwargs):
    defaults = dict(latency_cycles=10, control_period_cycles=1)
    defaults.update(config_kwargs)
    return VoltageSmoothingController(
        config=ControllerConfig(**defaults),
        actuation=WeightedActuation(w1=1.0, w2=1.0, w3=1.0),
    )


def healthy_voltages():
    return np.full(16, 1.0)


def drooping_voltages(sm, v=0.8):
    voltages = healthy_voltages()
    voltages[sm] = v
    return voltages


class TestConfig:
    def test_defaults_valid(self):
        ControllerConfig()

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            ControllerConfig(v_threshold=1.5)

    def test_default_latency_from_overheads(self):
        assert ControllerConfig().total_latency_cycles == 60

    def test_explicit_latency_wins(self):
        assert ControllerConfig(latency_cycles=42).total_latency_cycles == 42


class TestTriggering:
    def test_no_action_above_threshold(self):
        ctl = make_controller()
        for cycle in range(20):
            ctl.observe(cycle, healthy_voltages())
        decision = ctl.commands_for(30)
        assert np.all(decision.issue_widths == 2.0)
        assert np.all(decision.fake_rates == 0.0)
        assert ctl.triggers == 0

    def test_droop_below_threshold_triggers(self):
        ctl = make_controller()
        # Hold the droop so the RC filter settles through it.
        for cycle in range(300):
            ctl.observe(cycle, drooping_voltages(5, v=0.8))
        decision = ctl.commands_for(400)
        assert 5 in decision.triggered_sms
        assert decision.issue_widths[5] < 2.0

    def test_fii_targets_overvolted_sm(self):
        """The symmetric trigger: an underdrawing (overvolted) SM gets
        fake instructions injected directly — in a series stack this is
        precisely the SM(i+1, j) neighbour of a drooping SM."""
        ctl = make_controller()
        voltages = healthy_voltages()
        voltages[6] = 1.3  # underdrawing SM
        for cycle in range(800):
            ctl.observe(cycle, voltages)
        decision = ctl.commands_for(900)
        assert decision.fake_rates[6] > 0.0
        assert decision.issue_widths[6] == 2.0  # not throttled

    def test_no_fii_when_nothing_overvolted(self):
        ctl = make_controller()
        for cycle in range(300):
            ctl.observe(cycle, drooping_voltages(5, v=0.8))
        decision = ctl.commands_for(400)
        assert np.all(decision.fake_rates == 0.0)

    def test_boost_proportional_to_overvoltage(self):
        mild = make_controller()
        severe = make_controller()
        v_mild, v_severe = healthy_voltages(), healthy_voltages()
        v_mild[2], v_severe[2] = 1.15, 1.5
        for cycle in range(1500):
            mild.observe(cycle, v_mild)
            severe.observe(cycle, v_severe)
        assert (
            severe.commands_for(1600).fake_rates[2]
            > mild.commands_for(1600).fake_rates[2]
        )

    def test_recovery_relaxes_commands(self):
        ctl = make_controller()
        for cycle in range(300):
            ctl.observe(cycle, drooping_voltages(5, v=0.8))
        assert ctl.commands_for(350).issue_widths[5] < 2.0
        for cycle in range(300, 900):
            ctl.observe(cycle, healthy_voltages())
        assert ctl.commands_for(950).issue_widths[5] == 2.0


class TestLatencyPipeline:
    def test_commands_delayed_by_latency(self):
        ctl = make_controller(latency_cycles=50)
        for cycle in range(200):
            ctl.observe(cycle, drooping_voltages(3, v=0.7))
        # A decision made near cycle 199 applies only after +50.
        fresh = VoltageSmoothingController(
            config=ControllerConfig(latency_cycles=50, control_period_cycles=1)
        )
        fresh.observe(0, drooping_voltages(3, v=0.0))  # huge instant droop
        early = fresh.commands_for(10)
        assert np.all(early.issue_widths == 2.0)  # not yet in force

    def test_proportional_to_error(self):
        shallow = make_controller()
        deep = make_controller()
        for cycle in range(300):
            shallow.observe(cycle, drooping_voltages(2, v=0.88))
            deep.observe(cycle, drooping_voltages(2, v=0.75))
        w_shallow = shallow.commands_for(400).issue_widths[2]
        w_deep = deep.commands_for(400).issue_widths[2]
        assert w_deep < w_shallow

    def test_control_period_batches_decisions(self):
        sparse = make_controller(control_period_cycles=16)
        for cycle in range(160):
            sparse.observe(cycle, drooping_voltages(1, v=0.8))
        assert sparse.decisions_made == 10

    def test_observe_validates_shape(self):
        ctl = make_controller()
        with pytest.raises(ValueError):
            ctl.observe(0, np.ones(4))


class TestStatistics:
    def test_throttle_fraction(self):
        ctl = make_controller()
        for cycle in range(100):
            ctl.observe(cycle, drooping_voltages(0, v=0.8))
        assert 0.0 < ctl.throttle_fraction <= 1.0

    def test_throttled_cycles_counted(self):
        ctl = make_controller()
        for cycle in range(300):
            ctl.observe(cycle, drooping_voltages(0, v=0.8))
            ctl.commands_for(cycle)
        assert ctl.throttled_cycles > 0

    def test_zero_decisions_zero_fraction(self):
        assert make_controller().throttle_fraction == 0.0

    def test_throttle_fraction_excludes_boosts(self):
        """A purely overvolted run injects work (FII/DCC) but never cuts
        issue width; before the fix those boost decisions inflated
        ``throttle_fraction``."""
        ctl = make_controller()
        voltages = healthy_voltages()
        voltages[6] = 1.4  # sustained overvoltage, no droop anywhere
        for cycle in range(600):
            ctl.observe(cycle, voltages)
        assert ctl.triggers > 0
        assert ctl.throttle_fraction == 0.0
        assert 0.0 < ctl.boost_fraction <= 1.0

    def test_boost_fraction_zero_for_pure_droop(self):
        ctl = make_controller()
        for cycle in range(300):
            ctl.observe(cycle, drooping_voltages(0, v=0.8))
        assert ctl.boost_fraction == 0.0
        assert ctl.throttle_fraction > 0.0

    def test_commands_for_counts_each_cycle_once(self):
        """Reading the same cycle's commands repeatedly (e.g. from a
        nested substep loop) must not double-count throttled_cycles."""
        once = make_controller()
        thrice = make_controller()
        for cycle in range(300):
            once.observe(cycle, drooping_voltages(0, v=0.8))
            thrice.observe(cycle, drooping_voltages(0, v=0.8))
            once.commands_for(cycle)
            for _ in range(3):
                thrice.commands_for(cycle)
        assert once.throttled_cycles > 0
        assert thrice.throttled_cycles == once.throttled_cycles

    def test_stats_snapshot_keys(self):
        ctl = make_controller()
        for cycle in range(100):
            ctl.observe(cycle, drooping_voltages(0, v=0.8))
            ctl.commands_for(cycle)
        stats = ctl.stats()
        assert stats["decisions_made"] == ctl.decisions_made
        assert stats["throttled_cycles"] == ctl.throttled_cycles
        assert stats["actuator_decisions"]["diws"] > 0
        assert set(stats["slew_saturations"]) == {"issue", "fake", "dcc"}


class TestPerActuatorSlew:
    def test_legacy_knob_seeds_issue_and_fake(self):
        cfg = ControllerConfig(slew_per_decision=0.05)
        assert cfg.slew_issue == 0.05
        assert cfg.slew_fake == 0.05
        # DCC slews in watts, independent of the legacy shared knob.
        assert cfg.slew_dcc_w == 0.25

    def test_explicit_limits_win_over_legacy(self):
        # Slews this loose stop capping the k2 = 8 FII gain below the
        # 2C/T sampled-stability bound, so the escape hatch is needed.
        cfg = ControllerConfig(
            slew_per_decision=0.05, slew_issue=0.5, slew_fake=0.3,
            allow_unstable=True,
        )
        assert cfg.slew_issue == 0.5
        assert cfg.slew_fake == 0.3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"slew_issue": 0.0},
            {"slew_fake": -1.0},
            {"slew_dcc_w": 0.0},
            {"slew_per_decision": -0.01},
        ],
    )
    def test_nonpositive_limits_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ControllerConfig(**kwargs)

    def test_dcc_reaches_commanded_power(self):
        """Regression for the shared-slew unit bug: 0.02 *watts* per
        decision pinned the k3 = 20 W/V DCC DAC to a ~630-decision ramp,
        disabling it in practice.  With the per-actuator limit the DAC
        must reach its (clamped) commanded power within a sustained
        overvoltage episode."""
        ctl = make_controller()
        voltages = healthy_voltages()
        voltages[2] = 1.4  # k3 * 0.4 V = 8 W request, clamps to DAC max
        for cycle in range(400):
            ctl.observe(cycle, voltages)
        commanded = ctl.actuation.dac.max_power_w  # 3.15 W full scale
        applied = ctl.commands_for(500).dcc_powers_w[2]
        assert applied >= 0.5 * commanded

    def test_dcc_ramp_counts_slew_saturation(self):
        """The 8 W step demand exceeds the per-decision watt budget, so
        the dcc slew clamp must report saturation while ramping."""
        ctl = make_controller()
        voltages = healthy_voltages()
        voltages[2] = 1.4
        for cycle in range(200):
            ctl.observe(cycle, voltages)
        assert ctl.slew_saturations["dcc"] > 0

    def test_issue_slew_unchanged_by_dcc_fix(self):
        """DIWS ramps exactly as before: issue width falls by at most
        ``slew_issue`` slots per decision."""
        ctl = make_controller()
        ctl.observe(0, healthy_voltages())
        ctl.observe(1, drooping_voltages(3, v=0.0))  # instant deep droop
        widths = [d.issue_widths[3] for _, d in ctl._pipeline]
        assert widths[-1] >= 2.0 - 2 * ctl.config.slew_issue - 1e-12
