"""Tests for discretization and stability analysis (Section IV-B)."""

import numpy as np
import pytest

from repro.core.stability import (
    discretize,
    disturbance_rejection_bound,
    is_stable,
    sampled_closed_loop,
    select_feedback_gain,
    spectral_radius,
)
from repro.core.state_space import StackedGridModel

T_60_CYCLES = 60 / 700e6


@pytest.fixture
def model():
    return StackedGridModel()


class TestDiscretize:
    def test_zero_matrix_gives_identity(self):
        assert np.allclose(discretize(np.zeros((3, 3)), 1e-7), np.eye(3))

    def test_scalar_decay(self):
        ad = discretize(np.array([[-1e7]]), 1e-7)
        assert ad[0, 0] == pytest.approx(np.exp(-1.0))

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            discretize(np.eye(2), 0.0)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            discretize(np.zeros((2, 3)), 1e-7)


class TestStability:
    def test_spectral_radius(self):
        assert spectral_radius(np.diag([0.5, -0.9])) == pytest.approx(0.9)

    def test_open_loop_marginally_stable(self, model):
        """k = 0: pure integrators discretize to the identity (radius 1)."""
        ad = discretize(model.closed_loop(0.0), T_60_CYCLES)
        assert spectral_radius(ad) == pytest.approx(1.0)
        assert is_stable(ad)

    def test_positive_gain_strictly_stable(self, model):
        ad = sampled_closed_loop(model, 3.0, T_60_CYCLES)
        # Controllable subspace decays; supply state stays at unity.
        assert spectral_radius(ad[:3, :3]) < 1.0

    def test_negative_gain_unstable(self, model):
        ad = sampled_closed_loop(model, -3.0, T_60_CYCLES)
        assert not is_stable(ad)

    def test_sampling_limits_usable_gain(self, model):
        """The ZOH loop destabilizes beyond k = 2C/T — the latency
        constraint that ties control gain to loop delay (Section IV-B)."""
        k_limit = 2 * model.layer_capacitance_f / T_60_CYCLES
        stable = sampled_closed_loop(model, 0.9 * k_limit, T_60_CYCLES)
        unstable = sampled_closed_loop(model, 1.2 * k_limit, T_60_CYCLES)
        assert spectral_radius(stable[:3, :3]) < 1.0
        assert spectral_radius(unstable[:3, :3]) > 1.0

    def test_slower_loop_lowers_gain_ceiling(self, model):
        """Doubling the latency halves the stable-gain range."""
        k = 1.8 * model.layer_capacitance_f / T_60_CYCLES
        fast = sampled_closed_loop(model, k, T_60_CYCLES)
        slow = sampled_closed_loop(model, k, 2 * T_60_CYCLES)
        assert spectral_radius(fast[:3, :3]) < 1.0
        assert spectral_radius(slow[:3, :3]) > 1.0


class TestGainSelection:
    def test_selected_gain_is_stable(self, model):
        k, radius = select_feedback_gain(model, T_60_CYCLES)
        assert k > 0
        assert radius < 1.0

    def test_deadbeat_gain_found_on_bare_grid(self, model):
        # On the pure integrator bank k = C/T is deadbeat (radius 0).
        k, radius = select_feedback_gain(model, T_60_CYCLES)
        assert radius < 0.05
        assert k == pytest.approx(
            model.layer_capacitance_f / T_60_CYCLES, rel=0.1
        )

    def test_unstable_candidates_rejected(self, model):
        with pytest.raises(RuntimeError, match="stable"):
            # Gains far beyond 2C/T diverge under sampling.
            select_feedback_gain(
                model, T_60_CYCLES,
                candidates=[1e3 * model.layer_capacitance_f / T_60_CYCLES],
            )


class TestDisturbanceRejection:
    def test_bound_positive_and_finite(self, model):
        k, _ = select_feedback_gain(model, T_60_CYCLES)
        bound = disturbance_rejection_bound(model, k, T_60_CYCLES)
        assert 0 < bound < 100

    def test_bare_grid_dc_rejection_scales_as_one_over_k(self, model):
        """Physical sanity: on integrators, steady deviation ~ dI / k
        (within the coupling factor of the banded B K structure)."""
        bound = disturbance_rejection_bound(model, 3.0, T_60_CYCLES, [1e3])
        assert 0.3 < bound * 3.0 < 3.0
        half = disturbance_rejection_bound(model, 6.0, T_60_CYCLES, [1e3])
        assert half == pytest.approx(bound / 2, rel=0.1)

    def test_higher_gain_rejects_better_at_low_frequency(self, model):
        freqs = [1e4, 1e5]
        weak = disturbance_rejection_bound(model, 0.5, T_60_CYCLES, freqs)
        strong = disturbance_rejection_bound(model, 4.0, T_60_CYCLES, freqs)
        assert strong < weak

    def test_cr_ivr_in_plant_lowers_closed_loop_impedance(self):
        """The cross-layer effect: circuit + control beats control alone."""
        bare = StackedGridModel()
        cross = StackedGridModel.cross_layer_default()
        k = 3.0
        z_bare = disturbance_rejection_bound(bare, k, T_60_CYCLES)
        z_cross = disturbance_rejection_bound(cross, k, T_60_CYCLES)
        assert z_cross < 0.5 * z_bare

    def test_guardband_condition_near_paper_target(self):
        """Formal worst-case noise guarantee (Section IV-B).

        The paper sizes the system so worst-case concentration sees
        <= 0.1 ohm.  The aggregated analysis model lands within ~30% of
        that target; the full circuit co-simulation (integration tests)
        verifies the 0.8 V floor directly.
        """
        model = StackedGridModel.cross_layer_default()
        best = min(
            disturbance_rejection_bound(model, k, T_60_CYCLES)
            for k in [4.0, 6.0, 9.0, 11.0]
        )
        assert best <= 0.13

    def test_rejects_frequency_above_nyquist(self, model):
        with pytest.raises(ValueError, match="Nyquist"):
            disturbance_rejection_bound(
                model, 1.0, T_60_CYCLES, [1.0 / T_60_CYCLES]
            )
