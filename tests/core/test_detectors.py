"""Tests for Table II detector models and the RC low-pass filter."""

import math

import numpy as np
import pytest

from repro.core.detectors import (
    DETECTOR_OPTIONS,
    DetectorSpec,
    RCLowPassFilter,
    VoltageDetector,
)


class TestTableII:
    def test_three_options(self):
        assert set(DETECTOR_OPTIONS) == {"oddd", "cpm", "adc"}

    def test_oddd_is_fastest(self):
        latencies = {k: v.latency_cycles for k, v in DETECTOR_OPTIONS.items()}
        assert latencies["oddd"] == min(latencies.values())

    def test_adc_has_finest_resolution(self):
        resolutions = {k: v.resolution_v for k, v in DETECTOR_OPTIONS.items()}
        assert resolutions["adc"] == min(resolutions.values())

    def test_powers_within_table_ranges(self):
        for spec in DETECTOR_OPTIONS.values():
            lo, hi = spec.power_range_mw
            assert lo <= spec.power_mw <= hi

    def test_spec_validates_latency_range(self):
        with pytest.raises(ValueError, match="range"):
            DetectorSpec("bad", 100, (1, 10), 5.0, (0, 10), 0.01, "x")

    def test_spec_validates_resolution(self):
        with pytest.raises(ValueError, match="resolution"):
            DetectorSpec("bad", 5, (1, 10), 5.0, (0, 10), 0.0, "x")


class TestRCFilter:
    def test_paper_cutoff(self):
        f = RCLowPassFilter()
        # 10 kOhm * 2 pF -> 1/(RC) = 5e7 rad/s (the paper's 50M cutoff).
        assert f.cutoff_rad_s == pytest.approx(5e7)

    def test_dc_passes_through(self):
        f = RCLowPassFilter(initial_v=0.0)
        for _ in range(10_000):
            out = f.step(1.0, dt_s=1e-9)
        assert out == pytest.approx(1.0, abs=1e-3)

    def test_high_frequency_attenuated(self):
        f = RCLowPassFilter(initial_v=1.0)
        dt = 1.0 / 700e6
        # 350 MHz square wave around 1.0 V (amplitude 0.2).
        outputs = []
        for n in range(4000):
            x = 1.0 + (0.2 if n % 2 == 0 else -0.2)
            outputs.append(f.step(x, dt))
        swing = max(outputs[2000:]) - min(outputs[2000:])
        assert swing < 0.04  # >10x attenuation

    def test_low_frequency_tracked(self):
        f = RCLowPassFilter(initial_v=1.0)
        dt = 1.0 / 700e6
        # 1 MHz square wave: well below cutoff, mostly tracked.
        outputs = []
        period = 700  # cycles
        for n in range(20 * period):
            x = 1.0 + (0.2 if (n // (period // 2)) % 2 == 0 else -0.2)
            outputs.append(f.step(x, dt))
        swing = max(outputs[-2 * period:]) - min(outputs[-2 * period:])
        assert swing > 0.3

    def test_rejects_bad_rc(self):
        with pytest.raises(ValueError):
            RCLowPassFilter(r_ohm=0.0)

    def test_reset(self):
        f = RCLowPassFilter(initial_v=1.0)
        f.reset(0.5)
        assert f.state_v == 0.5


class TestVoltageDetector:
    def test_quantizes_to_resolution(self):
        d = VoltageDetector(DETECTOR_OPTIONS["oddd"], filter_initial_v=0.937)
        out = d.sample(0.937, dt_s=1e-9)
        step = DETECTOR_OPTIONS["oddd"].resolution_v
        assert out == pytest.approx(round(0.937 / step) * step, abs=1e-12)

    def test_adc_tracks_finely(self):
        d = VoltageDetector(DETECTOR_OPTIONS["adc"], filter_initial_v=0.9)
        out = d.sample(0.9, dt_s=1e-9)
        assert abs(out - 0.9) < DETECTOR_OPTIONS["adc"].resolution_v
