"""Property-based tests (hypothesis) of controller robustness contracts.

Two invariants the fault-injection machinery leans on:

* slew limits are never violated — consecutive in-force decisions can
  differ by at most the per-actuator slew, whatever voltage trace
  (droops, spikes, NaN dropouts) the detectors see;
* a missing sample (NaN) never produces actuation, with the sensor
  fallback on or off.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.actuators import WeightedActuation
from repro.core.controller import ControllerConfig, VoltageSmoothingController

NUM_SMS = 16
LATENCY = 10

voltage = st.one_of(
    st.floats(min_value=0.0, max_value=1.5),
    st.just(float("nan")),
)
voltage_frames = st.lists(
    st.lists(voltage, min_size=NUM_SMS, max_size=NUM_SMS),
    min_size=5,
    max_size=60,
)
# A base example of 5x16 floats is inherently largish; the invariants
# under test need whole traces, not single samples.
trace_settings = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.large_base_example],
)
sm_subsets = st.sets(
    st.integers(min_value=0, max_value=NUM_SMS - 1), min_size=1, max_size=6
)


def make_controller(**config_kwargs):
    defaults = dict(latency_cycles=LATENCY, control_period_cycles=1)
    defaults.update(config_kwargs)
    return VoltageSmoothingController(
        config=ControllerConfig(**defaults),
        actuation=WeightedActuation(w1=1.0, w2=1.0, w3=1.0),
    )


class TestSlewInvariant:
    @given(frames=voltage_frames, fallback=st.booleans())
    @trace_settings
    def test_in_force_commands_never_jump_past_the_slew(
        self, frames, fallback
    ):
        """With one decision per cycle, consecutive in-force decisions
        are consecutive enqueued decisions — each within the per-
        actuator slew of the last, for ANY trace including dropouts."""
        ctl = make_controller(sensor_fallback_enabled=fallback)
        cfg = ctl.config
        eps = 1e-12
        prev = ctl.commands_for(-1)
        prev_state = (
            prev.issue_widths.copy(),
            prev.fake_rates.copy(),
            prev.dcc_powers_w.copy(),
        )
        for cycle, frame in enumerate(frames):
            ctl.observe(cycle, np.array(frame))
            decision = ctl.commands_for(cycle)
            state = (
                decision.issue_widths.copy(),
                decision.fake_rates.copy(),
                decision.dcc_powers_w.copy(),
            )
            for (now, before), slew in zip(
                zip(state, prev_state),
                (cfg.slew_issue, cfg.slew_fake, cfg.slew_dcc_w),
            ):
                assert np.all(np.abs(now - before) <= slew + eps)
            prev_state = state

    @given(frames=voltage_frames, watchdog=st.booleans())
    @trace_settings
    def test_commands_always_within_hardware_ranges(self, frames, watchdog):
        ctl = make_controller(
            watchdog_enabled=watchdog, watchdog_patience=3
        )
        for cycle, frame in enumerate(frames):
            ctl.observe(cycle, np.array(frame))
            decision = ctl.commands_for(cycle)
            assert np.all(decision.issue_widths >= 0.0)
            assert np.all(decision.issue_widths <= 2.0)
            assert np.all(decision.fake_rates >= 0.0)
            assert np.all(decision.dcc_powers_w >= 0.0)
            assert np.all(np.isfinite(decision.issue_widths))
            assert np.all(np.isfinite(decision.fake_rates))
            assert np.all(np.isfinite(decision.dcc_powers_w))


class TestNaNNeverActuates:
    @given(dead=sm_subsets, fallback=st.booleans(),
           cycles=st.integers(min_value=40, max_value=120))
    @settings(max_examples=30, deadline=None)
    def test_permanently_dead_sensors_keep_default_commands(
        self, dead, fallback, cycles
    ):
        """An SM whose sensor never reports (and whose last good level
        was healthy) is never throttled or boosted — neither raw NaN
        nor the held fallback measurement may actuate it."""
        ctl = make_controller(sensor_fallback_enabled=fallback)
        voltages = np.full(NUM_SMS, 1.0)
        voltages[list(dead)] = np.nan
        for cycle in range(cycles):
            ctl.observe(cycle, voltages)
            decision = ctl.commands_for(cycle)
            for sm in dead:
                assert decision.issue_widths[sm] == 2.0
                assert decision.fake_rates[sm] == 0.0
                assert decision.dcc_powers_w[sm] == 0.0

    @given(dead=sm_subsets)
    @settings(max_examples=20, deadline=None)
    def test_nan_never_poisons_the_filter_state(self, dead):
        """After the sensor recovers, the filtered measurement is
        finite immediately — NaN must never have entered the RC state."""
        ctl = make_controller(sensor_fallback_enabled=False)
        voltages = np.full(NUM_SMS, 1.0)
        voltages[list(dead)] = np.nan
        for cycle in range(50):
            ctl.observe(cycle, voltages)
        for cycle in range(50, 60):
            ctl.observe(cycle, np.full(NUM_SMS, 1.0))
        assert np.all(np.isfinite(ctl._last_good))
        decision = ctl.commands_for(100)
        assert np.all(np.isfinite(decision.issue_widths))
