"""Tests for the stacked-grid state-space model (eqs. 1-7)."""

import numpy as np
import pytest

from repro.core.state_space import StackedGridModel


@pytest.fixture
def model():
    return StackedGridModel()


class TestConstruction:
    def test_rejects_single_layer(self):
        with pytest.raises(ValueError):
            StackedGridModel(num_layers=1)

    def test_rejects_nonpositive_capacitance(self):
        with pytest.raises(ValueError):
            StackedGridModel(layer_capacitance_f=0.0)


class TestMatrices:
    def test_a_matrix_is_zero(self, model):
        """Eq. (4): the linearized grid is a pure integrator bank."""
        assert np.allclose(model.a_matrix(), 0.0)

    def test_b_matrix_banded_structure(self, model):
        b = model.b_matrix()
        c = model.layer_capacitance_f
        # Node i integrates (I_{i+1} - I_i)/C.
        assert b[0, 0] == pytest.approx(-1 / c)
        assert b[0, 1] == pytest.approx(1 / c)
        assert b[2, 3] == pytest.approx(1 / c)
        # Supply-pinned node: zero row.
        assert np.allclose(b[3], 0.0)

    def test_b_rows_sum_to_zero_for_interior(self, model):
        # A uniform power step on all layers leaves boundaries unmoved:
        # the balanced-load property of the stack.
        b = model.b_matrix()
        assert np.allclose(b @ np.ones(4), 0.0)

    def test_feedback_matrix_excludes_supply_state(self, model):
        k = model.feedback_matrix(3.0)
        assert k[0, 0] == 3.0
        assert k[3, 3] == 0.0

    def test_closed_loop_eigenvalues_negative_for_positive_gain(self, model):
        """Eq. (7) stability: every k > 0 gives a decaying closed loop."""
        eigenvalues = np.linalg.eigvals(model.closed_loop(2.0)[:3, :3])
        assert np.all(eigenvalues.real < 0)


class TestEquilibrium:
    def test_evenly_divided_supply(self, model):
        assert np.allclose(model.equilibrium(), [1.0, 2.0, 3.0, 4.0])

    def test_layer_voltages_from_state(self, model):
        layers = model.layer_voltages(np.array([1.0, 2.0, 3.0, 4.0]))
        assert np.allclose(layers, 1.0)

    def test_layer_voltages_validates_shape(self, model):
        with pytest.raises(ValueError):
            model.layer_voltages(np.ones(3))


class TestSimulation:
    def test_decays_from_initial_deviation(self, model):
        _, trajectory = model.simulate(
            k=2.0, dt=1e-8, steps=4000, x0=np.array([0.2, 0.0, 0.0, 0.0])
        )
        assert abs(trajectory[-1, 0]) < 0.01

    def test_no_gain_no_decay(self, model):
        _, trajectory = model.simulate(
            k=0.0, dt=1e-8, steps=100, x0=np.array([0.2, 0.0, 0.0, 0.0])
        )
        assert trajectory[-1, 0] == pytest.approx(0.2)

    def test_disturbance_bounded_under_feedback(self, model):
        disturbance = lambda t: np.array([5e5, 0.0, 0.0, 0.0])
        _, trajectory = model.simulate(k=5.0, dt=1e-8, steps=5000,
                                       disturbance=disturbance)
        # Steady-state deviation = dF * C / k.
        expected = 5e5 * model.layer_capacitance_f / 5.0
        assert trajectory[-1, 0] == pytest.approx(expected, rel=0.05)

    def test_supply_state_pinned(self, model):
        _, trajectory = model.simulate(
            k=1.0, dt=1e-8, steps=50, x0=np.array([0.1, 0.1, 0.1, 0.0])
        )
        assert np.allclose(trajectory[:, 3], 0.0)

    def test_rejects_bad_steps(self, model):
        with pytest.raises(ValueError):
            model.simulate(k=1.0, dt=0.0, steps=10)
