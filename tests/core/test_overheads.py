"""Tests for the synthesized controller overhead budget (Section IV-D)."""

import pytest

from repro.core.detectors import DETECTOR_OPTIONS, RCLowPassFilter
from repro.core.overheads import ControllerOverheads, control_latency_cycles


class TestPaperConstants:
    def test_synthesized_power(self):
        # Synopsys DC, TSMC 40 nm: 1.634 mW for controller + adjusters.
        assert ControllerOverheads().power_w == pytest.approx(1.634e-3)

    def test_synthesized_area(self):
        assert ControllerOverheads().area_um2 == pytest.approx(3084.0)

    def test_area_conversion(self):
        assert ControllerOverheads().area_mm2 == pytest.approx(3084e-6)

    def test_total_area_includes_filters(self):
        o = ControllerOverheads()
        assert o.total_area_um2(16) == pytest.approx(
            3084.0 + 16 * RCLowPassFilter.AREA_UM2
        )


class TestLatencyBudget:
    def test_default_is_paper_60_cycles(self):
        """The paper's chosen design point: a 60-cycle loop latency."""
        assert control_latency_cycles() == 60

    def test_cpm_detector_is_slower(self):
        slow = control_latency_cycles(DETECTOR_OPTIONS["cpm"])
        assert slow > control_latency_cycles()

    def test_budget_sums_components(self):
        o = ControllerOverheads()
        latency = control_latency_cycles(DETECTOR_OPTIONS["adc"], o)
        assert latency == (
            DETECTOR_OPTIONS["adc"].latency_cycles
            + o.computation_cycles
            + o.actuation_cycles
            + o.communication_cycles
        )
