"""Tests for the Algorithm 2 VS-aware power management hypervisor."""

import numpy as np
import pytest

from repro.config import StackConfig
from repro.core.hypervisor import HypervisorConfig, VSAwareHypervisor
from repro.gpu.isa import ExecUnit

STACK = StackConfig()


def fresh():
    return VSAwareHypervisor()


class TestConfig:
    def test_defaults_valid(self):
        HypervisorConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_frequency_threshold_hz": 0.0},
            {"base_leakage_threshold_w": -1.0},
            {"adaptation_strength": 1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            HypervisorConfig(**kwargs)


class TestFrequencyMapping:
    def test_uniform_request_untouched(self):
        hv = fresh()
        request = np.full(16, 700e6)
        assert np.allclose(hv.map_frequencies(request), request)
        assert hv.frequency_overrides == 0

    def test_small_spread_untouched(self):
        hv = fresh()
        request = np.full(16, 700e6)
        request[0] = 650e6  # within the 100 MHz budget
        assert np.allclose(hv.map_frequencies(request), request)

    def test_large_spread_clamped_within_column(self):
        hv = fresh()
        request = np.full(16, 700e6)
        slow = STACK.sm_index(0, 2)
        request[slow] = 300e6  # 400 MHz below its column peers
        mapped = hv.map_frequencies(request)
        assert mapped[slow] == pytest.approx(700e6 - hv.frequency_threshold_hz)
        assert hv.frequency_overrides == 1

    def test_clamping_is_per_column(self):
        hv = fresh()
        request = np.full(16, 700e6)
        # Whole column 1 slow: internally balanced, no clamping needed.
        for sm in STACK.sms_in_column(1):
            request[sm] = 300e6
        mapped = hv.map_frequencies(request)
        assert np.allclose(mapped, request)

    def test_slow_sms_raised_not_fast_lowered(self):
        hv = fresh()
        request = np.full(16, 500e6)
        fast = STACK.sm_index(2, 0)
        request[fast] = 700e6
        mapped = hv.map_frequencies(request)
        assert mapped[fast] == 700e6  # performance request preserved

    def test_validates_shape_and_values(self):
        hv = fresh()
        with pytest.raises(ValueError):
            hv.map_frequencies(np.ones(4))
        with pytest.raises(ValueError):
            hv.map_frequencies(np.zeros(16))


class TestGatingMapping:
    def test_balanced_gating_granted(self):
        hv = fresh()
        request = [{ExecUnit.SFU} for _ in range(16)]
        granted = hv.map_gating(request)
        assert all(g == {ExecUnit.SFU} for g in granted)
        assert hv.gating_vetoes == 0

    def test_lopsided_gating_vetoed(self):
        hv = VSAwareHypervisor(
            config=HypervisorConfig(base_leakage_threshold_w=0.3)
        )
        request = [set() for _ in range(16)]
        # Gate everything in a single SM of column 0.
        lone = STACK.sm_index(0, 0)
        request[lone] = {ExecUnit.ALU, ExecUnit.SFU, ExecUnit.LSU}
        granted = hv.map_gating(request)
        assert len(granted[lone]) < 3
        assert hv.gating_vetoes > 0

    def test_grants_highest_saving_first(self):
        hv = VSAwareHypervisor(
            config=HypervisorConfig(base_leakage_threshold_w=0.4)
        )
        lone = STACK.sm_index(1, 1)
        request = [set() for _ in range(16)]
        request[lone] = {ExecUnit.ALU, ExecUnit.SFU}
        granted = hv.map_gating(request)
        # ALU saves the most leakage; it is kept, SFU vetoed.
        assert ExecUnit.ALU in granted[lone]

    def test_validates_length(self):
        with pytest.raises(ValueError):
            fresh().map_gating([set()] * 4)


class TestAdaptation:
    def test_throttling_tightens_budgets(self):
        hv = fresh()
        base_f = hv.frequency_threshold_hz
        base_p = hv.leakage_threshold_w
        hv.update_performance_feedback(1.0)
        assert hv.frequency_threshold_hz < base_f
        assert hv.leakage_threshold_w < base_p

    def test_idle_smoothing_keeps_base_budgets(self):
        hv = fresh()
        hv.update_performance_feedback(0.0)
        assert hv.frequency_threshold_hz == pytest.approx(
            HypervisorConfig().base_frequency_threshold_hz
        )

    def test_feedback_validated(self):
        with pytest.raises(ValueError):
            fresh().update_performance_feedback(1.5)
