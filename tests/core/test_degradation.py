"""Graceful-degradation tests for the voltage smoothing controller.

Covers the guardband watchdog (escalation to the emergency safe state
and its release), the sensor-loss fallback (hold-last-good with widened
thresholds; NaN never actuates), limit-cycle detection, and the
sampled-stability validation in ControllerConfig.
"""

import numpy as np
import pytest

from repro.core.actuators import WeightedActuation
from repro.core.controller import ControllerConfig, VoltageSmoothingController


def make_controller(**config_kwargs):
    defaults = dict(latency_cycles=10, control_period_cycles=1)
    defaults.update(config_kwargs)
    return VoltageSmoothingController(
        config=ControllerConfig(**defaults),
        actuation=WeightedActuation(w1=1.0, w2=1.0, w3=1.0),
    )


def healthy():
    return np.full(16, 1.0)


class TestStabilityValidation:
    def test_default_config_is_stable(self):
        cfg = ControllerConfig()
        gains = cfg.effective_power_gains_w_per_v()
        limit = cfg.stability_limit_w_per_v()
        assert gains["diws"] <= limit
        assert gains["fii"] <= limit

    def test_limit_is_2c_over_t(self):
        cfg = ControllerConfig(latency_cycles=60)
        # 2 x (2 x 4 columns x 64 nF) / (60 cycles / 700 MHz) ~ 12 W/V.
        assert cfg.stability_limit_w_per_v() == pytest.approx(11.95, abs=0.1)

    def test_unstable_gain_rejected(self):
        # Loose slews stop capping the k2 = 8 FII gain
        # (8 x 2.66 W = 21.3 W/V) below the ~12 W/V bound.
        with pytest.raises(ValueError, match="sampled-stability limit"):
            ControllerConfig(k2=8.0, slew_fake=0.5, latency_cycles=60)

    def test_allow_unstable_escape_hatch(self):
        cfg = ControllerConfig(
            k2=8.0, slew_fake=0.5, latency_cycles=60, allow_unstable=True
        )
        assert cfg.effective_power_gains_w_per_v()["fii"] > (
            cfg.stability_limit_w_per_v()
        )

    def test_tight_slew_rescues_a_hot_gain(self):
        """A big k2 is fine when the slew limit caps the realized gain."""
        cfg = ControllerConfig(k2=8.0, slew_fake=0.02, latency_cycles=60)
        assert cfg.effective_power_gains_w_per_v()["fii"] <= (
            cfg.stability_limit_w_per_v()
        )


class TestWatchdog:
    def test_escalates_after_patience_decisions(self):
        ctl = make_controller(watchdog_enabled=True, watchdog_patience=5)
        for cycle in range(200):
            ctl.observe(cycle, np.full(16, 0.5))
        stats = ctl.stats()
        assert stats["in_safe_state"]
        assert stats["watchdog_engagements"] == 1
        assert stats["safe_state_decisions"] > 0

    def test_safe_state_commands_reach_max_throttle(self):
        ctl = make_controller(
            watchdog_enabled=True, watchdog_patience=3, safe_issue_width=0.0
        )
        for cycle in range(400):
            ctl.observe(cycle, np.full(16, 0.5))
        decision = ctl.commands_for(500)
        assert np.all(decision.issue_widths == 0.0)
        assert np.all(decision.fake_rates == 0.0)
        assert np.all(decision.dcc_powers_w == 0.0)

    def test_disabled_watchdog_never_escalates(self):
        ctl = make_controller(watchdog_enabled=False, watchdog_patience=5)
        for cycle in range(200):
            ctl.observe(cycle, np.full(16, 0.5))
        stats = ctl.stats()
        assert not stats["in_safe_state"]
        assert stats["watchdog_engagements"] == 0

    def test_brief_dip_does_not_escalate(self):
        ctl = make_controller(watchdog_enabled=True, watchdog_patience=50)
        for cycle in range(30):
            ctl.observe(cycle, np.full(16, 0.5))
        for cycle in range(30, 200):
            ctl.observe(cycle, healthy())
        assert ctl.stats()["watchdog_engagements"] == 0

    def test_released_after_sustained_recovery(self):
        ctl = make_controller(
            watchdog_enabled=True, watchdog_patience=3,
            safe_state_release_decisions=20,
        )
        for cycle in range(100):
            ctl.observe(cycle, np.full(16, 0.5))
        assert ctl.stats()["in_safe_state"]
        for cycle in range(100, 400):
            ctl.observe(cycle, healthy())
        assert not ctl.stats()["in_safe_state"]

    def test_all_nan_is_no_evidence(self):
        """Total sensor loss without fallback must not advance either
        streak — the watchdog acts on measurements, not their absence."""
        ctl = make_controller(
            watchdog_enabled=True, watchdog_patience=2,
            sensor_fallback_enabled=False,
        )
        for cycle in range(100):
            ctl.observe(cycle, np.full(16, np.nan))
        stats = ctl.stats()
        assert not stats["in_safe_state"]
        assert stats["nan_samples_seen"] == 1600


class TestSensorFallback:
    def test_nan_never_actuates_without_fallback(self):
        ctl = make_controller(sensor_fallback_enabled=False)
        voltages = healthy()
        voltages[4] = np.nan
        for cycle in range(300):
            ctl.observe(cycle, voltages)
        decision = ctl.commands_for(400)
        assert decision.issue_widths[4] == 2.0
        assert decision.fake_rates[4] == 0.0
        assert ctl.stats()["nan_samples_seen"] == 300
        assert ctl.stats()["sensor_fallback_samples"] == 0

    def test_fallback_holds_last_good_measurement(self):
        ctl = make_controller(sensor_fallback_enabled=True)
        # Settle the filter at a healthy level, then lose the sensor
        # while the true voltage collapses: the held measurement keeps
        # the SM from false-triggering on garbage.
        for cycle in range(200):
            ctl.observe(cycle, healthy())
        lost = healthy()
        lost[4] = np.nan
        for cycle in range(200, 400):
            ctl.observe(cycle, lost)
        decision = ctl.commands_for(500)
        assert decision.issue_widths[4] == 2.0
        assert ctl.stats()["sensor_fallback_samples"] == 200

    def test_fallback_widens_the_droop_threshold(self):
        """A held measurement inside the widened band triggers
        protective throttling that a live one would not."""
        widened = make_controller(
            sensor_fallback_enabled=True, fallback_widen_v=0.05
        )
        live = make_controller(
            sensor_fallback_enabled=True, fallback_widen_v=0.05
        )
        # 0.93 V sits above v_threshold (0.9) but inside the widened
        # band (0.95).
        settle = healthy()
        settle[4] = 0.93
        for cycle in range(300):
            widened.observe(cycle, settle)
            live.observe(cycle, settle)
        assert live.commands_for(350).issue_widths[4] == 2.0
        lost = settle.copy()
        lost[4] = np.nan
        for cycle in range(300, 600):
            widened.observe(cycle, lost)
            live.observe(cycle, settle)
        assert widened.commands_for(700).issue_widths[4] < 2.0
        assert live.commands_for(700).issue_widths[4] == 2.0

    def test_recovered_sensor_clears_fallback(self):
        ctl = make_controller(sensor_fallback_enabled=True)
        lost = healthy()
        lost[4] = np.nan
        for cycle in range(50):
            ctl.observe(cycle, lost)
        before = ctl.stats()["sensor_fallback_samples"]
        for cycle in range(50, 100):
            ctl.observe(cycle, healthy())
        assert ctl.stats()["sensor_fallback_samples"] == before


class TestLimitCycleDetection:
    def test_sustained_flapping_is_flagged(self):
        ctl = make_controller(
            latency_cycles=5,
            control_period_cycles=30,
            limit_cycle_window=8,
            limit_cycle_min_flips=4,
        )
        # Alternate droop/healthy every control period: the throttle
        # engagement flag flips on every decision.
        droop = np.full(16, 0.7)
        for decision_idx in range(40):
            v = droop if decision_idx % 2 == 0 else healthy()
            for step in range(30):
                ctl.observe(decision_idx * 30 + step, v)
        assert ctl.stats()["limit_cycle_events"] >= 1

    def test_steady_throttling_is_not_a_limit_cycle(self):
        ctl = make_controller(
            limit_cycle_window=8, limit_cycle_min_flips=4
        )
        for cycle in range(600):
            ctl.observe(cycle, np.full(16, 0.7))
        assert ctl.stats()["limit_cycle_events"] == 0


class TestDegradationConfigValidation:
    def test_guardband_range(self):
        with pytest.raises(ValueError, match="guardband_v"):
            ControllerConfig(guardband_v=1.5)

    def test_patience_positive(self):
        with pytest.raises(ValueError, match="watchdog_patience"):
            ControllerConfig(watchdog_patience=0)

    def test_safe_issue_width_in_hardware_range(self):
        with pytest.raises(ValueError, match="safe_issue_width"):
            ControllerConfig(safe_issue_width=3.0)

    def test_limit_cycle_window_bounds(self):
        with pytest.raises(ValueError, match="limit_cycle"):
            ControllerConfig(limit_cycle_window=2)
        with pytest.raises(ValueError, match="limit_cycle"):
            ControllerConfig(limit_cycle_window=8, limit_cycle_min_flips=8)
