"""The controller's vectorized sensor front-end vs the scalar detectors.

``VoltageSmoothingController.observe`` advances every SM's RC filter
with array ufuncs; the per-object :class:`VoltageDetector` path it
replaced must be reproduced bit-for-bit (same filter states, same
quantized measurements, hence identical decisions) — including under
sensor dropout (non-finite samples).
"""

import numpy as np

from repro.core.controller import VoltageSmoothingController
from repro.core.detectors import VoltageDetector


def _scalar_reference(controller, voltages):
    """Drive per-object detectors through the same sample sequence."""
    num_sms = controller.stack.num_sms
    detectors = [
        VoltageDetector(
            controller.config.detector,
            filter_initial_v=controller.stack.sm_voltage,
        )
        for _ in range(num_sms)
    ]
    for row in voltages:
        for detector, v in zip(detectors, row):
            if np.isfinite(v):
                detector.sample(v, controller.dt_s)
    return np.array([d.filter.state_v for d in detectors])


def test_filter_states_bit_identical_clean_samples():
    controller = VoltageSmoothingController()
    rng = np.random.default_rng(3)
    voltages = controller.stack.sm_voltage + rng.normal(
        0, 0.02, (2000, controller.stack.num_sms)
    )
    for cycle, row in enumerate(voltages):
        controller.observe(cycle, row)
    assert np.array_equal(
        controller._filter_state, _scalar_reference(controller, voltages)
    )


def test_filter_states_bit_identical_with_dropout():
    controller = VoltageSmoothingController()
    rng = np.random.default_rng(5)
    voltages = controller.stack.sm_voltage + rng.normal(
        0, 0.02, (2000, controller.stack.num_sms)
    )
    # Sprinkle sensor dropouts: NaN never enters the filter state.
    drop = rng.random(voltages.shape) < 0.03
    voltages[drop] = np.nan
    for cycle, row in enumerate(voltages):
        controller.observe(cycle, row)
    assert np.array_equal(
        controller._filter_state, _scalar_reference(controller, voltages)
    )
    assert controller.nan_samples_seen == int(drop.sum())
    if controller.config.sensor_fallback_enabled:
        assert controller.sensor_fallback_samples == int(drop.sum())


def test_quantization_matches_detector_sample():
    controller = VoltageSmoothingController()
    detector = VoltageDetector(
        controller.config.detector,
        filter_initial_v=controller.stack.sm_voltage,
    )
    rng = np.random.default_rng(7)
    num_sms = controller.stack.num_sms
    for cycle in range(500):
        v = controller.stack.sm_voltage + rng.normal(0, 0.05)
        expected = detector.sample(v, controller.dt_s)
        controller.observe(cycle, np.full(num_sms, v))
        step = controller._resolution_v
        got = float(
            np.rint(controller._filter_state[0] / step) * step
        )
        assert got == expected
