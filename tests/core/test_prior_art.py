"""Tests for the prior-art mitigation baselines (Section II-C)."""

import numpy as np
import pytest

from repro.core.prior_art import (
    CheckpointRecoveryModel,
    GlobalThrottleController,
)


class TestCheckpointRecovery:
    def test_no_emergencies_no_rollback(self):
        model = CheckpointRecoveryModel()
        voltages = np.full((1000, 16), 1.0)
        assert model.count_emergencies(voltages) == 0
        assert model.effective_slowdown(voltages) == pytest.approx(
            1.0 + model.checkpoint_overhead
        )

    def test_single_event_counted_once(self):
        model = CheckpointRecoveryModel(rollback_cycles=100)
        voltages = np.full((1000, 16), 1.0)
        voltages[500:520, 3] = 0.7  # one 20-cycle emergency burst
        assert model.count_emergencies(voltages) == 1

    def test_separated_events_counted_separately(self):
        model = CheckpointRecoveryModel(rollback_cycles=100)
        voltages = np.full((1000, 16), 1.0)
        voltages[100, 0] = 0.7
        voltages[500, 0] = 0.7
        voltages[900, 0] = 0.7
        assert model.count_emergencies(voltages) == 3

    def test_frequent_noise_explodes_cost(self):
        """The paper's argument: checkpoint-recovery cannot handle the
        frequent supply-noise events of an unsmoothed stack."""
        model = CheckpointRecoveryModel(rollback_cycles=1000)
        rare = np.full((10_000, 16), 1.0)
        rare[5000, 0] = 0.7
        frequent = np.full((10_000, 16), 1.0)
        frequent[::1000, 0] = 0.7  # an emergency every rollback window
        assert model.effective_slowdown(rare) < 1.15
        assert model.effective_slowdown(frequent) > 1.9

    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointRecoveryModel(rollback_cycles=0)
        with pytest.raises(ValueError):
            CheckpointRecoveryModel(checkpoint_overhead=1.0)


class TestGlobalThrottle:
    def make(self, **kwargs):
        defaults = dict(latency_cycles=10, hold_cycles=50)
        defaults.update(kwargs)
        return GlobalThrottleController(**defaults)

    def healthy(self):
        return np.full(16, 1.0)

    def test_no_droop_no_throttle(self):
        ctl = self.make()
        for cycle in range(100):
            ctl.observe(cycle, self.healthy())
            decision = ctl.commands_for(cycle)
        assert np.all(decision.issue_widths == 2.0)
        assert ctl.throttled_cycles == 0

    def test_droop_throttles_everyone(self):
        ctl = self.make()
        voltages = self.healthy()
        voltages[5] = 0.7  # a single drooping SM...
        ctl.observe(0, voltages)
        decision = ctl.commands_for(20)  # after the latency
        # ...but the WHOLE chip is throttled: the single-layer scheme
        # has no notion of per-layer imbalance.
        assert np.all(decision.issue_widths == ctl.throttle_width)
        assert len(decision.triggered_sms) == 16

    def test_throttle_releases_after_hold(self):
        ctl = self.make()
        voltages = self.healthy()
        voltages[5] = 0.7
        ctl.observe(0, voltages)
        ctl.commands_for(20)
        decision = ctl.commands_for(20 + ctl.hold_cycles + 1)
        assert np.all(decision.issue_widths == 2.0)

    def test_never_injects_power(self):
        # The conventional scheme has no FII/DCC concept.
        ctl = self.make()
        voltages = self.healthy()
        voltages[0] = 0.5
        ctl.observe(0, voltages)
        decision = ctl.commands_for(50)
        assert np.all(decision.fake_rates == 0.0)
        assert np.all(decision.dcc_powers_w == 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            GlobalThrottleController(v_threshold=0.0)
        with pytest.raises(ValueError):
            GlobalThrottleController(throttle_width=3.0)
        ctl = self.make()
        with pytest.raises(ValueError):
            ctl.observe(0, np.ones(4))
