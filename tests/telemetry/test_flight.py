"""The droop flight recorder: unit behavior + full co-sim coverage.

The acceptance bar for this subsystem is *100% onset coverage*: every
guardband-violation onset a run experiences must land inside some
dump's window, for the serial and the batched co-sim engines alike.
"""

import numpy as np
import pytest

from repro.core.controller import ControllerConfig
from repro.faults import get_scenario, list_scenarios
from repro.sim.cosim import CosimConfig, CosimLane, run_cosim, run_cosim_batch
from repro.telemetry.flight import (
    ONSET,
    SAFE_ENTER,
    SAFE_EXIT,
    FlightRecorder,
    read_flight_dir,
    render_flight,
)

GUARD = 0.8


def feed(rec, mins, **kw):
    """Observe a synthetic run whose per-cycle min voltage is ``mins``."""
    for v in mins:
        rec.observe(np.array([v, v + 0.05]), **kw)


def dipped(n, dips):
    """A flat 0.9 V trace with 1-cycle dips to 0.7 V at ``dips``."""
    mins = np.full(n, 0.9)
    for d in dips:
        mins[d] = 0.7
    return mins


class TestOnsetDetection:
    def test_single_dip_one_dump(self):
        rec = FlightRecorder(2, GUARD, pre_cycles=8, post_cycles=8,
                             scan_interval=4)
        feed(rec, dipped(100, [50]))
        rec.finalize()
        assert rec.onsets == 1
        assert len(rec.dumps) == 1
        dump = rec.dumps[0].to_dict()
        assert dump["triggers"] == [
            {"cycle": 50, "kind": ONSET, "min_voltage_v": pytest.approx(0.7)}
        ]
        assert dump["start_cycle"] == 42  # 50 - pre
        assert dump["end_cycle"] == 59  # 50 + post + 1
        assert dump["cycles"] == list(range(42, 59))
        assert len(dump["voltages"]) == 17
        assert dump["min_voltage_v"][50 - 42] == pytest.approx(0.7)

    def test_every_onset_counted_and_covered(self):
        dips = [20, 60, 100, 140, 180]
        rec = FlightRecorder(2, GUARD, pre_cycles=4, post_cycles=4,
                             scan_interval=8)
        feed(rec, dipped(220, dips))
        rec.finalize()
        assert rec.onsets == len(dips)
        covered = set()
        for dump in rec.dumps:
            d = dump.to_dict()
            covered.update(range(d["start_cycle"], d["end_cycle"]))
        assert all(d in covered for d in dips)

    def test_sustained_violation_is_one_onset(self):
        mins = np.full(100, 0.9)
        mins[40:90] = 0.7  # one long droop
        rec = FlightRecorder(2, GUARD, pre_cycles=4, post_cycles=4,
                             scan_interval=8)
        feed(rec, mins)
        rec.finalize()
        assert rec.onsets == 1

    def test_onset_on_scan_block_boundary(self):
        # The below/not-below edge must carry across scan blocks.
        scan = 8
        for dip in (scan - 1, scan, scan + 1, 3 * scan):
            rec = FlightRecorder(2, GUARD, pre_cycles=2, post_cycles=2,
                                 scan_interval=scan)
            feed(rec, dipped(6 * scan, [dip]))
            rec.finalize()
            assert rec.onsets == 1, f"dip at {dip}"

    def test_run_starting_below_guardband_is_an_onset(self):
        mins = np.full(40, 0.7)
        rec = FlightRecorder(2, GUARD, pre_cycles=4, post_cycles=4,
                             scan_interval=8)
        feed(rec, mins)
        rec.finalize()
        assert rec.onsets == 1
        assert rec.dumps[0].to_dict()["triggers"][0]["cycle"] == 0


class TestWarmupOffset:
    def test_warmup_dip_is_context_not_trigger(self):
        rec = FlightRecorder(2, GUARD, pre_cycles=4, post_cycles=4,
                             scan_interval=8, cycle_offset=-50)
        feed(rec, dipped(120, [20, 80]))  # recorded cycles -30 and +30
        rec.finalize()
        assert rec.onsets == 1
        dump = rec.dumps[0].to_dict()
        assert dump["triggers"][0]["cycle"] == 30  # recorded numbering
        assert 30 in dump["cycles"]

    def test_summary_windows_use_recorded_numbering(self):
        rec = FlightRecorder(2, GUARD, pre_cycles=4, post_cycles=4,
                             scan_interval=8, cycle_offset=-50)
        feed(rec, dipped(120, [80]))
        rec.finalize()
        window = rec.summary()["windows"][0]
        assert window["start_cycle"] == 80 - 50 - 4


class TestSafeStateEdges:
    def test_enter_and_exit_edges(self):
        rec = FlightRecorder(2, GUARD, pre_cycles=4, post_cycles=4,
                             scan_interval=8)
        for c in range(120):
            rec.observe(np.array([0.9, 0.95]), safe=40 <= c < 60)
        rec.finalize()
        assert rec.safe_edges == 2
        kinds = [
            t["kind"] for d in rec.dumps for t in d.to_dict()["triggers"]
        ]
        assert kinds.count(SAFE_ENTER) == 1
        assert kinds.count(SAFE_EXIT) == 1
        # The dump captures the flag itself.
        merged = []
        for d in rec.dumps:
            dd = d.to_dict()
            merged.extend(zip(dd["cycles"], dd["safe_state"]))
        assert (40, True) in merged
        assert (39, False) in dict.fromkeys(merged) or (39, False) in merged


class TestCoalescingAndBounds:
    def test_burst_coalesces_into_one_window(self):
        rec = FlightRecorder(2, GUARD, pre_cycles=8, post_cycles=16,
                             scan_interval=8)
        feed(rec, dipped(200, [100, 104, 108]))
        rec.finalize()
        assert rec.onsets == 3
        assert len(rec.dumps) == 1
        dump = rec.dumps[0].to_dict()
        assert len(dump["triggers"]) == 3
        assert dump["end_cycle"] == 108 + 16 + 1

    def test_window_length_capped(self):
        cap = 40
        rec = FlightRecorder(2, GUARD, pre_cycles=8, post_cycles=16,
                             scan_interval=8, max_window_cycles=cap)
        feed(rec, dipped(400, list(range(100, 300, 10))))
        rec.finalize()
        for dump in rec.dumps:
            assert dump.num_cycles() <= cap
        # Every onset still falls inside some window (coverage survives
        # the cap because an overflowing trigger opens a fresh window).
        covered = set()
        for dump in rec.dumps:
            d = dump.to_dict()
            covered.update(range(d["start_cycle"], d["end_cycle"]))
        assert all(c in covered for c in range(100, 300, 10))

    def test_max_dumps_suppresses_not_crashes(self):
        rec = FlightRecorder(2, GUARD, pre_cycles=2, post_cycles=2,
                             scan_interval=8, max_dumps=2)
        feed(rec, dipped(400, list(range(50, 350, 50))))
        rec.finalize()
        assert len(rec.dumps) == 2
        assert rec.dumps_suppressed > 0
        assert rec.summary()["dumps_suppressed"] == rec.dumps_suppressed

    def test_voltages_match_window_length(self):
        rec = FlightRecorder(3, GUARD, pre_cycles=5, post_cycles=3,
                             scan_interval=4)
        for v in dipped(64, [30]):
            rec.observe(np.array([v, v + 0.05, v + 0.1]))
        rec.finalize()
        dump = rec.dumps[0].to_dict()
        n = dump["end_cycle"] - dump["start_cycle"]
        assert len(dump["voltages"]) == n
        assert len(dump["min_voltage_v"]) == n
        assert len(dump["safe_state"]) == n
        assert len(dump["active_faults"]) == n
        assert len(dump["actuation_id"]) == n
        assert all(len(row) == 3 for row in dump["voltages"])

    def test_truncated_post_window_on_finalize(self):
        rec = FlightRecorder(2, GUARD, pre_cycles=4, post_cycles=50,
                             scan_interval=8)
        feed(rec, dipped(60, [55]))
        rec.finalize()
        dump = rec.dumps[0].to_dict()
        assert dump["end_cycle"] == 60  # run ended before post filled


class TestActuationTable:
    def test_shared_decision_deduped_by_identity(self):
        class Decision:
            issue_widths = [4, 4]
            fake_rates = [0.0, 0.0]
            dcc_powers_w = [0.0, 0.0]

        shared = Decision()
        other = Decision()
        rec = FlightRecorder(2, GUARD, pre_cycles=4, post_cycles=4,
                             scan_interval=4)
        mins = dipped(40, [20])
        for c, v in enumerate(mins):
            rec.observe(
                np.array([v, v + 0.05]),
                decision=shared if c < 22 else other,
            )
        rec.finalize()
        dump = rec.dumps[0].to_dict()
        assert len(dump["actuations"]) == 2
        assert dump["actuation_id"][:2] == [0, 0]  # same object, one id

    def test_no_decision_records_none(self):
        rec = FlightRecorder(2, GUARD, pre_cycles=2, post_cycles=2,
                             scan_interval=4)
        feed(rec, dipped(20, [10]))
        rec.finalize()
        dump = rec.dumps[0].to_dict()
        assert dump["actuations"] == []
        assert all(a is None for a in dump["actuation_id"])


class TestPersistence:
    def test_write_and_read_roundtrip(self, tmp_path):
        rec = FlightRecorder(2, GUARD, pre_cycles=4, post_cycles=4,
                             scan_interval=8)
        feed(rec, dipped(100, [30, 70]))
        rec.finalize()
        paths = rec.write(tmp_path / "flight")
        assert [p.name for p in paths] == ["000.json", "001.json"]
        dumps = read_flight_dir(tmp_path)  # run dir or flight dir
        assert dumps == read_flight_dir(tmp_path / "flight")
        assert len(dumps) == 2
        text = render_flight(dumps, GUARD)
        assert "2 dump(s)" in text
        assert "guardband 0.800 V" in text

    def test_read_missing_dir_is_empty(self, tmp_path):
        assert read_flight_dir(tmp_path) == []
        assert "no dumps" in render_flight([])


def _fault_config(scenario, cycles=600, warmup=100):
    # Mirrors the `repro faults` CLI: degradation machinery on.
    return CosimConfig(
        cycles=cycles,
        warmup_cycles=warmup,
        seed=3,
        faults=get_scenario(scenario),
        controller=ControllerConfig(
            watchdog_enabled=True, sensor_fallback_enabled=True
        ),
    )


def _true_onsets(result, guardband):
    """Independently recompute onset cycles from the recorded voltages."""
    mins = np.asarray(result.sm_voltages).min(axis=1)
    below = mins < guardband
    onsets = [0] if below[0] else []
    onsets += [int(c) for c in np.flatnonzero(below[1:] & ~below[:-1]) + 1]
    return onsets


class TestCosimIntegration:
    @pytest.mark.parametrize("scenario", sorted(list_scenarios()))
    def test_full_onset_coverage_all_scenarios(self, scenario):
        config = _fault_config(scenario)
        result = run_cosim("hotspot", config, flight=FlightRecorder(
            num_sms=16, guardband_v=0.8, cycle_offset=-config.warmup_cycles,
        ))
        flight = result.flight
        assert flight is not None
        summary = flight.summary()
        assert summary["cycles_observed"] == config.cycles + config.warmup_cycles

        onsets = _true_onsets(result, 0.8)
        assert summary["onsets"] == len(onsets)
        covered = set()
        for dump in flight.dumps:
            d = dump.to_dict()
            covered.update(range(d["start_cycle"], d["end_cycle"]))
        missed = [c for c in onsets if c not in covered]
        assert not missed, f"{scenario}: onsets not covered: {missed}"

    def test_no_flight_without_telemetry_by_default(self):
        result = run_cosim(
            "hotspot", CosimConfig(cycles=60, warmup_cycles=10)
        )
        assert result.flight is None

    def test_flight_false_suppresses_even_with_telemetry(self):
        from repro.telemetry import Telemetry

        result = run_cosim(
            "hotspot", CosimConfig(cycles=60, warmup_cycles=10),
            telemetry=Telemetry(run_id="t"), flight=False,
        )
        assert result.flight is None

    def test_telemetry_autocreates_and_records_section(self):
        from repro.telemetry import Telemetry

        tele = Telemetry(run_id="t")
        config = _fault_config("guardband-breaker")
        result = run_cosim("hotspot", config, telemetry=tele)
        assert result.flight is not None
        section = tele.sections["flight"]
        assert section["onsets"] == result.flight.onsets
        assert section["dumps"] >= 1

    def test_serial_and_batch_flights_are_identical(self):
        config = _fault_config("guardband-breaker")

        serial = run_cosim("hotspot", config, flight=FlightRecorder(
            num_sms=16, guardband_v=0.8, cycle_offset=-config.warmup_cycles,
        ))
        lanes = [CosimLane(benchmark="hotspot", config=config)]
        flights = [FlightRecorder(
            num_sms=16, guardband_v=0.8, cycle_offset=-config.warmup_cycles,
        )]
        (batch,) = run_cosim_batch(lanes, flights=flights)

        s, b = serial.flight, batch.flight
        assert s.summary() == b.summary()
        assert [d.to_dict() for d in s.dumps] == [
            d.to_dict() for d in b.dumps
        ]
        assert s.onsets > 0  # the scenario actually breaks the guardband

    def test_batch_mixed_flight_lanes(self):
        quiet = CosimConfig(cycles=200, warmup_cycles=40, seed=1)
        loud = _fault_config("guardband-breaker", cycles=200, warmup=40)
        lanes = [
            CosimLane(benchmark="hotspot", config=quiet),
            CosimLane(benchmark="hotspot", config=loud),
        ]
        flights = [
            None,
            FlightRecorder(num_sms=16, guardband_v=0.8, cycle_offset=-40),
        ]
        calm, stormy = run_cosim_batch(lanes, flights=flights)
        assert calm.flight is None
        assert stormy.flight is not None
        assert stormy.flight.cycles_observed == 240

    def test_batch_flights_length_validated(self):
        lanes = [CosimLane(
            benchmark="hotspot",
            config=CosimConfig(cycles=40, warmup_cycles=10),
        )]
        with pytest.raises(ValueError, match="one entry per lane"):
            run_cosim_batch(lanes, flights=[None, None])
